// Retry sensitivity: how much retry budget buys back which failures?
// HadoopGIS pipe overflows recover on retry only while the overflow fits
// the per-attempt headroom (attempt k tolerates 1 + 0.5*(k-1) times the
// capacity). This bench fixes the workload, calibrates the pipe capacity so
// the worst task overflows by a chosen severity, and sweeps Hadoop's
// max_attempts from 1 (the seed model: first failure fatal) to 4 (the real
// mapred.max.attempts default) — charting where recovery runs out of road
// and what the retries cost in simulated time.
// A second sweep charts node blacklisting: with a fraction of the cluster's
// nodes flaky (correlated per-node crash probability), how much runtime and
// wasted work does quarantining those nodes buy back, per blacklist
// threshold?
#include <cstdio>

#include "core/experiments.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale(5e-4);
  workload::WorkloadConfig wc;
  wc.scale = scale;

  const auto taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / scale;

  // Probe with the gate disabled to learn the peak per-task pipe volume,
  // then calibrate capacity = peak / severity for each sweep row.
  systems::HadoopGisConfig probe;
  probe.pipe_capacity_fraction = 0.0;
  const auto clean = systems::run_hadoop_gis(taxi, nycb, query, exec, probe);
  if (!clean.success) {
    std::printf("probe run failed: %s\n", clean.failure_reason.c_str());
    return 1;
  }
  const double peak = static_cast<double>(clean.metrics.max_task_pipe_bytes());
  const auto& node = exec.cluster.node;

  std::printf(
      "== Retry sensitivity: pipe-overflow severity vs max_attempts ==\n"
      "taxi1m-nycb on the WS (scale %g); fault-free run %s.\n"
      "capacity set to (worst task pipe volume) / severity; attempt k\n"
      "tolerates 1 + 0.5*(k-1) times capacity.\n\n",
      scale, format_seconds(clean.total_seconds).c_str());

  const std::vector<double> severities = {1.2, 1.4, 1.6, 2.0, 2.6, 3.0};
  const std::vector<std::uint32_t> budgets = {1, 2, 3, 4};
  std::vector<std::string> header = {"overflow"};
  for (const auto m : budgets) {
    header.push_back("attempts=" + std::to_string(m));
  }
  TablePrinter table(header);

  for (const double severity : severities) {
    char label[24];
    std::snprintf(label, sizeof(label), "%.1fx", severity);
    std::vector<std::string> row = {label};
    for (const auto m : budgets) {
      systems::HadoopGisConfig config;
      config.pipe_capacity_fraction = (peak / severity) * node.cores /
                                      static_cast<double>(node.memory_bytes);
      config.faults.max_attempts = m;
      const auto report = systems::run_hadoop_gis(taxi, nycb, query, exec, config);
      if (!report.success) {
        row.push_back("PIPE");
      } else {
        const std::uint64_t retries = report.attempts_used - clean.attempts_used;
        row.push_back(format_seconds(report.total_seconds) + " (+" +
                      std::to_string(retries) + ")");
      }
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\ncells show end-to-end sim seconds (+extra attempts) or PIPE when the\n"
      "retry budget is exhausted. severity <= 1 + 0.5*(attempts-1) recovers;\n"
      "the full-dataset overflows of Tables 2-3 (severity >= 2.9 on the WS)\n"
      "stay fatal even at Hadoop's default budget of 4.\n");

  // ---- Node blacklisting on/off: flaky-node crash rate vs threshold ------
  core::ExecutionConfig ec2 = exec;
  ec2.cluster = cluster::ClusterSpec::ec2(6);  // blacklisting needs > 1 node

  std::printf(
      "\n== Node blacklisting: flaky-node crash rate vs blacklist threshold ==\n"
      "taxi1m-nycb on EC2-6 (SpatialHadoop analog); 1/3 of nodes flaky,\n"
      "max_attempts=8. threshold=off leaves retries circling the flaky\n"
      "nodes; a threshold quarantines them and shifts work to healthy\n"
      "slots.\n\n");

  const std::vector<double> crash_rates = {0.2, 0.4, 0.6, 0.8};
  const std::vector<std::uint32_t> thresholds = {0, 1, 2, 4};
  std::vector<std::string> bl_header = {"flaky crash p"};
  for (const auto t : thresholds) {
    bl_header.push_back(t == 0 ? "off" : "thr=" + std::to_string(t));
  }
  TablePrinter bl_table(bl_header);

  for (const double p : crash_rates) {
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", p);
    std::vector<std::string> row = {label};
    for (const auto t : thresholds) {
      systems::SpatialHadoopConfig config;
      config.faults.seed = 4242;
      config.faults.bad_node_probability = 1.0 / 3.0;
      config.faults.bad_node_crash_probability = p;
      config.faults.max_attempts = 8;
      config.faults.node_blacklist_threshold = t;
      const auto report =
          systems::run_spatial_hadoop(taxi, nycb, query, ec2, config);
      if (!report.success) {
        row.push_back(report.status.to_string());
      } else {
        row.push_back(format_seconds(report.total_seconds) + " (" +
                      std::to_string(report.metrics.total_nodes_quarantined()) +
                      "q, " + format_seconds(report.metrics.total_wasted_seconds()) +
                      "w)");
      }
    }
    bl_table.add_row(std::move(row));
  }
  bl_table.print();
  std::printf(
      "\ncells show sim seconds (nodes quarantined, seconds wasted), or the\n"
      "structured failure Status. Quarantine pays off once flaky nodes crash\n"
      "often enough that retries keep landing on them.\n");
  return 0;
}
