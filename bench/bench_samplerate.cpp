// Sample-rate ablation (Section II.A): every system derives partitions from
// a sample; the rate trades preprocessing cost against partition quality.
// Reports partition balance (skew, replication) and end-to-end runtimes at
// each rate.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "partition/partition_stats.hpp"
#include "partition/sampler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  const auto taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / scale;

  std::printf(
      "== Sample-rate sweep (taxi1m x nycb, WS): partition quality and runtime ==\n\n");

  TablePrinter table({"sample rate", "cells", "skew (max/mean)", "replication",
                      "SpatialHadoop s", "SpatialSpark s"});

  for (const double rate : {0.001, 0.01, 0.05, 0.2, 1.0}) {
    // Partition quality, measured directly on the taxi envelopes.
    const auto envs = taxi.envelopes();
    Rng rng(7);
    const auto idx = partition::bernoulli_sample(
        envs.size(), core::effective_sample_rate(rate, envs.size(), 128), rng);
    const auto sample = partition::gather_envelopes(envs, idx);
    const auto scheme = partition::make_partitions(partition::PartitionerKind::kStr,
                                                   sample, taxi.extent(), 128);
    const auto stats = partition::compute_partition_stats(scheme, envs);

    core::JoinQueryConfig query;
    query.predicate = core::JoinPredicate::kWithin;
    query.sample_rate = rate;
    const auto sh = core::run_spatial_join(core::SystemKind::kSpatialHadoopSim, taxi,
                                           nycb, query, exec);
    const auto ss = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, taxi,
                                           nycb, query, exec);

    char rate_s[16];
    std::snprintf(rate_s, sizeof(rate_s), "%g", rate);
    char skew_s[16];
    std::snprintf(skew_s, sizeof(skew_s), "%.2f", stats.skew);
    char repl_s[16];
    std::snprintf(repl_s, sizeof(repl_s), "%.3f", stats.replication_factor);
    table.add_row({rate_s, std::to_string(stats.cell_count), skew_s, repl_s,
                   sh.success ? format_seconds(sh.total_seconds) : "-",
                   ss.success ? format_seconds(ss.total_seconds) : "-"});
  }
  table.print();
  std::printf(
      "\nhigher rates buy flatter partitions (skew -> 1) at more sampling work;\n"
      "the paper notes HadoopGIS's master-side re-partitioning becomes an I/O\n"
      "and scalability problem at high rates (Section II.B).\n");
  return 0;
}
