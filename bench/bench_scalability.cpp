// Node-count scalability sweep. The paper varies EC2 clusters from 10 down
// to 6 nodes (excluding 4 and 2 for memory reasons) and observes "roughly
// the same" runtimes across EC2 configurations for the sample datasets —
// i.e., poor scalability, because per-job overheads and shuffles dominate
// small workloads. This bench sweeps 2..12 nodes on both experiments and
// prints where each system's failure region ends.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  std::printf(
      "== Scalability: EC2 node-count sweep (sim seconds; '-' = failed) ==\n\n");

  for (const auto& def : {core::sample_experiments()[0], core::full_experiments()[0]}) {
    const auto left = workload::generate(def.left, wc);
    const auto right = workload::generate(def.right, wc);
    std::printf("experiment %s (%s):\n", def.id.c_str(),
                core::join_predicate_name(def.predicate));

    TablePrinter table({"system", "EC2-2", "EC2-4", "EC2-6", "EC2-8", "EC2-10",
                        "EC2-12"});
    for (const auto system :
         {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
          core::SystemKind::kSpatialSparkSim}) {
      std::vector<std::string> row = {core::system_kind_name(system)};
      for (const std::uint32_t nodes : {2u, 4u, 6u, 8u, 10u, 12u}) {
        core::JoinQueryConfig query;
        query.predicate = def.predicate;
        core::ExecutionConfig exec;
        exec.cluster = cluster::ClusterSpec::ec2(nodes);
        exec.data_scale = 1.0 / scale;
        const auto report = core::run_spatial_join(system, left, right, query, exec);
        row.push_back(report.success ? format_seconds(report.total_seconds) : "-");
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "expected shapes: SpatialSpark's OOM region covers small clusters on the\n"
      "full workload (the paper excluded EC2-4/EC2-2 for this reason);\n"
      "SpatialHadoop completes everywhere but gains little from extra nodes on\n"
      "the sample workload (the paper's 'roughly the same' observation).\n");
  return 0;
}
