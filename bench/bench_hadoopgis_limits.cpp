// Where exactly does HadoopGIS break? The paper reports only the binary
// outcome (sample datasets: WS ok / EC2 broken pipe; full datasets: broken
// everywhere). This bench sweeps the input volume between those points and
// reports, per cluster, the largest fraction of the full taxi dataset that
// still completes — locating the robustness cliff the failure model
// produces.
#include <cstdio>

#include "core/experiments.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale(5e-4);
  workload::WorkloadConfig wc;
  wc.scale = scale;

  const auto taxi = workload::generate(workload::DatasetId::kTaxi, wc);
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);

  std::printf(
      "== HadoopGIS robustness cliff: input volume vs broken pipes ==\n"
      "fractions of the full taxi dataset joined with nycb (scale %g).\n"
      "paper anchors: taxi1m (~8%% of taxi) completes on WS, fails on EC2;\n"
      "full taxi fails everywhere.\n\n",
      scale);

  const std::vector<double> fractions = {0.02, 0.05, 0.08, 0.15, 0.3, 0.6, 1.0};
  std::vector<std::string> header = {"cluster"};
  for (const double f : fractions) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%g", f);
    header.push_back(buf);
  }
  TablePrinter table(header);

  for (const auto& cl : {cluster::ClusterSpec::workstation(), cluster::ClusterSpec::ec2(10)}) {
    std::vector<std::string> row = {cl.name};
    for (const double f : fractions) {
      const auto subset =
          f < 1.0 ? workload::sample_fraction(taxi, "taxi-sub", f, 4242) : taxi;
      core::JoinQueryConfig query;
      query.predicate = core::JoinPredicate::kWithin;
      core::ExecutionConfig exec;
      exec.cluster = cl;
      exec.data_scale = 1.0 / scale;
      const auto report = systems::run_hadoop_gis(subset, nycb, query, exec);
      row.push_back(report.success ? format_seconds(report.total_seconds) : "PIPE");
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\ncells show end-to-end sim seconds where the run completed; the cliff\n"
      "between the last runtime and the first PIPE is the per-task pipe\n"
      "capacity (0.24 x per-slot memory; x0.17 on multi-node clusters).\n");
  return 0;
}
