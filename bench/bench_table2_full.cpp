// Reproduces Table 2: end-to-end runtimes (seconds) of the two full-dataset
// experiments on the three systems across the four cluster configurations.
// "-" marks a failed run (broken pipe for HadoopGIS, OOM for SpatialSpark),
// matching the paper's dashes.
//
// Simulated seconds are paper-magnitude (measured CPU on scaled data +
// modeled I/O, scaled back up); compare shapes and factors, not absolute
// values. Set SJC_SCALE to change the workload scale (default 1e-3).
//
// Besides the human-readable table (and the optional SJC_CSV_DIR CSV), the
// bench writes BENCH_table2.json with per-run simulated seconds AND the
// real wall-clock each run took, so kernel-level regressions show up in
// regression tracking even when the simulated model hides them.
// Pass --trace=PREFIX to also record per-task timelines: each run writes a
// Chrome trace-event file PREFIX_<experiment>_<system>_<cluster>.trace.json
// (open in Perfetto or chrome://tracing) and prints its per-phase skew
// summary. Tracing never changes the reported numbers (see DESIGN.md §5e).
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "trace/chrome_trace.hpp"
#include "util/bench_io.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

std::string slug(std::string text) {
  for (auto& ch : text) {
    const bool keep = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '-' || ch == '_';
    if (!keep) ch = '-';
  }
  return text;
}

// Paper Table 2 values for reference columns.
const char* paper_value(const std::string& exp, sjc::core::SystemKind system,
                        const std::string& cluster) {
  using sjc::core::SystemKind;
  if (exp == "taxi-nycb") {
    if (system == SystemKind::kSpatialHadoopSim) {
      if (cluster == "WS") return "3,327";
      if (cluster == "EC2-10") return "2,361";
      if (cluster == "EC2-8") return "2,472";
      if (cluster == "EC2-6") return "3,349";
    }
    if (system == SystemKind::kSpatialSparkSim) {
      if (cluster == "WS") return "3,098";
      if (cluster == "EC2-10") return "813";
    }
  } else {
    if (system == SystemKind::kSpatialHadoopSim) {
      if (cluster == "WS") return "14,135";
      if (cluster == "EC2-10") return "5,695";
      if (cluster == "EC2-8") return "8,043";
      if (cluster == "EC2-6") return "9,678";
    }
    if (system == SystemKind::kSpatialSparkSim) {
      if (cluster == "WS") return "4,481";
      if (cluster == "EC2-10") return "1,119";
    }
  }
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sjc;
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_prefix = argv[i] + 8;
  }
  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  std::printf("== Table 2: end-to-end runtimes, full datasets (sim seconds; scale %g) ==\n",
              scale);
  std::printf("   cells show: measured | paper\n\n");

  const auto clusters = core::paper_cluster_configs();
  std::vector<std::string> header = {"experiment", "system"};
  for (const auto& c : clusters) header.push_back(c.name);
  TablePrinter table(header);
  CsvWriter csv({"experiment", "system", "cluster", "sim_seconds", "success"});

  JsonWriter json;
  json.begin_object();
  json.field("bench", "table2");
  json.field("scale", scale);
  json.begin_array("runs");

  for (const auto& def : core::full_experiments()) {
    const auto left = workload::generate(def.left, wc);
    const auto right = workload::generate(def.right, wc);
    for (const auto system :
         {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
          core::SystemKind::kSpatialSparkSim}) {
      std::vector<std::string> row = {def.id, core::system_kind_name(system)};
      for (const auto& c : clusters) {
        core::JoinQueryConfig query;
        query.predicate = def.predicate;
        core::ExecutionConfig exec;
        exec.cluster = c;
        exec.data_scale = 1.0 / scale;
        exec.trace = !trace_prefix.empty();
        const auto wall_start = std::chrono::steady_clock::now();
        const auto report = core::run_spatial_join(system, left, right, query, exec);
        const double wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
                .count();
        if (exec.trace && !report.trace.empty()) {
          const std::string path = trace_prefix + "_" + slug(def.id) + "_" +
                                   slug(core::system_kind_name(system)) + "_" +
                                   slug(c.name) + ".trace.json";
          trace::write_chrome_trace_file(path, report.trace);
          std::printf("trace written to %s\n%s", path.c_str(),
                      trace::format_skew_table(report.trace, report.counters.snapshot()).c_str());
        }
        const std::string measured =
            report.success ? format_seconds(report.total_seconds) : "-";
        row.push_back(measured + " | " + paper_value(def.id, system, c.name));
        csv.add_row({def.id, core::system_kind_name(system), c.name,
                     report.success ? format_double(report.total_seconds) : "",
                     report.success ? "1" : "0"});
        json.begin_element();
        json.field("experiment", def.id);
        json.field("system", core::system_kind_name(system));
        json.field("cluster", c.name);
        json.field("success", report.success);
        if (report.success) json.field("sim_seconds", report.total_seconds);
        json.field("real_wall_seconds", wall_seconds);
        json.field("prepared_cache_hits",
                   report.counters.get("join.prepared_cache_hits"));
        json.field("prepared_cache_misses",
                   report.counters.get("join.prepared_cache_misses"));
        json.end_object();
      }
      table.add_row(std::move(row));
    }
    table.add_separator();
  }
  table.print();
  json.end_array();
  json.field("peak_rss_bytes", peak_rss_bytes());
  json.end_object();
  const std::string csv_path = maybe_write_csv("table2_full", csv);
  if (!csv_path.empty()) std::printf("\ncsv written to %s\n", csv_path.c_str());
  const std::string json_path = write_bench_json("table2", json.str());
  std::printf("json written to %s\n", json_path.c_str());
  return 0;
}
