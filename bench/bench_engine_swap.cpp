// System-level geometry-engine ablation: the paper conjectures that GEOS
// (vs JTS) "might be another major factor" in HadoopGIS's slow distributed
// joins (Section III.C). Here we can actually run the counterfactuals:
// HadoopGIS with the fast (JTS-analog) engine, and SpatialHadoop with the
// slow (GEOS-analog) engine, isolating the geometry-library share of the
// gap from the streaming-framework share.
#include <cstdio>

#include "core/experiments.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale(5e-4);
  workload::WorkloadConfig wc;
  wc.scale = scale;

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / scale;

  std::printf(
      "== Geometry-engine swap ablation (WS, sample datasets, scale %g) ==\n"
      "DJ = distributed-join seconds only (indexing is engine-independent).\n\n",
      scale);

  TablePrinter table({"experiment", "system", "engine", "DJ s", "TOT s"});

  for (const auto& def : core::sample_experiments()) {
    const auto left = workload::generate(def.left, wc);
    const auto right = workload::generate(def.right, wc);
    core::JoinQueryConfig query;
    query.predicate = def.predicate;

    for (const auto engine : {geom::EngineKind::kSimple, geom::EngineKind::kPrepared}) {
      systems::HadoopGisConfig hg_cfg;
      hg_cfg.engine = engine;
      const auto hg = systems::run_hadoop_gis(left, right, query, exec, hg_cfg);
      table.add_row({def.id, "HadoopGIS-sim", geom::engine_kind_name(engine),
                     hg.success ? format_seconds(hg.join_seconds) : "-",
                     hg.success ? format_seconds(hg.total_seconds) : "-"});

      systems::SpatialHadoopConfig sh_cfg;
      sh_cfg.engine = engine;
      const auto sh = systems::run_spatial_hadoop(left, right, query, exec, sh_cfg);
      table.add_row({def.id, "SpatialHadoop-sim", geom::engine_kind_name(engine),
                     format_seconds(sh.join_seconds), format_seconds(sh.total_seconds)});
    }
    table.add_separator();
  }
  table.print();
  std::printf(
      "\nreading: within each system, simple-vs-prepared isolates the geometry\n"
      "library's share of the DJ gap; HadoopGIS(prepared) vs\n"
      "SpatialHadoop(prepared) isolates the streaming framework's share.\n");
  return 0;
}
