// Reproduces Table 1: dataset record counts and on-disk sizes — the paper's
// values next to the synthetic stand-ins generated at the bench scale, so
// the scaling factor and per-record byte footprints can be audited.
#include <cstdio>

#include "core/experiments.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  std::printf("== Table 1: dataset sizes and volumes (scale %g of the paper's) ==\n\n",
              scale);

  TablePrinter table({"dataset", "paper #records", "paper size", "ours #records",
                      "ours size", "ours B/rec", "mean coords"});

  for (const auto id :
       {workload::DatasetId::kTaxi, workload::DatasetId::kNycb,
        workload::DatasetId::kLinearwater, workload::DatasetId::kEdges,
        workload::DatasetId::kLinearwater01, workload::DatasetId::kEdges01,
        workload::DatasetId::kTaxi1m}) {
    const auto data = workload::generate(id, wc);
    char per_record[32];
    std::snprintf(per_record, sizeof(per_record), "%.0f",
                  static_cast<double>(data.text_bytes()) /
                      static_cast<double>(data.size()));
    char coords[32];
    std::snprintf(coords, sizeof(coords), "%.1f", data.mean_coords());
    table.add_row({workload::dataset_id_name(id),
                   format_seconds(static_cast<double>(workload::paper_record_count(id))),
                   format_bytes(workload::paper_size_bytes(id)),
                   format_seconds(static_cast<double>(data.size())),
                   format_bytes(data.text_bytes()), per_record, coords});
  }
  table.print();
  std::printf(
      "\nper-record bytes should be magnitude-comparable with paper size /\n"
      "paper records; record counts scale by %g.\n",
      scale);
  return 0;
}
