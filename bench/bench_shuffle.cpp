// Seed copying data plane vs zero-copy data plane, head to head.
//
// The zero-copy plane (PR: "zero-copy partition data plane") replaces deep
// geom::Feature copies in partition blocks and shuffle buckets with 8-byte
// references resolved through stable Dataset spans, backs map-side shuffle
// buckets with chunked arena buffers, inlines the MR user functors via
// typed specs, and assigns partition ids through the non-allocating
// assign_into/min_assigned walks. Every *modeled* quantity — shuffle bytes,
// memory charges, phase makespans, join cardinalities — must be
// bit-identical to the seed plane; only harness wall-clock and resident
// memory may change.
//
// Four parts:
//  1. wall-clock: best-of-N in-process runs per system per plane;
//  2. peak RSS: each (system, plane) pair re-executes this binary with
//     --child=... so every measurement gets a fresh process (ru_maxrss is
//     monotone over a process lifetime, so in-process comparisons would be
//     polluted by whichever plane ran first). The child reports its RSS
//     right after dataset generation (the shared baseline both planes must
//     hold) and at exit; the difference is the data plane's working set;
//  3. verification: under virtual time (measured CPU pinned to 0 so modeled
//     seconds become pure cost-model outputs) run both planes on both
//     Table-2 experiments and require bit-identical reports — any mismatch
//     exits non-zero, failing the bench;
//  4. micro: the map-side bucket container alone, seed vector-of-vectors
//     (inlined verbatim below) vs ShuffleArena, pair-verified drain totals;
//  5. map-side shuffle filter (sFilter analog) off vs on, all three systems
//     on both Table-2 experiments: modeled shuffle bytes, filtered-record
//     counters and duplicated-records reduction under virtual time, plus
//     wall-clock, with survivor pair sets required to stay bit-identical.
//     --min-shuffle-reduction=<frac> turns the best observed byte reduction
//     into a CI gate.
//
// Parts 1-3 pin the shuffle filter *off* on every run: they isolate the
// data-plane comparison, and the filter's own head-to-head is part 5.
//
// Emits BENCH_shuffle.json (wall-clock, peak-RSS and filter columns) for
// regression tracking.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "mapreduce/shuffle_arena.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "util/bench_io.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace sjc;

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Part 4 micro bench: the seed map-side bucket container, kept verbatim as
// the baseline. One fresh vector per (map task, reduce bucket), grown
// push_back by push_back and torn down after every job — exactly what
// map_reduce.hpp / streaming.cpp did before the arena.
namespace legacy {

struct VectorBuckets {
  std::vector<std::vector<std::string>> buckets;

  void reset(std::size_t bucket_count) { buckets.assign(bucket_count, {}); }
  void push(std::size_t bucket, std::string line) {
    buckets[bucket].push_back(std::move(line));
  }
  template <typename Fn>
  void consume(std::size_t bucket, Fn&& fn) {
    for (auto& line : buckets[bucket]) fn(line);
    buckets[bucket].clear();
    buckets[bucket].shrink_to_fit();
  }
};

}  // namespace legacy

struct MicroResult {
  double seed_seconds = 0.0;
  double arena_seconds = 0.0;
  std::uint64_t drained_bytes = 0;
};

/// Simulates `jobs` map tasks, each scattering `items` shuffle lines thinly
/// across `bucket_count` reduce buckets (the realistic shape: hundreds of
/// reducers, a handful of pairs per bucket per mapper) and then draining
/// every bucket (the reduce-side fetch). Byte totals must match exactly.
template <typename Container>
double run_micro_container(std::size_t jobs, std::size_t bucket_count,
                           std::size_t items, std::uint64_t* drained_bytes) {
  Container buckets;
  std::uint64_t total = 0;
  const double start = wall_now();
  for (std::size_t job = 0; job < jobs; ++job) {
    buckets.reset(bucket_count);
    for (std::size_t i = 0; i < items; ++i) {
      // Key-prefixed shuffle line, the streaming plane's wire shape.
      std::string line = "p" + std::to_string(i % 97) + "\t" +
                         std::to_string(job * items + i) + "\tPOINT(1.5 2.5)";
      buckets.push((i * 769 + job) % bucket_count, std::move(line));
    }
    for (std::size_t b = 0; b < bucket_count; ++b) {
      buckets.consume(b, [&total](std::string& line) { total += line.size() + 1; });
    }
  }
  const double elapsed = wall_now() - start;
  *drained_bytes = total;
  return elapsed;
}

MicroResult run_micro(std::size_t jobs, std::size_t bucket_count, std::size_t items) {
  MicroResult r;
  std::uint64_t seed_bytes = 0;
  std::uint64_t arena_bytes = 0;
  r.seed_seconds = run_micro_container<legacy::VectorBuckets>(jobs, bucket_count,
                                                              items, &seed_bytes);
  r.arena_seconds = run_micro_container<mapreduce::ShuffleArena<std::string>>(
      jobs, bucket_count, items, &arena_bytes);
  if (seed_bytes != arena_bytes) {
    std::fprintf(stderr,
                 "MICRO MISMATCH: seed drained %llu bytes, arena %llu bytes\n",
                 static_cast<unsigned long long>(seed_bytes),
                 static_cast<unsigned long long>(arena_bytes));
    std::exit(1);
  }
  r.drained_bytes = seed_bytes;
  return r;
}

// ---------------------------------------------------------------------------
// Part 3 verification: bit-identical modeled quantities across planes.

bool double_identical(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

bool check(bool ok, const std::string& what, bool* all_ok) {
  if (!ok) {
    std::fprintf(stderr, "MODEL MISMATCH: %s\n", what.c_str());
    *all_ok = false;
  }
  return ok;
}

/// Requires the seed-plane and zero-copy-plane reports to agree on every
/// modeled quantity: outcome, cardinality, hash, all four time columns,
/// every phase (name, makespan, byte volumes, task shape), every counter,
/// and the peak memory charge. Prints each divergence.
bool reports_identical(const core::RunReport& seed, const core::RunReport& zc,
                       const std::string& tag) {
  bool ok = true;
  check(seed.success == zc.success, tag + ": success flag", &ok);
  check(seed.failure_reason == zc.failure_reason, tag + ": failure reason", &ok);
  check(seed.result_count == zc.result_count, tag + ": result_count", &ok);
  check(seed.result_hash == zc.result_hash, tag + ": result_hash", &ok);
  check(double_identical(seed.index_a_seconds, zc.index_a_seconds),
        tag + ": index_a_seconds", &ok);
  check(double_identical(seed.index_b_seconds, zc.index_b_seconds),
        tag + ": index_b_seconds", &ok);
  check(double_identical(seed.join_seconds, zc.join_seconds),
        tag + ": join_seconds", &ok);
  check(double_identical(seed.total_seconds, zc.total_seconds),
        tag + ": total_seconds", &ok);
  check(seed.peak_memory_bytes == zc.peak_memory_bytes,
        tag + ": peak_memory_bytes", &ok);
  check(seed.attempts_used == zc.attempts_used, tag + ": attempts_used", &ok);

  const auto& sp = seed.metrics.phases();
  const auto& zp = zc.metrics.phases();
  if (check(sp.size() == zp.size(), tag + ": phase count", &ok)) {
    for (std::size_t i = 0; i < sp.size(); ++i) {
      const auto& a = sp[i];
      const auto& b = zp[i];
      const std::string p = tag + " phase '" + a.name + "'";
      check(a.name == b.name, p + " vs '" + b.name + "': name", &ok);
      check(double_identical(a.sim_seconds, b.sim_seconds), p + ": sim_seconds", &ok);
      check(a.bytes_read == b.bytes_read, p + ": bytes_read", &ok);
      check(a.bytes_written == b.bytes_written, p + ": bytes_written", &ok);
      check(a.bytes_shuffled == b.bytes_shuffled, p + ": bytes_shuffled", &ok);
      check(a.task_count == b.task_count, p + ": task_count", &ok);
      check(a.max_task_pipe_bytes == b.max_task_pipe_bytes,
            p + ": max_task_pipe_bytes", &ok);
      check(a.task_attempts == b.task_attempts, p + ": task_attempts", &ok);
    }
  }

  const auto sc = seed.counters.snapshot();
  const auto zcc = zc.counters.snapshot();
  for (const auto& [name, value] : sc) {
    const auto it = zcc.find(name);
    check(it != zcc.end() && it->second == value,
          tag + ": counter " + name + " (seed " + std::to_string(value) + ")", &ok);
  }
  for (const auto& [name, value] : zcc) {
    check(sc.find(name) != sc.end(),
          tag + ": counter " + name + " only in zero-copy plane", &ok);
  }
  return ok;
}

// ---------------------------------------------------------------------------
// System runners.

core::RunReport run_hadoop(const workload::Dataset& left,
                           const workload::Dataset& right,
                           const core::JoinQueryConfig& query,
                           const core::ExecutionConfig& exec, bool zero_copy) {
  systems::SpatialHadoopConfig config;
  config.zero_copy_plane = zero_copy;
  config.policy.shuffle_filter = false;  // parts 1-3 isolate the plane; part 5 has the filter
  return systems::run_spatial_hadoop(left, right, query, exec, config);
}

core::RunReport run_spark(const workload::Dataset& left,
                          const workload::Dataset& right,
                          const core::JoinQueryConfig& query,
                          const core::ExecutionConfig& exec, bool zero_copy) {
  systems::SpatialSparkConfig config;
  config.zero_copy_plane = zero_copy;
  config.policy.shuffle_filter = false;  // parts 1-3 isolate the plane; part 5 has the filter
  return systems::run_spatial_spark(left, right, query, exec, config);
}

using RunFn = core::RunReport (*)(const workload::Dataset&, const workload::Dataset&,
                                  const core::JoinQueryConfig&,
                                  const core::ExecutionConfig&, bool);

struct SystemDef {
  const char* name;
  const char* key;  // --child spec token
  RunFn run;
};

constexpr SystemDef kSystems[] = {
    {"spatialhadoop-sim", "hadoop", &run_hadoop},
    {"spatialspark-sim", "spark", &run_spark},
};
constexpr std::size_t kSystemCount = sizeof(kSystems) / sizeof(kSystems[0]);

/// The timing workload: the paper's taxi x nycb row at bench scale, EC2-10.
struct TimingSetup {
  workload::Dataset left;
  workload::Dataset right;
  core::JoinQueryConfig query;
  core::ExecutionConfig exec;
  std::string experiment_id;
};

TimingSetup make_timing_setup() {
  const auto& def = core::full_experiments().front();
  workload::WorkloadConfig wc;
  wc.scale = core::bench_scale();
  TimingSetup s{workload::generate(def.left, wc), workload::generate(def.right, wc),
                {}, {}, def.id};
  s.query.predicate = def.predicate;
  s.exec.cluster = cluster::ClusterSpec::ec2(10);
  s.exec.data_scale = 1.0 / wc.scale;
  return s;
}

double best_wall_seconds(const SystemDef& sys, int reps, const TimingSetup& s,
                         bool zero_copy) {
  double best = std::nan("");
  for (int r = 0; r < reps; ++r) {
    const double start = wall_now();
    const auto report = sys.run(s.left, s.right, s.query, s.exec, zero_copy);
    const double elapsed = wall_now() - start;
    if (!report.success) {
      std::fprintf(stderr, "%s (%s plane) failed: %s\n", sys.name,
                   zero_copy ? "zero-copy" : "seed", report.failure_reason.c_str());
      return std::nan("");
    }
    if (std::isnan(best) || elapsed < best) best = elapsed;
  }
  return best;
}

/// Partition+shuffle stage in isolation: spatial_hadoop_build_index runs
/// exactly the sample job + the full partition MR job (map assignment,
/// shuffle grouping, reduce-side block build) and nothing else — the stages
/// the zero-copy plane rewrites. Times one build of each input per rep.
double best_partition_shuffle_seconds(int reps, const TimingSetup& s,
                                      bool zero_copy) {
  systems::SpatialHadoopConfig config;
  config.zero_copy_plane = zero_copy;
  config.policy.shuffle_filter = false;
  double best = std::nan("");
  for (int r = 0; r < reps; ++r) {
    const double start = wall_now();
    const auto ia = systems::spatial_hadoop_build_index(s.left, s.query, s.exec, config);
    const auto ib = systems::spatial_hadoop_build_index(s.right, s.query, s.exec, config);
    const double elapsed = wall_now() - start;
    if (ia.partition_count() == 0 || ib.partition_count() == 0) return std::nan("");
    if (std::isnan(best) || elapsed < best) best = elapsed;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Part 5: map-side shuffle filter (sFilter analog) off vs on.

core::RunReport run_gis_filter(const workload::Dataset& left,
                               const workload::Dataset& right,
                               const core::JoinQueryConfig& query,
                               const core::ExecutionConfig& exec, bool filter_on) {
  systems::HadoopGisConfig config;
  config.policy.shuffle_filter = filter_on;
  return systems::run_hadoop_gis(left, right, query, exec, config);
}

core::RunReport run_hadoop_filter(const workload::Dataset& left,
                                  const workload::Dataset& right,
                                  const core::JoinQueryConfig& query,
                                  const core::ExecutionConfig& exec,
                                  bool filter_on) {
  systems::SpatialHadoopConfig config;
  config.policy.shuffle_filter = filter_on;
  return systems::run_spatial_hadoop(left, right, query, exec, config);
}

core::RunReport run_spark_filter(const workload::Dataset& left,
                                 const workload::Dataset& right,
                                 const core::JoinQueryConfig& query,
                                 const core::ExecutionConfig& exec,
                                 bool filter_on) {
  systems::SpatialSparkConfig config;
  config.policy.shuffle_filter = filter_on;
  return systems::run_spatial_spark(left, right, query, exec, config);
}

constexpr SystemDef kFilterSystems[] = {
    {"hadoopgis-sim", "gis", &run_gis_filter},
    {"spatialhadoop-sim", "hadoop", &run_hadoop_filter},
    {"spatialspark-sim", "spark", &run_spark_filter},
};

std::uint64_t total_shuffle_bytes(const core::RunReport& report) {
  std::uint64_t total = 0;
  for (const auto& p : report.metrics.phases()) total += p.bytes_shuffled;
  return total;
}

struct FilterRow {
  std::string experiment;
  std::string system;
  bool off_ok = false;
  bool on_ok = false;
  std::uint64_t off_shuffle_bytes = 0;
  std::uint64_t on_shuffle_bytes = 0;
  std::uint64_t off_dups = 0;
  std::uint64_t on_dups = 0;
  std::uint64_t assigned = 0;
  std::uint64_t filtered = 0;
  std::uint64_t filtered_bytes = 0;
  double off_wall = std::nan("");
  double on_wall = std::nan("");

  /// Measured reduction: modeled shuffle bytes that stopped crossing the
  /// network. Needs a succeeding unfiltered run to compare against.
  double byte_reduction() const {
    if (!off_ok || !on_ok || off_shuffle_bytes == 0) return std::nan("");
    return 1.0 - static_cast<double>(on_shuffle_bytes) /
                     static_cast<double>(off_shuffle_bytes);
  }
  /// The on-run's own estimate (filtered bytes over would-be total): the
  /// only number available when the filter *rescues* an unfiltered OOM/pipe
  /// failure — there is no off-run byte total to compare against then.
  double estimated_reduction() const {
    const std::uint64_t would_be = on_shuffle_bytes + filtered_bytes;
    if (!on_ok || would_be == 0) return std::nan("");
    return static_cast<double>(filtered_bytes) / static_cast<double>(would_be);
  }
  /// What the CI gate sees: the measured reduction when comparable, the
  /// estimate on a rescue.
  double gated_reduction() const {
    const double measured = byte_reduction();
    return std::isnan(measured) ? estimated_reduction() : measured;
  }
};

// ---------------------------------------------------------------------------
// Part 2 child protocol: "--child=<system>,<plane>" runs one (system, plane)
// pair in a fresh process and prints one machine-readable line.

int run_child(const std::string& spec) {
  const auto comma = spec.find(',');
  const std::string sys_key = spec.substr(0, comma);
  const bool zero_copy = spec.substr(comma + 1) == "zc";
  const SystemDef* sys = nullptr;
  for (const auto& s : kSystems) {
    if (sys_key == s.key) sys = &s;
  }
  if (sys == nullptr || comma == std::string::npos) {
    std::fprintf(stderr, "bad --child spec: %s\n", spec.c_str());
    return 2;
  }
  const TimingSetup s = make_timing_setup();
  // Baseline: the datasets both planes must hold, plus process fixed costs.
  const std::uint64_t baseline = peak_rss_bytes();
  const double start = wall_now();
  const auto report = sys->run(s.left, s.right, s.query, s.exec, zero_copy);
  const double wall = wall_now() - start;
  std::printf("child baseline_bytes=%llu peak_bytes=%llu wall_s=%.6f success=%d\n",
              static_cast<unsigned long long>(baseline),
              static_cast<unsigned long long>(peak_rss_bytes()), wall,
              report.success ? 1 : 0);
  return report.success ? 0 : 1;
}

struct ChildStats {
  bool ok = false;
  std::uint64_t baseline_bytes = 0;
  std::uint64_t peak_bytes = 0;
  double wall_s = std::nan("");
  std::uint64_t working_bytes() const { return peak_bytes - baseline_bytes; }
};

ChildStats spawn_child(const std::string& argv0, const char* sys_key,
                       bool zero_copy) {
  ChildStats stats;
  const std::string cmd = "\"" + argv0 + "\" --child=" + sys_key + "," +
                          (zero_copy ? "zc" : "seed");
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return stats;
  char line[512];
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    unsigned long long baseline = 0;
    unsigned long long peak = 0;
    double wall = 0.0;
    int success = 0;
    if (std::sscanf(line, "child baseline_bytes=%llu peak_bytes=%llu wall_s=%lf success=%d",
                    &baseline, &peak, &wall, &success) == 4) {
      stats.ok = success == 1;
      stats.baseline_bytes = baseline;
      stats.peak_bytes = peak;
      stats.wall_s = wall;
    }
  }
  if (pclose(pipe) != 0) stats.ok = false;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sjc;
  int reps = 3;
  double min_shuffle_reduction = 0.0;  // 0 disables the gate
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--min-shuffle-reduction=", 24) == 0) {
      min_shuffle_reduction = std::atof(argv[i] + 24);
    }
    if (std::strncmp(argv[i], "--child=", 8) == 0) return run_child(argv[i] + 8);
  }
  if (reps < 1) reps = 1;

  const double scale = core::bench_scale();
  std::printf(
      "== Shuffle/partition data plane: seed copies vs zero-copy (scale %g, "
      "%d reps) ==\n\n",
      scale, reps);

  const TimingSetup setup = make_timing_setup();

  // ---- Part 1: in-process wall-clock, best of N. ----------------------------
  // One untimed warm-up per plane first: the very first run pays one-time
  // costs (heap growth, page faults, lazy caches) that would otherwise be
  // billed to whichever plane runs first. Timed reps then interleave the
  // planes so slow drift (thermal, background load) hits both equally.
  double zc_wall[kSystemCount];
  double seed_wall[kSystemCount];
  for (std::size_t s = 0; s < kSystemCount; ++s) {
    best_wall_seconds(kSystems[s], 1, setup, true);
    best_wall_seconds(kSystems[s], 1, setup, false);
    zc_wall[s] = std::nan("");
    seed_wall[s] = std::nan("");
    for (int r = 0; r < reps; ++r) {
      const double zc = best_wall_seconds(kSystems[s], 1, setup, true);
      const double sd = best_wall_seconds(kSystems[s], 1, setup, false);
      if (std::isnan(zc_wall[s]) || zc < zc_wall[s]) zc_wall[s] = zc;
      if (std::isnan(seed_wall[s]) || sd < seed_wall[s]) seed_wall[s] = sd;
    }
  }

  // Partition+shuffle stage alone (the rewritten stages), interleaved with
  // more reps since each build is short.
  const int ps_reps = reps * 3;
  best_partition_shuffle_seconds(1, setup, true);
  best_partition_shuffle_seconds(1, setup, false);
  double ps_zc = std::nan("");
  double ps_seed = std::nan("");
  for (int r = 0; r < ps_reps; ++r) {
    const double zc = best_partition_shuffle_seconds(1, setup, true);
    const double sd = best_partition_shuffle_seconds(1, setup, false);
    if (std::isnan(ps_zc) || zc < ps_zc) ps_zc = zc;
    if (std::isnan(ps_seed) || sd < ps_seed) ps_seed = sd;
  }

  // ---- Part 2: per-(system, plane) peak RSS in fresh child processes. -------
  ChildStats zc_rss[kSystemCount];
  ChildStats seed_rss[kSystemCount];
  for (std::size_t s = 0; s < kSystemCount; ++s) {
    zc_rss[s] = spawn_child(argv[0], kSystems[s].key, /*zero_copy=*/true);
    seed_rss[s] = spawn_child(argv[0], kSystems[s].key, /*zero_copy=*/false);
  }

  TablePrinter table({"system", "seed s", "zero-copy s", "speedup", "seed RSS",
                      "zc RSS", "RSS over baseline", "reduction"});
  for (std::size_t s = 0; s < kSystemCount; ++s) {
    std::string speedup = "-";
    if (!std::isnan(seed_wall[s]) && !std::isnan(zc_wall[s])) {
      speedup = fmt3(seed_wall[s] / zc_wall[s]) + "x";
    }
    std::string over_baseline = "-";
    std::string reduction = "-";
    if (seed_rss[s].ok && zc_rss[s].ok && zc_rss[s].working_bytes() > 0) {
      over_baseline = format_bytes(seed_rss[s].working_bytes()) + " vs " +
                      format_bytes(zc_rss[s].working_bytes());
      reduction = fmt3(static_cast<double>(seed_rss[s].working_bytes()) /
                       static_cast<double>(zc_rss[s].working_bytes())) +
                  "x";
    }
    table.add_row({kSystems[s].name,
                   std::isnan(seed_wall[s]) ? "-" : fmt3(seed_wall[s]),
                   std::isnan(zc_wall[s]) ? "-" : fmt3(zc_wall[s]), speedup,
                   seed_rss[s].ok ? format_bytes(seed_rss[s].peak_bytes) : "-",
                   zc_rss[s].ok ? format_bytes(zc_rss[s].peak_bytes) : "-",
                   over_baseline, reduction});
  }
  table.print();
  if (!std::isnan(ps_seed) && !std::isnan(ps_zc)) {
    std::printf(
        "partition+shuffle stage alone (sample + partition MR, both inputs, "
        "best of %d): seed %.3fs, zero-copy %.3fs (%.3fx)\n",
        ps_reps, ps_seed, ps_zc, ps_seed / ps_zc);
  }
  std::printf(
      "(\"over baseline\" subtracts each child's RSS right after dataset\n"
      " generation — the input both planes must hold — isolating the data\n"
      " plane's own working set.)\n\n");

  // ---- Part 3: modeled-quantity verification under virtual time. ------------
  std::printf("verifying modeled quantities are bit-identical across planes...\n");
  bool all_identical = true;
  workload::WorkloadConfig wc;
  wc.scale = scale;
  {
    const VirtualTimeGuard vt;  // scoped: restored even on early exit
    for (const auto& def : core::full_experiments()) {
      const auto vleft = workload::generate(def.left, wc);
      const auto vright = workload::generate(def.right, wc);
      core::JoinQueryConfig vquery;
      vquery.predicate = def.predicate;
      for (const auto& sys : kSystems) {
        const auto seed_report = sys.run(vleft, vright, vquery, setup.exec, false);
        const auto zc_report = sys.run(vleft, vright, vquery, setup.exec, true);
        const std::string tag = std::string(sys.name) + "/" + def.id;
        if (reports_identical(seed_report, zc_report, tag)) {
          std::printf("  %-40s identical (%zu pairs, %zu phases)\n", tag.c_str(),
                      seed_report.result_count,
                      seed_report.metrics.phases().size());
        } else {
          all_identical = false;
        }
      }
    }
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "zero-copy plane diverges from the seed plane on modeled "
                 "quantities — failing the bench\n");
    return 1;
  }

  // ---- Part 4: bucket-container micro head-to-head. -------------------------
  const MicroResult micro = run_micro(/*jobs=*/200, /*bucket_count=*/256,
                                      /*items=*/4000);
  std::printf(
      "\nmap-side buckets, 200 jobs x 4000 lines x 256 buckets: "
      "vector-of-vectors %.3fs, arena %.3fs (%.2fx), %s drained by both\n",
      micro.seed_seconds, micro.arena_seconds,
      micro.seed_seconds / micro.arena_seconds,
      format_bytes(micro.drained_bytes).c_str());

  // ---- Part 5: map-side shuffle filter off vs on. ---------------------------
  std::printf("\n== Map-side shuffle filter (sFilter analog): off vs on ==\n");
  std::vector<FilterRow> filter_rows;
  bool filter_pairs_ok = true;
  for (const auto& def : core::full_experiments()) {
    const auto fleft = workload::generate(def.left, wc);
    const auto fright = workload::generate(def.right, wc);
    core::JoinQueryConfig fquery;
    fquery.predicate = def.predicate;
    for (const auto& sys : kFilterSystems) {
      FilterRow row;
      row.experiment = def.id;
      row.system = sys.name;
      const std::string tag = std::string(sys.name) + "/" + def.id;
      // Modeled quantities under virtual time (pure cost-model outputs).
      core::RunReport off, on;
      {
        const VirtualTimeGuard vt;
        off = sys.run(fleft, fright, fquery, setup.exec, false);
        on = sys.run(fleft, fright, fquery, setup.exec, true);
      }
      row.off_ok = off.success;
      row.on_ok = on.success;
      if (off.success && !on.success) {
        std::fprintf(stderr, "FILTER REGRESSION: %s fails with the filter on: %s\n",
                     tag.c_str(), on.failure_reason.c_str());
        filter_pairs_ok = false;
      }
      if (off.success && on.success &&
          (off.result_count != on.result_count ||
           off.result_hash != on.result_hash)) {
        std::fprintf(stderr,
                     "FILTER MISMATCH: %s survivor pair sets differ "
                     "(off %zu pairs hash %llu, on %zu pairs hash %llu)\n",
                     tag.c_str(), off.result_count,
                     static_cast<unsigned long long>(off.result_hash),
                     on.result_count,
                     static_cast<unsigned long long>(on.result_hash));
        filter_pairs_ok = false;
      }
      row.off_shuffle_bytes = total_shuffle_bytes(off);
      row.on_shuffle_bytes = total_shuffle_bytes(on);
      row.off_dups = off.counters.get("partition.duplicated_records");
      row.on_dups = on.counters.get("partition.duplicated_records");
      row.assigned = on.counters.get("shuffle.assigned_records");
      row.filtered = on.counters.get("shuffle.filtered_records");
      row.filtered_bytes = on.counters.get("shuffle.filtered_bytes");
      // Wall clock, best of N, interleaved.
      for (int r = 0; r < reps; ++r) {
        if (row.off_ok) {
          const double start = wall_now();
          sys.run(fleft, fright, fquery, setup.exec, false);
          const double elapsed = wall_now() - start;
          if (std::isnan(row.off_wall) || elapsed < row.off_wall) {
            row.off_wall = elapsed;
          }
        }
        if (row.on_ok) {
          const double start = wall_now();
          sys.run(fleft, fright, fquery, setup.exec, true);
          const double elapsed = wall_now() - start;
          if (std::isnan(row.on_wall) || elapsed < row.on_wall) {
            row.on_wall = elapsed;
          }
        }
      }
      filter_rows.push_back(std::move(row));
    }
  }

  TablePrinter ftable({"experiment", "system", "off shuffle", "on shuffle",
                       "reduction", "filtered recs", "dups off->on", "off s",
                       "on s"});
  double best_reduction = std::nan("");
  for (const auto& row : filter_rows) {
    const double gated = row.gated_reduction();
    if (!std::isnan(gated) &&
        (std::isnan(best_reduction) || gated > best_reduction)) {
      best_reduction = gated;
    }
    std::string reduction = "-";
    if (!std::isnan(row.byte_reduction())) {
      reduction = fmt3(100.0 * row.byte_reduction()) + "%";
    } else if (!std::isnan(row.estimated_reduction())) {
      // Unfiltered run died (OOM/pipe); the filter rescued it.
      reduction = "~" + fmt3(100.0 * row.estimated_reduction()) + "% (rescue)";
    }
    ftable.add_row(
        {row.experiment, row.system,
         row.off_ok ? format_bytes(row.off_shuffle_bytes) : "failed",
         row.on_ok ? format_bytes(row.on_shuffle_bytes) : "failed", reduction,
         std::to_string(row.filtered) + "/" + std::to_string(row.assigned),
         std::to_string(row.off_dups) + " -> " + std::to_string(row.on_dups),
         std::isnan(row.off_wall) ? "-" : fmt3(row.off_wall),
         std::isnan(row.on_wall) ? "-" : fmt3(row.on_wall)});
  }
  ftable.print();
  std::printf(
      "(\"rescue\" rows: the unfiltered run overflows a memory/pipe gate, so\n"
      " the reduction is the on-run's own filtered/(filtered+shuffled) byte\n"
      " estimate. Survivor pair sets are verified bit-identical whenever both\n"
      " runs complete.)\n");
  // Failures are reported after the JSON is written, so a regression still
  // uploads its BENCH_shuffle.json artifact from CI.
  const bool gate_failed =
      min_shuffle_reduction > 0.0 &&
      (std::isnan(best_reduction) || best_reduction < min_shuffle_reduction);

  JsonWriter json;
  json.begin_object();
  json.field("bench", "shuffle");
  json.field("scale", scale);
  json.field("reps", static_cast<std::uint64_t>(reps));
  json.field("experiment", setup.experiment_id);
  json.field("modeled_quantities_identical", all_identical);
  json.begin_array("systems");
  for (std::size_t s = 0; s < kSystemCount; ++s) {
    json.begin_element();
    json.field("system", kSystems[s].name);
    json.field("seed_wall_seconds", seed_wall[s]);
    json.field("zero_copy_wall_seconds", zc_wall[s]);
    if (!std::isnan(seed_wall[s]) && !std::isnan(zc_wall[s])) {
      json.field("speedup", seed_wall[s] / zc_wall[s]);
    }
    if (seed_rss[s].ok && zc_rss[s].ok) {
      json.field("seed_peak_rss_bytes", seed_rss[s].peak_bytes);
      json.field("zero_copy_peak_rss_bytes", zc_rss[s].peak_bytes);
      json.field("seed_rss_over_baseline_bytes", seed_rss[s].working_bytes());
      json.field("zero_copy_rss_over_baseline_bytes", zc_rss[s].working_bytes());
      if (zc_rss[s].working_bytes() > 0) {
        json.field("rss_reduction_over_baseline",
                   static_cast<double>(seed_rss[s].working_bytes()) /
                       static_cast<double>(zc_rss[s].working_bytes()));
      }
    }
    json.end_object();
  }
  json.end_array();
  json.field("partition_shuffle_seed_seconds", ps_seed);
  json.field("partition_shuffle_zero_copy_seconds", ps_zc);
  if (!std::isnan(ps_seed) && !std::isnan(ps_zc)) {
    json.field("partition_shuffle_speedup", ps_seed / ps_zc);
  }
  json.field("micro_seed_seconds", micro.seed_seconds);
  json.field("micro_arena_seconds", micro.arena_seconds);
  json.field("micro_speedup", micro.seed_seconds / micro.arena_seconds);
  json.begin_array("filter");
  for (const auto& row : filter_rows) {
    json.begin_element();
    json.field("experiment", row.experiment);
    json.field("system", row.system);
    json.field("off_success", row.off_ok);
    json.field("on_success", row.on_ok);
    json.field("off_shuffle_bytes", row.off_shuffle_bytes);
    json.field("on_shuffle_bytes", row.on_shuffle_bytes);
    json.field("shuffle_assigned_records", row.assigned);
    json.field("shuffle_filtered_records", row.filtered);
    json.field("shuffle_filtered_bytes", row.filtered_bytes);
    json.field("duplicated_records_off", row.off_dups);
    json.field("duplicated_records_on", row.on_dups);
    if (!std::isnan(row.byte_reduction())) {
      json.field("shuffle_byte_reduction", row.byte_reduction());
    }
    if (!std::isnan(row.estimated_reduction())) {
      json.field("estimated_shuffle_byte_reduction", row.estimated_reduction());
    }
    if (!std::isnan(row.off_wall)) json.field("off_wall_seconds", row.off_wall);
    if (!std::isnan(row.on_wall)) json.field("on_wall_seconds", row.on_wall);
    json.end_object();
  }
  json.end_array();
  if (!std::isnan(best_reduction)) {
    json.field("max_shuffle_byte_reduction", best_reduction);
  }
  json.field("peak_rss_bytes", peak_rss_bytes());
  json.end_object();
  const std::string path = write_bench_json("shuffle", json.str());
  std::printf("wrote %s\n", path.c_str());
  if (!filter_pairs_ok) {
    std::fprintf(stderr,
                 "shuffle filter changed survivor pairs or broke a succeeding "
                 "run — failing the bench\n");
    return 1;
  }
  if (gate_failed) {
    std::fprintf(stderr,
                 "best shuffle-byte reduction %.3f below the --min-shuffle-"
                 "reduction=%.3f gate — failing the bench\n",
                 std::isnan(best_reduction) ? 0.0 : best_reduction,
                 min_shuffle_reduction);
    return 1;
  }
  return 0;
}
