// Ablation of the serial in-partition (local) join algorithms the systems
// choose between (Section II.C): SpatialHadoop's plane sweep and
// synchronized R-tree traversal, SpatialSpark's STR-indexed nested loop,
// and HadoopGIS's insert-built R-tree probe. Measures the MBR filter phase
// on workload shapes matching the paper's partitions.
//
// Each algorithm is measured three ways:
//   * fn_sink   — the std::function (PairSink) compatibility path;
//   * templated — the templated-sink kernel, fresh scratch per call;
//   * scratch   — the templated kernel with a reused MbrJoinScratch, the
//                 configuration the systems' task loops run.
// After the google-benchmark run, a head-to-head pass re-times fn_sink vs
// scratch directly and writes BENCH_localjoin.json (see util/bench_io.hpp)
// for regression tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "index/mbr_join.hpp"
#include "util/bench_io.hpp"
#include "util/rng.hpp"

namespace {

using namespace sjc;
using index::IndexEntry;
using index::LocalJoinAlgorithm;

// Partition-shaped workloads: `n` left boxes, n/10 right boxes, mild skew.
std::pair<std::vector<IndexEntry>, std::vector<IndexEntry>> make_partition(
    std::size_t n, double right_fraction) {
  Rng rng(42);
  std::vector<IndexEntry> left;
  std::vector<IndexEntry> right;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double x = rng.bernoulli(0.6) ? rng.normal(300, 60) : rng.uniform(0, 1000);
    const double y = rng.bernoulli(0.6) ? rng.normal(300, 60) : rng.uniform(0, 1000);
    left.push_back({geom::Envelope(x, y, x + rng.uniform(0, 3), y + rng.uniform(0, 3)),
                    i});
  }
  const auto m = static_cast<std::uint32_t>(static_cast<double>(n) * right_fraction);
  for (std::uint32_t i = 0; i < m; ++i) {
    const double x = rng.uniform(0, 990);
    const double y = rng.uniform(0, 990);
    right.push_back({geom::Envelope(x, y, x + rng.uniform(2, 10), y + rng.uniform(2, 10)),
                     i});
  }
  return {std::move(left), std::move(right)};
}

/// std::function dispatch per pair, no reusable state (the pre-templating
/// configuration and the PairSink compatibility path).
void BM_LocalMbrJoinFn(benchmark::State& state, LocalJoinAlgorithm algo) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [left, right] = make_partition(n, 0.1);
  std::size_t pairs = 0;
  const index::PairSink sink = [&pairs](std::uint32_t, std::uint32_t) { ++pairs; };
  for (auto _ : state) {
    pairs = 0;
    index::local_mbr_join(algo, left, right, sink);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(state.iterations() * n);
}

/// Templated sink, fresh scratch per call (isolates the inlining win).
void BM_LocalMbrJoin(benchmark::State& state, LocalJoinAlgorithm algo) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [left, right] = make_partition(n, 0.1);
  std::size_t pairs = 0;
  for (auto _ : state) {
    pairs = 0;
    index::local_mbr_join(algo, left, right,
                          [&pairs](std::uint32_t, std::uint32_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(state.iterations() * n);
}

/// Templated sink plus reused scratch (the systems' task-loop configuration:
/// trees and buffers stay warm across calls).
void BM_LocalMbrJoinScratch(benchmark::State& state, LocalJoinAlgorithm algo) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [left, right] = make_partition(n, 0.1);
  index::MbrJoinScratch scratch;
  std::size_t pairs = 0;
  for (auto _ : state) {
    pairs = 0;
    index::local_mbr_join(algo, left, right, scratch,
                          [&pairs](std::uint32_t, std::uint32_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(state.iterations() * n);
}

#define SJC_BENCH_ALGO(name, algo)                                          \
  BENCHMARK_CAPTURE(BM_LocalMbrJoinFn, name, algo)->Arg(1000)->Arg(10000);  \
  BENCHMARK_CAPTURE(BM_LocalMbrJoin, name, algo)->Arg(1000)->Arg(10000);    \
  BENCHMARK_CAPTURE(BM_LocalMbrJoinScratch, name, algo)                     \
      ->Arg(1000)->Arg(10000)->Arg(50000)

SJC_BENCH_ALGO(plane_sweep, LocalJoinAlgorithm::kPlaneSweep);
SJC_BENCH_ALGO(sync_rtree_traversal, LocalJoinAlgorithm::kSyncTraversal);
SJC_BENCH_ALGO(indexed_nested_loop_str, LocalJoinAlgorithm::kIndexedNestedLoop);
SJC_BENCH_ALGO(indexed_nested_loop_dynamic, LocalJoinAlgorithm::kIndexedNestedLoopDynamic);
#undef SJC_BENCH_ALGO

// The quadratic baseline only at small sizes.
BENCHMARK_CAPTURE(BM_LocalMbrJoin, nested_loop_baseline, LocalJoinAlgorithm::kNestedLoop)
    ->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Head-to-head measurement + JSON export
// ---------------------------------------------------------------------------
//
// The gbench section above compares the in-tree paths against each other;
// the head-to-head below additionally re-times the PRE-REFACTOR kernels
// (inlined here verbatim as `legacy_*`: copy-and-sort plane sweep, per-call
// tree build, std::function dispatch per pair) against the templated
// scratch-reusing kernels, on a partition whose candidate density matches
// the paper's workloads (several MBR candidates per left feature, like
// points against neighborhood polygons), where per-pair dispatch cost is
// visible.

namespace legacy {

void plane_sweep_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const index::PairSink& sink) {
  if (left.empty() || right.empty()) return;
  std::vector<IndexEntry> ls = left;
  std::vector<IndexEntry> rs = right;
  const auto by_min_x = [](const IndexEntry& a, const IndexEntry& b) {
    return a.env.min_x() < b.env.min_x();
  };
  std::sort(ls.begin(), ls.end(), by_min_x);
  std::sort(rs.begin(), rs.end(), by_min_x);
  std::size_t i = 0;
  std::size_t j = 0;
  const auto scan = [&sink](const IndexEntry& pivot, const std::vector<IndexEntry>& other,
                            std::size_t from, bool pivot_is_left) {
    for (std::size_t k = from; k < other.size(); ++k) {
      if (other[k].env.min_x() > pivot.env.max_x()) break;
      if (pivot.env.min_y() <= other[k].env.max_y() &&
          pivot.env.max_y() >= other[k].env.min_y()) {
        if (pivot_is_left) {
          sink(pivot.id, other[k].id);
        } else {
          sink(other[k].id, pivot.id);
        }
      }
    }
  };
  while (i < ls.size() && j < rs.size()) {
    if (ls[i].env.min_x() <= rs[j].env.min_x()) {
      scan(ls[i], rs, j, /*pivot_is_left=*/true);
      ++i;
    } else {
      scan(rs[j], ls, i, /*pivot_is_left=*/false);
      ++j;
    }
  }
}

/// The seed's StrTree::query traversal, verbatim: branchy AoS envelope
/// tests at every node and entry, callback through std::function. Replayed
/// over the current tree's introspection API so the baseline measures the
/// seed's probe code even though StrTree itself has since gained the
/// branchless SoA path.
void seed_query(const index::StrTree& rt, const geom::Envelope& query,
                const std::function<void(std::uint32_t)>& fn) {
  if (rt.empty() || !rt.bounds().intersects(query)) return;
  std::uint32_t stack[512];
  std::size_t top = 0;
  std::uint32_t root = 0;
  while (&rt.node(root) != &rt.root()) ++root;
  stack[top++] = root;
  while (top > 0) {
    const index::StrTree::Node& node = rt.node(stack[--top]);
    if (!node.env.intersects(query)) continue;
    if (node.leaf) {
      for (std::uint32_t i = 0; i < node.count; ++i) {
        const IndexEntry& e = rt.entry(node.first + i);
        if (e.env.intersects(query)) fn(e.id);
      }
    } else {
      for (std::uint32_t i = 0; i < node.count; ++i) stack[top++] = node.first + i;
    }
  }
}

void indexed_nested_loop_str(const std::vector<IndexEntry>& left,
                             const std::vector<IndexEntry>& right,
                             const index::PairSink& sink) {
  const index::StrTree rt(right);  // fresh tree every call, as before
  for (const auto& le : left) {
    seed_query(rt, le.env, [&](std::uint32_t rid) { sink(le.id, rid); });
  }
}

void indexed_nested_loop_dynamic(const std::vector<IndexEntry>& left,
                                 const std::vector<IndexEntry>& right,
                                 const index::PairSink& sink) {
  index::DynamicRTree rt;
  for (const auto& e : right) rt.insert(e.env, e.id);
  for (const auto& le : left) {
    rt.query(le.env, [&](std::uint32_t rid) { sink(le.id, rid); });
  }
}

void sync_traversal(const std::vector<IndexEntry>& left,
                    const std::vector<IndexEntry>& right, const index::PairSink& sink) {
  const index::StrTree lt(left);
  const index::StrTree rt(right);
  index::sync_traversal_join(lt, rt, sink);
}

}  // namespace legacy

/// Median-of-repetitions ns/call for `fn`, self-scaling the iteration count
/// so each repetition runs at least ~20 ms.
template <typename Fn>
double time_ns_per_call(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up (and scratch warm-up)
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
                .count());
    if (ns >= 20e6) return ns / static_cast<double>(iters);
    iters *= 4;
  }
}

/// A paper-shaped partition pair: `n` small left boxes (points/short
/// segments) against n/10 neighborhood-sized right boxes, so each left
/// feature has a few MBR candidates — the density regime of the paper's
/// point-in-polygon and polyline-intersection joins.
std::pair<std::vector<IndexEntry>, std::vector<IndexEntry>> make_dense_partition(
    std::size_t n) {
  Rng rng(1234);
  std::vector<IndexEntry> left;
  std::vector<IndexEntry> right;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double x = rng.bernoulli(0.6) ? rng.normal(300, 60) : rng.uniform(0, 1000);
    const double y = rng.bernoulli(0.6) ? rng.normal(300, 60) : rng.uniform(0, 1000);
    left.push_back({geom::Envelope(x, y, x + rng.uniform(0, 3), y + rng.uniform(0, 3)),
                    i});
  }
  const auto m = static_cast<std::uint32_t>(n / 10);
  for (std::uint32_t i = 0; i < m; ++i) {
    const double x = rng.uniform(0, 950);
    const double y = rng.uniform(0, 950);
    right.push_back(
        {geom::Envelope(x, y, x + rng.uniform(20, 60), y + rng.uniform(20, 60)), i});
  }
  return {std::move(left), std::move(right)};
}

void emit_json(std::size_t n) {
  const auto [left, right] = make_dense_partition(n);
  struct Algo {
    const char* key;
    LocalJoinAlgorithm algo;
    void (*legacy)(const std::vector<IndexEntry>&, const std::vector<IndexEntry>&,
                   const index::PairSink&);
  };
  const Algo algos[] = {
      {"plane_sweep", LocalJoinAlgorithm::kPlaneSweep, legacy::plane_sweep_join},
      {"sync_rtree_traversal", LocalJoinAlgorithm::kSyncTraversal,
       legacy::sync_traversal},
      {"indexed_nested_loop_str", LocalJoinAlgorithm::kIndexedNestedLoop,
       legacy::indexed_nested_loop_str},
      {"indexed_nested_loop_dynamic", LocalJoinAlgorithm::kIndexedNestedLoopDynamic,
       legacy::indexed_nested_loop_dynamic},
  };

  std::size_t pair_count = 0;

  JsonWriter json;
  json.begin_object();
  json.field("bench", "localjoin");
  json.field("n_left", static_cast<std::uint64_t>(n));
  json.field("n_right", static_cast<std::uint64_t>(right.size()));
  json.begin_array("kernels");
  for (const auto& [key, algo, legacy_fn] : algos) {
    std::size_t pairs = 0;
    const index::PairSink sink = [&pairs](std::uint32_t, std::uint32_t) { ++pairs; };
    const double legacy_ns = time_ns_per_call([&] {
      pairs = 0;
      legacy_fn(left, right, sink);
      benchmark::DoNotOptimize(pairs);
    });
    pair_count = pairs;
    index::MbrJoinScratch scratch;
    const double scratch_ns = time_ns_per_call([&] {
      pairs = 0;
      index::local_mbr_join(algo, left, right, scratch,
                            [&pairs](std::uint32_t, std::uint32_t) { ++pairs; });
      benchmark::DoNotOptimize(pairs);
    });
    if (pairs != pair_count) {
      std::fprintf(stderr, "pair-count mismatch for %s: legacy %zu vs new %zu\n", key,
                   pair_count, pairs);
      std::exit(1);
    }
    json.begin_element();
    json.field("algorithm", key);
    json.field("pairs", static_cast<std::uint64_t>(pairs));
    json.field("legacy_ns", legacy_ns);
    json.field("templated_scratch_ns", scratch_ns);
    json.field("speedup", legacy_ns / scratch_ns);
    json.end_object();
    std::printf(
        "head-to-head %-28s legacy %12.0f ns  templated+scratch %12.0f ns  speedup %.2fx  (pairs %zu)\n",
        key, legacy_ns, scratch_ns, legacy_ns / scratch_ns, pairs);
  }
  json.end_array();
  json.field("peak_rss_bytes", peak_rss_bytes());
  json.end_object();
  const std::string path = write_bench_json("localjoin", json.str());
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json(/*n=*/10000);
  return 0;
}
