// Ablation of the serial in-partition (local) join algorithms the systems
// choose between (Section II.C): SpatialHadoop's plane sweep and
// synchronized R-tree traversal, SpatialSpark's STR-indexed nested loop,
// and HadoopGIS's insert-built R-tree probe. Measures the MBR filter phase
// on workload shapes matching the paper's partitions.
#include <benchmark/benchmark.h>

#include "index/mbr_join.hpp"
#include "util/rng.hpp"

namespace {

using namespace sjc;
using index::IndexEntry;
using index::LocalJoinAlgorithm;

// Partition-shaped workloads: `n` left boxes, n/10 right boxes, mild skew.
std::pair<std::vector<IndexEntry>, std::vector<IndexEntry>> make_partition(
    std::size_t n, double right_fraction) {
  Rng rng(42);
  std::vector<IndexEntry> left;
  std::vector<IndexEntry> right;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double x = rng.bernoulli(0.6) ? rng.normal(300, 60) : rng.uniform(0, 1000);
    const double y = rng.bernoulli(0.6) ? rng.normal(300, 60) : rng.uniform(0, 1000);
    left.push_back({geom::Envelope(x, y, x + rng.uniform(0, 3), y + rng.uniform(0, 3)),
                    i});
  }
  const auto m = static_cast<std::uint32_t>(static_cast<double>(n) * right_fraction);
  for (std::uint32_t i = 0; i < m; ++i) {
    const double x = rng.uniform(0, 990);
    const double y = rng.uniform(0, 990);
    right.push_back({geom::Envelope(x, y, x + rng.uniform(2, 10), y + rng.uniform(2, 10)),
                     i});
  }
  return {std::move(left), std::move(right)};
}

void BM_LocalMbrJoin(benchmark::State& state, LocalJoinAlgorithm algo) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [left, right] = make_partition(n, 0.1);
  std::size_t pairs = 0;
  for (auto _ : state) {
    pairs = 0;
    index::local_mbr_join(algo, left, right,
                          [&pairs](std::uint32_t, std::uint32_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK_CAPTURE(BM_LocalMbrJoin, plane_sweep, LocalJoinAlgorithm::kPlaneSweep)
    ->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK_CAPTURE(BM_LocalMbrJoin, sync_rtree_traversal, LocalJoinAlgorithm::kSyncTraversal)
    ->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK_CAPTURE(BM_LocalMbrJoin, indexed_nested_loop_str,
                  LocalJoinAlgorithm::kIndexedNestedLoop)
    ->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK_CAPTURE(BM_LocalMbrJoin, indexed_nested_loop_dynamic,
                  LocalJoinAlgorithm::kIndexedNestedLoopDynamic)
    ->Arg(1000)->Arg(10000)->Arg(50000);
// The quadratic baseline only at small sizes.
BENCHMARK_CAPTURE(BM_LocalMbrJoin, nested_loop_baseline, LocalJoinAlgorithm::kNestedLoop)
    ->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
