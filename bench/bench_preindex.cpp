// Index-reuse ablation (§II.B): "SpatialHadoop can run faster when
// re-partitioning can be skipped." SpatialHadoop persists its partition
// blocks, so a second join over the same inputs starts at getSplits;
// HadoopGIS's preprocessing partition ids are invisible to its streaming
// join, so every join pays the full pipeline again (the design flaw the
// paper calls "wasteful"). This bench runs one cold join and three warm
// joins per system.
#include <cstdio>

#include "core/experiments.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale(5e-4);
  workload::WorkloadConfig wc;
  wc.scale = scale;

  const auto taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / scale;

  std::printf(
      "== Index reuse: cold join vs repeated joins on the same inputs ==\n"
      "taxi1m x nycb, WS, scale %g; 'warm' = indexes already on the DFS.\n\n",
      scale);

  TablePrinter table({"system", "cold join s", "warm join s", "4-join total s",
                      "reuse speedup"});

  // SpatialHadoop: persistent indexes.
  {
    const auto cold = systems::run_spatial_hadoop(taxi, nycb, query, exec);
    const auto ia = systems::spatial_hadoop_build_index(taxi, query, exec);
    const auto ib = systems::spatial_hadoop_build_index(nycb, query, exec);
    const auto warm = systems::run_spatial_hadoop_indexed(ia, ib, query, exec);
    const double four_joins = cold.total_seconds + 3.0 * warm.total_seconds;
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  4.0 * cold.total_seconds / four_joins);
    table.add_row({"SpatialHadoop-sim", format_seconds(cold.total_seconds),
                   format_seconds(warm.total_seconds), format_seconds(four_joins),
                   speedup});
  }

  // HadoopGIS: no reusable index — every join repeats everything.
  {
    const auto cold = systems::run_hadoop_gis(taxi, nycb, query, exec);
    const std::string cold_s =
        cold.success ? format_seconds(cold.total_seconds) : "-";
    const std::string total_s =
        cold.success ? format_seconds(4.0 * cold.total_seconds) : "-";
    table.add_row({"HadoopGIS-sim", cold_s, cold_s + " (no reuse)", total_s, "1.0x"});
  }

  table.print();
  std::printf(
      "\nSpatialSpark sits in between: its on-demand partitioning has no index\n"
      "to persist, but also no re-partitioning jobs to repeat — each join pays\n"
      "the same in-memory pipeline (Table 2/3 totals).\n");
  return 0;
}
