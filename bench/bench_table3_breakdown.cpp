// Reproduces Table 3: breakdown runtimes of the sample-dataset experiments
// under the WS and EC2-10 configurations. Columns follow the paper:
//   IA  — indexing the left dataset      IB — indexing the right dataset
//   DJ  — distributed join               TOT — IA + IB + DJ
// SpatialSpark reports TOT only (the paper could not attribute its stages
// either); HadoopGIS rows are "-" where it failed.
// Pass --trace=PREFIX to also record per-task timelines: each run writes a
// Chrome trace-event file PREFIX_<experiment>_<system>_<cluster>.trace.json
// (open in Perfetto or chrome://tracing) and prints its per-phase skew
// summary. Tracing never changes the reported numbers (see DESIGN.md §5e).
#include <cstdio>
#include <cstring>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "trace/chrome_trace.hpp"
#include "util/bench_io.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

std::string slug(std::string text) {
  for (auto& ch : text) {
    const bool keep = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '-' || ch == '_';
    if (!keep) ch = '-';
  }
  return text;
}

struct PaperRow {
  const char* ia;
  const char* ib;
  const char* dj;
  const char* tot;
};

PaperRow paper_row(const std::string& exp, sjc::core::SystemKind system,
                   const std::string& cluster) {
  using sjc::core::SystemKind;
  const bool ws = cluster == "WS";
  if (exp == "taxi1m-nycb") {
    switch (system) {
      case SystemKind::kHadoopGisSim:
        return ws ? PaperRow{"206", "54", "3,273", "3,533"} : PaperRow{"-", "-", "-", "-"};
      case SystemKind::kSpatialHadoopSim:
        return ws ? PaperRow{"227", "52", "230", "482"}
                  : PaperRow{"647", "187", "183", "1,017"};
      case SystemKind::kSpatialSparkSim:
        return ws ? PaperRow{"", "", "", "216"} : PaperRow{"", "", "", "67"};
    }
  } else {
    switch (system) {
      case SystemKind::kHadoopGisSim:
        return ws ? PaperRow{"1,550", "488", "1,249", "3,287"}
                  : PaperRow{"-", "-", "-", "-"};
      case SystemKind::kSpatialHadoopSim:
        return ws ? PaperRow{"1,013", "307", "220", "1,540"}
                  : PaperRow{"756", "596", "106", "1,458"};
      case SystemKind::kSpatialSparkSim:
        return ws ? PaperRow{"", "", "", "765"} : PaperRow{"", "", "", "48"};
    }
  }
  return {"?", "?", "?", "?"};
}

std::string fmt(double seconds, bool success) {
  if (!success) return "-";
  if (std::isnan(seconds)) return "";
  return sjc::format_seconds(seconds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sjc;
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_prefix = argv[i] + 8;
  }
  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  std::printf(
      "== Table 3: breakdown runtimes, sample datasets (sim seconds; scale %g) ==\n"
      "   cells show: measured | paper\n\n",
      scale);

  const std::vector<cluster::ClusterSpec> clusters = {cluster::ClusterSpec::workstation(),
                                                      cluster::ClusterSpec::ec2(10)};
  TablePrinter table({"experiment", "config", "system", "IA", "IB", "DJ", "TOT"});
  CsvWriter csv({"experiment", "cluster", "system", "ia", "ib", "dj", "tot", "success"});

  for (const auto& def : core::sample_experiments()) {
    const auto left = workload::generate(def.left, wc);
    const auto right = workload::generate(def.right, wc);
    for (const auto& c : clusters) {
      for (const auto system :
           {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
            core::SystemKind::kSpatialSparkSim}) {
        core::JoinQueryConfig query;
        query.predicate = def.predicate;
        core::ExecutionConfig exec;
        exec.cluster = c;
        exec.data_scale = 1.0 / scale;
        exec.trace = !trace_prefix.empty();
        const auto report = core::run_spatial_join(system, left, right, query, exec);
        if (exec.trace && !report.trace.empty()) {
          const std::string path = trace_prefix + "_" + slug(def.id) + "_" +
                                   slug(core::system_kind_name(system)) + "_" +
                                   slug(c.name) + ".trace.json";
          trace::write_chrome_trace_file(path, report.trace);
          std::printf("trace written to %s\n%s", path.c_str(),
                      trace::format_skew_table(report.trace, report.counters.snapshot()).c_str());
        }
        const PaperRow paper = paper_row(def.id, system, c.name);
        table.add_row({def.id, c.name, core::system_kind_name(system),
                       fmt(report.index_a_seconds, report.success) + " | " + paper.ia,
                       fmt(report.index_b_seconds, report.success) + " | " + paper.ib,
                       fmt(report.join_seconds, report.success) + " | " + paper.dj,
                       fmt(report.total_seconds, report.success) + " | " + paper.tot});
        const auto num = [&](double v) {
          return report.success && !std::isnan(v) ? format_double(v) : std::string();
        };
        csv.add_row({def.id, c.name, core::system_kind_name(system),
                     num(report.index_a_seconds), num(report.index_b_seconds),
                     num(report.join_seconds), num(report.total_seconds),
                     report.success ? "1" : "0"});
      }
    }
    table.add_separator();
  }
  table.print();
  const std::string csv_path = maybe_write_csv("table3_breakdown", csv);
  if (!csv_path.empty()) std::printf("\ncsv written to %s\n", csv_path.c_str());
  return 0;
}
