// Microbenchmark of the two geometry engines — the GEOS-vs-JTS axis the
// paper identifies as a major factor in HadoopGIS's slow refinement
// (Section II.C, citing its ref [6]: "JTS can be several times faster than
// GEOS"). The Simple engine recomputes every predicate naively; the
// Prepared engine binds the anchor once and answers from its acceleration
// structures. The measured ratio is the structural speed gap.
#include <benchmark/benchmark.h>

#include <cmath>

#include "geom/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace sjc;

geom::Geometry census_block(Rng& rng, int vertices) {
  const geom::Coord c{rng.uniform(0, 1000), rng.uniform(0, 1000)};
  geom::Ring ring;
  for (int i = 0; i < vertices; ++i) {
    const double a = i * 2.0 * 3.14159265358979 / vertices;
    const double r = rng.uniform(30.0, 60.0);
    ring.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  ring.push_back(ring.front());
  return geom::Geometry::polygon(std::move(ring));
}

geom::Geometry river(Rng& rng, int vertices) {
  std::vector<geom::Coord> pts;
  geom::Coord cur{rng.uniform(0, 1000), rng.uniform(0, 1000)};
  double heading = rng.uniform(0, 6.28);
  pts.push_back(cur);
  for (int i = 1; i < vertices; ++i) {
    heading += rng.uniform(-0.3, 0.3);
    cur = {cur.x + 8 * std::cos(heading), cur.y + 8 * std::sin(heading)};
    pts.push_back(cur);
  }
  return geom::Geometry::line_string(std::move(pts));
}

// Point-in-polygon refinement: one polygon probed by many points (the
// taxi x nycb access pattern).
void BM_PointInPolygon(benchmark::State& state, geom::EngineKind kind) {
  Rng rng(1);
  const int vertices = static_cast<int>(state.range(0));
  const geom::Geometry poly = census_block(rng, vertices);
  std::vector<geom::Geometry> probes;
  const auto& env = poly.envelope();
  for (int i = 0; i < 512; ++i) {
    probes.push_back(geom::Geometry::point(
        rng.uniform(env.min_x() - 10, env.max_x() + 10),
        rng.uniform(env.min_y() - 10, env.max_y() + 10)));
  }
  const auto& engine = geom::GeometryEngine::get(kind);
  for (auto _ : state) {
    const auto bound = engine.bind(poly);
    int hits = 0;
    for (const auto& p : probes) hits += bound->contains(p) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}

// Polyline-intersection refinement: one river probed by many street
// segments (the edges x linearwater access pattern).
void BM_PolylineIntersect(benchmark::State& state, geom::EngineKind kind) {
  Rng rng(2);
  const int vertices = static_cast<int>(state.range(0));
  const geom::Geometry water = river(rng, vertices);
  std::vector<geom::Geometry> probes;
  const auto& env = water.envelope();
  for (int i = 0; i < 256; ++i) {
    const double x = rng.uniform(env.min_x() - 5, env.max_x() + 5);
    const double y = rng.uniform(env.min_y() - 5, env.max_y() + 5);
    probes.push_back(geom::Geometry::line_string(
        {{x, y}, {x + rng.uniform(-15, 15), y + rng.uniform(-15, 15)},
         {x + rng.uniform(-15, 15), y + rng.uniform(-15, 15)}}));
  }
  const auto& engine = geom::GeometryEngine::get(kind);
  for (auto _ : state) {
    const auto bound = engine.bind(water);
    int hits = 0;
    for (const auto& p : probes) hits += bound->intersects(p) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}

BENCHMARK_CAPTURE(BM_PointInPolygon, simple_geos_analog, geom::EngineKind::kSimple)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_PointInPolygon, prepared_jts_analog, geom::EngineKind::kPrepared)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_PolylineIntersect, simple_geos_analog, geom::EngineKind::kSimple)
    ->Arg(16)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_PolylineIntersect, prepared_jts_analog, geom::EngineKind::kPrepared)
    ->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
