// Chaos sweep driver: hammers both Table-2 experiments on all three systems
// with seeded random fault plans (crashes, stragglers, flaky nodes, junk
// input rows, datanode losses, tight budgets and deadlines) and reports the
// outcome distribution plus the lifecycle accounting — survivors must match
// the fault-free results bit-for-bit, failures must be structured, and the
// commit/quarantine/budget invariants of systems/chaos.hpp must balance.
//
// Usage: bench_chaos [--plans=N] [--seed=S]
//   --plans   plans per (experiment, system) combo (default 20)
//   --seed    sweep seed (default 20260808)
// Invariant violations are appended to chaos_failures.txt (override with
// SJC_CHAOS_ARTIFACT) as cluster::describe(plan) reproducer lines, and the
// driver exits non-zero.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/fault_injector.hpp"
#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "systems/chaos.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace sjc;
  std::uint64_t plans_per_combo = 20;
  std::uint64_t sweep_seed = 20260808;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--plans=", 8) == 0) {
      plans_per_combo = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      sweep_seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }

  const double scale = core::bench_scale(2e-4);
  workload::WorkloadConfig wc;
  wc.scale = scale;
  core::ExecutionConfig exec;
  // Multi-node cluster: node blacklisting and datanode loss need > 1 node.
  exec.cluster = cluster::ClusterSpec::ec2(10);
  exec.data_scale = 1.0 / scale;

  std::printf("== Chaos sweep: %llu random fault plans per combo (seed %llu, scale %g) ==\n\n",
              static_cast<unsigned long long>(plans_per_combo),
              static_cast<unsigned long long>(sweep_seed), scale);

  const char* artifact_env = std::getenv("SJC_CHAOS_ARTIFACT");
  const std::string artifact =
      (artifact_env != nullptr && *artifact_env != '\0') ? artifact_env
                                                         : "chaos_failures.txt";

  Rng rng(sweep_seed);
  TablePrinter table({"experiment", "system", "runs", "ok", "failed", "recovered",
                      "retries", "rejects", "nodes-q", "rows-q", "violations"});
  std::map<std::string, std::uint64_t> failure_codes;
  std::uint64_t total_violations = 0;

  for (const auto& def : core::full_experiments()) {
    const auto left = workload::generate(def.left, wc);
    const auto right = workload::generate(def.right, wc);
    core::JoinQueryConfig query;
    query.predicate = def.predicate;
    const auto truth = systems::run_under_plan(core::SystemKind::kSpatialHadoopSim,
                                               left, right, query, exec,
                                               cluster::FaultPlan{});
    if (!truth.success) {
      std::printf("ground truth failed for %s: %s\n", def.id.c_str(),
                  truth.status.to_string().c_str());
      return 1;
    }

    for (const auto system :
         {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
          core::SystemKind::kSpatialSparkSim}) {
      std::uint64_t ok = 0, failed = 0, recovered = 0, violations = 0;
      std::uint64_t retries = 0, rejects = 0, nodes_q = 0, rows_q = 0;
      for (std::uint64_t k = 0; k < plans_per_combo; ++k) {
        const auto plan = systems::random_fault_plan(rng, exec.cluster.node_count);
        const auto report =
            systems::run_under_plan(system, left, right, query, exec, plan);
        report.success ? ++ok : ++failed;
        if (report.recovered) ++recovered;
        if (!report.success) ++failure_codes[status_code_name(report.status.code())];
        retries += report.counters.get("budget.retries_used");
        rejects += report.metrics.total_commits_rejected();
        nodes_q += report.metrics.total_nodes_quarantined();
        rows_q += report.counters.get("input.quarantined_rows");

        const auto bad = systems::chaos_violations(report, truth, plan);
        if (!bad.empty()) {
          violations += bad.size();
          std::FILE* f = std::fopen(artifact.c_str(), "a");
          if (f != nullptr) {
            std::fprintf(f, "%s / %s / plan %llu\n  %s\n", def.id.c_str(),
                         core::system_kind_name(system),
                         static_cast<unsigned long long>(k),
                         cluster::describe(plan).c_str());
            for (const auto& v : bad) std::fprintf(f, "  violation: %s\n", v.c_str());
            std::fclose(f);
          }
          for (const auto& v : bad) {
            std::printf("VIOLATION %s/%s: %s\n  %s\n", def.id.c_str(),
                        core::system_kind_name(system), v.c_str(),
                        cluster::describe(plan).c_str());
          }
        }
      }
      total_violations += violations;
      table.add_row({def.id, core::system_kind_name(system),
                     std::to_string(plans_per_combo), std::to_string(ok),
                     std::to_string(failed), std::to_string(recovered),
                     std::to_string(retries), std::to_string(rejects),
                     std::to_string(nodes_q), std::to_string(rows_q),
                     std::to_string(violations)});
    }
    table.add_separator();
  }
  table.print();

  std::printf("\nfailure distribution (structured Status codes):\n");
  for (const auto& [code, count] : failure_codes) {
    std::printf("  %-24s %llu\n", code.c_str(),
                static_cast<unsigned long long>(count));
  }
  if (total_violations > 0) {
    std::printf("\n%llu invariant violation(s); reproducer plans appended to %s\n",
                static_cast<unsigned long long>(total_violations), artifact.c_str());
    return 1;
  }
  std::printf("\nall runs upheld the lifecycle contract (bit-identical survivors,\n"
              "structured failures, balanced commit/quarantine/budget accounting).\n");
  return 0;
}
