// The comparison the paper leaves as future work (Section II.B): broadcast-
// based vs partition-based spatial join in SpatialSpark. Broadcast ships
// the whole right side (plus its index) to every node and joins with no
// shuffle; partition-based shuffles both sides by sampled partition ids.
// The crossover is the right side's size: broadcast wins while the right
// side is small, then loses to memory pressure and broadcast volume.
#include <cstdio>

#include "core/experiments.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  const auto taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const auto edges_full = workload::generate(workload::DatasetId::kEdges, wc);

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithinDistance;
  query.within_distance = 100.0;  // taxi pickup to nearby street segments

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::ec2(10);
  exec.data_scale = 1.0 / scale;

  std::printf(
      "== Broadcast-based vs partition-based join (SpatialSpark analog) ==\n"
      "taxi1m x street-edge subsets of growing size, EC2-10, within 100 m.\n"
      "(The paper's future-work comparison, Section II.B.)\n\n");

  TablePrinter table({"right-side records", "partition-join s", "broadcast-join s",
                      "broadcast peak mem", "winner"});

  for (const double fraction : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    const auto edges = fraction < 1.0
                           ? workload::sample_fraction(edges_full, "edges-sub",
                                                       fraction, 99)
                           : edges_full;

    systems::SpatialSparkConfig part_cfg;
    const auto part = systems::run_spatial_spark(taxi, edges, query, exec, part_cfg);

    systems::SpatialSparkConfig bcast_cfg;
    bcast_cfg.broadcast_join = true;
    const auto bcast = systems::run_spatial_spark(taxi, edges, query, exec, bcast_cfg);

    const std::string part_s = part.success ? format_seconds(part.total_seconds) : "-";
    const std::string bcast_s =
        bcast.success ? format_seconds(bcast.total_seconds) : "OOM";
    std::string winner = "-";
    if (part.success && bcast.success) {
      winner = bcast.total_seconds < part.total_seconds ? "broadcast" : "partition";
    } else if (part.success) {
      winner = "partition";
    }
    table.add_row({format_seconds(static_cast<double>(edges.size())), part_s, bcast_s,
                   format_bytes(bcast.peak_memory_bytes), winner});
    if (part.success && bcast.success && part.result_hash != bcast.result_hash) {
      std::printf("WARNING: result mismatch at fraction %g!\n", fraction);
    }
  }
  table.print();
  return 0;
}
