// The comparison the paper leaves as future work (Section II.B): broadcast-
// based vs partition-based spatial join in SpatialSpark. Broadcast ships
// the whole right side (plus its index) to every node and joins with no
// shuffle; partition-based shuffles both sides by sampled partition ids.
// The crossover is the right side's size: broadcast wins while the right
// side is small, then loses to memory pressure and broadcast volume.
//
// On top of the sweep this bench validates the two adaptive-layer pieces
// (src/plan/) against realized behaviour and writes BENCH_plan.json:
//
//  * Cost model — at every sweep point plan::choose_plan predicts a winner
//    before either plan runs; the realized winner (broadcast OOM counts as
//    a partition win, exactly what the infeasibility gate must predict)
//    grades it. --min-plan-accuracy=<frac> turns the accuracy into a CI
//    gate.
//
//  * Skew repartitioning — the Gaussian-hotspot taxi x nycb join on a
//    fixed grid, traced, with hotspot refinement off vs on: the local-join
//    max/median task-time ratio must drop while survivor pairs stay
//    bit-identical. --min-tail-reduction=<frac> gates the relative drop.
//
// The JSON is written before the gates are evaluated, so CI archives the
// sweep even on a failing run.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "plan/cost_model.hpp"
#include "plan/skew_monitor.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "trace/trace.hpp"
#include "util/bench_io.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

struct SweepPoint {
  double fraction = 0.0;
  std::uint64_t right_records = 0;
  double part_seconds = std::nan("");
  double bcast_seconds = std::nan("");
  bool part_ok = false;
  bool bcast_ok = false;
  std::uint64_t bcast_peak_bytes = 0;
  std::string actual;     // "broadcast" / "partitioned" / "-"
  std::string predicted;  // plan_kind_name of the model's choice
  double predicted_broadcast_s = 0.0;
  double predicted_partitioned_s = 0.0;
  bool predicted_feasible = true;
  bool graded = false;  // actual winner determinable
  bool correct = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sjc;
  double min_plan_accuracy = 0.0;  // 0 disables the gate
  double min_tail_reduction = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-plan-accuracy=", 20) == 0) {
      min_plan_accuracy = std::atof(argv[i] + 20);
    } else if (std::strncmp(argv[i], "--min-tail-reduction=", 21) == 0) {
      min_tail_reduction = std::atof(argv[i] + 21);
    }
  }

  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  const auto taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const auto edges_full = workload::generate(workload::DatasetId::kEdges, wc);

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithinDistance;
  query.within_distance = 100.0;  // taxi pickup to nearby street segments

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::ec2(10);
  exec.data_scale = 1.0 / scale;

  std::printf(
      "== Broadcast-based vs partition-based join (SpatialSpark analog) ==\n"
      "taxi1m x street-edge subsets of growing size, EC2-10, within 100 m.\n"
      "(The paper's future-work comparison, Section II.B.)\n\n");

  TablePrinter table({"right-side records", "partition-join s", "broadcast-join s",
                      "broadcast peak mem", "winner", "predicted"});

  std::vector<SweepPoint> sweep;
  for (const double fraction : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    const auto edges = fraction < 1.0
                           ? workload::sample_fraction(edges_full, "edges-sub",
                                                       fraction, 99)
                           : edges_full;
    SweepPoint point;
    point.fraction = fraction;
    point.right_records = edges.size();

    // Predict before running — the model sees only planning-time inputs.
    systems::SpatialSparkConfig part_cfg;
    const plan::PlanDecision decision = plan::choose_plan({
        .left_records = taxi.size(),
        .right_records = edges.size(),
        .left_bytes = taxi.text_bytes(),
        .right_bytes = edges.text_bytes(),
        .record_overhead_bytes = part_cfg.record_overhead_bytes,
        .replication_factor = std::nullopt,
        .filter_selectivity = std::nullopt,
        .cluster = exec.cluster,
        .data_scale = exec.data_scale,
        .resident = false,
    });
    point.predicted = std::string(plan::plan_kind_name(decision.chosen));
    point.predicted_broadcast_s = decision.broadcast_seconds;
    point.predicted_partitioned_s = decision.partitioned_seconds;
    point.predicted_feasible = decision.broadcast_feasible;

    const auto part = systems::run_spatial_spark(taxi, edges, query, exec, part_cfg);

    systems::SpatialSparkConfig bcast_cfg;
    bcast_cfg.broadcast_join = true;
    const auto bcast = systems::run_spatial_spark(taxi, edges, query, exec, bcast_cfg);

    point.part_ok = part.success;
    point.bcast_ok = bcast.success;
    if (part.success) point.part_seconds = part.total_seconds;
    if (bcast.success) point.bcast_seconds = bcast.total_seconds;
    point.bcast_peak_bytes = bcast.peak_memory_bytes;

    point.actual = "-";
    if (part.success && bcast.success) {
      point.actual =
          bcast.total_seconds < part.total_seconds ? "broadcast" : "partitioned";
    } else if (part.success) {
      // Broadcast died (the paper's Spark OOM): the partitioned join is the
      // realized winner and the model must have predicted it via the
      // feasibility gate.
      point.actual = "partitioned";
    }
    point.graded = point.actual != "-";
    point.correct = point.graded && point.actual == point.predicted;

    const std::string part_s = part.success ? format_seconds(part.total_seconds) : "-";
    const std::string bcast_s =
        bcast.success ? format_seconds(bcast.total_seconds) : "OOM";
    table.add_row({format_seconds(static_cast<double>(edges.size())), part_s, bcast_s,
                   format_bytes(bcast.peak_memory_bytes), point.actual,
                   point.predicted + (point.correct ? "" : " (miss)")});
    if (part.success && bcast.success && part.result_hash != bcast.result_hash) {
      std::printf("WARNING: result mismatch at fraction %g!\n", fraction);
    }
    sweep.push_back(point);
  }
  table.print();

  std::size_t graded = 0;
  std::size_t correct = 0;
  for (const auto& point : sweep) {
    graded += point.graded ? 1 : 0;
    correct += point.correct ? 1 : 0;
  }
  const double plan_accuracy =
      graded > 0 ? static_cast<double>(correct) / static_cast<double>(graded)
                 : std::nan("");
  std::printf("\ncost model: %zu/%zu sweep points predicted correctly (%.0f%%)\n",
              correct, graded, 100.0 * plan_accuracy);

  // ---- Skew repartitioning: tail-task study --------------------------------
  // The hotspot workload from the paper's skew discussion: point taxi data
  // with a Gaussian urban core joined on a fixed grid, which (unlike STR)
  // does not balance sample counts and so concentrates load. Traced runs,
  // refinement off vs on; the local-join wide stage carries the tail.
  std::printf(
      "\n== Skew-aware repartitioning: local-join tail tasks (taxi x nycb, "
      "fixed grid) ==\n\n");
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);
  core::JoinQueryConfig skew_query;
  skew_query.predicate = core::JoinPredicate::kWithin;
  skew_query.partitioner = partition::PartitionerKind::kFixedGrid;
  core::ExecutionConfig skew_exec = exec;
  skew_exec.trace = true;

  systems::SpatialSparkConfig off_cfg;
  off_cfg.policy.repartition = false;
  const auto off_run =
      systems::run_spatial_spark(taxi, nycb, skew_query, skew_exec, off_cfg);

  systems::SpatialSparkConfig on_cfg;
  on_cfg.policy.repartition = true;
  const auto on_run =
      systems::run_spatial_spark(taxi, nycb, skew_query, skew_exec, on_cfg);

  const double ratio_off =
      plan::phase_skew_ratio(trace::skew_summary(off_run.trace), "local-join");
  const double ratio_on =
      plan::phase_skew_ratio(trace::skew_summary(on_run.trace), "local-join");
  const double tail_reduction =
      ratio_off > 0.0 ? (ratio_off - ratio_on) / ratio_off : std::nan("");
  const bool pairs_identical = off_run.success && on_run.success &&
                               off_run.result_count == on_run.result_count &&
                               off_run.result_hash == on_run.result_hash;

  TablePrinter skew_table({"variant", "local-join max/p50", "splits",
                           "migrated records", "pairs"});
  skew_table.add_row({"static scheme", format_seconds(ratio_off), "-", "-",
                      std::to_string(off_run.result_count)});
  skew_table.add_row(
      {"skew-refined", format_seconds(ratio_on),
       std::to_string(on_run.counters.get("repartition.splits")),
       std::to_string(on_run.counters.get("repartition.migrated_records")),
       std::to_string(on_run.result_count)});
  skew_table.print();
  std::printf("tail ratio %.2f -> %.2f (%.0f%% reduction), pairs %s\n",
              ratio_off, ratio_on,
              std::isnan(tail_reduction) ? 0.0 : 100.0 * tail_reduction,
              pairs_identical ? "bit-identical" : "MISMATCH");

  // ---- BENCH_plan.json ------------------------------------------------------
  JsonWriter json;
  json.begin_object();
  json.field("scale", scale);
  json.field("cluster", exec.cluster.name);
  json.begin_array("sweep");
  for (const auto& point : sweep) {
    json.begin_element();
    json.field("right_fraction", point.fraction);
    json.field("right_records", point.right_records);
    if (point.part_ok) json.field("partitioned_seconds", point.part_seconds);
    if (point.bcast_ok) json.field("broadcast_seconds", point.bcast_seconds);
    json.field("broadcast_ok", point.bcast_ok);
    json.field("broadcast_peak_bytes", point.bcast_peak_bytes);
    json.field("actual_winner", point.actual);
    json.field("predicted_winner", point.predicted);
    json.field("predicted_broadcast_seconds",
               std::isfinite(point.predicted_broadcast_s)
                   ? point.predicted_broadcast_s
                   : -1.0);
    json.field("predicted_partitioned_seconds", point.predicted_partitioned_s);
    json.field("predicted_broadcast_feasible", point.predicted_feasible);
    json.field("graded", point.graded);
    json.field("correct", point.correct);
    json.end_object();
  }
  json.end_array();
  if (!std::isnan(plan_accuracy)) json.field("plan_accuracy", plan_accuracy);
  json.begin_array("repartition");
  json.begin_element();
  json.field("workload", "taxi1m-x-nycb/fixed-grid");
  json.field("tail_ratio_off", ratio_off);
  json.field("tail_ratio_on", ratio_on);
  if (!std::isnan(tail_reduction)) json.field("tail_reduction", tail_reduction);
  json.field("splits", on_run.counters.get("repartition.splits"));
  json.field("cells", on_run.counters.get("repartition.cells"));
  json.field("migrated_records", on_run.counters.get("repartition.migrated_records"));
  json.field("migrated_bytes", on_run.counters.get("repartition.migrated_bytes"));
  json.field("pairs_identical", pairs_identical);
  json.end_object();
  json.end_array();
  json.field("peak_rss_bytes", peak_rss_bytes());
  json.end_object();
  const std::string path = write_bench_json("plan", json.str());
  std::printf("wrote %s\n", path.c_str());

  if (!pairs_identical) {
    std::fprintf(stderr,
                 "skew repartitioning changed survivor pairs or broke a run — "
                 "failing the bench\n");
    return 1;
  }
  if (min_plan_accuracy > 0.0 &&
      (std::isnan(plan_accuracy) || plan_accuracy < min_plan_accuracy)) {
    std::fprintf(stderr,
                 "plan accuracy %.3f below the --min-plan-accuracy=%.3f gate — "
                 "failing the bench\n",
                 std::isnan(plan_accuracy) ? 0.0 : plan_accuracy,
                 min_plan_accuracy);
    return 1;
  }
  if (min_tail_reduction > 0.0 &&
      (std::isnan(tail_reduction) || tail_reduction < min_tail_reduction)) {
    std::fprintf(stderr,
                 "tail-ratio reduction %.3f below the --min-tail-reduction=%.3f "
                 "gate — failing the bench\n",
                 std::isnan(tail_reduction) ? 0.0 : tail_reduction,
                 min_tail_reduction);
    return 1;
  }
  return 0;
}
