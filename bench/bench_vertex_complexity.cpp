// Vertex-complexity ablation: how refinement cost (and the engine gap)
// scales with geometry density. Simplifies the linearwater polylines at
// increasing Douglas-Peucker tolerances and re-runs the polyline
// intersection join — the operational knob real pipelines use when the
// paper's "computing intensive" refinement dominates.
#include <cstdio>

#include "core/experiments.hpp"
#include "geom/simplify.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale(5e-4);
  workload::WorkloadConfig wc;
  wc.scale = scale;

  const auto edges = workload::generate(workload::DatasetId::kEdges01, wc);
  const auto water = workload::generate(workload::DatasetId::kLinearwater01, wc);

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kIntersects;
  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / scale;

  std::printf(
      "== Vertex complexity: simplified waterways vs join cost (WS, scale %g) ==\n\n",
      scale);

  TablePrinter table({"DP tolerance m", "mean coords", "result pairs", "DJ simple s",
                      "DJ prepared s", "engine gap"});

  for (const double tol : {0.0, 5.0, 20.0, 80.0}) {
    std::vector<geom::Feature> simplified;
    simplified.reserve(water.size());
    for (const auto& f : water.features()) {
      simplified.push_back({f.id, tol > 0.0 ? geom::simplify(f.geometry, tol)
                                            : f.geometry});
    }
    const workload::Dataset water_simplified("linearwater-simplified",
                                             std::move(simplified),
                                             water.attr_pad_bytes());

    double dj[2] = {0, 0};
    std::size_t pairs = 0;
    for (const auto engine : {geom::EngineKind::kSimple, geom::EngineKind::kPrepared}) {
      systems::SpatialHadoopConfig cfg;
      cfg.engine = engine;
      const auto report =
          systems::run_spatial_hadoop(edges, water_simplified, query, exec, cfg);
      dj[engine == geom::EngineKind::kPrepared ? 1 : 0] = report.join_seconds;
      pairs = report.result_count;
    }
    char tol_s[16];
    std::snprintf(tol_s, sizeof(tol_s), "%g", tol);
    char coords_s[16];
    std::snprintf(coords_s, sizeof(coords_s), "%.1f", water_simplified.mean_coords());
    char gap_s[16];
    std::snprintf(gap_s, sizeof(gap_s), "%.2fx", dj[0] / dj[1]);
    table.add_row({tol_s, coords_s, format_seconds(static_cast<double>(pairs)),
                   format_seconds(dj[0]), format_seconds(dj[1]), gap_s});
  }
  table.print();
  std::printf(
      "\nsimplification trades result fidelity (pair count drifts as geometry\n"
      "coarsens) for join cost: DJ falls as vertices are removed. The engine\n"
      "gap column stays ~1x at system level because framework costs dominate\n"
      "DJ here (see bench_engine_swap); the pure-geometry gap is in\n"
      "bench_geom_engines.\n");
  return 0;
}
