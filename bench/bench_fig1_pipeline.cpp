// Reproduces Fig. 1: the generalized three-stage framework, rendered as each
// system's actual executed phase list (stage DAG) with per-phase simulated
// time and I/O volumes. This makes the paper's architectural comparison —
// how often each design touches the DFS, where it shuffles, where the
// master serializes — directly observable.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/spatial_join.hpp"
#include "util/strings.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace sjc;
  const double scale = core::bench_scale(2e-4);
  workload::WorkloadConfig wc;
  wc.scale = scale;

  const auto taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const auto nycb = workload::generate(workload::DatasetId::kNycb, wc);

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;
  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / scale;

  std::printf(
      "== Fig. 1: executed pipeline per system (taxi1m x nycb, WS, scale %g) ==\n"
      "Each line is one executed phase: <stage>/<step>  sim-seconds  volumes.\n"
      "Note how HadoopGIS runs 6 preprocessing jobs per dataset and re-reads\n"
      "everything in the join; SpatialHadoop packs preprocessing into 2 jobs\n"
      "and joins map-only; SpatialSpark touches the DFS exactly once per input\n"
      "and stays in memory afterwards.\n\n",
      scale);

  for (const auto system :
       {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
        core::SystemKind::kSpatialSparkSim}) {
    const auto report = core::run_spatial_join(system, taxi, nycb, query, exec);
    std::printf("---- %s (%s) ----\n", core::system_kind_name(system),
                report.success ? "success" : report.failure_reason.c_str());
    std::fputs(report.metrics.to_string().c_str(), stdout);

    // DFS interaction summary: the crux of Fig. 1's comparison.
    std::printf("DFS/disk bytes read: %s   written: %s   shuffled: %s\n\n",
                format_bytes(report.metrics.total_bytes_read()).c_str(),
                format_bytes(report.metrics.total_bytes_written()).c_str(),
                format_bytes(report.metrics.total_bytes_shuffled()).c_str());
  }
  return 0;
}
