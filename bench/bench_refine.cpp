// Head-to-head of the Prepared engine's two refinement paths on the Table 2
// experiments: the per-pair BoundPredicate path (bind once per right
// geometry, scalar predicate per candidate — the pre-BatchRefiner
// configuration, kept intact as the baseline) vs the batched SoA path
// (geom::BatchRefiner: packed linework, inner/outer approximations, batched
// point-in-polygon over whole candidate groups).
//
// The bench is self-verifying: before timing anything it runs
// core::run_local_join in both modes on both experiments and requires
// bit-identical pair lists (same pairs, same order) plus consistent
// refinement accounting (exact_tests + early_accepts + early_rejects ==
// refine.candidates in both modes, identical candidate counts). Any
// mismatch exits 1 — the timing numbers are only meaningful for equivalent
// code paths.
//
// Timing isolates the refinement stage: the MBR filter, candidate grouping
// and per-right bind/build are done once outside the timed region (their
// one-off costs are reported separately as bind_ns / refiner_build_ns), and
// the timed loops replay only the per-candidate exact tests. Results go to
// BENCH_refine.json (see util/bench_io.hpp). Pass --min-speedup=X to make
// the bench exit 1 when any experiment's refinement speedup falls below X
// (the CI non-regression guard).
//
// Set SJC_SCALE to change the workload scale (default 1e-3).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/local_join.hpp"
#include "geom/batch_refine.hpp"
#include "util/bench_io.hpp"
#include "workload/generators.hpp"

namespace {

using namespace sjc;

/// Defeats dead-code elimination of the timed loops (sjc_bench binaries do
/// not link google-benchmark, so no DoNotOptimize here).
volatile std::uint64_t g_sink = 0;

/// Median-free ns/call: self-scales the iteration count so each measurement
/// runs at least ~20 ms (same scheme as bench_localjoin's head-to-head).
template <typename Fn>
double time_ns_per_call(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
                .count());
    if (ns >= 20e6) return ns / static_cast<double>(iters);
    iters *= 4;
  }
}

// ---------------------------------------------------------------------------
// Verification pass: both run_local_join modes must agree bit-for-bit.
// ---------------------------------------------------------------------------

struct ModeResult {
  std::vector<core::JoinPair> pairs;
  std::map<std::string, std::uint64_t> counters;
};

ModeResult run_mode(std::span<const geom::Feature> left,
                    std::span<const geom::Feature> right,
                    core::JoinPredicate predicate, bool batch_refine) {
  cluster::Counters counters;
  core::LocalJoinSpec spec;
  spec.algorithm = index::LocalJoinAlgorithm::kIndexedNestedLoop;
  spec.engine = &geom::GeometryEngine::prepared();
  spec.predicate = predicate;
  spec.batch_refine = batch_refine;
  spec.refine_counters = &counters;
  core::LocalJoinScratch scratch;
  ModeResult result;
  core::run_local_join(left, right, spec, core::AcceptAllPairs{}, scratch,
                       result.pairs);
  result.counters = counters.snapshot();
  return result;
}

std::uint64_t counter(const ModeResult& r, const char* name) {
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

/// Runs both modes and dies unless pair lists are identical (order
/// included) and the counter accounting is consistent. Returns the verified
/// counter splits for the JSON report.
struct VerifyResult {
  std::uint64_t candidates = 0;
  std::uint64_t hits = 0;
  std::uint64_t exact_tests = 0;
  std::uint64_t early_accepts = 0;
  std::uint64_t early_rejects = 0;
};

VerifyResult verify_experiment(const std::string& id,
                               std::span<const geom::Feature> left,
                               std::span<const geom::Feature> right,
                               core::JoinPredicate predicate) {
  const ModeResult per_pair = run_mode(left, right, predicate, false);
  const ModeResult batched = run_mode(left, right, predicate, true);

  if (per_pair.pairs != batched.pairs) {
    std::fprintf(stderr,
                 "%s: result mismatch: per-pair %zu pairs vs batched %zu pairs\n",
                 id.c_str(), per_pair.pairs.size(), batched.pairs.size());
    // Report set-level symmetric difference to aid debugging.
    auto a = per_pair.pairs;
    auto b = batched.pairs;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<core::JoinPair> only_a;
    std::vector<core::JoinPair> only_b;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(only_a));
    std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                        std::back_inserter(only_b));
    for (std::size_t i = 0; i < only_a.size() && i < 10; ++i) {
      std::fprintf(stderr, "  only per-pair: (%llu, %llu)\n",
                   static_cast<unsigned long long>(only_a[i].left_id),
                   static_cast<unsigned long long>(only_a[i].right_id));
    }
    for (std::size_t i = 0; i < only_b.size() && i < 10; ++i) {
      std::fprintf(stderr, "  only batched:  (%llu, %llu)\n",
                   static_cast<unsigned long long>(only_b[i].left_id),
                   static_cast<unsigned long long>(only_b[i].right_id));
    }
    if (only_a.empty() && only_b.empty()) {
      std::fprintf(stderr, "  (same pair sets, different order)\n");
    }
    std::exit(1);
  }

  const std::uint64_t cand_pp = counter(per_pair, "refine.candidates");
  const std::uint64_t cand_b = counter(batched, "refine.candidates");
  const std::uint64_t exact_pp = counter(per_pair, "refine.exact_tests");
  const std::uint64_t exact_b = counter(batched, "refine.exact_tests");
  const std::uint64_t acc_b = counter(batched, "refine.early_accepts");
  const std::uint64_t rej_b = counter(batched, "refine.early_rejects");
  bool ok = true;
  if (cand_pp != cand_b) {
    std::fprintf(stderr, "%s: candidate-count mismatch: per-pair %llu vs batched %llu\n",
                 id.c_str(), static_cast<unsigned long long>(cand_pp),
                 static_cast<unsigned long long>(cand_b));
    ok = false;
  }
  if (exact_pp != cand_pp || counter(per_pair, "refine.early_accepts") != 0 ||
      counter(per_pair, "refine.early_rejects") != 0) {
    std::fprintf(stderr, "%s: per-pair accounting broken: every candidate must be an exact test\n",
                 id.c_str());
    ok = false;
  }
  if (exact_b + acc_b + rej_b != cand_b) {
    std::fprintf(stderr,
                 "%s: batched accounting broken: %llu exact + %llu accepts + %llu rejects != %llu candidates\n",
                 id.c_str(), static_cast<unsigned long long>(exact_b),
                 static_cast<unsigned long long>(acc_b),
                 static_cast<unsigned long long>(rej_b),
                 static_cast<unsigned long long>(cand_b));
    ok = false;
  }
  if (!ok) std::exit(1);

  std::printf(
      "verify %-18s OK: %zu pairs bit-identical; %llu candidates -> exact %llu, "
      "early-accept %llu, early-reject %llu\n",
      id.c_str(), per_pair.pairs.size(), static_cast<unsigned long long>(cand_b),
      static_cast<unsigned long long>(exact_b), static_cast<unsigned long long>(acc_b),
      static_cast<unsigned long long>(rej_b));
  return {cand_b, per_pair.pairs.size(), exact_b, acc_b, rej_b};
}

// ---------------------------------------------------------------------------
// Timing pass: isolated refinement loops over pre-grouped candidates.
// ---------------------------------------------------------------------------

/// Candidate groups of one experiment: for each right feature with at least
/// one MBR candidate, the left feature indices probing it.
struct GroupedCandidates {
  std::vector<std::uint32_t> right_ids;     // per group: right feature index
  std::vector<std::uint32_t> group_begin;   // CSR offsets into left_ids
  std::vector<std::uint32_t> left_ids;
  std::size_t candidates() const { return left_ids.size(); }
};

GroupedCandidates build_groups(std::span<const geom::Feature> left,
                               std::span<const geom::Feature> right) {
  std::vector<index::IndexEntry> le;
  std::vector<index::IndexEntry> re;
  le.reserve(left.size());
  re.reserve(right.size());
  for (std::uint32_t i = 0; i < left.size(); ++i) {
    le.push_back({left[i].geometry.envelope(), i});
  }
  for (std::uint32_t i = 0; i < right.size(); ++i) {
    re.push_back({right[i].geometry.envelope(), i});
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cands;  // (right, left)
  index::local_mbr_join(index::LocalJoinAlgorithm::kIndexedNestedLoop, le, re,
                        [&cands](std::uint32_t l, std::uint32_t r) {
                          cands.emplace_back(r, l);
                        });
  std::stable_sort(cands.begin(), cands.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  GroupedCandidates g;
  g.left_ids.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (i == 0 || cands[i].first != cands[i - 1].first) {
      g.right_ids.push_back(cands[i].first);
      g.group_begin.push_back(static_cast<std::uint32_t>(i));
    }
    g.left_ids.push_back(cands[i].second);
  }
  g.group_begin.push_back(static_cast<std::uint32_t>(cands.size()));
  return g;
}

struct TimedExperiment {
  std::uint64_t candidates = 0;
  std::uint64_t hits = 0;
  double bind_ns = 0;           // one-off: engine.bind of every probed right
  double refiner_build_ns = 0;  // one-off: BatchRefiner build of the same
  double per_pair_ns = 0;       // refinement stage, per-pair BoundPredicate
  double batched_ns = 0;        // refinement stage, batched SoA
  double speedup = 0;
};

TimedExperiment time_experiment(const std::string& id,
                                std::span<const geom::Feature> left,
                                std::span<const geom::Feature> right,
                                core::JoinPredicate predicate) {
  using clock = std::chrono::steady_clock;
  const GroupedCandidates g = build_groups(left, right);
  TimedExperiment timed;
  timed.candidates = g.candidates();

  const geom::GeometryEngine& engine = geom::GeometryEngine::prepared();
  std::vector<std::unique_ptr<geom::BoundPredicate>> bounds;
  bounds.reserve(g.right_ids.size());
  const auto bind_t0 = clock::now();
  for (const std::uint32_t r : g.right_ids) {
    bounds.push_back(engine.bind(right[r].geometry));
  }
  timed.bind_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - bind_t0)
          .count());

  std::vector<std::unique_ptr<geom::BatchRefiner>> refiners;
  refiners.reserve(g.right_ids.size());
  const auto build_t0 = clock::now();
  for (const std::uint32_t r : g.right_ids) {
    refiners.push_back(std::make_unique<geom::BatchRefiner>(right[r].geometry));
  }
  timed.refiner_build_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - build_t0)
          .count());

  // Baseline: the per-pair path of run_local_join with bind() hoisted out —
  // exactly the work the refinement stage does per candidate.
  std::uint64_t per_pair_hits = 0;
  timed.per_pair_ns = time_ns_per_call([&] {
    std::uint64_t hits = 0;
    for (std::size_t gi = 0; gi < g.right_ids.size(); ++gi) {
      const geom::BoundPredicate& bound = *bounds[gi];
      for (std::uint32_t c = g.group_begin[gi]; c < g.group_begin[gi + 1]; ++c) {
        const geom::Geometry& probe = left[g.left_ids[c]].geometry;
        bool hit = false;
        switch (predicate) {
          case core::JoinPredicate::kIntersects:
            hit = bound.intersects(probe);
            break;
          case core::JoinPredicate::kWithin:
            hit = bound.contains(probe);
            break;
          case core::JoinPredicate::kWithinDistance:
            hit = bound.within_distance(probe, 0.0);
            break;
        }
        hits += hit ? 1 : 0;
      }
    }
    per_pair_hits = hits;
    g_sink = hits;
  });

  // Batched: the group loop of run_local_join's batch path (gather point
  // probes, one covers_points pass, scalar approximation-gated calls for
  // the rest).
  std::uint64_t batched_hits = 0;
  std::vector<geom::Coord> pts;
  std::vector<std::uint8_t> covered;
  timed.batched_ns = time_ns_per_call([&] {
    geom::RefineStats stats;
    std::uint64_t hits = 0;
    for (std::size_t gi = 0; gi < g.right_ids.size(); ++gi) {
      const geom::BatchRefiner& rf = *refiners[gi];
      const bool point_batch = rf.has_areal() &&
                               (predicate == core::JoinPredicate::kIntersects ||
                                predicate == core::JoinPredicate::kWithin);
      const std::uint32_t begin = g.group_begin[gi];
      const std::uint32_t end = g.group_begin[gi + 1];
      pts.clear();
      if (point_batch) {
        for (std::uint32_t c = begin; c < end; ++c) {
          const geom::Geometry& probe = left[g.left_ids[c]].geometry;
          if (probe.type() == geom::GeomType::kPoint) pts.push_back(probe.as_point());
        }
      }
      if (!pts.empty()) rf.covers_points(pts, covered, stats);
      std::size_t cursor = 0;
      for (std::uint32_t c = begin; c < end; ++c) {
        const geom::Geometry& probe = left[g.left_ids[c]].geometry;
        bool hit = false;
        if (point_batch && probe.type() == geom::GeomType::kPoint) {
          hit = covered[cursor++] != 0;
        } else {
          switch (predicate) {
            case core::JoinPredicate::kIntersects:
              hit = rf.intersects(probe, stats);
              break;
            case core::JoinPredicate::kWithin:
              hit = rf.contains(probe, stats);
              break;
            case core::JoinPredicate::kWithinDistance:
              hit = rf.within_distance(probe, 0.0, stats);
              break;
          }
        }
        hits += hit ? 1 : 0;
      }
    }
    batched_hits = hits;
    g_sink = hits;
  });

  if (per_pair_hits != batched_hits) {
    std::fprintf(stderr, "%s: timed-loop hit mismatch: per-pair %llu vs batched %llu\n",
                 id.c_str(), static_cast<unsigned long long>(per_pair_hits),
                 static_cast<unsigned long long>(batched_hits));
    std::exit(1);
  }
  timed.hits = batched_hits;
  timed.speedup = timed.per_pair_ns / timed.batched_ns;
  return timed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sjc;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    }
  }
  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  std::printf("== Refinement head-to-head: per-pair prepared vs batched SoA (scale %g) ==\n\n",
              scale);

  JsonWriter json;
  json.begin_object();
  json.field("bench", "refine");
  json.field("scale", scale);
  json.begin_array("experiments");

  double worst_speedup = 1e300;
  for (const auto& def : core::full_experiments()) {
    const auto left = workload::generate(def.left, wc);
    const auto right = workload::generate(def.right, wc);
    const std::span<const geom::Feature> lf = left.features();
    const std::span<const geom::Feature> rf = right.features();

    const VerifyResult v = verify_experiment(def.id, lf, rf, def.predicate);
    const TimedExperiment t = time_experiment(def.id, lf, rf, def.predicate);
    worst_speedup = std::min(worst_speedup, t.speedup);

    std::printf(
        "timing %-18s per-pair %11.0f ns  batched %11.0f ns  speedup %.2fx  "
        "(bind %0.1f ms, refiner build %0.1f ms, %llu candidates, %llu hits)\n\n",
        def.id.c_str(), t.per_pair_ns, t.batched_ns, t.speedup, t.bind_ns / 1e6,
        t.refiner_build_ns / 1e6, static_cast<unsigned long long>(t.candidates),
        static_cast<unsigned long long>(t.hits));

    json.begin_element();
    json.field("experiment", def.id);
    json.field("predicate", core::join_predicate_name(def.predicate));
    json.field("n_left", static_cast<std::uint64_t>(lf.size()));
    json.field("n_right", static_cast<std::uint64_t>(rf.size()));
    json.field("candidates", v.candidates);
    json.field("hits", v.hits);
    json.field("exact_tests", v.exact_tests);
    json.field("early_accepts", v.early_accepts);
    json.field("early_rejects", v.early_rejects);
    json.field("bind_ns", t.bind_ns);
    json.field("refiner_build_ns", t.refiner_build_ns);
    json.field("per_pair_ns", t.per_pair_ns);
    json.field("batched_ns", t.batched_ns);
    json.field("speedup", t.speedup);
    json.end_object();
  }
  json.end_array();
  json.field("min_speedup_required", min_speedup);
  json.field("peak_rss_bytes", peak_rss_bytes());
  json.end_object();
  const std::string path = write_bench_json("refine", json.str());
  std::printf("json written to %s\n", path.c_str());

  if (min_speedup > 0.0 && worst_speedup < min_speedup) {
    std::fprintf(stderr, "refinement speedup regression: worst %.2fx < required %.2fx\n",
                 worst_speedup, min_speedup);
    return 1;
  }
  return 0;
}
