// Head-to-head of the Prepared engine's two refinement paths on the Table 2
// experiments: the per-pair BoundPredicate path (bind once per right
// geometry, scalar predicate per candidate — the pre-BatchRefiner
// configuration, kept intact as the baseline) vs the batched SoA path
// (geom::BatchRefiner: packed linework, inner/outer approximations, batched
// point-in-polygon over whole candidate groups).
//
// The bench is self-verifying: before timing anything it runs
// core::run_local_join in both modes on both experiments and requires
// bit-identical pair lists (same pairs, same order) plus consistent
// refinement accounting (exact_tests + early_accepts + early_rejects ==
// refine.candidates in both modes, identical candidate counts). Any
// mismatch exits 1 — the timing numbers are only meaningful for equivalent
// code paths.
//
// Timing isolates the refinement stage: the MBR filter, candidate grouping
// and per-right bind/build are done once outside the timed region (their
// one-off costs are reported separately as bind_ns / refiner_build_ns), and
// the timed loops replay only the per-candidate exact tests. Results go to
// BENCH_refine.json (see util/bench_io.hpp). Pass --min-speedup=X to make
// the bench exit 1 when any experiment's refinement speedup falls below X
// (the CI non-regression guard).
//
// Set SJC_SCALE to change the workload scale (default 1e-3).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/local_join.hpp"
#include "geom/batch_refine.hpp"
#include "geom/simd_dispatch.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "util/bench_io.hpp"
#include "workload/generators.hpp"

namespace {

using namespace sjc;

/// Defeats dead-code elimination of the timed loops (sjc_bench binaries do
/// not link google-benchmark, so no DoNotOptimize here).
volatile std::uint64_t g_sink = 0;

/// Median-free ns/call: self-scales the iteration count so each measurement
/// runs at least ~20 ms (same scheme as bench_localjoin's head-to-head).
template <typename Fn>
double time_ns_per_call(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
                .count());
    if (ns >= 20e6) return ns / static_cast<double>(iters);
    iters *= 4;
  }
}

// ---------------------------------------------------------------------------
// Verification pass: both run_local_join modes must agree bit-for-bit.
// ---------------------------------------------------------------------------

struct ModeResult {
  std::vector<core::JoinPair> pairs;
  std::map<std::string, std::uint64_t> counters;
};

ModeResult run_mode(std::span<const geom::Feature> left,
                    std::span<const geom::Feature> right,
                    core::JoinPredicate predicate, bool batch_refine) {
  cluster::Counters counters;
  core::LocalJoinSpec spec;
  spec.algorithm = index::LocalJoinAlgorithm::kIndexedNestedLoop;
  spec.engine = &geom::GeometryEngine::prepared();
  spec.predicate = predicate;
  spec.batch_refine = batch_refine;
  spec.refine_counters = &counters;
  core::LocalJoinScratch scratch;
  ModeResult result;
  core::run_local_join(left, right, spec, core::AcceptAllPairs{}, scratch,
                       result.pairs);
  result.counters = counters.snapshot();
  return result;
}

std::uint64_t counter(const ModeResult& r, const char* name) {
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

/// Runs both modes and dies unless pair lists are identical (order
/// included) and the counter accounting is consistent. Returns the verified
/// counter splits for the JSON report.
struct VerifyResult {
  std::uint64_t candidates = 0;
  std::uint64_t hits = 0;
  std::uint64_t exact_tests = 0;
  std::uint64_t early_accepts = 0;
  std::uint64_t early_rejects = 0;
};

VerifyResult verify_experiment(const std::string& id,
                               std::span<const geom::Feature> left,
                               std::span<const geom::Feature> right,
                               core::JoinPredicate predicate) {
  const ModeResult per_pair = run_mode(left, right, predicate, false);
  const ModeResult batched = run_mode(left, right, predicate, true);

  if (per_pair.pairs != batched.pairs) {
    std::fprintf(stderr,
                 "%s: result mismatch: per-pair %zu pairs vs batched %zu pairs\n",
                 id.c_str(), per_pair.pairs.size(), batched.pairs.size());
    // Report set-level symmetric difference to aid debugging.
    auto a = per_pair.pairs;
    auto b = batched.pairs;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<core::JoinPair> only_a;
    std::vector<core::JoinPair> only_b;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(only_a));
    std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                        std::back_inserter(only_b));
    for (std::size_t i = 0; i < only_a.size() && i < 10; ++i) {
      std::fprintf(stderr, "  only per-pair: (%llu, %llu)\n",
                   static_cast<unsigned long long>(only_a[i].left_id),
                   static_cast<unsigned long long>(only_a[i].right_id));
    }
    for (std::size_t i = 0; i < only_b.size() && i < 10; ++i) {
      std::fprintf(stderr, "  only batched:  (%llu, %llu)\n",
                   static_cast<unsigned long long>(only_b[i].left_id),
                   static_cast<unsigned long long>(only_b[i].right_id));
    }
    if (only_a.empty() && only_b.empty()) {
      std::fprintf(stderr, "  (same pair sets, different order)\n");
    }
    std::exit(1);
  }

  const std::uint64_t cand_pp = counter(per_pair, "refine.candidates");
  const std::uint64_t cand_b = counter(batched, "refine.candidates");
  const std::uint64_t exact_pp = counter(per_pair, "refine.exact_tests");
  const std::uint64_t exact_b = counter(batched, "refine.exact_tests");
  const std::uint64_t acc_b = counter(batched, "refine.early_accepts");
  const std::uint64_t rej_b = counter(batched, "refine.early_rejects");
  bool ok = true;
  if (cand_pp != cand_b) {
    std::fprintf(stderr, "%s: candidate-count mismatch: per-pair %llu vs batched %llu\n",
                 id.c_str(), static_cast<unsigned long long>(cand_pp),
                 static_cast<unsigned long long>(cand_b));
    ok = false;
  }
  if (exact_pp != cand_pp || counter(per_pair, "refine.early_accepts") != 0 ||
      counter(per_pair, "refine.early_rejects") != 0) {
    std::fprintf(stderr, "%s: per-pair accounting broken: every candidate must be an exact test\n",
                 id.c_str());
    ok = false;
  }
  if (exact_b + acc_b + rej_b != cand_b) {
    std::fprintf(stderr,
                 "%s: batched accounting broken: %llu exact + %llu accepts + %llu rejects != %llu candidates\n",
                 id.c_str(), static_cast<unsigned long long>(exact_b),
                 static_cast<unsigned long long>(acc_b),
                 static_cast<unsigned long long>(rej_b),
                 static_cast<unsigned long long>(cand_b));
    ok = false;
  }
  if (!ok) std::exit(1);

  std::printf(
      "verify %-18s OK: %zu pairs bit-identical; %llu candidates -> exact %llu, "
      "early-accept %llu, early-reject %llu\n",
      id.c_str(), per_pair.pairs.size(), static_cast<unsigned long long>(cand_b),
      static_cast<unsigned long long>(exact_b), static_cast<unsigned long long>(acc_b),
      static_cast<unsigned long long>(rej_b));
  return {cand_b, per_pair.pairs.size(), exact_b, acc_b, rej_b};
}

// ---------------------------------------------------------------------------
// Cross-dispatch verification: every available SIMD path must produce
// bit-identical results and refinement accounting to the scalar path — on
// the batched local join AND end-to-end across all three system analogs.
// ---------------------------------------------------------------------------

/// Everything one dispatch path produced on one experiment.
struct DispatchResult {
  std::vector<core::JoinPair> pairs;                  // batched local join
  std::map<std::string, std::uint64_t> counters;      // its refine.* split
  std::vector<std::uint64_t> system_hashes;           // per system analog
  std::vector<std::uint64_t> system_counts;
  std::vector<std::map<std::string, std::uint64_t>> system_counters;
};

constexpr core::SystemKind kSystems[] = {core::SystemKind::kHadoopGisSim,
                                         core::SystemKind::kSpatialHadoopSim,
                                         core::SystemKind::kSpatialSparkSim};

DispatchResult run_dispatch(const workload::Dataset& left,
                            const workload::Dataset& right,
                            core::JoinPredicate predicate) {
  DispatchResult out;
  const ModeResult batched =
      run_mode(left.features(), right.features(), predicate, true);
  out.pairs = batched.pairs;
  out.counters = batched.counters;
  for (const core::SystemKind system : kSystems) {
    core::JoinQueryConfig query;
    query.predicate = predicate;
    core::ExecutionConfig exec;
    core::RunReport report;
    if (system == core::SystemKind::kHadoopGisSim) {
      // Pipe-capacity gate off: the larger experiment intentionally trips
      // HadoopGIS's streaming overflow (the paper's failure mode), but here
      // we only compare dispatch paths, which needs completed runs.
      systems::HadoopGisConfig config;
      config.pipe_capacity_fraction = 0.0;
      report = systems::run_hadoop_gis(left, right, query, exec, config);
    } else {
      report = core::run_spatial_join(system, left, right, query, exec);
    }
    if (!report.success) {
      std::fprintf(stderr, "cross-dispatch: %s run failed: %s\n",
                   core::system_kind_name(system), report.failure_reason.c_str());
      std::exit(1);
    }
    out.system_hashes.push_back(report.result_hash);
    out.system_counts.push_back(report.result_count);
    out.system_counters.push_back(report.counters.snapshot());
  }
  return out;
}

std::uint64_t map_value(const std::map<std::string, std::uint64_t>& m,
                        const char* name) {
  const auto it = m.find(name);
  return it == m.end() ? 0 : it->second;
}

void verify_dispatch_paths(const std::string& id, const workload::Dataset& left,
                           const workload::Dataset& right,
                           core::JoinPredicate predicate) {
  static const char* kRefineKeys[] = {
      "refine.candidates",    "refine.exact_tests",    "refine.early_accepts",
      "refine.early_rejects", "refine.exact_fastpath", "refine.exact_slowpath"};
  const auto paths = geom::simd::available_paths();
  geom::simd::force_path(geom::simd::Path::kScalar);
  const DispatchResult baseline = run_dispatch(left, right, predicate);
  // Exact-test split invariant on the scalar baseline (batched + systems).
  bool ok = true;
  if (map_value(baseline.counters, "refine.exact_fastpath") +
          map_value(baseline.counters, "refine.exact_slowpath") !=
      map_value(baseline.counters, "refine.exact_tests")) {
    std::fprintf(stderr, "%s: scalar fastpath+slowpath != exact_tests\n", id.c_str());
    ok = false;
  }
  for (const auto& path : paths) {
    if (path == geom::simd::Path::kScalar) continue;
    geom::simd::force_path(path);
    const DispatchResult got = run_dispatch(left, right, predicate);
    const char* pn = geom::simd::path_name(path);
    if (got.pairs != baseline.pairs) {
      std::fprintf(stderr, "%s: %s batched pairs differ from scalar (%zu vs %zu)\n",
                   id.c_str(), pn, got.pairs.size(), baseline.pairs.size());
      ok = false;
    }
    for (const char* key : kRefineKeys) {
      if (map_value(got.counters, key) != map_value(baseline.counters, key)) {
        std::fprintf(stderr, "%s: %s counter %s = %llu differs from scalar %llu\n",
                     id.c_str(), pn, key,
                     static_cast<unsigned long long>(map_value(got.counters, key)),
                     static_cast<unsigned long long>(
                         map_value(baseline.counters, key)));
        ok = false;
      }
    }
    for (std::size_t s = 0; s < std::size(kSystems); ++s) {
      if (got.system_hashes[s] != baseline.system_hashes[s] ||
          got.system_counts[s] != baseline.system_counts[s]) {
        std::fprintf(stderr, "%s: %s %s result differs from scalar\n", id.c_str(),
                     pn, core::system_kind_name(kSystems[s]));
        ok = false;
      }
      for (const char* key : kRefineKeys) {
        if (map_value(got.system_counters[s], key) !=
            map_value(baseline.system_counters[s], key)) {
          std::fprintf(stderr, "%s: %s %s counter %s differs from scalar\n",
                       id.c_str(), pn, core::system_kind_name(kSystems[s]), key);
          ok = false;
        }
      }
    }
  }
  geom::simd::reset_from_env();
  if (!ok) std::exit(1);
  std::printf("verify %-18s dispatch OK: %zu path(s) bit-identical across batched "
              "join + 3 systems\n",
              id.c_str(), paths.size());
}

// ---------------------------------------------------------------------------
// Per-kernel micro-bench: scalar vs each SIMD path on synthesized SoA data.
// ---------------------------------------------------------------------------

/// Deterministic 64-bit LCG (no <random> to keep the probe set frozen
/// across libstdc++ versions).
struct Lcg {
  std::uint64_t state;
  double next_unit() {  // [0, 1)
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

struct KernelBench {
  std::string kernel;
  std::string path;
  double ns_per_call = 0.0;
  double speedup_vs_scalar = 1.0;
};

/// Times the three kernels for every available path on synthesized inputs
/// (star-polygon edge table, random segment grid run, chunk envelopes),
/// verifying that all paths agree on every probe before timing anything.
std::vector<KernelBench> bench_kernels() {
  constexpr std::size_t kEdges = 4096;
  constexpr std::size_t kProbes = 512;

  // Star polygon with kEdges edges as a closed SoA edge table, plus probe
  // points scattered across (and slightly beyond) its envelope.
  std::vector<double> ax(kEdges), ay(kEdges), bx(kEdges), by(kEdges);
  {
    Lcg rng{0x5eed5eedULL};
    std::vector<double> vx(kEdges + 1), vy(kEdges + 1);
    for (std::size_t i = 0; i < kEdges; ++i) {
      const double theta = 6.283185307179586 * static_cast<double>(i) /
                           static_cast<double>(kEdges);
      const double r = 0.6 + 0.4 * rng.next_unit();
      vx[i] = r * std::cos(theta);
      vy[i] = r * std::sin(theta);
    }
    vx[kEdges] = vx[0];
    vy[kEdges] = vy[0];
    for (std::size_t i = 0; i < kEdges; ++i) {
      ax[i] = vx[i];
      ay[i] = vy[i];
      bx[i] = vx[i + 1];
      by[i] = vy[i + 1];
    }
  }
  std::vector<double> px(kProbes), py(kProbes);
  {
    Lcg rng{0xabcdef12ULL};
    for (std::size_t i = 0; i < kProbes; ++i) {
      px[i] = -1.1 + 2.2 * rng.next_unit();
      py[i] = -1.1 + 2.2 * rng.next_unit();
    }
  }

  // Segment grid run: short random segments with precomputed bboxes, and
  // probe segments placed so most candidates fail the bbox prune (the
  // kernel's steady state inside one grid cell).
  std::vector<double> sax(kEdges), say(kEdges), sbx(kEdges), sby(kEdges);
  std::vector<double> smnx(kEdges), smny(kEdges), smxx(kEdges), smxy(kEdges);
  {
    Lcg rng{0x77777777ULL};
    for (std::size_t i = 0; i < kEdges; ++i) {
      const double x = rng.next_unit(), y = rng.next_unit();
      sax[i] = x;
      say[i] = y;
      sbx[i] = x + 0.01 * (rng.next_unit() - 0.5);
      sby[i] = y + 0.01 * (rng.next_unit() - 0.5);
      smnx[i] = std::min(sax[i], sbx[i]);
      smny[i] = std::min(say[i], sby[i]);
      smxx[i] = std::max(sax[i], sbx[i]);
      smxy[i] = std::max(say[i], sby[i]);
    }
  }
  const geom::simd::SegSoA segs{sax.data(),  say.data(),  sbx.data(),  sby.data(),
                                smnx.data(), smny.data(), smxx.data(), smxy.data()};
  std::vector<double> qx0(kProbes), qy0(kProbes), qx1(kProbes), qy1(kProbes);
  {
    Lcg rng{0x13579bdfULL};
    for (std::size_t i = 0; i < kProbes; ++i) {
      const double x = rng.next_unit(), y = rng.next_unit();
      qx0[i] = x;
      qy0[i] = y;
      qx1[i] = x + 0.02 * (rng.next_unit() - 0.5);
      qy1[i] = y + 0.02 * (rng.next_unit() - 0.5);
    }
  }

  // Envelope sweep: chunk envelopes plus probe rects that mostly miss, so
  // the sweep usually scans the whole array (its worst case).
  std::vector<double> emnx(kEdges), emny(kEdges), emxx(kEdges), emxy(kEdges);
  {
    Lcg rng{0x2468aceULL};
    for (std::size_t i = 0; i < kEdges; ++i) {
      const double x = rng.next_unit(), y = rng.next_unit();
      emnx[i] = x;
      emny[i] = y;
      emxx[i] = x + 0.002;
      emxy[i] = y + 0.002;
    }
  }

  const auto paths = geom::simd::available_paths();

  // Correctness before timing: per probe, every path must agree with scalar.
  const geom::simd::Kernels& scalar =
      *geom::simd::kernels_for(geom::simd::Path::kScalar);
  for (const auto& path : paths) {
    const geom::simd::Kernels& k = *geom::simd::kernels_for(path);
    for (std::size_t i = 0; i < kProbes; ++i) {
      const bool pip_s = scalar.pip_covers_run(ax.data(), ay.data(), bx.data(),
                                               by.data(), kEdges, px[i], py[i]);
      const bool pip_k = k.pip_covers_run(ax.data(), ay.data(), bx.data(),
                                          by.data(), kEdges, px[i], py[i]);
      const bool seg_s = scalar.seg_run_intersects(
          segs, 0, kEdges, qx0[i], qy0[i], qx1[i], qy1[i],
          std::min(qx0[i], qx1[i]), std::min(qy0[i], qy1[i]),
          std::max(qx0[i], qx1[i]), std::max(qy0[i], qy1[i]));
      const bool seg_k = k.seg_run_intersects(
          segs, 0, kEdges, qx0[i], qy0[i], qx1[i], qy1[i],
          std::min(qx0[i], qx1[i]), std::min(qy0[i], qy1[i]),
          std::max(qx0[i], qx1[i]), std::max(qy0[i], qy1[i]));
      const bool env_s =
          scalar.env_any_overlaps(emnx.data(), emny.data(), emxx.data(),
                                  emxy.data(), kEdges, px[i], py[i], px[i], py[i]);
      const bool env_k =
          k.env_any_overlaps(emnx.data(), emny.data(), emxx.data(), emxy.data(),
                             kEdges, px[i], py[i], px[i], py[i]);
      if (pip_s != pip_k || seg_s != seg_k || env_s != env_k) {
        std::fprintf(stderr,
                     "kernel bench: %s disagrees with scalar on probe %zu "
                     "(pip %d/%d seg %d/%d env %d/%d)\n",
                     geom::simd::path_name(path), i, pip_s, pip_k, seg_s, seg_k,
                     env_s, env_k);
        std::exit(1);
      }
    }
  }

  std::vector<KernelBench> results;
  std::map<std::string, double> scalar_ns;
  for (const auto& path : paths) {
    const geom::simd::Kernels& k = *geom::simd::kernels_for(path);
    const char* pn = geom::simd::path_name(path);
    const double pip_ns = time_ns_per_call([&] {
                            std::uint64_t acc = 0;
                            for (std::size_t i = 0; i < kProbes; ++i) {
                              acc += k.pip_covers_run(ax.data(), ay.data(),
                                                      bx.data(), by.data(), kEdges,
                                                      px[i], py[i])
                                         ? 1
                                         : 0;
                            }
                            g_sink = acc;
                          }) /
                          static_cast<double>(kProbes);
    const double seg_ns =
        time_ns_per_call([&] {
          std::uint64_t acc = 0;
          for (std::size_t i = 0; i < kProbes; ++i) {
            acc += k.seg_run_intersects(segs, 0, kEdges, qx0[i], qy0[i], qx1[i],
                                        qy1[i], std::min(qx0[i], qx1[i]),
                                        std::min(qy0[i], qy1[i]),
                                        std::max(qx0[i], qx1[i]),
                                        std::max(qy0[i], qy1[i]))
                       ? 1
                       : 0;
          }
          g_sink = acc;
        }) /
        static_cast<double>(kProbes);
    const double env_ns =
        time_ns_per_call([&] {
          std::uint64_t acc = 0;
          for (std::size_t i = 0; i < kProbes; ++i) {
            acc += k.env_any_overlaps(emnx.data(), emny.data(), emxx.data(),
                                      emxy.data(), kEdges, px[i], py[i], px[i],
                                      py[i])
                       ? 1
                       : 0;
          }
          g_sink = acc;
        }) /
        static_cast<double>(kProbes);
    const struct {
      const char* name;
      double ns;
    } rows[] = {{"pip_covers_run", pip_ns},
                {"seg_run_intersects", seg_ns},
                {"env_any_overlaps", env_ns}};
    for (const auto& row : rows) {
      KernelBench kb;
      kb.kernel = row.name;
      kb.path = pn;
      kb.ns_per_call = row.ns;
      if (path == geom::simd::Path::kScalar) {
        scalar_ns[row.name] = row.ns;
      } else {
        kb.speedup_vs_scalar = scalar_ns[row.name] / row.ns;
      }
      results.push_back(kb);
    }
  }
  return results;
}

// ---------------------------------------------------------------------------
// Timing pass: isolated refinement loops over pre-grouped candidates.
// ---------------------------------------------------------------------------

/// Candidate groups of one experiment: for each right feature with at least
/// one MBR candidate, the left feature indices probing it.
struct GroupedCandidates {
  std::vector<std::uint32_t> right_ids;     // per group: right feature index
  std::vector<std::uint32_t> group_begin;   // CSR offsets into left_ids
  std::vector<std::uint32_t> left_ids;
  std::size_t candidates() const { return left_ids.size(); }
};

GroupedCandidates build_groups(std::span<const geom::Feature> left,
                               std::span<const geom::Feature> right) {
  std::vector<index::IndexEntry> le;
  std::vector<index::IndexEntry> re;
  le.reserve(left.size());
  re.reserve(right.size());
  for (std::uint32_t i = 0; i < left.size(); ++i) {
    le.push_back({left[i].geometry.envelope(), i});
  }
  for (std::uint32_t i = 0; i < right.size(); ++i) {
    re.push_back({right[i].geometry.envelope(), i});
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cands;  // (right, left)
  index::local_mbr_join(index::LocalJoinAlgorithm::kIndexedNestedLoop, le, re,
                        [&cands](std::uint32_t l, std::uint32_t r) {
                          cands.emplace_back(r, l);
                        });
  std::stable_sort(cands.begin(), cands.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  GroupedCandidates g;
  g.left_ids.reserve(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (i == 0 || cands[i].first != cands[i - 1].first) {
      g.right_ids.push_back(cands[i].first);
      g.group_begin.push_back(static_cast<std::uint32_t>(i));
    }
    g.left_ids.push_back(cands[i].second);
  }
  g.group_begin.push_back(static_cast<std::uint32_t>(cands.size()));
  return g;
}

struct TimedExperiment {
  std::uint64_t candidates = 0;
  std::uint64_t hits = 0;
  double bind_ns = 0;           // one-off: engine.bind of every probed right
  double refiner_build_ns = 0;  // one-off: BatchRefiner build of the same
  double per_pair_ns = 0;       // refinement stage, per-pair BoundPredicate
  double batched_ns = 0;        // refinement stage, batched SoA
  double speedup = 0;
};

TimedExperiment time_experiment(const std::string& id,
                                std::span<const geom::Feature> left,
                                std::span<const geom::Feature> right,
                                core::JoinPredicate predicate) {
  using clock = std::chrono::steady_clock;
  const GroupedCandidates g = build_groups(left, right);
  TimedExperiment timed;
  timed.candidates = g.candidates();

  const geom::GeometryEngine& engine = geom::GeometryEngine::prepared();
  std::vector<std::unique_ptr<geom::BoundPredicate>> bounds;
  bounds.reserve(g.right_ids.size());
  const auto bind_t0 = clock::now();
  for (const std::uint32_t r : g.right_ids) {
    bounds.push_back(engine.bind(right[r].geometry));
  }
  timed.bind_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - bind_t0)
          .count());

  std::vector<std::unique_ptr<geom::BatchRefiner>> refiners;
  refiners.reserve(g.right_ids.size());
  const auto build_t0 = clock::now();
  for (const std::uint32_t r : g.right_ids) {
    refiners.push_back(std::make_unique<geom::BatchRefiner>(right[r].geometry));
  }
  timed.refiner_build_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - build_t0)
          .count());

  // Baseline: the per-pair path of run_local_join with bind() hoisted out —
  // exactly the work the refinement stage does per candidate.
  std::uint64_t per_pair_hits = 0;
  timed.per_pair_ns = time_ns_per_call([&] {
    std::uint64_t hits = 0;
    for (std::size_t gi = 0; gi < g.right_ids.size(); ++gi) {
      const geom::BoundPredicate& bound = *bounds[gi];
      for (std::uint32_t c = g.group_begin[gi]; c < g.group_begin[gi + 1]; ++c) {
        const geom::Geometry& probe = left[g.left_ids[c]].geometry;
        bool hit = false;
        switch (predicate) {
          case core::JoinPredicate::kIntersects:
            hit = bound.intersects(probe);
            break;
          case core::JoinPredicate::kWithin:
            hit = bound.contains(probe);
            break;
          case core::JoinPredicate::kWithinDistance:
            hit = bound.within_distance(probe, 0.0);
            break;
        }
        hits += hit ? 1 : 0;
      }
    }
    per_pair_hits = hits;
    g_sink = hits;
  });

  // Batched: the group loop of run_local_join's batch path (gather point
  // probes, one covers_points pass, scalar approximation-gated calls for
  // the rest).
  std::uint64_t batched_hits = 0;
  std::vector<geom::Coord> pts;
  std::vector<std::uint8_t> covered;
  timed.batched_ns = time_ns_per_call([&] {
    geom::RefineStats stats;
    std::uint64_t hits = 0;
    for (std::size_t gi = 0; gi < g.right_ids.size(); ++gi) {
      const geom::BatchRefiner& rf = *refiners[gi];
      const bool point_batch = rf.has_areal() &&
                               (predicate == core::JoinPredicate::kIntersects ||
                                predicate == core::JoinPredicate::kWithin);
      const std::uint32_t begin = g.group_begin[gi];
      const std::uint32_t end = g.group_begin[gi + 1];
      pts.clear();
      if (point_batch) {
        for (std::uint32_t c = begin; c < end; ++c) {
          const geom::Geometry& probe = left[g.left_ids[c]].geometry;
          if (probe.type() == geom::GeomType::kPoint) pts.push_back(probe.as_point());
        }
      }
      if (!pts.empty()) rf.covers_points(pts, covered, stats);
      std::size_t cursor = 0;
      for (std::uint32_t c = begin; c < end; ++c) {
        const geom::Geometry& probe = left[g.left_ids[c]].geometry;
        bool hit = false;
        if (point_batch && probe.type() == geom::GeomType::kPoint) {
          hit = covered[cursor++] != 0;
        } else {
          switch (predicate) {
            case core::JoinPredicate::kIntersects:
              hit = rf.intersects(probe, stats);
              break;
            case core::JoinPredicate::kWithin:
              hit = rf.contains(probe, stats);
              break;
            case core::JoinPredicate::kWithinDistance:
              hit = rf.within_distance(probe, 0.0, stats);
              break;
          }
        }
        hits += hit ? 1 : 0;
      }
    }
    batched_hits = hits;
    g_sink = hits;
  });

  if (per_pair_hits != batched_hits) {
    std::fprintf(stderr, "%s: timed-loop hit mismatch: per-pair %llu vs batched %llu\n",
                 id.c_str(), static_cast<unsigned long long>(per_pair_hits),
                 static_cast<unsigned long long>(batched_hits));
    std::exit(1);
  }
  timed.hits = batched_hits;
  timed.speedup = timed.per_pair_ns / timed.batched_ns;
  return timed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sjc;
  double min_speedup = 0.0;
  double min_simd_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--min-simd-speedup=", 19) == 0) {
      min_simd_speedup = std::atof(argv[i] + 19);
    }
  }
  const double scale = core::bench_scale();
  workload::WorkloadConfig wc;
  wc.scale = scale;

  std::printf("== Refinement head-to-head: per-pair prepared vs batched SoA (scale %g) ==\n\n",
              scale);

  JsonWriter json;
  json.begin_object();
  json.field("bench", "refine");
  json.field("scale", scale);
  json.begin_array("experiments");

  double worst_speedup = 1e300;
  for (const auto& def : core::full_experiments()) {
    const auto left = workload::generate(def.left, wc);
    const auto right = workload::generate(def.right, wc);
    const std::span<const geom::Feature> lf = left.features();
    const std::span<const geom::Feature> rf = right.features();

    const VerifyResult v = verify_experiment(def.id, lf, rf, def.predicate);
    verify_dispatch_paths(def.id, left, right, def.predicate);
    const TimedExperiment t = time_experiment(def.id, lf, rf, def.predicate);
    worst_speedup = std::min(worst_speedup, t.speedup);

    std::printf(
        "timing %-18s per-pair %11.0f ns  batched %11.0f ns  speedup %.2fx  "
        "(bind %0.1f ms, refiner build %0.1f ms, %llu candidates, %llu hits)\n\n",
        def.id.c_str(), t.per_pair_ns, t.batched_ns, t.speedup, t.bind_ns / 1e6,
        t.refiner_build_ns / 1e6, static_cast<unsigned long long>(t.candidates),
        static_cast<unsigned long long>(t.hits));

    json.begin_element();
    json.field("experiment", def.id);
    json.field("predicate", core::join_predicate_name(def.predicate));
    json.field("n_left", static_cast<std::uint64_t>(lf.size()));
    json.field("n_right", static_cast<std::uint64_t>(rf.size()));
    json.field("candidates", v.candidates);
    json.field("hits", v.hits);
    json.field("exact_tests", v.exact_tests);
    json.field("early_accepts", v.early_accepts);
    json.field("early_rejects", v.early_rejects);
    json.field("bind_ns", t.bind_ns);
    json.field("refiner_build_ns", t.refiner_build_ns);
    json.field("per_pair_ns", t.per_pair_ns);
    json.field("batched_ns", t.batched_ns);
    json.field("speedup", t.speedup);
    json.end_object();
  }
  json.end_array();

  // Per-kernel scalar-vs-SIMD head-to-head on synthesized SoA inputs.
  const std::vector<KernelBench> kernel_rows = bench_kernels();
  double best_simd_speedup = 0.0;
  bool have_simd = false;
  json.begin_array("kernels");
  for (const auto& kb : kernel_rows) {
    if (kb.path != "scalar") {
      have_simd = true;
      best_simd_speedup = std::max(best_simd_speedup, kb.speedup_vs_scalar);
    }
    std::printf("kernel %-20s %-6s %9.1f ns/call%s\n", kb.kernel.c_str(),
                kb.path.c_str(), kb.ns_per_call,
                kb.path == "scalar"
                    ? ""
                    : (" (" + std::to_string(kb.speedup_vs_scalar).substr(0, 4) +
                       "x vs scalar)")
                          .c_str());
    json.begin_element();
    json.field("kernel", kb.kernel);
    json.field("path", kb.path);
    json.field("ns_per_call", kb.ns_per_call);
    json.field("speedup_vs_scalar", kb.speedup_vs_scalar);
    json.end_object();
  }
  json.end_array();
  std::printf("\n");

  json.field("min_speedup_required", min_speedup);
  json.field("min_simd_speedup_required", min_simd_speedup);
  json.field("simd_active", geom::simd::active_path_name());
  json.field("best_simd_kernel_speedup", best_simd_speedup);
  json.field("peak_rss_bytes", peak_rss_bytes());
  json.end_object();
  const std::string path = write_bench_json("refine", json.str());
  std::printf("json written to %s\n", path.c_str());

  int rc = 0;
  if (min_speedup > 0.0 && worst_speedup < min_speedup) {
    std::fprintf(stderr, "refinement speedup regression: worst %.2fx < required %.2fx\n",
                 worst_speedup, min_speedup);
    rc = 1;
  }
  // The SIMD gate asks for the floor on the *best* kernel (ISSUE: >= 1.3x on
  // at least one kernel); skipped when no SIMD path is compiled in/available.
  if (min_simd_speedup > 0.0) {
    if (!have_simd) {
      std::printf("simd gate skipped: no SIMD path available on this host\n");
    } else if (best_simd_speedup < min_simd_speedup) {
      std::fprintf(stderr, "simd kernel speedup regression: best %.2fx < required %.2fx\n",
                   best_simd_speedup, min_simd_speedup);
      rc = 1;
    }
  }
  return rc;
}
