// Serving-mode benchmark: multi-tenant open-loop load against resident
// datasets through serving::QueryService.
//
// The paper's tables measure one cold batch query at a time. This driver
// measures the other deployment mode the same systems face in practice: a
// long-running service answering a stream of spatial-join / range / k-NN
// queries from many tenants against resident state (partition directories,
// STR trees, occupancy bitmaps and a shared cross-query PreparedCache held
// by a ResidentCatalog).
//
// Method: one resident entry per system is installed on the first Table-2
// experiment pair. A calibration pass measures the mean service time of the
// query mix at no load, giving an estimated saturation throughput
// (workers / mean service seconds). The driver then sweeps offered load
// across fractions of that estimate; at each point a fresh QueryService
// takes Poisson (open-loop) arrivals multiplexed over the tenants and the
// driver records achieved qps, p50/p99 latency and the rejection rate.
// The latency-vs-throughput knee — the highest offered load the service
// sustains (achieved >= 90% of offered, <=1% rejected) — is reported and
// written to BENCH_serving.json along with the full sweep, the knee
// point's per-tenant skew footer, and each entry's PreparedCache counters.
//
// Usage: bench_serving [--tenants=N] [--workers=N] [--queries=N]
//                      [--join-share=F] [--knn-share=F] [--seed=S]
//                      [--max-p99=SECONDS]
//   --tenants    simulated tenants (default 8)
//   --workers    QueryService worker slots (default 4)
//   --queries    queries per sweep point (default 320)
//   --join-share fraction of arrivals that are full joins (default 0.05)
//   --knn-share  fraction of arrivals that are k-NN queries (default 0.15)
//   --max-p99    fail (exit 1) when the knee's p99 exceeds this bound;
//                0 disables the gate (default)
// BENCH_serving.json is written before the gate is evaluated, so CI can
// upload it from failing runs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.hpp"
#include "serving/query_service.hpp"
#include "serving/resident_catalog.hpp"
#include "util/bench_io.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace sjc;

double parse_flag_double(const char* arg, const char* name, double fallback) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0) return std::strtod(arg + n, nullptr);
  return fallback;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

struct QueryMix {
  double join_share = 0.05;
  double knn_share = 0.15;
  // remainder: range queries
};

/// Draws one query of the configured mix against `entry`.
serving::Query draw_query(Rng& rng, const serving::ResidentEntry& entry,
                          const std::string& entry_name, const QueryMix& mix) {
  serving::Query q;
  q.entry = entry_name;
  const double roll = rng.next_double();
  const geom::Envelope extent = entry.right().extent();
  const double cx = rng.uniform(extent.min_x(), extent.max_x());
  const double cy = rng.uniform(extent.min_y(), extent.max_y());
  if (roll < mix.join_share) {
    q.kind = serving::QueryKind::kSpatialJoin;
    q.join = entry.config().build_query;
  } else if (roll < mix.join_share + mix.knn_share) {
    q.kind = serving::QueryKind::kKnn;
    q.window = geom::Envelope(cx, cy, cx, cy);
    q.k = 1 + rng.next_below(8);
  } else {
    q.kind = serving::QueryKind::kRange;
    const double half_w = extent.width() * 0.005;
    const double half_h = extent.height() * 0.005;
    q.window = geom::Envelope(cx - half_w, cy - half_h, cx + half_w, cy + half_h);
  }
  return q;
}

double percentile(std::vector<double> sorted_or_not, double q) {
  if (sorted_or_not.empty()) return 0.0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const std::size_t n = sorted_or_not.size();
  const std::size_t rank =
      std::min(n - 1, static_cast<std::size_t>(std::ceil(q * n)) -
                          (std::ceil(q * n) >= 1.0 ? 1 : 0));
  return sorted_or_not[rank];
}

struct LoadPoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double elapsed_s = 0.0;
  std::vector<trace::TenantSkew> footer;
};

/// One open-loop sweep point: Poisson arrivals at `offered_qps` total,
/// multiplexed round-robin over tenants and entries.
LoadPoint run_point(const serving::ResidentCatalog& catalog,
                    const std::vector<std::string>& entry_names,
                    const serving::QueryServiceConfig& service_config,
                    std::size_t tenants, std::size_t queries, double offered_qps,
                    const QueryMix& mix, std::uint64_t seed) {
  LoadPoint point;
  point.offered_qps = offered_qps;
  Rng rng(seed);
  serving::QueryService service(catalog, service_config);
  std::vector<std::future<serving::QueryResult>> futures;
  futures.reserve(queries);

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto next_arrival = start;
  for (std::size_t i = 0; i < queries; ++i) {
    // Exponential interarrival: an open-loop Poisson stream — arrivals do
    // NOT wait for completions, which is what exposes the knee.
    const double gap = -std::log(1.0 - rng.next_double()) / offered_qps;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap));
    std::this_thread::sleep_until(next_arrival);

    const std::string tenant = "tenant-" + std::to_string(i % tenants);
    const std::string& entry_name = entry_names[(i / tenants) % entry_names.size()];
    const auto entry = catalog.find(entry_name);
    auto submission =
        service.submit(tenant, draw_query(rng, *entry, entry_name, mix));
    ++point.submitted;
    if (submission.status.ok()) {
      futures.push_back(std::move(submission.result));
    } else {
      ++point.rejected;
    }
  }
  service.drain();
  point.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (auto& f : futures) {
    auto result = f.get();
    if (result.status.ok()) {
      ++point.completed;
      latencies.push_back(result.latency_seconds);
    } else {
      ++point.failed;
    }
  }
  point.achieved_qps =
      point.elapsed_s > 0.0 ? static_cast<double>(point.completed) / point.elapsed_s
                            : 0.0;
  point.p50_s = percentile(latencies, 0.50);
  point.p99_s = percentile(latencies, 0.99);
  double total = 0.0;
  for (const double v : latencies) total += v;
  point.mean_s = latencies.empty() ? 0.0 : total / static_cast<double>(latencies.size());
  point.footer = service.tenant_footer();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tenants = 8;
  std::size_t workers = 4;
  std::size_t queries = 320;
  std::uint64_t seed = 20260809;
  QueryMix mix;
  double max_p99 = 0.0;  // 0 = gate disabled
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tenants=", 10) == 0) {
      tenants = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      mix.join_share = parse_flag_double(argv[i], "--join-share=", mix.join_share);
      mix.knn_share = parse_flag_double(argv[i], "--knn-share=", mix.knn_share);
      max_p99 = parse_flag_double(argv[i], "--max-p99=", max_p99);
    }
  }

  const double scale = core::bench_scale(2e-4);
  workload::WorkloadConfig wc;
  wc.scale = scale;
  const auto& experiment = core::full_experiments().front();
  const auto left = workload::generate(experiment.left, wc);
  const auto right = workload::generate(experiment.right, wc);

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / scale;

  std::printf(
      "== Serving bench: %zu tenants, %zu workers, %zu queries/point "
      "(%s, scale %g, mix %.0f%% join / %.0f%% knn / %.0f%% range) ==\n\n",
      tenants, workers, queries, experiment.id.c_str(), scale,
      mix.join_share * 100, mix.knn_share * 100,
      (1.0 - mix.join_share - mix.knn_share) * 100);

  // One resident entry per system — the catalog's cross-system setup. All
  // tenants share all entries, so the PreparedCaches see cross-tenant reuse.
  serving::ResidentCatalog catalog;
  std::vector<std::string> entry_names;
  for (const auto system :
       {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
        core::SystemKind::kSpatialSparkSim}) {
    serving::ResidentEntryConfig config;
    config.system = system;
    config.build_query.predicate = experiment.predicate;
    config.exec = exec;
    config.hadoop_gis.pipe_capacity_fraction = 0.0;
    const std::string name = core::system_kind_name(system);
    const auto entry = catalog.install(name, left, right, std::move(config));
    entry_names.push_back(name);
    std::printf("installed %-15s build TOT %.3fs, %zu pairs\n", name.c_str(),
                entry->build_report().total_seconds,
                entry->build_report().result_count);
  }

  // Calibration: mean service time of the mix at no load -> capacity
  // estimate. Closed loop (one in flight) so queueing never pollutes it.
  {
    serving::QueryServiceConfig calib_config;
    calib_config.workers = 1;
    serving::QueryService calib(catalog, calib_config);
    Rng rng(seed ^ 0x5eedULL);
    double service_total = 0.0;
    const std::size_t calib_queries = 48;
    for (std::size_t i = 0; i < calib_queries; ++i) {
      const std::string& entry_name = entry_names[i % entry_names.size()];
      const auto entry = catalog.find(entry_name);
      auto submission = calib.submit(
          "calibration", draw_query(rng, *entry, entry_name, mix));
      if (!submission.status.ok()) continue;
      service_total += submission.result.get().service_seconds;
    }
    const double mean_service = service_total / static_cast<double>(calib_queries);
    const double capacity_qps = static_cast<double>(workers) / mean_service;
    std::printf("\ncalibration: mean service %.4fs -> est. capacity %.1f qps "
                "(%zu workers)\n\n",
                mean_service, capacity_qps, workers);

    serving::QueryServiceConfig service_config;
    service_config.workers = workers;

    const double fractions[] = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.2, 1.5};
    std::vector<LoadPoint> sweep;
    TablePrinter table({"offered qps", "achieved qps", "p50 ms", "p99 ms",
                        "mean ms", "rejected", "failed"});
    for (const double f : fractions) {
      const double offered = capacity_qps * f;
      LoadPoint point = run_point(catalog, entry_names, service_config, tenants,
                                  queries, offered, mix, seed + 1);
      table.add_row({fmt(point.offered_qps, 1), fmt(point.achieved_qps, 1),
                     fmt(point.p50_s * 1e3, 2), fmt(point.p99_s * 1e3, 2),
                     fmt(point.mean_s * 1e3, 2), std::to_string(point.rejected),
                     std::to_string(point.failed)});
      sweep.push_back(std::move(point));
    }
    table.print();

    // The knee: highest offered load the service sustains. Past it the
    // open-loop queue grows without bound (achieved flatlines, p99 and the
    // rejection rate take off).
    std::size_t knee = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      const double reject_rate =
          p.submitted > 0
              ? static_cast<double>(p.rejected) / static_cast<double>(p.submitted)
              : 0.0;
      if (p.achieved_qps >= 0.9 * p.offered_qps && reject_rate <= 0.01) knee = i;
    }
    const LoadPoint& knee_point = sweep[knee];
    std::printf(
        "\nknee: sustained %.1f qps offered (%.1f achieved) at p50 %.2fms / "
        "p99 %.2fms\n",
        knee_point.offered_qps, knee_point.achieved_qps, knee_point.p50_s * 1e3,
        knee_point.p99_s * 1e3);

    std::printf("\nper-tenant skew at the knee:\n");
    for (const auto& row : knee_point.footer) {
      std::printf("  %-12s %4zu queries (%zu failed)  p50 %8.3fms  p99 %8.3fms\n",
                  row.tenant.c_str(), row.queries, row.failed, row.p50_s * 1e3,
                  row.p99_s * 1e3);
    }

    std::printf("\ncross-query PreparedCache reuse:\n");
    bool any_cache_hits = false;
    for (const auto& name : entry_names) {
      const auto entry = catalog.find(name);
      const auto& cache = entry->prepared_cache();
      any_cache_hits = any_cache_hits || cache.hits() > 0;
      std::printf("  %-15s %llu lookups, %llu hits (%.1f%%), %llu entries\n",
                  name.c_str(),
                  static_cast<unsigned long long>(cache.lookups()),
                  static_cast<unsigned long long>(cache.hits()),
                  cache.hit_rate() * 100.0,
                  static_cast<unsigned long long>(cache.size()));
    }

    JsonWriter out;
    out.begin_object();
    out.field("tenants", static_cast<std::uint64_t>(tenants));
    out.field("workers", static_cast<std::uint64_t>(workers));
    out.field("queries_per_point", static_cast<std::uint64_t>(queries));
    out.field("experiment", experiment.id);
    out.field("scale", scale);
    out.field("join_share", mix.join_share);
    out.field("knn_share", mix.knn_share);
    out.field("mean_service_seconds", mean_service);
    out.field("estimated_capacity_qps", capacity_qps);
    out.begin_array("sweep");
    for (const auto& p : sweep) {
      out.begin_element();
      out.field("offered_qps", p.offered_qps);
      out.field("achieved_qps", p.achieved_qps);
      out.field("p50_seconds", p.p50_s);
      out.field("p99_seconds", p.p99_s);
      out.field("mean_seconds", p.mean_s);
      out.field("submitted", p.submitted);
      out.field("rejected", p.rejected);
      out.field("completed", p.completed);
      out.field("failed", p.failed);
      out.field("elapsed_seconds", p.elapsed_s);
      out.end_object();
    }
    out.end_array();
    out.field("knee_offered_qps", knee_point.offered_qps);
    out.field("knee_achieved_qps", knee_point.achieved_qps);
    out.field("knee_p50_seconds", knee_point.p50_s);
    out.field("knee_p99_seconds", knee_point.p99_s);
    out.begin_array("knee_tenants");
    for (const auto& row : knee_point.footer) {
      out.begin_element();
      out.field("tenant", row.tenant);
      out.field("queries", static_cast<std::uint64_t>(row.queries));
      out.field("failed", static_cast<std::uint64_t>(row.failed));
      out.field("p50_seconds", row.p50_s);
      out.field("p99_seconds", row.p99_s);
      out.field("max_seconds", row.max_s);
      out.end_object();
    }
    out.end_array();
    out.begin_array("prepared_caches");
    for (const auto& name : entry_names) {
      const auto entry = catalog.find(name);
      const auto& cache = entry->prepared_cache();
      out.begin_element();
      out.field("entry", name);
      out.field("lookups", cache.lookups());
      out.field("hits", cache.hits());
      out.field("misses", cache.misses());
      out.field("hit_rate", cache.hit_rate());
      out.end_object();
    }
    out.end_array();
    out.field("peak_rss_bytes", peak_rss_bytes());
    out.end_object();
    const std::string path = write_bench_json("serving", out.str());
    std::printf("\nwrote %s\n", path.c_str());

    if (mix.join_share > 0.0 && !any_cache_hits) {
      std::fprintf(stderr,
                   "no PreparedCache hits despite join traffic — cross-query "
                   "reuse is broken, failing the bench\n");
      return 1;
    }
    if (max_p99 > 0.0 && knee_point.p99_s > max_p99) {
      std::fprintf(stderr,
                   "knee p99 %.3fs exceeds the --max-p99=%.3fs gate — failing "
                   "the bench\n",
                   knee_point.p99_s, max_p99);
      return 1;
    }
  }
  return 0;
}
