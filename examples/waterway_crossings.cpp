// Domain example: find all street segments that cross a waterway — bridge
// and culvert candidates. This is the paper's second experiment
// (edges x linearwater polyline intersection), run on all three systems to
// show the comparative API, with a per-waterway crossing census at the end.
//
//   ./waterway_crossings [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/spatial_join.hpp"
#include "util/strings.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace sjc;

  workload::WorkloadConfig wc;
  wc.scale = argc > 1 ? std::atof(argv[1]) : 5e-4;

  const workload::Dataset edges = workload::generate(workload::DatasetId::kEdges01, wc);
  const workload::Dataset water =
      workload::generate(workload::DatasetId::kLinearwater01, wc);
  std::printf("intersecting %zu street segments with %zu waterways...\n\n",
              edges.size(), water.size());

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kIntersects;

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / wc.scale;
  exec.collect_pairs = true;

  core::RunReport best;
  std::printf("%-18s %-8s %-10s %s\n", "system", "status", "crossings", "sim-seconds");
  for (const auto system :
       {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
        core::SystemKind::kSpatialSparkSim}) {
    const auto report = core::run_spatial_join(system, edges, water, query, exec);
    std::printf("%-18s %-8s %-10zu %s\n", core::system_kind_name(system),
                report.success ? "ok" : "FAIL", report.result_count,
                report.success ? format_seconds(report.total_seconds).c_str() : "-");
    if (report.success) best = std::move(report);
  }

  if (best.pairs.empty()) {
    std::printf("\nno system produced results\n");
    return 1;
  }

  std::map<std::uint64_t, std::size_t> crossings_per_waterway;
  for (const auto& pair : best.pairs) crossings_per_waterway[pair.right_id]++;
  std::size_t max_crossings = 0;
  std::uint64_t busiest = 0;
  for (const auto& [waterway, count] : crossings_per_waterway) {
    if (count > max_crossings) {
      max_crossings = count;
      busiest = waterway;
    }
  }
  std::printf(
      "\n%zu of %zu waterways are crossed by at least one street;\n"
      "waterway %llu carries the most crossings (%zu bridge candidates).\n",
      crossings_per_waterway.size(), water.size(),
      static_cast<unsigned long long>(busiest), max_crossings);
  return 0;
}
