// Domain example: which census blocks receive the most taxi pickups?
//
// Runs the paper's point-in-polygon join (taxi x nycb) through the public
// API on the SpatialSpark analog, then aggregates matched pairs into a
// per-block ranking — the kind of downstream analysis the paper's
// introduction motivates (matching GPS records to urban zones).
//
//   ./taxi_hotspots [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/spatial_join.hpp"
#include "util/strings.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace sjc;

  workload::WorkloadConfig wc;
  wc.scale = argc > 1 ? std::atof(argv[1]) : 5e-4;

  const workload::Dataset taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const workload::Dataset nycb = workload::generate(workload::DatasetId::kNycb, wc);
  std::printf("joining %zu pickups with %zu census blocks...\n", taxi.size(),
              nycb.size());

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::ec2(10);
  exec.data_scale = 1.0 / wc.scale;
  exec.collect_pairs = true;  // we want the pairs, not just the count

  const auto report = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, taxi,
                                             nycb, query, exec);
  if (!report.success) {
    std::printf("join failed: %s\n", report.failure_reason.c_str());
    return 1;
  }
  std::printf("matched %zu pickups in %s simulated seconds (EC2-10)\n\n",
              report.result_count, format_seconds(report.total_seconds).c_str());

  // Aggregate pickups per block and rank.
  std::map<std::uint64_t, std::size_t> per_block;
  for (const auto& pair : report.pairs) per_block[pair.right_id]++;
  std::vector<std::pair<std::size_t, std::uint64_t>> ranking;
  for (const auto& [block, count] : per_block) ranking.emplace_back(count, block);
  std::sort(ranking.rbegin(), ranking.rend());

  std::printf("top pickup hotspots:\n");
  std::printf("  %-10s %-12s %s\n", "block id", "pickups", "share");
  const std::size_t top = std::min<std::size_t>(10, ranking.size());
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("  %-10llu %-12zu %5.1f%%\n",
                static_cast<unsigned long long>(ranking[i].second), ranking[i].first,
                100.0 * static_cast<double>(ranking[i].first) /
                    static_cast<double>(report.result_count));
  }
  const double matched_share =
      static_cast<double>(report.result_count) / static_cast<double>(taxi.size());
  std::printf("\n%.1f%% of pickups matched a block (blocks tile the city).\n",
              100.0 * matched_share);
  return 0;
}
