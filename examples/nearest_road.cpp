// Domain example: the paper's opening workload — "matching taxi pickup/
// drop-off locations with road segments through point-to-nearest-polyline
// distance computation".
//
// Uses the exact nearest-neighbor join (best-first R-tree pruning + exact
// geometry distances) and compares it against the within-distance join the
// distributed systems evaluate, showing how the threshold choice trades
// completeness for volume.
//
//   ./nearest_road [scale]
#include <cstdio>
#include <cstdlib>

#include "core/nn_join.hpp"
#include "core/spatial_join.hpp"
#include "util/stopwatch.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace sjc;

  workload::WorkloadConfig wc;
  wc.scale = argc > 1 ? std::atof(argv[1]) : 5e-4;

  const workload::Dataset taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const workload::Dataset roads = workload::generate(workload::DatasetId::kEdges01, wc);
  std::printf("matching %zu pickups to the nearest of %zu road segments...\n",
              taxi.size(), roads.size());

  Stopwatch watch;
  const auto matches = core::nearest_neighbor_join(taxi.features(), roads.features());
  std::printf("exact NN join finished in %.3f s (real)\n\n", watch.seconds());

  // Distance distribution: how far is the nearest road?
  double total = 0.0;
  double max_d = 0.0;
  std::size_t within_100 = 0;
  std::size_t within_250 = 0;
  for (const auto& m : matches) {
    total += m.distance;
    max_d = std::max(max_d, m.distance);
    if (m.distance <= 100.0) ++within_100;
    if (m.distance <= 250.0) ++within_250;
  }
  std::printf("nearest-road distance: mean %.1f m, max %.1f m\n",
              total / static_cast<double>(matches.size()), max_d);
  std::printf("pickups within 100 m of a road: %5.1f%%\n",
              100.0 * static_cast<double>(within_100) /
                  static_cast<double>(matches.size()));
  std::printf("pickups within 250 m of a road: %5.1f%%\n\n",
              100.0 * static_cast<double>(within_250) /
                  static_cast<double>(matches.size()));

  // The distributed within-distance join at 100 m finds multi-matches; the
  // NN join finds exactly one per pickup.
  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithinDistance;
  query.within_distance = 100.0;
  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::ec2(10);
  exec.data_scale = 1.0 / wc.scale;
  const auto report = core::run_spatial_join(core::SystemKind::kSpatialSparkSim, taxi,
                                             roads, query, exec);
  if (report.success) {
    std::printf(
        "distributed within-100m join (SpatialSpark analog): %zu pairs —\n"
        "%.2f candidate roads per pickup vs exactly 1 from the NN join.\n",
        report.result_count,
        static_cast<double>(report.result_count) / static_cast<double>(taxi.size()));
  }
  return 0;
}
