// Capacity-planning example: which cluster should you rent for a workload?
//
// Sweeps EC2 cluster sizes (and the workstation) for a chosen system and
// workload, showing where runs fail (broken pipe / OOM) and where adding
// nodes stops paying — the operational question behind the paper's Table 2:
// SpatialSpark needs the memory of EC2-10, SpatialHadoop runs anywhere but
// slower, HadoopGIS cannot complete the full workload at all.
//
//   ./cluster_sizing [scale]
#include <cstdio>
#include <cstdlib>

#include "core/spatial_join.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace sjc;

  workload::WorkloadConfig wc;
  wc.scale = argc > 1 ? std::atof(argv[1]) : 5e-4;

  const workload::Dataset taxi = workload::generate(workload::DatasetId::kTaxi, wc);
  const workload::Dataset nycb = workload::generate(workload::DatasetId::kNycb, wc);
  std::printf("capacity planning for the FULL taxi x nycb join (%zu x %zu records)\n\n",
              taxi.size(), nycb.size());

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;

  std::vector<cluster::ClusterSpec> options = {cluster::ClusterSpec::workstation()};
  for (const std::uint32_t n : {6u, 8u, 10u, 12u, 16u}) {
    options.push_back(cluster::ClusterSpec::ec2(n));
  }

  TablePrinter table({"cluster", "slots", "memory", "SpatialHadoop", "SpatialSpark",
                      "HadoopGIS"});
  for (const auto& cl : options) {
    core::ExecutionConfig exec;
    exec.cluster = cl;
    exec.data_scale = 1.0 / wc.scale;
    std::vector<std::string> row = {cl.name, std::to_string(cl.total_slots()),
                                    format_bytes(cl.aggregate_memory())};
    for (const auto system :
         {core::SystemKind::kSpatialHadoopSim, core::SystemKind::kSpatialSparkSim,
          core::SystemKind::kHadoopGisSim}) {
      const auto report = core::run_spatial_join(system, taxi, nycb, query, exec);
      if (report.success) {
        row.push_back(format_seconds(report.total_seconds) + " s");
      } else if (report.failure_reason.find("memory") != std::string::npos) {
        row.push_back("OOM");
      } else {
        row.push_back("broken pipe");
      }
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf(
      "\nreading the table: pick the cheapest row whose cell is a runtime, then\n"
      "weigh robustness (SpatialHadoop always completes) against speed\n"
      "(SpatialSpark, once its memory floor is met).\n");
  return 0;
}
