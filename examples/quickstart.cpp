// Quickstart: run one distributed spatial join on each simulated system and
// print the end-to-end breakdown.
//
//   ./quickstart [scale]
//
// Joins synthetic NYC taxi pickups against census blocks (point-in-polygon)
// on a simulated workstation "cluster", exactly the paper's taxi-nycb
// experiment at a reduced scale.
#include <cstdio>
#include <cstdlib>

#include "core/spatial_join.hpp"
#include "util/strings.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace sjc;

  workload::WorkloadConfig wc;
  wc.scale = argc > 1 ? std::atof(argv[1]) : 1e-4;

  std::printf("generating synthetic datasets (scale %.2g of the paper's sizes)...\n",
              wc.scale);
  const workload::Dataset taxi = workload::generate(workload::DatasetId::kTaxi1m, wc);
  const workload::Dataset nycb = workload::generate(workload::DatasetId::kNycb, wc);
  std::printf("  %-8s %9zu records, %s\n", taxi.name().c_str(), taxi.size(),
              format_bytes(taxi.text_bytes()).c_str());
  std::printf("  %-8s %9zu records, %s\n", nycb.name().c_str(), nycb.size(),
              format_bytes(nycb.text_bytes()).c_str());

  core::JoinQueryConfig query;
  query.predicate = core::JoinPredicate::kWithin;  // point-in-polygon
  query.sample_rate = 0.05;

  core::ExecutionConfig exec;
  exec.cluster = cluster::ClusterSpec::workstation();
  exec.data_scale = 1.0 / wc.scale;

  for (const auto system :
       {core::SystemKind::kHadoopGisSim, core::SystemKind::kSpatialHadoopSim,
        core::SystemKind::kSpatialSparkSim}) {
    const auto report = core::run_spatial_join(system, taxi, nycb, query, exec);
    if (report.success) {
      std::printf("%-18s OK   %9zu pairs   total %8s sim-seconds\n",
                  core::system_kind_name(system), report.result_count,
                  format_seconds(report.total_seconds).c_str());
    } else {
      std::printf("%-18s FAIL (%s)\n", core::system_kind_name(system),
                  report.failure_reason.c_str());
    }
  }
  return 0;
}
