file(REMOVE_RECURSE
  "CMakeFiles/bench_hadoopgis_limits.dir/bench_hadoopgis_limits.cpp.o"
  "CMakeFiles/bench_hadoopgis_limits.dir/bench_hadoopgis_limits.cpp.o.d"
  "bench_hadoopgis_limits"
  "bench_hadoopgis_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hadoopgis_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
