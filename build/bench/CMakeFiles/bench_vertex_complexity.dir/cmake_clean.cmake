file(REMOVE_RECURSE
  "CMakeFiles/bench_vertex_complexity.dir/bench_vertex_complexity.cpp.o"
  "CMakeFiles/bench_vertex_complexity.dir/bench_vertex_complexity.cpp.o.d"
  "bench_vertex_complexity"
  "bench_vertex_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vertex_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
