# Empty dependencies file for bench_vertex_complexity.
# This may be replaced when dependencies are built.
