# Empty compiler generated dependencies file for bench_geom_engines.
# This may be replaced when dependencies are built.
