file(REMOVE_RECURSE
  "CMakeFiles/bench_geom_engines.dir/bench_geom_engines.cpp.o"
  "CMakeFiles/bench_geom_engines.dir/bench_geom_engines.cpp.o.d"
  "bench_geom_engines"
  "bench_geom_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geom_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
