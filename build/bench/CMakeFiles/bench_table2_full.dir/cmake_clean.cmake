file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_full.dir/bench_table2_full.cpp.o"
  "CMakeFiles/bench_table2_full.dir/bench_table2_full.cpp.o.d"
  "bench_table2_full"
  "bench_table2_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
