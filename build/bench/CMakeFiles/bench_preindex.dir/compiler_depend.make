# Empty compiler generated dependencies file for bench_preindex.
# This may be replaced when dependencies are built.
