file(REMOVE_RECURSE
  "CMakeFiles/bench_preindex.dir/bench_preindex.cpp.o"
  "CMakeFiles/bench_preindex.dir/bench_preindex.cpp.o.d"
  "bench_preindex"
  "bench_preindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
