# Empty dependencies file for bench_engine_swap.
# This may be replaced when dependencies are built.
