file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_swap.dir/bench_engine_swap.cpp.o"
  "CMakeFiles/bench_engine_swap.dir/bench_engine_swap.cpp.o.d"
  "bench_engine_swap"
  "bench_engine_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
