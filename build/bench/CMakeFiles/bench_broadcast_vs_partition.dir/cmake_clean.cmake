file(REMOVE_RECURSE
  "CMakeFiles/bench_broadcast_vs_partition.dir/bench_broadcast_vs_partition.cpp.o"
  "CMakeFiles/bench_broadcast_vs_partition.dir/bench_broadcast_vs_partition.cpp.o.d"
  "bench_broadcast_vs_partition"
  "bench_broadcast_vs_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_broadcast_vs_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
