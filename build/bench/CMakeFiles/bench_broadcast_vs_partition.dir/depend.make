# Empty dependencies file for bench_broadcast_vs_partition.
# This may be replaced when dependencies are built.
