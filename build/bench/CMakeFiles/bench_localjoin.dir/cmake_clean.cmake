file(REMOVE_RECURSE
  "CMakeFiles/bench_localjoin.dir/bench_localjoin.cpp.o"
  "CMakeFiles/bench_localjoin.dir/bench_localjoin.cpp.o.d"
  "bench_localjoin"
  "bench_localjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_localjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
