# Empty dependencies file for bench_localjoin.
# This may be replaced when dependencies are built.
