# Empty dependencies file for bench_samplerate.
# This may be replaced when dependencies are built.
