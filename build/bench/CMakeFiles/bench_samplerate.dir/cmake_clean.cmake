file(REMOVE_RECURSE
  "CMakeFiles/bench_samplerate.dir/bench_samplerate.cpp.o"
  "CMakeFiles/bench_samplerate.dir/bench_samplerate.cpp.o.d"
  "bench_samplerate"
  "bench_samplerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_samplerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
