file(REMOVE_RECURSE
  "libsjc_spatialhadoop.a"
)
