# Empty compiler generated dependencies file for sjc_spatialhadoop.
# This may be replaced when dependencies are built.
