file(REMOVE_RECURSE
  "CMakeFiles/sjc_spatialhadoop.dir/spatial_hadoop.cpp.o"
  "CMakeFiles/sjc_spatialhadoop.dir/spatial_hadoop.cpp.o.d"
  "libsjc_spatialhadoop.a"
  "libsjc_spatialhadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_spatialhadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
