# Empty compiler generated dependencies file for sjc_hadoopgis.
# This may be replaced when dependencies are built.
