file(REMOVE_RECURSE
  "libsjc_hadoopgis.a"
)
