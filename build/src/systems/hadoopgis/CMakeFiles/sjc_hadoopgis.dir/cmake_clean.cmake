file(REMOVE_RECURSE
  "CMakeFiles/sjc_hadoopgis.dir/hadoop_gis.cpp.o"
  "CMakeFiles/sjc_hadoopgis.dir/hadoop_gis.cpp.o.d"
  "libsjc_hadoopgis.a"
  "libsjc_hadoopgis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_hadoopgis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
