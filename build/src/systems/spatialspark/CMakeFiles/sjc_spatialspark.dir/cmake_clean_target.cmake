file(REMOVE_RECURSE
  "libsjc_spatialspark.a"
)
