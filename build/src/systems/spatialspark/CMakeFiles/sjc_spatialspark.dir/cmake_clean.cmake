file(REMOVE_RECURSE
  "CMakeFiles/sjc_spatialspark.dir/spatial_spark.cpp.o"
  "CMakeFiles/sjc_spatialspark.dir/spatial_spark.cpp.o.d"
  "libsjc_spatialspark.a"
  "libsjc_spatialspark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_spatialspark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
