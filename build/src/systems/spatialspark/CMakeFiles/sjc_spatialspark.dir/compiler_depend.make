# Empty compiler generated dependencies file for sjc_spatialspark.
# This may be replaced when dependencies are built.
