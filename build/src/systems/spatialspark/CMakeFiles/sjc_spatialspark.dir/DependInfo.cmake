
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/spatialspark/spatial_spark.cpp" "src/systems/spatialspark/CMakeFiles/sjc_spatialspark.dir/spatial_spark.cpp.o" "gcc" "src/systems/spatialspark/CMakeFiles/sjc_spatialspark.dir/spatial_spark.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sjc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rdd/CMakeFiles/sjc_rdd.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sjc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sjc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sjc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sjc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sjc_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/sjc_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sjc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sjc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
