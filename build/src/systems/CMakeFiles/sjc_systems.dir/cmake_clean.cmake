file(REMOVE_RECURSE
  "CMakeFiles/sjc_systems.dir/dispatch.cpp.o"
  "CMakeFiles/sjc_systems.dir/dispatch.cpp.o.d"
  "libsjc_systems.a"
  "libsjc_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
