file(REMOVE_RECURSE
  "libsjc_systems.a"
)
