# Empty compiler generated dependencies file for sjc_systems.
# This may be replaced when dependencies are built.
