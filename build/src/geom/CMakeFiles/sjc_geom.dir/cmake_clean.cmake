file(REMOVE_RECURSE
  "CMakeFiles/sjc_geom.dir/algorithms.cpp.o"
  "CMakeFiles/sjc_geom.dir/algorithms.cpp.o.d"
  "CMakeFiles/sjc_geom.dir/engine.cpp.o"
  "CMakeFiles/sjc_geom.dir/engine.cpp.o.d"
  "CMakeFiles/sjc_geom.dir/geometry.cpp.o"
  "CMakeFiles/sjc_geom.dir/geometry.cpp.o.d"
  "CMakeFiles/sjc_geom.dir/measures.cpp.o"
  "CMakeFiles/sjc_geom.dir/measures.cpp.o.d"
  "CMakeFiles/sjc_geom.dir/predicates.cpp.o"
  "CMakeFiles/sjc_geom.dir/predicates.cpp.o.d"
  "CMakeFiles/sjc_geom.dir/prepared.cpp.o"
  "CMakeFiles/sjc_geom.dir/prepared.cpp.o.d"
  "CMakeFiles/sjc_geom.dir/simplify.cpp.o"
  "CMakeFiles/sjc_geom.dir/simplify.cpp.o.d"
  "CMakeFiles/sjc_geom.dir/wkb.cpp.o"
  "CMakeFiles/sjc_geom.dir/wkb.cpp.o.d"
  "CMakeFiles/sjc_geom.dir/wkt.cpp.o"
  "CMakeFiles/sjc_geom.dir/wkt.cpp.o.d"
  "libsjc_geom.a"
  "libsjc_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
