
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/algorithms.cpp" "src/geom/CMakeFiles/sjc_geom.dir/algorithms.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/algorithms.cpp.o.d"
  "/root/repo/src/geom/engine.cpp" "src/geom/CMakeFiles/sjc_geom.dir/engine.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/engine.cpp.o.d"
  "/root/repo/src/geom/geometry.cpp" "src/geom/CMakeFiles/sjc_geom.dir/geometry.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/geometry.cpp.o.d"
  "/root/repo/src/geom/measures.cpp" "src/geom/CMakeFiles/sjc_geom.dir/measures.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/measures.cpp.o.d"
  "/root/repo/src/geom/predicates.cpp" "src/geom/CMakeFiles/sjc_geom.dir/predicates.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/predicates.cpp.o.d"
  "/root/repo/src/geom/prepared.cpp" "src/geom/CMakeFiles/sjc_geom.dir/prepared.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/prepared.cpp.o.d"
  "/root/repo/src/geom/simplify.cpp" "src/geom/CMakeFiles/sjc_geom.dir/simplify.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/simplify.cpp.o.d"
  "/root/repo/src/geom/wkb.cpp" "src/geom/CMakeFiles/sjc_geom.dir/wkb.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/wkb.cpp.o.d"
  "/root/repo/src/geom/wkt.cpp" "src/geom/CMakeFiles/sjc_geom.dir/wkt.cpp.o" "gcc" "src/geom/CMakeFiles/sjc_geom.dir/wkt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sjc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
