file(REMOVE_RECURSE
  "libsjc_geom.a"
)
