# Empty compiler generated dependencies file for sjc_geom.
# This may be replaced when dependencies are built.
