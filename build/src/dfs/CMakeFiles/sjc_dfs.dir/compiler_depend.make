# Empty compiler generated dependencies file for sjc_dfs.
# This may be replaced when dependencies are built.
