file(REMOVE_RECURSE
  "libsjc_dfs.a"
)
