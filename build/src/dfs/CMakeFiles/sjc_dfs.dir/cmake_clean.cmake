file(REMOVE_RECURSE
  "CMakeFiles/sjc_dfs.dir/sim_dfs.cpp.o"
  "CMakeFiles/sjc_dfs.dir/sim_dfs.cpp.o.d"
  "libsjc_dfs.a"
  "libsjc_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
