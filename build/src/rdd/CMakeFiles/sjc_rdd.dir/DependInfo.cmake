
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdd/memory_manager.cpp" "src/rdd/CMakeFiles/sjc_rdd.dir/memory_manager.cpp.o" "gcc" "src/rdd/CMakeFiles/sjc_rdd.dir/memory_manager.cpp.o.d"
  "/root/repo/src/rdd/spark_runtime.cpp" "src/rdd/CMakeFiles/sjc_rdd.dir/spark_runtime.cpp.o" "gcc" "src/rdd/CMakeFiles/sjc_rdd.dir/spark_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/CMakeFiles/sjc_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sjc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sjc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
