file(REMOVE_RECURSE
  "libsjc_rdd.a"
)
