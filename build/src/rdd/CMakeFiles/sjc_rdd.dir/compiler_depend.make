# Empty compiler generated dependencies file for sjc_rdd.
# This may be replaced when dependencies are built.
