file(REMOVE_RECURSE
  "CMakeFiles/sjc_rdd.dir/memory_manager.cpp.o"
  "CMakeFiles/sjc_rdd.dir/memory_manager.cpp.o.d"
  "CMakeFiles/sjc_rdd.dir/spark_runtime.cpp.o"
  "CMakeFiles/sjc_rdd.dir/spark_runtime.cpp.o.d"
  "libsjc_rdd.a"
  "libsjc_rdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_rdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
