file(REMOVE_RECURSE
  "CMakeFiles/sjc_mapreduce.dir/mr_context.cpp.o"
  "CMakeFiles/sjc_mapreduce.dir/mr_context.cpp.o.d"
  "CMakeFiles/sjc_mapreduce.dir/streaming.cpp.o"
  "CMakeFiles/sjc_mapreduce.dir/streaming.cpp.o.d"
  "libsjc_mapreduce.a"
  "libsjc_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
