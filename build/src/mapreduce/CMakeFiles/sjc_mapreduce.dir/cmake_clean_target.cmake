file(REMOVE_RECURSE
  "libsjc_mapreduce.a"
)
