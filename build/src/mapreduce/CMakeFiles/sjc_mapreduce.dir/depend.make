# Empty dependencies file for sjc_mapreduce.
# This may be replaced when dependencies are built.
