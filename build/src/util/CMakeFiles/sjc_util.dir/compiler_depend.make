# Empty compiler generated dependencies file for sjc_util.
# This may be replaced when dependencies are built.
