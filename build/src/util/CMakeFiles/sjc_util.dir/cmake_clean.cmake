file(REMOVE_RECURSE
  "CMakeFiles/sjc_util.dir/bench_io.cpp.o"
  "CMakeFiles/sjc_util.dir/bench_io.cpp.o.d"
  "CMakeFiles/sjc_util.dir/csv.cpp.o"
  "CMakeFiles/sjc_util.dir/csv.cpp.o.d"
  "CMakeFiles/sjc_util.dir/logging.cpp.o"
  "CMakeFiles/sjc_util.dir/logging.cpp.o.d"
  "CMakeFiles/sjc_util.dir/rng.cpp.o"
  "CMakeFiles/sjc_util.dir/rng.cpp.o.d"
  "CMakeFiles/sjc_util.dir/strings.cpp.o"
  "CMakeFiles/sjc_util.dir/strings.cpp.o.d"
  "CMakeFiles/sjc_util.dir/table.cpp.o"
  "CMakeFiles/sjc_util.dir/table.cpp.o.d"
  "CMakeFiles/sjc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sjc_util.dir/thread_pool.cpp.o.d"
  "libsjc_util.a"
  "libsjc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
