file(REMOVE_RECURSE
  "libsjc_util.a"
)
