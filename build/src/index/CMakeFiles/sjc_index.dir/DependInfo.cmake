
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/grid_index.cpp" "src/index/CMakeFiles/sjc_index.dir/grid_index.cpp.o" "gcc" "src/index/CMakeFiles/sjc_index.dir/grid_index.cpp.o.d"
  "/root/repo/src/index/mbr_join.cpp" "src/index/CMakeFiles/sjc_index.dir/mbr_join.cpp.o" "gcc" "src/index/CMakeFiles/sjc_index.dir/mbr_join.cpp.o.d"
  "/root/repo/src/index/nearest.cpp" "src/index/CMakeFiles/sjc_index.dir/nearest.cpp.o" "gcc" "src/index/CMakeFiles/sjc_index.dir/nearest.cpp.o.d"
  "/root/repo/src/index/quadtree.cpp" "src/index/CMakeFiles/sjc_index.dir/quadtree.cpp.o" "gcc" "src/index/CMakeFiles/sjc_index.dir/quadtree.cpp.o.d"
  "/root/repo/src/index/rtree_dynamic.cpp" "src/index/CMakeFiles/sjc_index.dir/rtree_dynamic.cpp.o" "gcc" "src/index/CMakeFiles/sjc_index.dir/rtree_dynamic.cpp.o.d"
  "/root/repo/src/index/str_tree.cpp" "src/index/CMakeFiles/sjc_index.dir/str_tree.cpp.o" "gcc" "src/index/CMakeFiles/sjc_index.dir/str_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/sjc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sjc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
