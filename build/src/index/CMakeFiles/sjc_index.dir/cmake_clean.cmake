file(REMOVE_RECURSE
  "CMakeFiles/sjc_index.dir/grid_index.cpp.o"
  "CMakeFiles/sjc_index.dir/grid_index.cpp.o.d"
  "CMakeFiles/sjc_index.dir/mbr_join.cpp.o"
  "CMakeFiles/sjc_index.dir/mbr_join.cpp.o.d"
  "CMakeFiles/sjc_index.dir/nearest.cpp.o"
  "CMakeFiles/sjc_index.dir/nearest.cpp.o.d"
  "CMakeFiles/sjc_index.dir/quadtree.cpp.o"
  "CMakeFiles/sjc_index.dir/quadtree.cpp.o.d"
  "CMakeFiles/sjc_index.dir/rtree_dynamic.cpp.o"
  "CMakeFiles/sjc_index.dir/rtree_dynamic.cpp.o.d"
  "CMakeFiles/sjc_index.dir/str_tree.cpp.o"
  "CMakeFiles/sjc_index.dir/str_tree.cpp.o.d"
  "libsjc_index.a"
  "libsjc_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
