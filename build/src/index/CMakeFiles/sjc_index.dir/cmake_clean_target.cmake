file(REMOVE_RECURSE
  "libsjc_index.a"
)
