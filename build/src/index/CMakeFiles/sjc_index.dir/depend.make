# Empty dependencies file for sjc_index.
# This may be replaced when dependencies are built.
