file(REMOVE_RECURSE
  "libsjc_workload.a"
)
