
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dataset.cpp" "src/workload/CMakeFiles/sjc_workload.dir/dataset.cpp.o" "gcc" "src/workload/CMakeFiles/sjc_workload.dir/dataset.cpp.o.d"
  "/root/repo/src/workload/dataset_io.cpp" "src/workload/CMakeFiles/sjc_workload.dir/dataset_io.cpp.o" "gcc" "src/workload/CMakeFiles/sjc_workload.dir/dataset_io.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/workload/CMakeFiles/sjc_workload.dir/generators.cpp.o" "gcc" "src/workload/CMakeFiles/sjc_workload.dir/generators.cpp.o.d"
  "/root/repo/src/workload/tsv.cpp" "src/workload/CMakeFiles/sjc_workload.dir/tsv.cpp.o" "gcc" "src/workload/CMakeFiles/sjc_workload.dir/tsv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/sjc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sjc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
