file(REMOVE_RECURSE
  "CMakeFiles/sjc_workload.dir/dataset.cpp.o"
  "CMakeFiles/sjc_workload.dir/dataset.cpp.o.d"
  "CMakeFiles/sjc_workload.dir/dataset_io.cpp.o"
  "CMakeFiles/sjc_workload.dir/dataset_io.cpp.o.d"
  "CMakeFiles/sjc_workload.dir/generators.cpp.o"
  "CMakeFiles/sjc_workload.dir/generators.cpp.o.d"
  "CMakeFiles/sjc_workload.dir/tsv.cpp.o"
  "CMakeFiles/sjc_workload.dir/tsv.cpp.o.d"
  "libsjc_workload.a"
  "libsjc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
