# Empty dependencies file for sjc_workload.
# This may be replaced when dependencies are built.
