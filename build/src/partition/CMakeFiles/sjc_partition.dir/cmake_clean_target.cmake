file(REMOVE_RECURSE
  "libsjc_partition.a"
)
