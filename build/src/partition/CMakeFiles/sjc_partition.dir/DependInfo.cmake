
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/partition_stats.cpp" "src/partition/CMakeFiles/sjc_partition.dir/partition_stats.cpp.o" "gcc" "src/partition/CMakeFiles/sjc_partition.dir/partition_stats.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/partition/CMakeFiles/sjc_partition.dir/partitioner.cpp.o" "gcc" "src/partition/CMakeFiles/sjc_partition.dir/partitioner.cpp.o.d"
  "/root/repo/src/partition/sampler.cpp" "src/partition/CMakeFiles/sjc_partition.dir/sampler.cpp.o" "gcc" "src/partition/CMakeFiles/sjc_partition.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/sjc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sjc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sjc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
