# Empty dependencies file for sjc_partition.
# This may be replaced when dependencies are built.
