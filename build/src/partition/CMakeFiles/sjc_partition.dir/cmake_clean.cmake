file(REMOVE_RECURSE
  "CMakeFiles/sjc_partition.dir/partition_stats.cpp.o"
  "CMakeFiles/sjc_partition.dir/partition_stats.cpp.o.d"
  "CMakeFiles/sjc_partition.dir/partitioner.cpp.o"
  "CMakeFiles/sjc_partition.dir/partitioner.cpp.o.d"
  "CMakeFiles/sjc_partition.dir/sampler.cpp.o"
  "CMakeFiles/sjc_partition.dir/sampler.cpp.o.d"
  "libsjc_partition.a"
  "libsjc_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
