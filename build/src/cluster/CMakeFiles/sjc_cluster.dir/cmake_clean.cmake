file(REMOVE_RECURSE
  "CMakeFiles/sjc_cluster.dir/cluster_spec.cpp.o"
  "CMakeFiles/sjc_cluster.dir/cluster_spec.cpp.o.d"
  "CMakeFiles/sjc_cluster.dir/metrics.cpp.o"
  "CMakeFiles/sjc_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/sjc_cluster.dir/scheduler.cpp.o"
  "CMakeFiles/sjc_cluster.dir/scheduler.cpp.o.d"
  "libsjc_cluster.a"
  "libsjc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
