# Empty compiler generated dependencies file for sjc_cluster.
# This may be replaced when dependencies are built.
