file(REMOVE_RECURSE
  "libsjc_cluster.a"
)
