file(REMOVE_RECURSE
  "CMakeFiles/sjc_core.dir/experiments.cpp.o"
  "CMakeFiles/sjc_core.dir/experiments.cpp.o.d"
  "CMakeFiles/sjc_core.dir/local_join.cpp.o"
  "CMakeFiles/sjc_core.dir/local_join.cpp.o.d"
  "CMakeFiles/sjc_core.dir/nn_join.cpp.o"
  "CMakeFiles/sjc_core.dir/nn_join.cpp.o.d"
  "CMakeFiles/sjc_core.dir/spatial_join.cpp.o"
  "CMakeFiles/sjc_core.dir/spatial_join.cpp.o.d"
  "libsjc_core.a"
  "libsjc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sjc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
