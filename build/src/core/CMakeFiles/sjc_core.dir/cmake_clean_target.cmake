file(REMOVE_RECURSE
  "libsjc_core.a"
)
