# Empty compiler generated dependencies file for sjc_core.
# This may be replaced when dependencies are built.
