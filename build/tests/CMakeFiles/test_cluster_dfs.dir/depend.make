# Empty dependencies file for test_cluster_dfs.
# This may be replaced when dependencies are built.
