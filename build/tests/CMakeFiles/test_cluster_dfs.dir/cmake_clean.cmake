file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_dfs.dir/test_cluster_dfs.cpp.o"
  "CMakeFiles/test_cluster_dfs.dir/test_cluster_dfs.cpp.o.d"
  "test_cluster_dfs"
  "test_cluster_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
