# Empty dependencies file for test_prepared.
# This may be replaced when dependencies are built.
