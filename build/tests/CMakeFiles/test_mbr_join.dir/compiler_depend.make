# Empty compiler generated dependencies file for test_mbr_join.
# This may be replaced when dependencies are built.
