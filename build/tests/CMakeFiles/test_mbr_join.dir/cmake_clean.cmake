file(REMOVE_RECURSE
  "CMakeFiles/test_mbr_join.dir/test_mbr_join.cpp.o"
  "CMakeFiles/test_mbr_join.dir/test_mbr_join.cpp.o.d"
  "test_mbr_join"
  "test_mbr_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbr_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
