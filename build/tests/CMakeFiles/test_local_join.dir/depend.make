# Empty dependencies file for test_local_join.
# This may be replaced when dependencies are built.
