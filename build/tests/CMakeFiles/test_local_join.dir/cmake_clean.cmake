file(REMOVE_RECURSE
  "CMakeFiles/test_local_join.dir/test_local_join.cpp.o"
  "CMakeFiles/test_local_join.dir/test_local_join.cpp.o.d"
  "test_local_join"
  "test_local_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
