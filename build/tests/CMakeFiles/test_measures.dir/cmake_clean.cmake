file(REMOVE_RECURSE
  "CMakeFiles/test_measures.dir/test_measures.cpp.o"
  "CMakeFiles/test_measures.dir/test_measures.cpp.o.d"
  "test_measures"
  "test_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
