# Empty compiler generated dependencies file for test_preindexed.
# This may be replaced when dependencies are built.
