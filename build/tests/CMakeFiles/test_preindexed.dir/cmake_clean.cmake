file(REMOVE_RECURSE
  "CMakeFiles/test_preindexed.dir/test_preindexed.cpp.o"
  "CMakeFiles/test_preindexed.dir/test_preindexed.cpp.o.d"
  "test_preindexed"
  "test_preindexed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preindexed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
