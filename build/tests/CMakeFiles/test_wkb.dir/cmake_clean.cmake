file(REMOVE_RECURSE
  "CMakeFiles/test_wkb.dir/test_wkb.cpp.o"
  "CMakeFiles/test_wkb.dir/test_wkb.cpp.o.d"
  "test_wkb"
  "test_wkb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wkb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
