# Empty compiler generated dependencies file for test_wkb.
# This may be replaced when dependencies are built.
