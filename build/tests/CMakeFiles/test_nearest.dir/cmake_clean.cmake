file(REMOVE_RECURSE
  "CMakeFiles/test_nearest.dir/test_nearest.cpp.o"
  "CMakeFiles/test_nearest.dir/test_nearest.cpp.o.d"
  "test_nearest"
  "test_nearest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nearest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
