# Empty dependencies file for test_nearest.
# This may be replaced when dependencies are built.
