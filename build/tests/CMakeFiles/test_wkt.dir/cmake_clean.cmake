file(REMOVE_RECURSE
  "CMakeFiles/test_wkt.dir/test_wkt.cpp.o"
  "CMakeFiles/test_wkt.dir/test_wkt.cpp.o.d"
  "test_wkt"
  "test_wkt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
