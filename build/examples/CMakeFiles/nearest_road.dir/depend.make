# Empty dependencies file for nearest_road.
# This may be replaced when dependencies are built.
