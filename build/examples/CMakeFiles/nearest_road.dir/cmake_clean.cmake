file(REMOVE_RECURSE
  "CMakeFiles/nearest_road.dir/nearest_road.cpp.o"
  "CMakeFiles/nearest_road.dir/nearest_road.cpp.o.d"
  "nearest_road"
  "nearest_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearest_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
