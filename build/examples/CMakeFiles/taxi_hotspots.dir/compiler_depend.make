# Empty compiler generated dependencies file for taxi_hotspots.
# This may be replaced when dependencies are built.
