file(REMOVE_RECURSE
  "CMakeFiles/waterway_crossings.dir/waterway_crossings.cpp.o"
  "CMakeFiles/waterway_crossings.dir/waterway_crossings.cpp.o.d"
  "waterway_crossings"
  "waterway_crossings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waterway_crossings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
