# Empty compiler generated dependencies file for waterway_crossings.
# This may be replaced when dependencies are built.
