// SkewMonitor: hotspot-partition detection from observed per-cell load.
//
// The trace subsystem (PR 4) measures task-time skew after the fact; the
// monitor is the piece that lets the schedulers *act* on it before the
// shuffle. It consumes per-cell load counters — the same quantities
// partition_stats aggregates — and flags the cells whose load exceeds a
// multiple of the median (LocationSpark's hotspot criterion), which the
// PartitionRefiner then splits.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "partition/partition_stats.hpp"
#include "plan/exec_policy.hpp"
#include "trace/trace.hpp"

namespace sjc::plan {

/// Observed load of one partition cell: record copies routed to the cell
/// and their modeled shuffle bytes.
struct CellLoad {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
};

struct HotspotReport {
  /// Flagged cell ids, worst offender first (record load descending, id
  /// ascending on ties); capped at SkewPolicy::max_splits_per_round.
  std::vector<std::uint32_t> hot_cells;
  /// Median record load over non-empty cells (0 when all cells are empty).
  double median_records = 0.0;
  std::uint64_t max_records = 0;
  /// max_records / median_records — the load imbalance the split targets.
  double max_over_median = 0.0;
};

class SkewMonitor {
 public:
  explicit SkewMonitor(SkewPolicy policy = {}) : policy_(policy) {}

  const SkewPolicy& policy() const { return policy_; }

  /// Flags every cell whose record load exceeds both
  /// hotspot_factor x median(non-empty loads) and min_cell_records.
  HotspotReport analyze(const std::vector<CellLoad>& loads) const;

 private:
  SkewPolicy policy_;
};

/// Adapter from the sampler-quality statistics: per-cell loads out of
/// PartitionStats::per_cell (bytes unknown at that layer, left 0).
std::vector<CellLoad> loads_from_stats(const partition::PartitionStats& stats);

/// Observed task-time skew ratio (max / p50) of one traced phase — how the
/// benches and tests verify that repartitioning actually flattened the
/// tail. Returns 0 when the phase is absent or its median is 0.
double phase_skew_ratio(const std::vector<trace::PhaseSkew>& rows,
                        std::string_view phase);

}  // namespace sjc::plan
