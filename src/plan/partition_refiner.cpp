#include "plan/partition_refiner.hpp"

#include <numeric>

namespace sjc::plan {

std::vector<geom::Envelope> PartitionRefiner::split_cell(
    const geom::Envelope& cell, partition::PartitionerKind kind) {
  const double mx = 0.5 * (cell.min_x() + cell.max_x());
  const double my = 0.5 * (cell.min_y() + cell.max_y());
  // A midpoint equal to an edge means the axis is degenerate (zero width at
  // double precision) — splitting there would mint empty duplicate cells.
  const bool split_x = mx > cell.min_x() && mx < cell.max_x();
  const bool split_y = my > cell.min_y() && my < cell.max_y();
  if (!split_x && !split_y) return {cell};

  const bool grid_family = kind == partition::PartitionerKind::kFixedGrid ||
                           kind == partition::PartitionerKind::kQuadtree;
  if (grid_family && split_x && split_y) {
    // Quad-split at the midpoint, quadrant order SW, SE, NW, NE.
    return {
        {cell.min_x(), cell.min_y(), mx, my},
        {mx, cell.min_y(), cell.max_x(), my},
        {cell.min_x(), my, mx, cell.max_y()},
        {mx, my, cell.max_x(), cell.max_y()},
    };
  }
  // Node-split for the tree-family schemes (and the degenerate-axis grid
  // case): halve the longer splittable axis.
  const bool along_x =
      split_x && (!split_y || cell.width() >= cell.height());
  if (along_x) {
    return {{cell.min_x(), cell.min_y(), mx, cell.max_y()},
            {mx, cell.min_y(), cell.max_x(), cell.max_y()}};
  }
  return {{cell.min_x(), cell.min_y(), cell.max_x(), my},
          {cell.min_x(), my, cell.max_x(), cell.max_y()}};
}

RefineResult PartitionRefiner::refine(const partition::PartitionScheme& scheme,
                                      const LoadProbe& probe) const {
  RefineResult result{scheme, {}, 0, 0, 0, 0};
  result.parent.resize(scheme.cell_count());
  std::iota(result.parent.begin(), result.parent.end(), 0u);

  for (std::uint32_t round = 0; round < monitor_.policy().max_rounds; ++round) {
    std::vector<CellLoad> loads = probe(result.scheme);
    ++result.rounds;
    const HotspotReport report = monitor_.analyze(loads);
    if (report.hot_cells.empty()) break;

    std::vector<geom::Envelope> cells = result.scheme.cells();
    std::vector<std::uint32_t> parent = result.parent;
    std::uint64_t split_count = 0;
    for (const std::uint32_t hot : report.hot_cells) {
      const auto children = split_cell(cells[hot], kind_);
      if (children.size() < 2) continue;  // degenerate cell, nothing to split
      ++split_count;
      result.migrated_records += loads[hot].records;
      result.migrated_bytes += loads[hot].bytes;
      // First child takes the parent's id slot (unsplit cells keep their
      // ids); the rest append. `parent` always maps back to the original
      // pre-refinement id, across rounds.
      const std::uint32_t origin = parent[hot];
      cells[hot] = children[0];
      for (std::size_t c = 1; c < children.size(); ++c) {
        cells.push_back(children[c]);
        parent.push_back(origin);
      }
    }
    if (split_count == 0) break;
    result.splits += split_count;
    result.scheme =
        partition::PartitionScheme(std::move(cells), result.scheme.extent());
    result.parent = std::move(parent);
  }
  return result;
}

void record_repartition_counters(const RefineResult& result,
                                 cluster::Counters& counters) {
  counters.add("repartition.rounds", result.rounds);
  counters.add("repartition.splits", result.splits);
  counters.add("repartition.cells", result.scheme.cell_count());
  counters.add("repartition.migrated_records", result.migrated_records);
  counters.add("repartition.migrated_bytes", result.migrated_bytes);
}

}  // namespace sjc::plan
