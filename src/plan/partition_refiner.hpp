// PartitionRefiner: split hotspot partition cells before the shuffle.
//
// Refinement runs between scheme derivation (sample -> make_partitions) and
// record assignment: a load probe counts per-cell record/byte load under
// the candidate scheme, the SkewMonitor flags hotspots, and each flagged
// cell is replaced by its children — a quad-split at the cell midpoint for
// the grid-family schemes (FixedGrid, Quadtree) or a longest-axis binary
// node-split for the tree-family schemes (STR, BSP). Children tile the
// parent exactly, so the refined cell set covers the extent whenever the
// input did.
//
// Split soundness (why survivor pair sets are bit-identical, DESIGN.md §7):
// a record is assigned to every cell its expanded envelope intersects, and
// a surviving pair is emitted only in the canonical cell containing its
// reference point. Children tile the parent, so for any point p the set of
// cells containing p under the refined scheme is derived from the base set
// by replacing each split cell with the one child holding p — never empty,
// never gaining or losing coverage. Both members of a true pair intersect
// their reference point, hence are both assigned to whichever cell contains
// it, and the pair is tested (and accepted exactly once) there — the same
// argument that already carries pair-set identity across the four base
// partitioners. The accept filter runs before refinement in run_local_join,
// so refine.* counters (accept-deduped candidates) are scheme-independent
// and stay bit-identical too.
#pragma once

#include <functional>
#include <vector>

#include "cluster/counters.hpp"
#include "partition/partitioner.hpp"
#include "plan/skew_monitor.hpp"

namespace sjc::plan {

struct RefineResult {
  partition::PartitionScheme scheme;
  /// Refined cell id -> pre-refinement cell id. Identity for unsplit cells
  /// (the first child keeps the parent's id slot; later children append).
  std::vector<std::uint32_t> parent;
  /// Probe/split rounds executed (>= 1 whenever refinement ran; the footer
  /// and the repartition.* counter block key off this being non-zero).
  std::uint64_t rounds = 0;
  /// Cells split (each flagged cell that produced >= 2 children counts 1).
  std::uint64_t splits = 0;
  /// Record copies resident in cells at the moment those cells were split —
  /// the shuffle-bucket load the refinement re-routed.
  std::uint64_t migrated_records = 0;
  std::uint64_t migrated_bytes = 0;

  bool changed() const { return splits > 0; }
};

/// Per-cell loads of a candidate scheme — the same assignment pass the
/// shuffle itself performs, tallied instead of emitted. Called once per
/// refinement round (children of split cells need fresh loads).
using LoadProbe =
    std::function<std::vector<CellLoad>(const partition::PartitionScheme&)>;

class PartitionRefiner {
 public:
  PartitionRefiner(partition::PartitionerKind kind, SkewPolicy policy = {})
      : kind_(kind), monitor_(policy) {}

  /// Probe -> flag -> split, up to SkewPolicy::max_rounds rounds, stopping
  /// early when a round flags nothing. The returned scheme keeps the input
  /// extent; unsplit cells keep their ids.
  RefineResult refine(const partition::PartitionScheme& scheme,
                      const LoadProbe& probe) const;

  /// Children of one cell: quadrants at the midpoint for grid schemes,
  /// longest-axis halves for STR/BSP. Degenerate axes are not split; a cell
  /// degenerate on both axes returns itself unchanged.
  static std::vector<geom::Envelope> split_cell(const geom::Envelope& cell,
                                                partition::PartitionerKind kind);

 private:
  partition::PartitionerKind kind_;
  SkewMonitor monitor_;
};

/// Emits the repartition.* counter block (rounds/hot_cells/splits/cells/
/// migrated_records/migrated_bytes) read back by the trace footer.
void record_repartition_counters(const RefineResult& result,
                                 cluster::Counters& counters);

}  // namespace sjc::plan
