// ExecPolicy: the per-run execution knobs shared by all three system
// drivers.
//
// Before this module each driver grew its own parallel optional for every
// cross-cutting knob (`shuffle_filter` lived three times, once per system
// config, and the adaptive-execution work would have added three more).
// ExecPolicy is the single struct those knobs live in; each system config
// embeds one and resolves the optionals against its own plane defaults
// (e.g. the shuffle filter defaults on for the zero-copy planes and off
// for the seed baseline planes — exactly the pre-refactor behavior,
// pinned by the existing test suites).
#pragma once

#include <cstdint>
#include <optional>

namespace sjc::plan {

/// Hotspot detection + split limits for skew-aware adaptive repartitioning
/// (LocationSpark's runtime hotspot splitting). A cell is flagged hot when
/// its observed load exceeds hotspot_factor x the median load of non-empty
/// cells AND the absolute floor; flagged cells are split (quad-split for
/// grid schemes, longest-axis node-split for STR/BSP schemes) and their
/// shuffle buckets re-routed before the local-join phase.
struct SkewPolicy {
  /// Load multiple of the median that marks a cell as a hotspot.
  double hotspot_factor = 4.0;
  /// Cells below this record load are never split, whatever the ratio —
  /// splitting a near-empty cell buys nothing and bloats the scheme.
  std::uint64_t min_cell_records = 64;
  /// Probe/split rounds: children of a split hotspot can still be hot
  /// (point masses), so refinement re-probes and re-splits up to this many
  /// times.
  std::uint32_t max_rounds = 2;
  /// At most this many cells are split per round (worst offenders first).
  std::uint32_t max_splits_per_round = 64;
};

struct ExecPolicy {
  /// Map-side spatial shuffle filter (the sFilter analog). Unset resolves
  /// to each driver's plane default: on for the zero-copy planes, off for
  /// the seed baseline planes (HadoopGIS and SpatialSpark default on; the
  /// SpatialSpark seed copying plane and the broadcast join never filter).
  std::optional<bool> shuffle_filter;
  /// Skew-aware adaptive repartitioning: probe per-cell load after the
  /// scheme is derived from the sample, split hotspot cells, and shuffle
  /// against the refined scheme. Survivor pair sets and refine.* counters
  /// are bit-identical to the static scheme (tests/test_plan.cpp); the
  /// shuffle.assigned == records + filtered invariant is preserved. Unset
  /// resolves to off — the static partitioner stays the baseline.
  std::optional<bool> repartition;
  SkewPolicy skew;
  /// SpatialSpark only: choose between the broadcast-based and the
  /// partition-based join per query via plan::choose_plan() instead of the
  /// static broadcast_join flag. Ignored by drivers with one path.
  bool cost_based_plan = false;
};

}  // namespace sjc::plan
