#include "plan/skew_monitor.hpp"

#include <algorithm>

namespace sjc::plan {

HotspotReport SkewMonitor::analyze(const std::vector<CellLoad>& loads) const {
  HotspotReport report;
  std::vector<std::uint64_t> occupied;
  occupied.reserve(loads.size());
  for (const auto& load : loads) {
    if (load.records > 0) occupied.push_back(load.records);
    report.max_records = std::max(report.max_records, load.records);
  }
  if (occupied.empty()) return report;

  // Nearest-rank median over the non-empty cells: empty cells say nothing
  // about balance (a sparse scheme legitimately has many), and counting
  // them would drag the median to 0 and flag every occupied cell.
  const std::size_t mid = occupied.size() / 2;
  std::nth_element(occupied.begin(),
                   occupied.begin() + static_cast<std::ptrdiff_t>(mid),
                   occupied.end());
  report.median_records = static_cast<double>(occupied[mid]);
  if (report.median_records > 0.0) {
    report.max_over_median =
        static_cast<double>(report.max_records) / report.median_records;
  }

  const double factor = std::max(policy_.hotspot_factor, 1.0);
  const double threshold =
      std::max(factor * report.median_records,
               static_cast<double>(policy_.min_cell_records));
  for (std::uint32_t id = 0; id < loads.size(); ++id) {
    if (static_cast<double>(loads[id].records) > threshold) {
      report.hot_cells.push_back(id);
    }
  }
  std::sort(report.hot_cells.begin(), report.hot_cells.end(),
            [&loads](std::uint32_t a, std::uint32_t b) {
              if (loads[a].records != loads[b].records) {
                return loads[a].records > loads[b].records;
              }
              return a < b;
            });
  if (report.hot_cells.size() > policy_.max_splits_per_round) {
    report.hot_cells.resize(policy_.max_splits_per_round);
  }
  return report;
}

std::vector<CellLoad> loads_from_stats(const partition::PartitionStats& stats) {
  std::vector<CellLoad> loads(stats.per_cell.size());
  for (std::size_t i = 0; i < stats.per_cell.size(); ++i) {
    loads[i].records = stats.per_cell[i];
  }
  return loads;
}

double phase_skew_ratio(const std::vector<trace::PhaseSkew>& rows,
                        std::string_view phase) {
  // RDD stage names carry the full lineage prefix
  // ("A.text.parse.assign.groupByKey.join.local-join"), so accept a
  // suffix-qualified match too; when several stages share the suffix, the
  // one with the most task attempts is the join stage being asked about.
  const trace::PhaseSkew* best = nullptr;
  for (const auto& row : rows) {
    const bool exact = row.phase == phase;
    const bool suffix = row.phase.size() > phase.size() + 1 &&
                        row.phase[row.phase.size() - phase.size() - 1] == '.' &&
                        row.phase.compare(row.phase.size() - phase.size(),
                                          phase.size(), phase) == 0;
    if (exact) { best = &row; break; }
    if (suffix && (!best || row.attempts > best->attempts)) best = &row;
  }
  if (!best) return 0.0;
  return best->p50_s > 0.0 ? best->max_s / best->p50_s : 0.0;
}

}  // namespace sjc::plan
