// QueryService: a long-running multi-tenant query-serving loop over a
// ResidentCatalog.
//
// The paper measures one query at a time; a serving deployment faces an
// open-loop stream of queries from many tenants against the same resident
// datasets. This service models that front door:
//
//  * Admission control — a bounded global queue plus a per-tenant quota.
//    Overload is rejected synchronously with a structured Status
//    (kResourceExhausted), and a draining/stopped service rejects with
//    kUnavailable; nothing blocks the submitting tenant.
//
//  * Per-tenant fair scheduling — deficit round-robin over the service's
//    worker slots. Each tenant carries a deficit counter; a visit adds the
//    quantum and dispatches while the deficit covers the head query's
//    nominal cost (joins cost more than range/k-NN lookups), so a tenant
//    flooding cheap queries cannot starve one running occasional joins,
//    and vice versa. Costs are nominal units, not measured seconds — the
//    scheduler must price a query before running it.
//
//  * Execution — worker threads answer queries through the catalog entry's
//    resident runners, which reuse the captured partition directories,
//    bitmaps, STR trees and the entry's shared PreparedCache; the heavy
//    join path schedules its simulated tasks through cluster::Scheduler
//    exactly like a batch run.
//
//  * Observability — one trace::TaskSpan per completed query, phase
//    "tenant/<name>", on the service's real-time clock: the queue wait is
//    the span's start offset and the service time its duration, so
//    trace::tenant_summary renders the per-tenant skew footer directly
//    from the timeline. Per-tenant counters (submitted / rejected /
//    completed / failed, queue and service seconds) are kept service-side.
//
// Every accepted query's future is eventually satisfied — on execution, on
// failure (the Status travels in the result), and on service shutdown (the
// destructor drains the queue before joining workers).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/resident_catalog.hpp"
#include "trace/trace.hpp"

namespace sjc::serving {

/// Span-phase prefix for per-query trace spans: "tenant/<tenant name>".
inline constexpr const char* kTenantPhasePrefix = "tenant/";

enum class QueryKind : std::uint8_t {
  kSpatialJoin = 0,  // full distributed join from resident state
  kRange = 1,        // MBR range lookup on one side's STR tree
  kKnn = 2,          // k nearest envelopes on one side's STR tree
};

const char* query_kind_name(QueryKind kind);

struct Query {
  QueryKind kind = QueryKind::kSpatialJoin;
  /// Catalog entry the query targets.
  std::string entry;
  /// kSpatialJoin: the join to answer (must match the entry's build
  /// expansion; the resident runner rejects mismatches).
  core::JoinQueryConfig join;
  /// kRange: the query window. kKnn: the query envelope (a point for the
  /// paper's taxi-to-road example).
  geom::Envelope window;
  /// kKnn only.
  std::size_t k = 1;
  /// Range/k-NN side selector: false = right dataset (the indexed side).
  bool left_side = false;
};

struct QueryResult {
  Status status;
  QueryKind kind = QueryKind::kSpatialJoin;
  /// kSpatialJoin: the full run report (status mirrors report.status).
  core::RunReport report;
  /// kRange: matching record indexes, ascending.
  std::vector<std::uint32_t> ids;
  /// kKnn: hits in ascending envelope-distance order.
  std::vector<index::NearestHit> hits;
  /// Real-time accounting, seconds: admission -> dispatch, dispatch ->
  /// completion, and their sum.
  double queue_seconds = 0.0;
  double service_seconds = 0.0;
  double latency_seconds = 0.0;
};

struct QueryServiceConfig {
  /// Worker slots answering queries (the serving analog of cluster slots).
  std::size_t workers = 4;
  /// Global bound on queued (not yet dispatched) queries; admission beyond
  /// it is rejected with kResourceExhausted.
  std::size_t max_queue_depth = 64;
  /// Per-tenant bound on queued queries (a tenant quota inside the global
  /// bound), same rejection.
  std::size_t max_queued_per_tenant = 16;
  /// DRR deficit added per scheduling visit. Keep >= the largest cost so
  /// every backlogged tenant dispatches at least one query per round.
  std::uint32_t quantum = 16;
  /// Nominal DRR costs per query kind.
  std::uint32_t join_cost = 16;
  std::uint32_t range_cost = 1;
  std::uint32_t knn_cost = 2;
  /// Record per-query trace spans (timeline(), tenant footer).
  bool trace = true;
};

/// Service-side per-tenant counters (monotone; snapshot via tenant_stats).
struct TenantStats {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   // admission rejections (quota/queue/draining)
  std::uint64_t completed = 0;  // executed, status OK
  std::uint64_t failed = 0;     // executed, non-OK status
  /// Cost-based physical plans chosen for this tenant's joins (from the
  /// report's plan.chosen counter; both 0 when the entry runs a static
  /// plan). Mispredictions stay diagnosable per query via the report's
  /// plan.predicted_cost / plan.actual_cost counters.
  std::uint64_t plan_broadcast = 0;
  std::uint64_t plan_partitioned = 0;
  double queue_seconds = 0.0;
  double service_seconds = 0.0;
};

/// submit() outcome: `status` is the admission decision. The future is
/// valid only when status.ok() — a rejected query never enters the queue.
struct Submission {
  Status status;
  std::future<QueryResult> result;
};

class QueryService {
 public:
  explicit QueryService(const ResidentCatalog& catalog, QueryServiceConfig config = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admission control + enqueue. Never blocks: returns kResourceExhausted
  /// (global queue full or tenant quota hit) or kUnavailable (draining /
  /// shut down) instead of waiting.
  Submission submit(const std::string& tenant, Query query);

  /// Stops admitting, waits until every queued and in-flight query has
  /// completed. Idempotent; the destructor calls it.
  void drain();

  /// Queries queued but not yet dispatched.
  std::size_t queue_depth() const;

  /// Per-tenant counters, sorted by tenant name.
  std::vector<TenantStats> tenant_stats() const;

  /// Merged per-query trace timeline (empty when config.trace is false).
  /// Call after drain() for a complete picture.
  trace::TaskTimeline timeline() const;

  /// Per-tenant skew footer over the current timeline.
  std::vector<trace::TenantSkew> tenant_footer() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::string tenant;
    Query query;
    std::promise<QueryResult> promise;
    Clock::time_point arrival;
    std::uint64_t seq = 0;
    std::uint32_t cost = 1;
  };

  struct TenantState {
    std::deque<Pending> queue;
    std::uint32_t deficit = 0;
    bool in_ring = false;
    TenantStats stats;
  };

  std::uint32_t cost_of(QueryKind kind) const;
  /// DRR pick. Caller holds mutex_ and guarantees total_queued_ > 0.
  Pending pick_next_locked();
  void worker_loop(std::uint32_t slot);
  void execute(Pending task, std::uint32_t slot);

  const ResidentCatalog* catalog_;
  const QueryServiceConfig config_;
  trace::TraceCollector collector_;
  const Clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  std::unordered_map<std::string, TenantState> tenants_;
  std::vector<std::string> ring_;  // active (backlogged) tenants, DRR order
  std::size_t ring_cursor_ = 0;
  std::size_t total_queued_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t next_seq_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace sjc::serving
