#include "serving/query_service.hpp"

#include <algorithm>
#include <utility>

#include "plan/cost_model.hpp"

namespace sjc::serving {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSpatialJoin:
      return "spatial-join";
    case QueryKind::kRange:
      return "range";
    case QueryKind::kKnn:
      return "knn";
  }
  return "unknown";
}

QueryService::QueryService(const ResidentCatalog& catalog, QueryServiceConfig config)
    : catalog_(&catalog),
      config_(config),
      collector_(1, static_cast<std::uint32_t>(std::max<std::size_t>(1, config.workers))),
      epoch_(Clock::now()) {
  require(config_.workers > 0, "QueryService: workers must be > 0");
  require(config_.max_queue_depth > 0, "QueryService: max_queue_depth must be > 0");
  require(config_.quantum > 0, "QueryService: quantum must be > 0");
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back(
        [this, w] { worker_loop(static_cast<std::uint32_t>(w)); });
  }
}

QueryService::~QueryService() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::uint32_t QueryService::cost_of(QueryKind kind) const {
  switch (kind) {
    case QueryKind::kSpatialJoin:
      return std::max<std::uint32_t>(1, config_.join_cost);
    case QueryKind::kRange:
      return std::max<std::uint32_t>(1, config_.range_cost);
    case QueryKind::kKnn:
      return std::max<std::uint32_t>(1, config_.knn_cost);
  }
  return 1;
}

Submission QueryService::submit(const std::string& tenant, Query query) {
  std::unique_lock<std::mutex> lock(mutex_);
  TenantState& state = tenants_[tenant];
  if (state.stats.tenant.empty()) state.stats.tenant = tenant;
  ++state.stats.submitted;
  if (!accepting_) {
    ++state.stats.rejected;
    return {Status(StatusCode::kUnavailable, "service is draining"), {}};
  }
  if (total_queued_ >= config_.max_queue_depth) {
    ++state.stats.rejected;
    return {Status(StatusCode::kResourceExhausted,
                   "admission queue full (" + std::to_string(total_queued_) +
                       " queued)"),
            {}};
  }
  if (state.queue.size() >= config_.max_queued_per_tenant) {
    ++state.stats.rejected;
    return {Status(StatusCode::kResourceExhausted,
                   "tenant '" + tenant + "' quota full (" +
                       std::to_string(state.queue.size()) + " queued)"),
            {}};
  }

  Pending pending;
  pending.tenant = tenant;
  pending.query = std::move(query);
  pending.arrival = Clock::now();
  pending.seq = next_seq_++;
  pending.cost = cost_of(pending.query.kind);
  std::future<QueryResult> future = pending.promise.get_future();
  state.queue.push_back(std::move(pending));
  if (!state.in_ring) {
    ring_.push_back(tenant);
    state.in_ring = true;
  }
  ++total_queued_;
  lock.unlock();
  work_cv_.notify_one();
  return {Status::Ok(), std::move(future)};
}

QueryService::Pending QueryService::pick_next_locked() {
  // Deficit round-robin: visit tenants in ring order; a visit tops the
  // deficit up by the quantum and dispatches when it covers the head
  // query's cost. The deficit persists across visits, so any cost is
  // eventually covered; it resets when the tenant's backlog empties, so an
  // idle tenant cannot bank credit.
  for (;;) {
    TenantState& state = tenants_[ring_[ring_cursor_]];
    if (state.queue.empty()) {
      state.in_ring = false;
      state.deficit = 0;
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(ring_cursor_));
      if (ring_cursor_ >= ring_.size()) ring_cursor_ = 0;
      continue;
    }
    const std::uint32_t cost = state.queue.front().cost;
    if (state.deficit < cost) {
      state.deficit += config_.quantum;
      if (state.deficit < cost) {
        ring_cursor_ = (ring_cursor_ + 1) % ring_.size();
        continue;
      }
    }
    state.deficit -= cost;
    Pending task = std::move(state.queue.front());
    state.queue.pop_front();
    if (state.queue.empty()) {
      state.in_ring = false;
      state.deficit = 0;
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(ring_cursor_));
      if (ring_cursor_ >= ring_.size()) ring_cursor_ = 0;
    } else {
      ring_cursor_ = (ring_cursor_ + 1) % ring_.size();
    }
    return task;
  }
}

void QueryService::worker_loop(std::uint32_t slot) {
  for (;;) {
    Pending task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || total_queued_ > 0; });
      if (total_queued_ == 0) {
        if (stopping_) return;
        continue;
      }
      task = pick_next_locked();
      --total_queued_;
      ++in_flight_;
    }
    execute(std::move(task), slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (total_queued_ == 0 && in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

void QueryService::execute(Pending task, std::uint32_t slot) {
  const Clock::time_point start = Clock::now();
  QueryResult result;
  result.kind = task.query.kind;

  const std::shared_ptr<const ResidentEntry> entry = catalog_->find(task.query.entry);
  if (entry == nullptr) {
    result.status = Status(StatusCode::kInvalidArgument,
                           "unknown resident entry '" + task.query.entry + "'");
  } else {
    try {
      switch (task.query.kind) {
        case QueryKind::kSpatialJoin:
          result.report = entry->run_join(task.query.join);
          result.status = result.report.status;
          break;
        case QueryKind::kRange:
          result.ids = entry->run_range(task.query.window, task.query.left_side);
          result.status = Status::Ok();
          break;
        case QueryKind::kKnn:
          result.hits =
              entry->run_knn(task.query.window, task.query.k, task.query.left_side);
          result.status = Status::Ok();
          break;
      }
    } catch (const SjcError& e) {
      // Resident runners report simulated failures through the RunReport;
      // anything thrown here is a usage error surfaced as a Status so the
      // serving loop (and the tenant's future) always completes.
      result.status = status_from_exception(e);
    }
  }

  const Clock::time_point end = Clock::now();
  result.queue_seconds = seconds_between(task.arrival, start);
  result.service_seconds = seconds_between(start, end);
  result.latency_seconds = seconds_between(task.arrival, end);

  if (config_.trace) {
    trace::TaskSpan span;
    span.phase = std::string(kTenantPhasePrefix) + task.tenant;
    span.task = task.seq;
    span.slot = slot;
    // The span covers arrival -> completion on the service clock, so span
    // duration == query latency and tenant_summary() summarizes exactly
    // what the bench reports.
    span.sim_start = seconds_between(epoch_, task.arrival);
    span.sim_end = seconds_between(epoch_, end);
    span.cpu_seconds = result.service_seconds;
    span.outcome =
        result.status.ok() ? trace::SpanOutcome::kOk : trace::SpanOutcome::kFailed;
    collector_.record(std::move(span));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantStats& stats = tenants_[task.tenant].stats;
    if (result.status.ok()) {
      ++stats.completed;
    } else {
      ++stats.failed;
    }
    stats.queue_seconds += result.queue_seconds;
    stats.service_seconds += result.service_seconds;
    if (task.query.kind == QueryKind::kSpatialJoin) {
      switch (result.report.counters.get("plan.chosen")) {
        case static_cast<std::uint64_t>(plan::PlanKind::kBroadcastJoin):
          ++stats.plan_broadcast;
          break;
        case static_cast<std::uint64_t>(plan::PlanKind::kPartitionedJoin):
          ++stats.plan_partitioned;
          break;
        default:  // 0: static plan, no cost-based decision recorded
          break;
      }
    }
  }

  task.promise.set_value(std::move(result));
}

void QueryService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  accepting_ = false;
  drained_cv_.wait(lock, [this] { return total_queued_ == 0 && in_flight_ == 0; });
}

std::size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

std::vector<TenantStats> QueryService::tenant_stats() const {
  std::vector<TenantStats> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(tenants_.size());
    for (const auto& [name, state] : tenants_) out.push_back(state.stats);
  }
  std::sort(out.begin(), out.end(),
            [](const TenantStats& a, const TenantStats& b) { return a.tenant < b.tenant; });
  return out;
}

trace::TaskTimeline QueryService::timeline() const { return collector_.merged(); }

std::vector<trace::TenantSkew> QueryService::tenant_footer() const {
  return trace::tenant_summary(timeline(), kTenantPhasePrefix);
}

}  // namespace sjc::serving
