#include "serving/resident_catalog.hpp"

#include <algorithm>
#include <utility>

#include "plan/cost_model.hpp"

namespace sjc::serving {

namespace {

std::unique_ptr<index::StrTree> build_envelope_tree(const workload::Dataset& data) {
  const auto envs = data.envelopes();
  std::vector<index::IndexEntry> entries;
  entries.reserve(envs.size());
  for (std::size_t i = 0; i < envs.size(); ++i) {
    entries.push_back({envs[i], static_cast<std::uint32_t>(i)});
  }
  return std::make_unique<index::StrTree>(std::move(entries));
}

}  // namespace

const core::RunReport& ResidentEntry::build_report() const {
  switch (config_.system) {
    case core::SystemKind::kHadoopGisSim:
      return gis_->build_report();
    case core::SystemKind::kSpatialHadoopSim:
      return spatial_hadoop_->build_report();
    case core::SystemKind::kSpatialSparkSim:
      return spatial_spark_->build_report();
  }
  throw InvalidArgument("ResidentEntry: unknown system kind");
}

core::RunReport ResidentEntry::run_join(const core::JoinQueryConfig& query) const {
  switch (config_.system) {
    case core::SystemKind::kHadoopGisSim:
      return systems::run_hadoop_gis_resident(*gis_, query, config_.exec,
                                              config_.hadoop_gis, &prepared_cache_);
    case core::SystemKind::kSpatialHadoopSim:
      return systems::run_spatial_hadoop_resident(*spatial_hadoop_, query, config_.exec,
                                                  config_.spatial_hadoop,
                                                  &prepared_cache_);
    case core::SystemKind::kSpatialSparkSim: {
      if (!config_.spatial_spark.policy.cost_based_plan) {
        return systems::run_spatial_spark_resident(*spatial_spark_, query,
                                                   config_.exec,
                                                   config_.spatial_spark,
                                                   &prepared_cache_);
      }
      // Per-query cost-based plan choice: the resident partitioned tail is
      // the fast path, but a heavily filtered / small-right query can be
      // cheaper as a broadcast probe. The broadcast plan has no resident
      // tail (it shuffles nothing worth capturing), so when the model picks
      // it the entry executes a cold broadcast run over its own retained
      // datasets; either way the decision and the realized cost land in the
      // report's plan.* counters for the service's per-tenant stats.
      const plan::PlanDecision decision = plan::choose_plan(plan::PlanInputs{
          .left_records = left_.size(),
          .right_records = right_.size(),
          .left_bytes = left_.text_bytes(),
          .right_bytes = right_.text_bytes(),
          .record_overhead_bytes = config_.spatial_spark.record_overhead_bytes,
          .replication_factor = std::nullopt,
          .filter_selectivity = std::nullopt,
          .cluster = config_.exec.cluster,
          .data_scale = config_.exec.data_scale,
          .resident = true,
      });
      core::RunReport report;
      if (decision.chosen == plan::PlanKind::kBroadcastJoin) {
        systems::SpatialSparkConfig broadcast_cfg = config_.spatial_spark;
        broadcast_cfg.broadcast_join = true;
        broadcast_cfg.policy.cost_based_plan = false;
        report = systems::run_spatial_spark(left_, right_, query, config_.exec,
                                            broadcast_cfg);
      } else {
        report = systems::run_spatial_spark_resident(*spatial_spark_, query,
                                                     config_.exec,
                                                     config_.spatial_spark,
                                                     &prepared_cache_);
      }
      plan::record_plan_counters(decision, report.counters);
      plan::record_plan_actual(report.total_seconds, report.counters);
      return report;
    }
  }
  throw InvalidArgument("ResidentEntry: unknown system kind");
}

std::vector<std::uint32_t> ResidentEntry::run_range(const geom::Envelope& window,
                                                    bool left_side) const {
  const index::StrTree& tree = left_side ? *left_tree_ : *right_tree_;
  std::vector<std::uint32_t> ids = tree.query_ids(window);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<index::NearestHit> ResidentEntry::run_knn(const geom::Envelope& query,
                                                      std::size_t k,
                                                      bool left_side) const {
  const index::StrTree& tree = left_side ? *left_tree_ : *right_tree_;
  return index::k_nearest_envelopes(tree, query, k);
}

std::shared_ptr<const ResidentEntry> ResidentCatalog::install(
    const std::string& name, const workload::Dataset& left,
    const workload::Dataset& right, ResidentEntryConfig config) {
  // Build outside the catalog lock — one cold end-to-end run is expensive
  // and must not block lookups for other entries.
  auto entry = std::shared_ptr<ResidentEntry>(new ResidentEntry());
  entry->name_ = name;
  entry->config_ = std::move(config);
  entry->left_ = left;
  entry->right_ = right;
  switch (entry->config_.system) {
    case core::SystemKind::kHadoopGisSim:
      entry->gis_.emplace(systems::hadoop_gis_build_resident(
          entry->left_, entry->right_, entry->config_.build_query,
          entry->config_.exec, entry->config_.hadoop_gis));
      break;
    case core::SystemKind::kSpatialHadoopSim:
      entry->spatial_hadoop_.emplace(systems::spatial_hadoop_build_resident(
          entry->left_, entry->right_, entry->config_.build_query,
          entry->config_.exec, entry->config_.spatial_hadoop));
      break;
    case core::SystemKind::kSpatialSparkSim:
      entry->spatial_spark_.emplace(systems::spatial_spark_build_resident(
          entry->left_, entry->right_, entry->config_.build_query,
          entry->config_.exec, entry->config_.spatial_spark));
      break;
  }
  entry->left_tree_ = build_envelope_tree(entry->left_);
  entry->right_tree_ = build_envelope_tree(entry->right_);

  std::lock_guard<std::mutex> lock(mutex_);
  entries_[name] = entry;  // replace: old entry drains via its shared_ptr
  return entry;
}

std::shared_ptr<const ResidentEntry> ResidentCatalog::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

bool ResidentCatalog::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.erase(name) > 0;
}

std::size_t ResidentCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::string> ResidentCatalog::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sjc::serving
