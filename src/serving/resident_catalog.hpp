// ResidentCatalog: cross-query resident state for the serving layer.
//
// The paper's experiments are batch runs: every query pays the full
// preprocess / global-join / local-join pipeline. A query-serving
// deployment of the same systems amortizes the preprocessing instead — the
// partition directories, the indexed block files, the occupancy bitmaps
// and the prepared-geometry handles survive between queries. The catalog
// holds exactly that: one ResidentEntry per (system, dataset pair),
// built once via the systems' capture-on-build resident constructors
// (spatial_hadoop_build_resident & friends) so that every resident query
// is bit-identical to the cold batch path (test-enforced by
// tests/test_serving.cpp).
//
// Each entry owns:
//  * the system-specific resident state (partitioned splits + joint scheme
//    + sFilter bitmaps for HadoopGIS; both indexed partition directories
//    for SpatialHadoop; the parsed feature store + chunk views + broadcast
//    scheme/filters for SpatialSpark);
//  * STR trees over both datasets' envelopes, answering range and k-NN
//    queries without touching the join machinery;
//  * a shared thread-safe geom::PreparedCache, passed into every resident
//    join so prepared-geometry handles built by one query are reused by
//    the next (cross-query reuse — the serving win LocationSpark
//    demonstrates within a query). The cache is per-entry, not global:
//    cache keys are feature ids, which collide across datasets.
//
// Entries are immutable after install (the PreparedCache is internally
// synchronized), so any number of queries — across tenants and worker
// threads — can run against one entry concurrently.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/spatial_join.hpp"
#include "geom/prepared_cache.hpp"
#include "index/nearest.hpp"
#include "index/str_tree.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"

namespace sjc::serving {

struct ResidentEntryConfig {
  core::SystemKind system = core::SystemKind::kSpatialHadoopSim;
  /// The query the resident state is built for. Joins answered from the
  /// entry must use the same envelope expansion (same predicate family) —
  /// the resident runners reject a mismatch with kInvalidArgument.
  core::JoinQueryConfig build_query;
  /// Cluster geometry and scale for the build run and every query against
  /// this entry. Fixed per entry: the resident partition directories are a
  /// function of the cluster's slot count.
  core::ExecutionConfig exec;
  systems::HadoopGisConfig hadoop_gis;
  systems::SpatialHadoopConfig spatial_hadoop;
  systems::SpatialSparkConfig spatial_spark;
};

class ResidentEntry {
 public:
  const std::string& name() const { return name_; }
  core::SystemKind system() const { return config_.system; }
  const ResidentEntryConfig& config() const { return config_; }
  const workload::Dataset& left() const { return left_; }
  const workload::Dataset& right() const { return right_; }

  /// The full RunReport of the cold batch run that built this entry.
  const core::RunReport& build_report() const;

  /// The entry's shared cross-query bind() cache (thread-safe). Exposed so
  /// harnesses can assert hit rates; queries use it implicitly.
  geom::PreparedCache& prepared_cache() const { return prepared_cache_; }

  /// Answers one spatial-join query from resident state on the entry's
  /// system. Thread-safe; bit-identical pairs and refine.*/shuffle.*
  /// counters vs the cold batch path. Simulated failures come back as a
  /// failed RunReport, never an exception.
  core::RunReport run_join(const core::JoinQueryConfig& query) const;

  /// MBR range query over one side's envelopes (the filter-step semantics
  /// every system's global join uses): record indexes, ascending.
  std::vector<std::uint32_t> run_range(const geom::Envelope& window,
                                       bool left_side) const;

  /// k nearest records of one side by envelope distance (ascending,
  /// ties by record index) — the Hjaltason–Samet traversal over the
  /// entry's STR tree.
  std::vector<index::NearestHit> run_knn(const geom::Envelope& query, std::size_t k,
                                         bool left_side) const;

 private:
  friend class ResidentCatalog;
  ResidentEntry() = default;

  std::string name_;
  ResidentEntryConfig config_;
  workload::Dataset left_;
  workload::Dataset right_;
  // Exactly one is engaged, matching config_.system.
  std::optional<systems::HadoopGisResident> gis_;
  std::optional<systems::SpatialHadoopResident> spatial_hadoop_;
  std::optional<systems::SpatialSparkResident> spatial_spark_;
  std::unique_ptr<index::StrTree> left_tree_;
  std::unique_ptr<index::StrTree> right_tree_;
  // Thread-safe; mutable because cache population is not logical mutation
  // of the (immutable) entry.
  mutable geom::PreparedCache prepared_cache_;
};

class ResidentCatalog {
 public:
  ResidentCatalog() = default;
  ResidentCatalog(const ResidentCatalog&) = delete;
  ResidentCatalog& operator=(const ResidentCatalog&) = delete;

  /// Builds resident state for (left, right) on config.system — one cold
  /// end-to-end run via the system's capture-on-build constructor — plus
  /// the STR trees, and installs the entry under `name` (replacing any
  /// previous entry with that name; in-flight queries against the old
  /// entry finish safely on their shared_ptr). Throws SjcError when the
  /// build run fails.
  std::shared_ptr<const ResidentEntry> install(const std::string& name,
                                               const workload::Dataset& left,
                                               const workload::Dataset& right,
                                               ResidentEntryConfig config);

  /// nullptr when `name` is not installed.
  std::shared_ptr<const ResidentEntry> find(const std::string& name) const;

  /// Invalidation: drops the entry. Queries holding the shared_ptr finish
  /// against the dropped state. Returns false when absent.
  bool erase(const std::string& name);

  std::size_t size() const;
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const ResidentEntry>> entries_;
};

}  // namespace sjc::serving
