// SimDfs: an HDFS-like distributed file system simulator.
//
// The simulator runs in one process, so file *payloads* stay in memory as
// typed objects (std::any). What SimDfs faithfully models is everything the
// paper's analysis hangs on:
//
//  * a namenode catalog (path -> file metadata),
//  * files split into fixed-size blocks (one map task per block),
//  * block placement with n-way replication across datanodes,
//  * the cost structure of reads/writes: a write pushes `size` bytes to a
//    local disk plus (replication-1) remote copies over the network; a
//    data-local read costs disk bandwidth only, a remote read adds network,
//  * datanode failure: fail_datanode(n) drops every replica hosted on n,
//    re-replicates under-replicated blocks onto surviving nodes (charging
//    the copy traffic, like the HDFS namenode's re-replication queue), and
//    marks files whose blocks lost *all* replicas — reading those throws
//    BlockUnavailable.
//
// Engines charge those byte volumes into SimTask records; SimDfs itself
// never advances a clock.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::dfs {

struct DfsConfig {
  /// Block size in *scaled* bytes (the engines divide HDFS's 64 MB default
  /// by the experiment's data_scale so files keep realistic block counts).
  std::uint64_t block_size = 64 * 1024;
  std::uint32_t replication = 3;
  std::uint32_t datanode_count = 1;
  std::uint64_t seed = 42;  // block placement determinism
};

struct BlockMeta {
  std::uint64_t size = 0;
  std::vector<std::uint32_t> replica_nodes;
};

struct FileMeta {
  std::string path;
  std::uint64_t size = 0;
  std::vector<BlockMeta> blocks;
};

/// Byte volumes one DFS operation moves through each device class.
struct IoCost {
  std::uint64_t disk_read = 0;
  std::uint64_t disk_write = 0;
  std::uint64_t network = 0;
};

/// What restoring replication after a datanode loss did and cost.
struct ReplicationRepair {
  /// Blocks that lost *every* replica — their files are unreadable.
  std::size_t blocks_lost = 0;
  /// Blocks that lost a replica but still had survivors.
  std::size_t under_replicated = 0;
  /// Bytes actually copied to restore the replication target.
  std::uint64_t bytes_rereplicated = 0;
  /// Device traffic of the repair: each copied block is read from a
  /// surviving replica, shipped over the network, written to a new node.
  IoCost cost;
};

class SimDfs {
 public:
  explicit SimDfs(DfsConfig config);

  const DfsConfig& config() const { return config_; }

  /// Creates (or replaces) a file: records metadata and stores `payload`.
  /// `bytes` is the file's logical size at scaled magnitude.
  void put(const std::string& path, std::any payload, std::uint64_t bytes);

  /// Typed payload accessor; throws SjcError when missing or mistyped and
  /// BlockUnavailable when datanode failures destroyed every replica of one
  /// of the file's blocks.
  template <typename T>
  const T& get(const std::string& path) const {
    const auto it = files_.find(path);
    if (it == files_.end()) throw SjcError("SimDfs: no such file: " + path);
    if (it->second.lost) {
      throw BlockUnavailable("SimDfs: " + path +
                             ": all replicas lost to datanode failures");
    }
    const T* typed = std::any_cast<T>(&it->second.payload);
    if (typed == nullptr) throw SjcError("SimDfs: payload type mismatch: " + path);
    return *typed;
  }

  bool exists(const std::string& path) const { return files_.contains(path); }
  void remove(const std::string& path);
  const FileMeta& meta(const std::string& path) const;

  /// Paths with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix) const;

  std::uint64_t file_size(const std::string& path) const;
  std::size_t block_count(const std::string& path) const;

  /// Total logical bytes stored (single copy, not counting replicas).
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Cost of writing `bytes` with the configured replication: one local
  /// disk write per replica plus (replication-1) network transfers.
  IoCost write_cost(std::uint64_t bytes) const;

  /// Cost of reading `bytes`, data-local with probability equal to the
  /// replica coverage (replication/live datanodes, capped at 1); remote
  /// reads add a network hop. Deterministic expected-value model.
  IoCost read_cost(std::uint64_t bytes) const;

  // ---- datanode failure & recovery ----------------------------------------

  /// Kills datanode `node`: every replica it hosted disappears. Blocks that
  /// still have survivors are re-replicated onto live nodes (deterministic
  /// target choice, traffic charged in the returned repair); blocks whose
  /// last replica died mark their file lost — get<T>() on it throws
  /// BlockUnavailable. Idempotent: failing a dead node is a no-op repair.
  ReplicationRepair fail_datanode(std::uint32_t node);

  bool node_alive(std::uint32_t node) const { return !dead_nodes_.contains(node); }
  std::uint32_t live_datanode_count() const {
    return config_.datanode_count - static_cast<std::uint32_t>(dead_nodes_.size());
  }
  /// True when datanode failures destroyed every replica of some block of
  /// `path` (reads will throw BlockUnavailable).
  bool lost(const std::string& path) const { return entry(path).lost; }

 private:
  struct Entry {
    FileMeta meta;
    std::any payload;
    bool lost = false;
  };

  std::vector<BlockMeta> place_blocks(std::uint64_t bytes);
  std::vector<std::uint32_t> live_nodes() const;

  DfsConfig config_;
  std::map<std::string, Entry> files_;
  std::uint64_t total_bytes_ = 0;
  Rng rng_;
  std::uint32_t next_node_ = 0;  // rotation index into the live-node list
  std::set<std::uint32_t> dead_nodes_;

  // map path lookup helper
  const Entry& entry(const std::string& path) const;
};

}  // namespace sjc::dfs
