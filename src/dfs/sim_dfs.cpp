#include "dfs/sim_dfs.hpp"

#include <algorithm>

namespace sjc::dfs {

SimDfs::SimDfs(DfsConfig config) : config_(config), rng_(config.seed) {
  require(config_.block_size > 0, "SimDfs: block_size must be positive");
  require(config_.replication >= 1, "SimDfs: replication must be >= 1");
  require(config_.datanode_count >= 1, "SimDfs: need at least one datanode");
  next_node_ = static_cast<std::uint32_t>(rng_.next_below(config_.datanode_count));
}

std::vector<BlockMeta> SimDfs::place_blocks(std::uint64_t bytes) {
  std::vector<BlockMeta> blocks;
  const std::uint32_t replicas =
      std::min(config_.replication, config_.datanode_count);
  std::uint64_t remaining = bytes;
  do {
    BlockMeta block;
    block.size = std::min(remaining, config_.block_size);
    // HDFS default placement: first replica on the "writer" node, the rest
    // rotate across the cluster.
    for (std::uint32_t r = 0; r < replicas; ++r) {
      block.replica_nodes.push_back((next_node_ + r) % config_.datanode_count);
    }
    next_node_ = (next_node_ + 1) % config_.datanode_count;
    blocks.push_back(std::move(block));
    remaining -= std::min(remaining, config_.block_size);
  } while (remaining > 0);
  return blocks;
}

void SimDfs::put(const std::string& path, std::any payload, std::uint64_t bytes) {
  Entry entry;
  entry.meta.path = path;
  entry.meta.size = bytes;
  entry.meta.blocks = place_blocks(bytes);
  entry.payload = std::move(payload);
  const auto it = files_.find(path);
  if (it != files_.end()) {
    total_bytes_ -= it->second.meta.size;
    files_.erase(it);
  }
  total_bytes_ += bytes;
  files_.emplace(path, std::move(entry));
}

void SimDfs::remove(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) throw SjcError("SimDfs: cannot remove missing file: " + path);
  total_bytes_ -= it->second.meta.size;
  files_.erase(it);
}

const SimDfs::Entry& SimDfs::entry(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) throw SjcError("SimDfs: no such file: " + path);
  return it->second;
}

const FileMeta& SimDfs::meta(const std::string& path) const {
  return entry(path).meta;
}

std::vector<std::string> SimDfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t SimDfs::file_size(const std::string& path) const {
  return entry(path).meta.size;
}

std::size_t SimDfs::block_count(const std::string& path) const {
  return entry(path).meta.blocks.size();
}

IoCost SimDfs::write_cost(std::uint64_t bytes) const {
  const std::uint32_t replicas =
      std::min(config_.replication, config_.datanode_count);
  IoCost cost;
  cost.disk_write = bytes * replicas;
  cost.network = bytes * (replicas - 1);
  return cost;
}

IoCost SimDfs::read_cost(std::uint64_t bytes) const {
  IoCost cost;
  cost.disk_read = bytes;
  const double coverage =
      std::min(1.0, static_cast<double>(config_.replication) /
                        static_cast<double>(config_.datanode_count));
  // Expected remote fraction: blocks without a replica on the reading node.
  const double remote_fraction = 1.0 - coverage;
  cost.network = static_cast<std::uint64_t>(static_cast<double>(bytes) * remote_fraction);
  return cost;
}

}  // namespace sjc::dfs
