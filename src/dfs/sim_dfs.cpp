#include "dfs/sim_dfs.hpp"

#include <algorithm>

namespace sjc::dfs {

SimDfs::SimDfs(DfsConfig config) : config_(config), rng_(config.seed) {
  require(config_.block_size > 0, "SimDfs: block_size must be positive");
  require(config_.replication >= 1, "SimDfs: replication must be >= 1");
  require(config_.datanode_count >= 1, "SimDfs: need at least one datanode");
  next_node_ = static_cast<std::uint32_t>(rng_.next_below(config_.datanode_count));
}

std::vector<std::uint32_t> SimDfs::live_nodes() const {
  std::vector<std::uint32_t> live;
  live.reserve(config_.datanode_count - dead_nodes_.size());
  for (std::uint32_t n = 0; n < config_.datanode_count; ++n) {
    if (!dead_nodes_.contains(n)) live.push_back(n);
  }
  return live;
}

std::vector<BlockMeta> SimDfs::place_blocks(std::uint64_t bytes) {
  const std::vector<std::uint32_t> live = live_nodes();
  if (live.empty()) {
    throw BlockUnavailable("SimDfs: cannot place blocks, no live datanodes");
  }
  std::vector<BlockMeta> blocks;
  const std::uint32_t replicas = std::min(
      config_.replication, static_cast<std::uint32_t>(live.size()));
  std::uint64_t remaining = bytes;
  do {
    BlockMeta block;
    block.size = std::min(remaining, config_.block_size);
    // HDFS default placement: first replica on the "writer" node, the rest
    // rotate across the (live part of the) cluster.
    for (std::uint32_t r = 0; r < replicas; ++r) {
      block.replica_nodes.push_back(live[(next_node_ + r) % live.size()]);
    }
    next_node_ = static_cast<std::uint32_t>((next_node_ + 1) % live.size());
    blocks.push_back(std::move(block));
    remaining -= std::min(remaining, config_.block_size);
  } while (remaining > 0);
  return blocks;
}

void SimDfs::put(const std::string& path, std::any payload, std::uint64_t bytes) {
  Entry entry;
  entry.meta.path = path;
  entry.meta.size = bytes;
  entry.meta.blocks = place_blocks(bytes);
  entry.payload = std::move(payload);
  const auto it = files_.find(path);
  if (it != files_.end()) {
    total_bytes_ -= it->second.meta.size;
    files_.erase(it);
  }
  total_bytes_ += bytes;
  files_.emplace(path, std::move(entry));
}

void SimDfs::remove(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) throw SjcError("SimDfs: cannot remove missing file: " + path);
  total_bytes_ -= it->second.meta.size;
  files_.erase(it);
}

const SimDfs::Entry& SimDfs::entry(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) throw SjcError("SimDfs: no such file: " + path);
  return it->second;
}

const FileMeta& SimDfs::meta(const std::string& path) const {
  return entry(path).meta;
}

std::vector<std::string> SimDfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t SimDfs::file_size(const std::string& path) const {
  return entry(path).meta.size;
}

std::size_t SimDfs::block_count(const std::string& path) const {
  return entry(path).meta.blocks.size();
}

IoCost SimDfs::write_cost(std::uint64_t bytes) const {
  const std::uint32_t live = live_datanode_count();
  require(live >= 1, "SimDfs: write_cost with no live datanodes");
  const std::uint32_t replicas = std::min(config_.replication, live);
  IoCost cost;
  cost.disk_write = bytes * replicas;
  cost.network = bytes * (replicas - 1);
  return cost;
}

IoCost SimDfs::read_cost(std::uint64_t bytes) const {
  const std::uint32_t live = live_datanode_count();
  require(live >= 1, "SimDfs: read_cost with no live datanodes");
  IoCost cost;
  cost.disk_read = bytes;
  const double coverage =
      std::min(1.0, static_cast<double>(config_.replication) /
                        static_cast<double>(live));
  // Expected remote fraction: blocks without a replica on the reading node.
  const double remote_fraction = 1.0 - coverage;
  cost.network = static_cast<std::uint64_t>(static_cast<double>(bytes) * remote_fraction);
  return cost;
}

ReplicationRepair SimDfs::fail_datanode(std::uint32_t node) {
  require(node < config_.datanode_count, "SimDfs: fail_datanode: no such node");
  ReplicationRepair repair;
  if (dead_nodes_.contains(node)) return repair;  // already dead: no-op
  dead_nodes_.insert(node);

  const std::vector<std::uint32_t> live = live_nodes();
  for (auto& [path, entry] : files_) {
    for (BlockMeta& block : entry.meta.blocks) {
      const auto it =
          std::find(block.replica_nodes.begin(), block.replica_nodes.end(), node);
      if (it == block.replica_nodes.end()) continue;
      block.replica_nodes.erase(it);
      if (block.replica_nodes.empty()) {
        ++repair.blocks_lost;
        entry.lost = true;
        continue;
      }
      ++repair.under_replicated;
      // Namenode re-replication: copy the block from a surviving replica to
      // the first live node not already holding it (deterministic choice).
      for (const std::uint32_t candidate : live) {
        if (std::find(block.replica_nodes.begin(), block.replica_nodes.end(),
                      candidate) != block.replica_nodes.end()) {
          continue;
        }
        block.replica_nodes.push_back(candidate);
        repair.bytes_rereplicated += block.size;
        repair.cost.disk_read += block.size;
        repair.cost.disk_write += block.size;
        repair.cost.network += block.size;
        break;
      }
    }
  }
  return repair;
}

}  // namespace sjc::dfs
