#include "workload/dataset_io.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "workload/tsv.hpp"

namespace sjc::workload {

void write_tsv_file(const Dataset& dataset, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw SjcError("write_tsv_file: cannot open " + path);
  for (const auto& feature : dataset.features()) {
    const std::string line = feature_to_tsv(feature) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      throw SjcError("write_tsv_file: short write to " + path);
    }
  }
  if (std::fclose(f) != 0) throw SjcError("write_tsv_file: close failed for " + path);
}

Dataset read_tsv_file(const std::string& path, const std::string& name,
                      std::uint64_t attr_pad_bytes, RowQuarantine* quarantine) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) throw SjcError("read_tsv_file: cannot open " + path);

  std::vector<geom::Feature> features;
  std::string line;
  std::string error;
  int c = 0;
  while (c != EOF) {
    line.clear();
    while ((c = std::fgetc(f)) != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
    }
    if (line.empty()) continue;
    if (quarantine != nullptr) {
      if (auto feature = try_feature_from_tsv(line, &error)) {
        features.push_back(std::move(*feature));
      } else {
        quarantine->divert("read_tsv_file[" + name + "]", line, error);
      }
      continue;
    }
    try {
      features.push_back(feature_from_tsv(line));
    } catch (...) {
      std::fclose(f);
      throw;
    }
  }
  std::fclose(f);
  return Dataset(name, std::move(features), attr_pad_bytes);
}

}  // namespace sjc::workload
