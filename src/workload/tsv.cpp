#include "workload/tsv.hpp"

#include "geom/wkt.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace sjc::workload {

std::string feature_to_tsv(const geom::Feature& feature, std::size_t pad_bytes) {
  std::string line = std::to_string(feature.id) + "\t" + geom::to_wkt(feature.geometry);
  if (pad_bytes > 0) {
    line.push_back('\t');
    line.append(pad_bytes, 'a');
  }
  return line;
}

geom::Feature feature_from_tsv(std::string_view line) {
  return feature_from_tsv_at(line, 0);
}

geom::Feature feature_from_tsv_at(std::string_view line, std::size_t field_offset) {
  std::string_view rest = line;
  for (std::size_t skip = 0; skip < field_offset; ++skip) {
    const auto tab = rest.find('\t');
    if (tab == std::string_view::npos) {
      throw ParseError("feature_from_tsv_at: too few fields in '" + std::string(line) +
                       "'");
    }
    rest = rest.substr(tab + 1);
  }
  const auto tab = rest.find('\t');
  if (tab == std::string_view::npos) {
    throw ParseError("feature_from_tsv: missing wkt field in '" + std::string(line) + "'");
  }
  geom::Feature feature;
  feature.id = parse_u64(rest.substr(0, tab));
  std::string_view wkt = rest.substr(tab + 1);
  // Trailing attribute fields (if any) end the WKT at the next tab.
  const auto wkt_end = wkt.find('\t');
  if (wkt_end != std::string_view::npos) wkt = wkt.substr(0, wkt_end);
  feature.geometry = geom::from_wkt(wkt);
  return feature;
}

std::optional<geom::Feature> try_feature_from_tsv(std::string_view line,
                                                  std::string* error) {
  return try_feature_from_tsv_at(line, 0, error);
}

std::optional<geom::Feature> try_feature_from_tsv_at(std::string_view line,
                                                     std::size_t field_offset,
                                                     std::string* error) {
  try {
    return feature_from_tsv_at(line, field_offset);
  } catch (const ParseError& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::vector<std::string> dataset_to_tsv(const Dataset& dataset, bool include_pad) {
  std::vector<std::string> lines;
  lines.reserve(dataset.size());
  const std::size_t pad = include_pad ? dataset.attr_pad_bytes() : 0;
  for (const auto& f : dataset.features()) lines.push_back(feature_to_tsv(f, pad));
  return lines;
}

}  // namespace sjc::workload
