// Synthetic workload generators mirroring the paper's datasets.
//
// The paper evaluates two joins over four public datasets none of which can
// be shipped here (Table 1: NYC taxi 2013 pickups 6.9 GB, NYC census
// blocks, TIGER edges 23.8 GB, TIGER linearwater 8.4 GB). These generators
// produce statistically similar stand-ins at a configurable scale (record
// counts multiplied by `scale`), preserving the join-relevant structure:
//
//  * taxi        — points with heavy urban skew (Gaussian hotspot mixture
//                  over an NYC-sized extent + uniform background);
//  * nycb        — census-block polygons that tile the extent (every taxi
//                  point falls in ~exactly one block), built from a jittered
//                  lattice so blocks are irregular but non-overlapping;
//  * edges       — many short street-segment polylines, density following
//                  the same urban skew;
//  * linearwater — few long winding river/stream polylines.
//
// Derived datasets follow the paper: taxi1m (one month = 1/12 of taxi),
// edges0.1 / linearwater0.1 (10% Bernoulli samples).
//
// All generation is deterministic in (config.seed, scale).
#pragma once

#include <cstdint>

#include "workload/dataset.hpp"

namespace sjc::workload {

enum class DatasetId {
  kTaxi = 0,
  kTaxi1m = 1,
  kNycb = 2,
  kEdges = 3,
  kLinearwater = 4,
  kEdges01 = 5,
  kLinearwater01 = 6,
};

const char* dataset_id_name(DatasetId id);

/// Paper-reported record count for the full dataset (Table 1).
std::uint64_t paper_record_count(DatasetId id);

/// Paper-reported on-disk size in bytes (Table 1).
std::uint64_t paper_size_bytes(DatasetId id);

struct WorkloadConfig {
  /// Fraction of the paper's record counts to generate (also the factor by
  /// which simulated time/memory accounting scales back up: data_scale =
  /// 1/scale).
  double scale = 1e-3;
  std::uint64_t seed = 2015;
  /// World extent in meters; defaults to an NYC-sized ~50 km square.
  geom::Envelope extent = geom::Envelope(0.0, 0.0, 50000.0, 50000.0);
};

/// Generates any of the seven datasets at the configured scale.
Dataset generate(DatasetId id, const WorkloadConfig& config);

Dataset generate_taxi(const WorkloadConfig& config);
Dataset generate_taxi1m(const WorkloadConfig& config);
Dataset generate_nycb(const WorkloadConfig& config);
Dataset generate_edges(const WorkloadConfig& config);
Dataset generate_linearwater(const WorkloadConfig& config);

/// Bernoulli-samples a fraction of `source` (used for the 0.1 datasets).
Dataset sample_fraction(const Dataset& source, const std::string& name, double fraction,
                        std::uint64_t seed);

}  // namespace sjc::workload
