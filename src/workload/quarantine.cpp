#include "workload/quarantine.hpp"

#include "util/rng.hpp"

namespace sjc::workload {

void RowQuarantine::divert(std::string_view where, std::string_view line,
                           std::string_view reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  if (samples_.size() < sample_capacity_) {
    std::string entry;
    entry.reserve(where.size() + line.size() + reason.size() + 6);
    entry.append(where);
    entry.append(": ");
    entry.append(line);
    entry.append(" (");
    entry.append(reason);
    entry.push_back(')');
    samples_.push_back(std::move(entry));
  }
}

std::uint64_t RowQuarantine::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::vector<std::string> RowQuarantine::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

void RowQuarantine::flush_counters(cluster::Counters& counters) const {
  const std::uint64_t n = count();
  if (n > 0) counters.add("input.quarantined_rows", n);
}

namespace {
constexpr std::string_view kJunkMarker = "XJUNK";
}

void inject_malformed_rows(std::vector<std::string>& lines, std::uint64_t count,
                           std::uint64_t seed) {
  if (count == 0) return;
  Rng rng(seed ^ 0x6a756e6bULL);  // decorrelate from other uses of the seed
  for (std::uint64_t k = 0; k < count; ++k) {
    // Four junk shapes covering the parse failure modes: bad id, unknown
    // WKT tag, bad coordinate, missing field. Every shape carries the
    // marker and fails feature_from_tsv.
    std::string junk;
    switch (k % 4) {
      case 0:
        junk = std::string(kJunkMarker) + "\tPOINT (1 2)";
        break;
      case 1:
        junk = std::to_string(900000000 + k) + "\t" + std::string(kJunkMarker) +
               " (0 0)";
        break;
      case 2:
        junk = std::to_string(900000000 + k) + "\tPOINT (" +
               std::string(kJunkMarker) + " " + std::to_string(k) + ")";
        break;
      default:
        junk = std::string(kJunkMarker) + "-row-" + std::to_string(k);
        break;
    }
    const auto pos = static_cast<std::ptrdiff_t>(
        rng.next_below(static_cast<std::uint64_t>(lines.size()) + 1));
    lines.insert(lines.begin() + pos, std::move(junk));
  }
}

bool is_injected_junk(std::string_view line) {
  return line.find(kJunkMarker) != std::string_view::npos;
}

}  // namespace sjc::workload
