// Dataset: an in-memory spatial dataset with the bookkeeping the simulated
// systems need.
//
// Each dataset tracks two byte measures:
//  * text_bytes — the size of the dataset serialized as TSV records
//    ("<id>\t<wkt>" plus an attribute-padding allowance matching the
//    paper's per-record byte footprint); this is what DFS reads/writes and
//    streaming pipes carry;
//  * memory_bytes — the in-memory geometry footprint; this is what the RDD
//    memory manager sees.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/envelope.hpp"
#include "geom/geometry.hpp"

namespace sjc::workload {

class Dataset {
 public:
  Dataset() = default;
  /// `attr_pad_bytes` models non-spatial attribute columns that ride along
  /// with each record on disk but are never parsed by the joins.
  Dataset(std::string name, std::vector<geom::Feature> features,
          std::uint64_t attr_pad_bytes);

  const std::string& name() const { return name_; }
  const std::vector<geom::Feature>& features() const { return features_; }
  std::size_t size() const { return features_.size(); }
  std::uint64_t attr_pad_bytes() const { return attr_pad_; }

  const geom::Envelope& extent() const { return extent_; }
  std::uint64_t text_bytes() const { return text_bytes_; }
  std::uint64_t memory_bytes() const { return memory_bytes_; }

  /// Average coordinates per record (geometry complexity).
  double mean_coords() const;

  /// On-disk TSV size of one record (id + wkt + attribute padding). Called
  /// once per record per sizer in every MR job — kept inline and unchecked.
  std::uint64_t record_text_bytes(std::size_t i) const {
    return 12 + wkt_sizes_[i] + attr_pad_;
  }

  /// Envelopes of all features, in feature order. Built once at
  /// construction; the span stays valid for the dataset's lifetime.
  std::span<const geom::Envelope> envelopes() const { return envelopes_; }

  /// Splits feature indices into `n` contiguous chunks (HDFS-block-like
  /// splits of the raw file).
  std::vector<std::pair<std::size_t, std::size_t>> split_ranges(std::size_t n) const;

 private:
  std::string name_;
  std::vector<geom::Feature> features_;
  std::vector<std::uint32_t> wkt_sizes_;  // cached per-record WKT length
  std::vector<geom::Envelope> envelopes_;  // cached per-record envelope
  std::uint64_t attr_pad_ = 0;
  std::uint64_t text_bytes_ = 0;
  std::uint64_t memory_bytes_ = 0;
  geom::Envelope extent_;
};

}  // namespace sjc::workload
