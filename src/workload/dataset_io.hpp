// Dataset file I/O: real TSV files on the local filesystem.
//
// The generators cover the paper's experiments, but a usable library must
// ingest the user's own data. The format is the streaming pipeline's
// record format — one "<id>\t<wkt>" line per feature — so exported files
// are directly inspectable and round-trip exactly.
#pragma once

#include <string>

#include "workload/dataset.hpp"
#include "workload/quarantine.hpp"

namespace sjc::workload {

/// Writes `dataset` to `path` as TSV ("<id>\t<wkt>" lines). Throws SjcError
/// on I/O failure.
void write_tsv_file(const Dataset& dataset, const std::string& path);

/// Reads a TSV dataset written by write_tsv_file (or hand-made in the same
/// format; blank lines are skipped). `name` labels the dataset;
/// `attr_pad_bytes` sets the accounted per-record attribute footprint.
/// Throws SjcError on I/O failure.
///
/// Malformed lines: with `quarantine == nullptr` (the default) the first
/// bad line throws ParseError, exactly as before. With a quarantine
/// attached, bad lines are diverted there and the read continues — the
/// hardened ingest path.
Dataset read_tsv_file(const std::string& path, const std::string& name,
                      std::uint64_t attr_pad_bytes = 0,
                      RowQuarantine* quarantine = nullptr);

}  // namespace sjc::workload
