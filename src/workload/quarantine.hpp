// Input-row quarantine: the sink for malformed records on hardened parse
// paths.
//
// A production ingest job cannot die because one record out of a billion
// carries broken WKT — real Hadoop pipelines divert such records to a
// "bad records" side file and keep the job alive. RowQuarantine is that
// side file's simulator analog: parse sites call try_* parse variants and
// hand rejects here instead of throwing mid-phase. The sink is thread-safe
// (mappers on the pool reject concurrently), keeps a bounded sample of the
// offending lines for diagnosis, and reports totals into the run's named
// counters ("input.quarantined_rows").
//
// The chaos sweep's malformed-row injection (FaultPlan::malformed_rows)
// appends *extra* junk lines to raw inputs — it never corrupts real rows —
// so a run that quarantines every junk line produces a join result
// bit-identical to the fault-free run. That is the invariant the sweep
// asserts.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/counters.hpp"

namespace sjc::workload {

/// Thread-safe sink for rows rejected by hardened parse paths.
class RowQuarantine {
 public:
  /// Keeps at most `sample_capacity` rejected lines for diagnosis.
  explicit RowQuarantine(std::size_t sample_capacity = 8)
      : sample_capacity_(sample_capacity) {}

  RowQuarantine(const RowQuarantine&) = delete;
  RowQuarantine& operator=(const RowQuarantine&) = delete;

  /// Diverts one malformed row. `where` names the parse site (phase or
  /// stage), `reason` is the parse error text.
  void divert(std::string_view where, std::string_view line,
              std::string_view reason);

  /// Total rows diverted so far.
  std::uint64_t count() const;

  /// Up to sample_capacity "<where>: <line> (<reason>)" diagnostics, in
  /// divert order.
  std::vector<std::string> samples() const;

  /// Adds this sink's totals to `counters` as "input.quarantined_rows"
  /// (only when nonzero). Call once, after the run's parallel work drained.
  void flush_counters(cluster::Counters& counters) const;

 private:
  const std::size_t sample_capacity_;
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  std::vector<std::string> samples_;
};

/// Appends `count` deterministic junk lines (tab-separated records with
/// broken WKT) to `lines`, interleaved at seeded pseudo-random positions so
/// they land in different splits/partitions run to run only as a function
/// of `seed`. Every produced line fails feature_from_tsv, so hardened
/// paths divert all of them and survivors stay bit-identical.
void inject_malformed_rows(std::vector<std::string>& lines, std::uint64_t count,
                           std::uint64_t seed);

/// True when `line` is one of inject_malformed_rows' junk lines (tests).
bool is_injected_junk(std::string_view line);

}  // namespace sjc::workload
