#include "workload/dataset.hpp"

#include "geom/wkt.hpp"
#include "util/status.hpp"

namespace sjc::workload {

Dataset::Dataset(std::string name, std::vector<geom::Feature> features,
                 std::uint64_t attr_pad_bytes)
    : name_(std::move(name)), features_(std::move(features)), attr_pad_(attr_pad_bytes) {
  wkt_sizes_.reserve(features_.size());
  envelopes_.reserve(features_.size());
  for (const auto& f : features_) {
    // WKT length without materializing all strings permanently.
    const auto len = static_cast<std::uint32_t>(geom::to_wkt(f.geometry).size());
    wkt_sizes_.push_back(len);
    const std::uint64_t record = 12 + len + attr_pad_;  // "<id>\t" + wkt + attrs + '\n'
    text_bytes_ += record;
    memory_bytes_ += f.geometry.size_bytes();
    envelopes_.push_back(f.geometry.envelope());
    extent_.expand_to_include(envelopes_.back());
  }
}

double Dataset::mean_coords() const {
  if (features_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& f : features_) total += f.geometry.num_coords();
  return static_cast<double>(total) / static_cast<double>(features_.size());
}

std::vector<std::pair<std::size_t, std::size_t>> Dataset::split_ranges(
    std::size_t n) const {
  require(n >= 1, "Dataset::split_ranges: need at least one split");
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t total = features_.size();
  const std::size_t per = (total + n - 1) / std::max<std::size_t>(n, 1);
  for (std::size_t begin = 0; begin < total; begin += per) {
    out.emplace_back(begin, std::min(begin + per, total));
  }
  if (out.empty()) out.emplace_back(0, 0);
  return out;
}

}  // namespace sjc::workload
