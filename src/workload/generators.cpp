#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace sjc::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Paper Table 1.
struct PaperFacts {
  std::uint64_t records;
  std::uint64_t bytes;
};

PaperFacts paper_facts(DatasetId id) {
  constexpr std::uint64_t kMB = 1024ULL * 1024ULL;
  constexpr std::uint64_t kGB = 1024ULL * kMB;
  switch (id) {
    case DatasetId::kTaxi: return {169'720'892ULL, static_cast<std::uint64_t>(6.9 * kGB)};
    case DatasetId::kTaxi1m:
      return {169'720'892ULL / 12, static_cast<std::uint64_t>(0.575 * kGB)};
    case DatasetId::kNycb: return {38'839ULL, 19 * kMB};
    case DatasetId::kEdges: return {72'729'686ULL, static_cast<std::uint64_t>(23.8 * kGB)};
    case DatasetId::kLinearwater:
      return {5'857'442ULL, static_cast<std::uint64_t>(8.4 * kGB)};
    case DatasetId::kEdges01: return {7'271'983ULL, static_cast<std::uint64_t>(2.3 * kGB)};
    case DatasetId::kLinearwater01: return {585'809ULL, 852 * kMB};
  }
  return {0, 0};
}

// Urban hotspot mixture shared by taxi and edges (both follow population
// density).
struct Hotspots {
  struct Spot {
    double x;
    double y;
    double sigma;
    double weight;  // cumulative
  };
  std::vector<Spot> spots;

  static Hotspots make(const geom::Envelope& extent, std::uint64_t seed) {
    Hotspots h;
    Rng rng(seed ^ 0x9073507aULL);
    const std::size_t k = 12;
    double cumulative = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      Hotspots::Spot spot{};
      // Cluster hotspots toward the center (Manhattan-like core).
      spot.x = extent.center_x() + rng.normal(0.0, extent.width() / 6.0);
      spot.y = extent.center_y() + rng.normal(0.0, extent.height() / 6.0);
      spot.x = std::clamp(spot.x, extent.min_x(), extent.max_x());
      spot.y = std::clamp(spot.y, extent.min_y(), extent.max_y());
      spot.sigma = extent.width() * rng.uniform(0.01, 0.06);
      cumulative += rng.uniform(0.4, 1.0);
      spot.weight = cumulative;
      h.spots.push_back(spot);
    }
    for (auto& s : h.spots) s.weight /= cumulative;
    return h;
  }

  geom::Coord draw(Rng& rng, const geom::Envelope& extent, double skew_fraction) const {
    if (rng.next_double() >= skew_fraction) {
      return {rng.uniform(extent.min_x(), extent.max_x()),
              rng.uniform(extent.min_y(), extent.max_y())};
    }
    const double u = rng.next_double();
    const Spot* chosen = &spots.back();
    for (const auto& s : spots) {
      if (u <= s.weight) {
        chosen = &s;
        break;
      }
    }
    const double x =
        std::clamp(rng.normal(chosen->x, chosen->sigma), extent.min_x(), extent.max_x());
    const double y =
        std::clamp(rng.normal(chosen->y, chosen->sigma), extent.min_y(), extent.max_y());
    return {x, y};
  }
};

std::uint64_t scaled_count(DatasetId id, double scale) {
  const auto n = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(paper_facts(id).records) * scale));
  return std::max<std::uint64_t>(n, 4);
}

Dataset generate_points(const std::string& name, DatasetId id,
                        const WorkloadConfig& config, std::uint64_t seed_salt) {
  const std::uint64_t n = scaled_count(id, config.scale);
  const Hotspots hotspots = Hotspots::make(config.extent, config.seed);
  Rng rng(config.seed ^ seed_salt);
  std::vector<geom::Feature> features;
  features.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const geom::Coord c = hotspots.draw(rng, config.extent, /*skew_fraction=*/0.75);
    features.push_back({i, geom::Geometry::point(c.x, c.y)});
  }
  return Dataset(name, std::move(features), /*attr_pad_bytes=*/20);
}

// Deterministic jitter of a lattice corner, identical for all four adjacent
// cells (keyed on the lattice coordinates) so polygons share corners and
// the blocks tile without gaps or overlaps.
geom::Coord lattice_corner(std::uint32_t i, std::uint32_t j, std::uint32_t grid,
                           const geom::Envelope& extent, std::uint64_t seed) {
  const double cw = extent.width() / grid;
  const double ch = extent.height() / grid;
  double x = extent.min_x() + cw * i;
  double y = extent.min_y() + ch * j;
  // Interior corners jitter by up to 30% of a cell; border corners stay put
  // so the tiling still covers the full extent.
  if (i > 0 && i < grid && j > 0 && j < grid) {
    const std::uint64_t h = mix64(seed ^ (static_cast<std::uint64_t>(i) << 32 | j));
    const double jx = (static_cast<double>(h & 0xffff) / 65535.0 - 0.5) * 0.6;
    const double jy =
        (static_cast<double>((h >> 16) & 0xffff) / 65535.0 - 0.5) * 0.6;
    x += jx * cw;
    y += jy * ch;
  }
  return {x, y};
}

// Densifies the edge between lattice corners (ai, aj) -> (bi, bj) with `k`
// interior vertices jittered perpendicular to the edge. The chain is
// computed in *canonical* (undirected) order and reversed to match the
// traversal direction, so the two polygons sharing the edge emit identical
// vertex chains and the tiling stays exact.
void densify_edge(const geom::Coord& a, const geom::Coord& b, std::uint32_t ai,
                  std::uint32_t aj, std::uint32_t bi, std::uint32_t bj, std::uint32_t k,
                  double amplitude, std::uint64_t seed, std::uint32_t grid,
                  std::vector<geom::Coord>& out) {
  // Edges on the extent border stay straight (zero jitter): a jittered
  // outer boundary would open gaps no neighbouring block covers.
  const bool border = (ai == bi && (ai == 0 || ai == grid)) ||
                      (aj == bj && (aj == 0 || aj == grid));
  if (border) amplitude = 0.0;
  const std::uint64_t key_a = static_cast<std::uint64_t>(ai) << 32 | aj;
  const std::uint64_t key_b = static_cast<std::uint64_t>(bi) << 32 | bj;
  const bool canonical = key_a <= key_b;
  const geom::Coord& ca = canonical ? a : b;
  const geom::Coord& cb = canonical ? b : a;
  std::uint64_t h = mix64(seed ^ mix64(std::min(key_a, key_b)) ^
                          (std::max(key_a, key_b) * 0x9e3779b97f4a7c15ULL));

  std::vector<geom::Coord> chain;
  chain.reserve(k);
  const double dx = cb.x - ca.x;
  const double dy = cb.y - ca.y;
  const double len = std::sqrt(dx * dx + dy * dy);
  const double nx = len > 0 ? -dy / len : 0.0;
  const double ny = len > 0 ? dx / len : 0.0;
  for (std::uint32_t s = 1; s <= k; ++s) {
    const double t = static_cast<double>(s) / (k + 1);
    const double off = (static_cast<double>(splitmix64(h) & 0xffff) / 65535.0 - 0.5) *
                       2.0 * amplitude;
    chain.push_back({ca.x + dx * t + nx * off, ca.y + dy * t + ny * off});
  }
  if (!canonical) std::reverse(chain.begin(), chain.end());
  for (const auto& c : chain) out.push_back(c);
}

}  // namespace

const char* dataset_id_name(DatasetId id) {
  switch (id) {
    case DatasetId::kTaxi: return "taxi";
    case DatasetId::kTaxi1m: return "taxi1m";
    case DatasetId::kNycb: return "nycb";
    case DatasetId::kEdges: return "edges";
    case DatasetId::kLinearwater: return "linearwater";
    case DatasetId::kEdges01: return "edges0.1";
    case DatasetId::kLinearwater01: return "linearwater0.1";
  }
  return "?";
}

std::uint64_t paper_record_count(DatasetId id) { return paper_facts(id).records; }
std::uint64_t paper_size_bytes(DatasetId id) { return paper_facts(id).bytes; }

Dataset generate_taxi(const WorkloadConfig& config) {
  return generate_points("taxi", DatasetId::kTaxi, config, 0x7a5e1ULL);
}

Dataset generate_taxi1m(const WorkloadConfig& config) {
  // One month of the same process: same spatial distribution, 1/12 volume.
  return generate_points("taxi1m", DatasetId::kTaxi1m, config, 0x7a5e1ULL);
}

Dataset generate_nycb(const WorkloadConfig& config) {
  // Use a full grid^2 block count (nearest square not exceeding the scaled
  // target) so the blocks tile the entire extent — every taxi point falls
  // in exactly one block, as with the real census blocks.
  const std::uint64_t target = scaled_count(DatasetId::kNycb, config.scale);
  const auto grid = static_cast<std::uint32_t>(
      std::max(2.0, std::floor(std::sqrt(static_cast<double>(target)))));
  const std::uint64_t n = static_cast<std::uint64_t>(grid) * grid;
  const double cell_w = config.extent.width() / grid;
  const std::uint64_t seed = config.seed ^ 0xb10c5ULL;

  std::vector<geom::Feature> features;
  features.reserve(n);
  std::uint64_t id = 0;
  for (std::uint32_t j = 0; j < grid && id < n; ++j) {
    for (std::uint32_t i = 0; i < grid && id < n; ++i) {
      // Quad corners (shared with neighbors), densified edges (shared
      // chains), CCW shell.
      const geom::Coord c00 = lattice_corner(i, j, grid, config.extent, seed);
      const geom::Coord c10 = lattice_corner(i + 1, j, grid, config.extent, seed);
      const geom::Coord c11 = lattice_corner(i + 1, j + 1, grid, config.extent, seed);
      const geom::Coord c01 = lattice_corner(i, j + 1, grid, config.extent, seed);
      const double amp = cell_w * 0.04;
      constexpr std::uint32_t kDensify = 6;
      geom::Ring shell;
      shell.push_back(c00);
      densify_edge(c00, c10, i, j, i + 1, j, kDensify, amp, seed, grid, shell);
      shell.push_back(c10);
      densify_edge(c10, c11, i + 1, j, i + 1, j + 1, kDensify, amp, seed, grid, shell);
      shell.push_back(c11);
      densify_edge(c11, c01, i + 1, j + 1, i, j + 1, kDensify, amp, seed, grid, shell);
      shell.push_back(c01);
      densify_edge(c01, c00, i, j + 1, i, j, kDensify, amp, seed, grid, shell);
      shell.push_back(c00);
      features.push_back({id, geom::Geometry::polygon(std::move(shell))});
      ++id;
    }
  }
  return Dataset("nycb", std::move(features), /*attr_pad_bytes=*/150);
}

Dataset generate_edges(const WorkloadConfig& config) {
  const std::uint64_t n = scaled_count(DatasetId::kEdges, config.scale);
  const Hotspots hotspots = Hotspots::make(config.extent, config.seed);
  Rng rng(config.seed ^ 0xed6e5ULL);
  std::vector<geom::Feature> features;
  features.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Short street segment: 2-8 legs of 40-150 m, gentle direction jitter.
    const geom::Coord start = hotspots.draw(rng, config.extent, 0.7);
    double heading = rng.uniform(0.0, 2.0 * kPi);
    const auto legs = static_cast<std::uint32_t>(2 + rng.next_below(7));
    std::vector<geom::Coord> coords{start};
    geom::Coord cur = start;
    for (std::uint32_t leg = 0; leg < legs; ++leg) {
      heading += rng.uniform(-0.5, 0.5);
      const double step = rng.uniform(40.0, 150.0);
      cur.x = std::clamp(cur.x + std::cos(heading) * step, config.extent.min_x(),
                         config.extent.max_x());
      cur.y = std::clamp(cur.y + std::sin(heading) * step, config.extent.min_y(),
                         config.extent.max_y());
      coords.push_back(cur);
    }
    features.push_back({i, geom::Geometry::line_string(std::move(coords))});
  }
  return Dataset("edges", std::move(features), /*attr_pad_bytes=*/200);
}

Dataset generate_linearwater(const WorkloadConfig& config) {
  const std::uint64_t n = scaled_count(DatasetId::kLinearwater, config.scale);
  Rng rng(config.seed ^ 0x3a7e6ULL);
  std::vector<geom::Feature> features;
  features.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Winding stream segment: 30-90 legs of 25-70 m with drifting heading
    // (TIGER linearwater features are individual vertex-dense segments of a
    // couple of km, not whole rivers); reflect off the extent borders to
    // stay inside.
    geom::Coord cur{rng.uniform(config.extent.min_x(), config.extent.max_x()),
                    rng.uniform(config.extent.min_y(), config.extent.max_y())};
    double heading = rng.uniform(0.0, 2.0 * kPi);
    const auto legs = static_cast<std::uint32_t>(30 + rng.next_below(61));
    std::vector<geom::Coord> coords{cur};
    for (std::uint32_t leg = 0; leg < legs; ++leg) {
      heading += rng.uniform(-0.35, 0.35);
      const double step = rng.uniform(25.0, 70.0);
      double nx = cur.x + std::cos(heading) * step;
      double ny = cur.y + std::sin(heading) * step;
      if (nx < config.extent.min_x() || nx > config.extent.max_x()) {
        heading = kPi - heading;
        nx = std::clamp(nx, config.extent.min_x(), config.extent.max_x());
      }
      if (ny < config.extent.min_y() || ny > config.extent.max_y()) {
        heading = -heading;
        ny = std::clamp(ny, config.extent.min_y(), config.extent.max_y());
      }
      cur = {nx, ny};
      coords.push_back(cur);
    }
    features.push_back({i, geom::Geometry::line_string(std::move(coords))});
  }
  return Dataset("linearwater", std::move(features), /*attr_pad_bytes=*/120);
}

Dataset sample_fraction(const Dataset& source, const std::string& name, double fraction,
                        std::uint64_t seed) {
  require(fraction > 0.0 && fraction <= 1.0,
          "sample_fraction: fraction must be in (0, 1]");
  Rng rng(seed);
  std::vector<geom::Feature> kept;
  kept.reserve(static_cast<std::size_t>(static_cast<double>(source.size()) * fraction) + 8);
  for (const auto& f : source.features()) {
    if (rng.bernoulli(fraction)) kept.push_back(f);
  }
  if (kept.empty()) kept.push_back(source.features().front());
  return Dataset(name, std::move(kept), source.attr_pad_bytes());
}

Dataset generate(DatasetId id, const WorkloadConfig& config) {
  switch (id) {
    case DatasetId::kTaxi: return generate_taxi(config);
    case DatasetId::kTaxi1m: return generate_taxi1m(config);
    case DatasetId::kNycb: return generate_nycb(config);
    case DatasetId::kEdges: return generate_edges(config);
    case DatasetId::kLinearwater: return generate_linearwater(config);
    case DatasetId::kEdges01:
      return sample_fraction(generate_edges(config), "edges0.1", 0.1,
                             config.seed ^ 0xe01ULL);
    case DatasetId::kLinearwater01:
      return sample_fraction(generate_linearwater(config), "linearwater0.1", 0.1,
                             config.seed ^ 0x3a01ULL);
  }
  throw InvalidArgument("generate: unknown dataset id");
}

}  // namespace sjc::workload
