// TSV record format for the streaming (HadoopGIS) data path.
//
// Hadoop Streaming forces records to be text lines; HadoopGIS stores
// geometries as "<id>\t<wkt>" (after its step-1 format-conversion job).
// These helpers serialize/parse that format — for real, because paying the
// parse cost at every stage boundary is precisely the overhead the paper
// attributes to the streaming design.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geom/geometry.hpp"
#include "workload/dataset.hpp"

namespace sjc::workload {

/// "<id>\t<wkt>[\t<attr filler>]" — `pad_bytes` appends a filler attribute
/// field so line volumes match the dataset's on-disk record size (HadoopGIS
/// drags all attribute columns through every pipe).
std::string feature_to_tsv(const geom::Feature& feature, std::size_t pad_bytes = 0);

/// Parses "<id>\t<wkt>"; throws ParseError on malformed lines.
geom::Feature feature_from_tsv(std::string_view line);

/// "<prefix-fields...>\t<id>\t<wkt>" — parse a feature from the record
/// starting at field `field_offset` (streaming stages prepend keys).
geom::Feature feature_from_tsv_at(std::string_view line, std::size_t field_offset);

/// Non-throwing parse variants for hardened (quarantine-backed) input
/// paths: nullopt on a malformed line, with the ParseError text copied into
/// `*error` when `error` is non-null. InvalidArgument and other
/// non-parse errors still propagate — those are caller bugs, not bad data.
std::optional<geom::Feature> try_feature_from_tsv(std::string_view line,
                                                  std::string* error = nullptr);
std::optional<geom::Feature> try_feature_from_tsv_at(std::string_view line,
                                                     std::size_t field_offset,
                                                     std::string* error = nullptr);

/// Serializes a whole dataset (used to seed the streaming pipeline).
/// When `include_pad` is set every line carries the dataset's attribute
/// padding.
std::vector<std::string> dataset_to_tsv(const Dataset& dataset, bool include_pad = false);

}  // namespace sjc::workload
