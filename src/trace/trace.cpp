#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

namespace sjc::trace {

const char* span_outcome_name(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kOk:
      return "ok";
    case SpanOutcome::kFailed:
      return "failed";
    case SpanOutcome::kSpeculativeLoser:
      return "speculative-loser";
    case SpanOutcome::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

struct TraceCollector::Shard {
  std::vector<TaskSpan> spans;
};

namespace {

std::uint64_t next_collector_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache of "my shard inside collector with id X". Keyed by the
/// collector's process-unique id, not its address, so a new collector
/// allocated where a destroyed one lived cannot inherit stale shard
/// pointers.
struct ShardCache {
  std::unordered_map<std::uint64_t, void*> by_collector;  // -> Shard*
};

ShardCache& local_cache() {
  thread_local ShardCache cache;
  return cache;
}

}  // namespace

TraceCollector::TraceCollector(std::uint32_t node_count, std::uint32_t slots_per_node)
    : id_(next_collector_id()),
      node_count_(node_count == 0 ? 1 : node_count),
      slots_per_node_(slots_per_node == 0 ? 1 : slots_per_node) {}

TraceCollector::~TraceCollector() = default;

TraceCollector::Shard& TraceCollector::local_shard() {
  ShardCache& cache = local_cache();
  const auto it = cache.by_collector.find(id_);
  if (it != cache.by_collector.end()) return *static_cast<Shard*>(it->second);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.by_collector.emplace(id_, shard);
  return *shard;
}

void TraceCollector::record(TaskSpan span) {
  // Owner-only append: each shard is written by exactly one thread, so after
  // the registration handshake there is no contention on the hot path.
  local_shard().spans.push_back(std::move(span));
}

TaskTimeline TraceCollector::merged() const {
  TaskTimeline timeline;
  timeline.node_count = node_count_;
  timeline.slots_per_node = slots_per_node_;
  std::size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& shard : shards_) total += shard->spans.size();
    timeline.spans.reserve(total);
    for (const auto& shard : shards_) {
      timeline.spans.insert(timeline.spans.end(), shard->spans.begin(),
                            shard->spans.end());
    }
  }
  // Deterministic order: a pure function of span content, independent of
  // which thread happened to record which span.
  std::stable_sort(timeline.spans.begin(), timeline.spans.end(),
                   [](const TaskSpan& a, const TaskSpan& b) {
                     if (a.sim_start != b.sim_start) return a.sim_start < b.sim_start;
                     if (a.phase != b.phase) return a.phase < b.phase;
                     if (a.task != b.task) return a.task < b.task;
                     if (a.attempt != b.attempt) return a.attempt < b.attempt;
                     return a.slot < b.slot;
                   });
  return timeline;
}

std::vector<PhaseSkew> skew_summary(const TaskTimeline& timeline) {
  std::vector<PhaseSkew> rows;
  std::unordered_map<std::string, std::size_t> index;
  std::vector<std::vector<double>> durations;
  for (const auto& span : timeline.spans) {
    auto [it, inserted] = index.emplace(span.phase, rows.size());
    if (inserted) {
      rows.push_back(PhaseSkew{});
      rows.back().phase = span.phase;
      durations.emplace_back();
    }
    PhaseSkew& row = rows[it->second];
    if (span.outcome == SpanOutcome::kQuarantined) {
      // Zero-duration blacklist markers are not attempts: count them but
      // keep them out of the duration percentiles.
      ++row.quarantined;
      continue;
    }
    ++row.attempts;
    if (span.outcome == SpanOutcome::kFailed) ++row.failed;
    if (span.outcome == SpanOutcome::kSpeculativeLoser) ++row.spec_losers;
    durations[it->second].push_back(std::max(0.0, span.sim_end - span.sim_start));
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    auto& d = durations[r];
    if (d.empty()) continue;
    std::sort(d.begin(), d.end());
    const std::size_t n = d.size();
    // Nearest-rank percentiles over the sorted attempt durations.
    const auto rank = [n](double p) {
      const std::size_t k =
          static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
      return k == 0 ? 0 : k - 1;
    };
    rows[r].min_s = d.front();
    rows[r].p50_s = d[rank(0.50)];
    rows[r].p95_s = d[rank(0.95)];
    rows[r].max_s = d.back();
    for (const double v : d) {
      if (v > 1.5 * rows[r].p50_s) ++rows[r].stragglers;
    }
  }
  return rows;
}

std::vector<TenantSkew> tenant_summary(const TaskTimeline& timeline,
                                       const std::string& prefix) {
  std::vector<TenantSkew> rows;
  std::unordered_map<std::string, std::size_t> index;
  std::vector<std::vector<double>> durations;
  for (const auto& span : timeline.spans) {
    if (span.phase.size() <= prefix.size() ||
        span.phase.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string tenant = span.phase.substr(prefix.size());
    auto [it, inserted] = index.emplace(tenant, rows.size());
    if (inserted) {
      rows.push_back(TenantSkew{});
      rows.back().tenant = tenant;
      durations.emplace_back();
    }
    TenantSkew& row = rows[it->second];
    ++row.queries;
    if (span.outcome == SpanOutcome::kFailed) ++row.failed;
    const double d = std::max(0.0, span.sim_end - span.sim_start);
    row.total_s += d;
    durations[it->second].push_back(d);
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    auto& d = durations[r];
    if (d.empty()) continue;
    std::sort(d.begin(), d.end());
    const std::size_t n = d.size();
    const auto rank = [n](double p) {
      const std::size_t k =
          static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
      return k == 0 ? 0 : k - 1;
    };
    rows[r].min_s = d.front();
    rows[r].p50_s = d[rank(0.50)];
    rows[r].p99_s = d[rank(0.99)];
    rows[r].max_s = d.back();
  }
  return rows;
}

}  // namespace sjc::trace
