// Per-task simulated-timeline tracing.
//
// RunMetrics answers "how long did each phase take"; the paper's skew
// discussion (HadoopGIS straggler tasks, SpatialHadoop reduce imbalance)
// is about the *shape of the tasks inside a phase*, which aggregates cannot
// show. This module records one TaskSpan per scheduled attempt — map/reduce
// tasks, RDD stage tasks, master-side serial steps, DFS re-replication,
// lineage recomputes, retries and speculative clones — on the simulated
// timeline the scheduler already computes, and merges them into the run's
// TaskTimeline.
//
// Tracing is accounting-neutral by construction: the scheduler runs the
// same arithmetic whether or not a span sink is attached, so a traced run's
// RunReport is bit-identical to an untraced one (enforced by
// tests/test_data_plane.cpp under virtual time).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sjc::trace {

enum class SpanOutcome : std::uint8_t {
  kOk = 0,                // the attempt finished and its output was used
  kFailed = 1,            // crashed / pipe overflow; work wasted
  kSpeculativeLoser = 2,  // lost a speculative race; killed, work wasted
  kQuarantined = 3,       // zero-duration marker: a node was blacklisted here
};

const char* span_outcome_name(SpanOutcome outcome);

/// One scheduled attempt of one task on the simulated timeline. Times are
/// paper-unit seconds since the start of the run; `slot` is the global slot
/// index (node = slot / slots_per_node).
struct TaskSpan {
  std::string phase;            // the PhaseReport name this attempt belongs to
  std::uint64_t task = 0;       // task index within the phase (submission order)
  std::uint32_t attempt = 1;    // 1-based attempt number
  bool speculative = false;     // attempt launched as a speculative clone
  std::uint32_t slot = 0;       // global cluster slot the attempt occupied
  double sim_start = 0.0;       // paper seconds since run start
  double sim_end = 0.0;
  double cpu_seconds = 0.0;     // measured CPU charged to the task (post-efficiency)
  std::uint64_t bytes_in = 0;       // disk/DFS read volume (scaled magnitude)
  std::uint64_t bytes_out = 0;      // disk/DFS write volume (scaled magnitude)
  std::uint64_t bytes_shuffled = 0; // network volume (scaled magnitude)
  SpanOutcome outcome = SpanOutcome::kOk;
};

/// The merged per-run timeline: every attempt of every phase, sorted by
/// (sim_start, phase, task, attempt), plus the slot geometry needed to map
/// global slot ids back onto simulated nodes.
struct TaskTimeline {
  std::uint32_t node_count = 1;
  std::uint32_t slots_per_node = 1;
  std::vector<TaskSpan> spans;

  std::uint32_t total_slots() const { return node_count * slots_per_node; }
  bool empty() const { return spans.empty(); }
};

/// Collects TaskSpans during a run. Appends go to a per-thread shard —
/// lock-free after a thread's first record() (a mutex guards only shard
/// registration) — so pool workers can emit spans without serializing on a
/// shared sink. merged() must only be called once the run's parallel work
/// has quiesced (the drivers call it after the last phase is recorded).
class TraceCollector {
 public:
  TraceCollector(std::uint32_t node_count, std::uint32_t slots_per_node);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Appends one span to the calling thread's shard.
  void record(TaskSpan span);

  /// Merges every shard into a deterministically ordered timeline: span
  /// order is a pure function of span content, never of which thread
  /// recorded what.
  TaskTimeline merged() const;

 private:
  struct Shard;
  Shard& local_shard();

  const std::uint64_t id_;  // process-unique; guards thread-local shard caches
  std::uint32_t node_count_;
  std::uint32_t slots_per_node_;
  mutable std::mutex registry_mutex_;  // shard registration only
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Per-phase task-duration skew: the compact summary printed next to the
/// report tables. Durations are per-attempt sim seconds; `stragglers`
/// counts attempts longer than 1.5x the phase median (the same multiple
/// Hadoop's speculation heuristic keys on).
struct PhaseSkew {
  std::string phase;
  std::size_t attempts = 0;
  double min_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double max_s = 0.0;
  std::size_t stragglers = 0;
  std::size_t failed = 0;       // attempts with outcome kFailed
  std::size_t spec_losers = 0;  // attempts with outcome kSpeculativeLoser
  std::size_t quarantined = 0;  // node-quarantine markers (outcome kQuarantined)
};

/// Per-phase skew rows in first-appearance order of the phases.
std::vector<PhaseSkew> skew_summary(const TaskTimeline& timeline);

/// Per-tenant serving skew: the footer printed under multi-tenant serving
/// runs. The serving layer records one span per query with phase
/// "<prefix><tenant>" (serving::kTenantPhasePrefix); this groups those
/// spans by tenant and summarizes each tenant's query latencies. Spans
/// whose phase does not start with `prefix` are ignored, so a timeline can
/// mix per-task MR spans with serving spans.
struct TenantSkew {
  std::string tenant;
  std::size_t queries = 0;  // spans (completed queries), failures included
  std::size_t failed = 0;   // spans with outcome kFailed (rejected/error)
  double total_s = 0.0;     // summed service time (busy seconds)
  double min_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Tenant rows in first-appearance order. `prefix` defaults to the serving
/// layer's span naming convention.
std::vector<TenantSkew> tenant_summary(const TaskTimeline& timeline,
                                       const std::string& prefix = "tenant/");

}  // namespace sjc::trace
