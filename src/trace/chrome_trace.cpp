#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "geom/simd_dispatch.hpp"
#include "util/status.hpp"

namespace sjc::trace {

namespace {

/// JSON string escaping for phase names (which may carry '[', '/', quotes
/// from dataset names, ...).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip double formatting (matches bench_io's JSON style).
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

constexpr double kMicrosPerSecond = 1e6;

}  // namespace

void write_chrome_trace(std::ostream& out, const TaskTimeline& timeline) {
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata: one process per simulated node, one named thread per slot —
  // every slot gets a track even if no span ever landed on it, so idle
  // capacity is visible in the viewer.
  for (std::uint32_t node = 0; node < timeline.node_count; ++node) {
    sep();
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << (node + 1)
        << ",\"tid\":0,\"args\":{\"name\":\"node" << node << "\"}}";
    for (std::uint32_t slot = 0; slot < timeline.slots_per_node; ++slot) {
      sep();
      out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << (node + 1)
          << ",\"tid\":" << (slot + 1) << ",\"args\":{\"name\":\"slot" << slot
          << "\"}}";
    }
  }

  for (const auto& span : timeline.spans) {
    const std::uint32_t node = span.slot / timeline.slots_per_node;
    const std::uint32_t local_slot = span.slot % timeline.slots_per_node;
    sep();
    out << "{\"ph\":\"X\",\"name\":\"" << json_escape(span.phase) << "\""
        << ",\"cat\":\"" << span_outcome_name(span.outcome) << "\""
        << ",\"pid\":" << (node + 1) << ",\"tid\":" << (local_slot + 1)
        << ",\"ts\":" << json_double(span.sim_start * kMicrosPerSecond)
        << ",\"dur\":"
        << json_double(std::max(0.0, span.sim_end - span.sim_start) *
                       kMicrosPerSecond)
        << ",\"args\":{\"task\":" << span.task << ",\"attempt\":" << span.attempt
        << ",\"speculative\":" << (span.speculative ? "true" : "false")
        << ",\"outcome\":\"" << span_outcome_name(span.outcome) << "\""
        << ",\"cpu_seconds\":" << json_double(span.cpu_seconds)
        << ",\"bytes_in\":" << span.bytes_in << ",\"bytes_out\":" << span.bytes_out
        << ",\"bytes_shuffled\":" << span.bytes_shuffled << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace_file(const std::string& path, const TaskTimeline& timeline) {
  std::ofstream out(path);
  if (!out) throw SjcError("write_chrome_trace_file: cannot open " + path);
  write_chrome_trace(out, timeline);
}

std::string format_skew_table(const TaskTimeline& timeline) {
  const auto rows = skew_summary(timeline);
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "  %-40s %8s %9s %9s %9s %9s %7s %6s %5s\n",
                "phase", "attempts", "min_s", "p50_s", "p95_s", "max_s", "ratio",
                "strag", "fail");
  out << line;
  for (const auto& row : rows) {
    // max/p50 — the hotspot ratio skew-aware repartitioning targets; 0 when
    // the phase median is 0 (all-instant tasks).
    const double ratio = row.p50_s > 0.0 ? row.max_s / row.p50_s : 0.0;
    std::snprintf(line, sizeof(line),
                  "  %-40s %8zu %9.3f %9.3f %9.3f %9.3f %7.2f %6zu %5zu\n",
                  row.phase.c_str(), row.attempts, row.min_s, row.p50_s, row.p95_s,
                  row.max_s, ratio, row.stragglers, row.failed + row.spec_losers);
    out << line;
  }
  return out.str();
}

std::string format_skew_table(const TaskTimeline& timeline,
                              const std::map<std::string, std::uint64_t>& counters) {
  std::string out = format_skew_table(timeline);
  const auto value = [&counters](const char* name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  const std::uint64_t candidates = value("refine.candidates");
  if (candidates != 0) {
    const auto pct = [candidates](std::uint64_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(candidates);
    };
    const std::uint64_t exact = value("refine.exact_tests");
    const std::uint64_t accepts = value("refine.early_accepts");
    const std::uint64_t rejects = value("refine.early_rejects");
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  refine: %llu candidates | exact %llu (%.1f%%) | early-accept "
                  "%llu (%.1f%%) | early-reject %llu (%.1f%%)\n",
                  static_cast<unsigned long long>(candidates),
                  static_cast<unsigned long long>(exact), pct(exact),
                  static_cast<unsigned long long>(accepts), pct(accepts),
                  static_cast<unsigned long long>(rejects), pct(rejects));
    out += line;
    // Exact-predicate split and the kernel dispatch path that produced it.
    const std::uint64_t fastpath = value("refine.exact_fastpath");
    const std::uint64_t slowpath = value("refine.exact_slowpath");
    std::snprintf(line, sizeof(line),
                  "  refine-exact: fastpath %llu | slowpath %llu | simd=%s\n",
                  static_cast<unsigned long long>(fastpath),
                  static_cast<unsigned long long>(slowpath),
                  geom::simd::active_path_name());
    out += line;
  }
  // Shuffle-filter footer (present only when the map-side spatial filter is
  // on: that is when the shuffle.* trio is emitted).
  const std::uint64_t assigned = value("shuffle.assigned_records");
  if (assigned != 0) {
    const auto pct = [assigned](std::uint64_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(assigned);
    };
    const std::uint64_t shuffled = value("shuffle.records");
    const std::uint64_t filtered = value("shuffle.filtered_records");
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  shuffle-filter: %llu assigned | shuffled %llu (%.1f%%) | "
                  "filtered %llu (%.1f%%) | ~%llu bytes saved\n",
                  static_cast<unsigned long long>(assigned),
                  static_cast<unsigned long long>(shuffled), pct(shuffled),
                  static_cast<unsigned long long>(filtered), pct(filtered),
                  static_cast<unsigned long long>(value("shuffle.filtered_bytes")));
    out += line;
  }
  // Repartition footer (present only when skew-aware refinement ran:
  // repartition.rounds is >= 1 whenever the probe executed, even if no cell
  // was hot enough to split).
  const std::uint64_t rounds = value("repartition.rounds");
  if (rounds != 0) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  repartition: %llu rounds | %llu splits -> %llu cells | "
                  "migrated %llu records / %llu bytes\n",
                  static_cast<unsigned long long>(rounds),
                  static_cast<unsigned long long>(value("repartition.splits")),
                  static_cast<unsigned long long>(value("repartition.cells")),
                  static_cast<unsigned long long>(
                      value("repartition.migrated_records")),
                  static_cast<unsigned long long>(
                      value("repartition.migrated_bytes")));
    out += line;
  }
  // Plan footer (present only when the cost model chose the physical plan:
  // plan.chosen is 1 or 2, never 0, once a decision is recorded).
  const std::uint64_t chosen = value("plan.chosen");
  if (chosen != 0) {
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "  plan: %s | predicted %llu ms (broadcast %llu / partitioned %llu) | "
        "actual %llu ms%s\n",
        chosen == 2 ? "broadcast" : "partitioned",
        static_cast<unsigned long long>(value("plan.predicted_cost")),
        static_cast<unsigned long long>(value("plan.predicted_broadcast")),
        static_cast<unsigned long long>(value("plan.predicted_partitioned")),
        static_cast<unsigned long long>(value("plan.actual_cost")),
        value("plan.fallback") != 0 ? " | fallback" : "");
    out += line;
  }
  return out;
}

}  // namespace sjc::trace
