// Chrome trace-event export of a TaskTimeline.
//
// Emits the JSON object form ({"traceEvents": [...]}) that chrome://tracing
// and Perfetto both load: one "X" (complete) event per TaskSpan with ts/dur
// in microseconds of simulated time, and "M" (metadata) events naming one
// process per simulated node and one thread per slot — so the viewer shows
// one track per node slot, including slots that stayed idle.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "trace/trace.hpp"

namespace sjc::trace {

/// Writes the timeline as Chrome trace-event JSON to `out`.
void write_chrome_trace(std::ostream& out, const TaskTimeline& timeline);

/// Writes the timeline to `path`; throws SjcError when the file cannot be
/// opened.
void write_chrome_trace_file(const std::string& path, const TaskTimeline& timeline);

/// Fixed-width per-phase skew table (min/p50/p95/max attempt duration,
/// straggler and failure counts) for terminal report output.
std::string format_skew_table(const TaskTimeline& timeline);

/// Skew table plus a refinement-accounting footer derived from a counter
/// snapshot (refine.candidates split into exact tests vs approximation
/// early accepts/rejects). Counters other than refine.* are ignored; the
/// footer is omitted when no refine.* counters are present. Takes a plain
/// snapshot map rather than cluster::Counters so sjc_trace keeps depending
/// only on sjc_util.
std::string format_skew_table(const TaskTimeline& timeline,
                              const std::map<std::string, std::uint64_t>& counters);

}  // namespace sjc::trace
