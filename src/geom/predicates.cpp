#include "geom/predicates.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "geom/algorithms.hpp"
#include "geom/simple_parts.hpp"
#include "util/status.hpp"

namespace sjc::geom {

namespace {

using detail::SimplePart;
using detail::collect_parts;

// Applies `fn(a, b)` over every ring edge [a, b] of the polygon (shell and
// holes); stops early when fn returns true.
template <typename Fn>
bool any_polygon_edge(const Polygon& poly, Fn&& fn) {
  const auto scan_ring = [&](const Ring& ring) {
    for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
      if (fn(ring[i], ring[i + 1])) return true;
    }
    return false;
  };
  if (scan_ring(poly.shell)) return true;
  for (const auto& hole : poly.holes) {
    if (scan_ring(hole)) return true;
  }
  return false;
}

bool point_on_linestring(const Coord& p, const LineString& line) {
  for (std::size_t i = 0; i + 1 < line.coords.size(); ++i) {
    if (point_on_segment(p, line.coords[i], line.coords[i + 1])) return true;
  }
  return false;
}

bool line_polygon_intersects(const LineString& line, const Polygon& poly) {
  // Any vertex inside (hole-aware) => overlap.
  for (const auto& c : line.coords) {
    if (point_in_polygon(c, poly)) return true;
  }
  // Otherwise an overlap requires a boundary crossing.
  for (std::size_t i = 0; i + 1 < line.coords.size(); ++i) {
    if (any_polygon_edge(poly, [&](const Coord& a, const Coord& b) {
          return segments_intersect(line.coords[i], line.coords[i + 1], a, b);
        })) {
      return true;
    }
  }
  return false;
}

bool polygons_intersect(const Polygon& a, const Polygon& b) {
  // Boundary crossing?
  if (any_polygon_edge(a, [&](const Coord& a1, const Coord& a2) {
        return any_polygon_edge(b, [&](const Coord& b1, const Coord& b2) {
          return segments_intersect(a1, a2, b1, b2);
        });
      })) {
    return true;
  }
  // No crossings: either disjoint or one region contains the other; a single
  // representative vertex of each shell decides (point_in_polygon is
  // hole-aware, so "inside a hole" correctly reads as outside).
  return point_in_polygon(a.shell.front(), b) || point_in_polygon(b.shell.front(), a);
}

bool parts_intersect(const SimplePart& pa, const SimplePart& pb) {
  if (pa.point != nullptr) {
    if (pb.point != nullptr) return *pa.point == *pb.point;
    if (pb.line != nullptr) return point_on_linestring(*pa.point, *pb.line);
    return point_in_polygon(*pa.point, *pb.polygon);
  }
  if (pa.line != nullptr) {
    if (pb.point != nullptr) return point_on_linestring(*pb.point, *pa.line);
    if (pb.line != nullptr) return linestrings_intersect_naive(*pa.line, *pb.line);
    return line_polygon_intersects(*pa.line, *pb.polygon);
  }
  // pa is a polygon.
  if (pb.point != nullptr) return point_in_polygon(*pb.point, *pa.polygon);
  if (pb.line != nullptr) return line_polygon_intersects(*pb.line, *pa.polygon);
  return polygons_intersect(*pa.polygon, *pb.polygon);
}

double polygon_boundary_sqdist_point(const Coord& p, const Polygon& poly) {
  double best = std::numeric_limits<double>::infinity();
  any_polygon_edge(poly, [&](const Coord& a, const Coord& b) {
    best = std::min(best, squared_distance_point_segment(p, a, b));
    return false;  // scan all edges
  });
  return best;
}

double lines_sqdist(const LineString& a, const LineString& b) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < a.coords.size(); ++i) {
    for (std::size_t j = 0; j + 1 < b.coords.size(); ++j) {
      best = std::min(best, squared_distance_segments(a.coords[i], a.coords[i + 1],
                                                      b.coords[j], b.coords[j + 1]));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double line_polygon_boundary_sqdist(const LineString& line, const Polygon& poly) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < line.coords.size(); ++i) {
    any_polygon_edge(poly, [&](const Coord& a, const Coord& b) {
      best = std::min(best, squared_distance_segments(line.coords[i],
                                                      line.coords[i + 1], a, b));
      return best == 0.0;
    });
    if (best == 0.0) break;
  }
  return best;
}

double polygon_boundaries_sqdist(const Polygon& pa, const Polygon& pb) {
  double best = std::numeric_limits<double>::infinity();
  any_polygon_edge(pa, [&](const Coord& a1, const Coord& a2) {
    any_polygon_edge(pb, [&](const Coord& b1, const Coord& b2) {
      best = std::min(best, squared_distance_segments(a1, a2, b1, b2));
      return best == 0.0;
    });
    return best == 0.0;
  });
  return best;
}

double parts_sqdist(const SimplePart& pa, const SimplePart& pb) {
  if (parts_intersect(pa, pb)) return 0.0;
  if (pa.point != nullptr) {
    if (pb.point != nullptr) return squared_distance(*pa.point, *pb.point);
    if (pb.line != nullptr) return squared_distance_point_linestring(*pa.point, *pb.line);
    return polygon_boundary_sqdist_point(*pa.point, *pb.polygon);
  }
  if (pa.line != nullptr) {
    if (pb.point != nullptr) return squared_distance_point_linestring(*pb.point, *pa.line);
    if (pb.line != nullptr) return lines_sqdist(*pa.line, *pb.line);
    return line_polygon_boundary_sqdist(*pa.line, *pb.polygon);
  }
  if (pb.point != nullptr) return polygon_boundary_sqdist_point(*pb.point, *pa.polygon);
  if (pb.line != nullptr) return line_polygon_boundary_sqdist(*pb.line, *pa.polygon);
  return polygon_boundaries_sqdist(*pa.polygon, *pb.polygon);
}

bool strict_crossing(const Coord& a1, const Coord& a2, const Coord& b1,
                     const Coord& b2) {
  const double d1 = orientation(b1, b2, a1);
  const double d2 = orientation(b1, b2, a2);
  const double d3 = orientation(a1, a2, b1);
  const double d4 = orientation(a1, a2, b2);
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

bool polygon_covers_point(const Polygon& poly, const Coord& p) {
  return point_in_polygon(p, poly);
}

// Covers test for a coordinate path against one polygon: every vertex and
// every segment midpoint covered, and no strict boundary crossing. Midpoints
// guard against segments that dip through a hole while both endpoints stay
// covered and only touch ring edges at isolated points. For typical map
// data (paths crossing a hole cross its ring) this matches exact covers.
bool polygon_covers_path(const Polygon& poly, std::span<const Coord> path) {
  for (const auto& c : path) {
    if (!point_in_polygon(c, poly)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (any_polygon_edge(poly, [&](const Coord& a, const Coord& b) {
          return strict_crossing(path[i], path[i + 1], a, b);
        })) {
      return false;
    }
    const Coord mid{(path[i].x + path[i + 1].x) / 2.0,
                    (path[i].y + path[i + 1].y) / 2.0};
    if (!point_in_polygon(mid, poly)) return false;
  }
  return true;
}

bool polygon_covers_part(const Polygon& poly, const SimplePart& part) {
  if (part.point != nullptr) return polygon_covers_point(poly, *part.point);
  if (part.line != nullptr) return polygon_covers_path(poly, part.line->coords);
  // Covering a polygon part reduces to covering its shell path (the part's
  // covered region is a subset of its shell region).
  return polygon_covers_path(poly, part.polygon->shell);
}

}  // namespace

bool intersects_naive(const Geometry& a, const Geometry& b) {
  if (!a.envelope().intersects(b.envelope())) return false;
  std::vector<SimplePart> parts_a;
  std::vector<SimplePart> parts_b;
  collect_parts(a, parts_a);
  collect_parts(b, parts_b);
  for (const auto& pa : parts_a) {
    for (const auto& pb : parts_b) {
      if (parts_intersect(pa, pb)) return true;
    }
  }
  return false;
}

bool contains_naive(const Geometry& a, const Geometry& b) {
  require(a.is_areal(), "contains_naive: left side must be areal");
  if (!a.envelope().contains(b.envelope())) return false;
  std::vector<SimplePart> parts_a;
  std::vector<SimplePart> parts_b;
  collect_parts(a, parts_a);
  collect_parts(b, parts_b);
  // Every part of b must be covered by at least one polygon of a. (For
  // parts straddling two touching polygons of a multipolygon this is
  // conservative, i.e. may report false; census/TIGER multipolygon parts are
  // disjoint so this does not arise in the evaluated workloads.)
  for (const auto& pb : parts_b) {
    bool covered = false;
    for (const auto& pa : parts_a) {
      if (polygon_covers_part(*pa.polygon, pb)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

namespace {

Envelope part_envelope(const SimplePart& part) {
  Envelope e;
  if (part.point != nullptr) {
    e.expand_to_include(part.point->x, part.point->y);
  } else if (part.line != nullptr) {
    for (const auto& c : part.line->coords) e.expand_to_include(c.x, c.y);
  } else {
    for (const auto& c : part.polygon->shell) e.expand_to_include(c.x, c.y);
  }
  return e;
}

// Squared envelope gap (Envelope::distance without the sqrt): a lower bound
// on parts_sqdist for the two parts the envelopes bound.
double envelope_gap_sq(const Envelope& ea, const Envelope& eb) {
  const double dx = std::max({0.0, eb.min_x() - ea.max_x(), ea.min_x() - eb.max_x()});
  const double dy = std::max({0.0, eb.min_y() - ea.max_y(), ea.min_y() - eb.max_y()});
  return dx * dx + dy * dy;
}

}  // namespace

double distance_naive(const Geometry& a, const Geometry& b) {
  std::vector<SimplePart> parts_a;
  std::vector<SimplePart> parts_b;
  collect_parts(a, parts_a);
  collect_parts(b, parts_b);

  // Single-part pair (the overwhelmingly common case): one exact test, no
  // pruning machinery.
  if (parts_a.size() == 1 && parts_b.size() == 1) {
    return std::sqrt(parts_sqdist(parts_a[0], parts_b[0]));
  }

  // Multipart: the per-part envelope gap lower-bounds the exact part
  // distance, so processing part pairs in ascending gap order seeds the
  // running bound from the closest-envelope pair and lets every later pair
  // whose gap already exceeds the bound exit without a coordinate scan.
  struct PairGap {
    double gap_sq;
    std::uint32_t ia;
    std::uint32_t ib;
  };
  std::vector<Envelope> envs_a(parts_a.size());
  std::vector<Envelope> envs_b(parts_b.size());
  for (std::size_t i = 0; i < parts_a.size(); ++i) envs_a[i] = part_envelope(parts_a[i]);
  for (std::size_t i = 0; i < parts_b.size(); ++i) envs_b[i] = part_envelope(parts_b[i]);
  std::vector<PairGap> order;
  order.reserve(parts_a.size() * parts_b.size());
  for (std::uint32_t i = 0; i < parts_a.size(); ++i) {
    for (std::uint32_t j = 0; j < parts_b.size(); ++j) {
      order.push_back({envelope_gap_sq(envs_a[i], envs_b[j]), i, j});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const PairGap& x, const PairGap& y) { return x.gap_sq < y.gap_sq; });

  double best = std::numeric_limits<double>::infinity();
  for (const auto& pg : order) {
    // Conservative slack: prune only when the gap exceeds the bound by a
    // relative margin, so ulp-level noise in the exact kernels can never
    // change the returned minimum.
    if (pg.gap_sq > best * (1.0 + 1e-9)) break;  // sorted: nothing later helps
    best = std::min(best, parts_sqdist(parts_a[pg.ia], parts_b[pg.ib]));
    if (best == 0.0) return 0.0;
  }
  return std::sqrt(best);
}

bool within_distance_naive(const Geometry& a, const Geometry& b, double d) {
  require(d >= 0.0, "within_distance_naive: d must be non-negative");
  if (a.envelope().distance(b.envelope()) > d) return false;
  return distance_naive(a, b) <= d;
}

}  // namespace sjc::geom
