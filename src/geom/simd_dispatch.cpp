// Dispatch layer: scalar reference kernels, CPU detection, SJC_SIMD
// override and the per-kernel function-pointer table.
#include "geom/simd_dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "geom/simd_kernels_impl.hpp"

namespace sjc::geom::simd {

// Defined in simd_kernels_avx2.cpp / simd_kernels_neon.cpp; return nullptr
// when the variant is not compiled for this architecture.
const Kernels* avx2_kernel_table();
const Kernels* neon_kernel_table();

namespace {

bool pip_covers_run_scalar(const double* ax, const double* ay, const double* bx,
                           const double* by, std::size_t n, double px, double py) {
  unsigned on_boundary = 0;
  unsigned inside = 0;
  detail::pip_scalar_range(ax, ay, bx, by, 0, n, px, py, on_boundary, inside);
  return (on_boundary | inside) != 0;
}

bool seg_run_intersects_scalar(const SegSoA& segs, std::size_t begin, std::size_t end,
                               double axp, double ayp, double bxp, double byp,
                               double bx0, double by0, double bx1, double by1) {
  return detail::seg_scalar_range(segs, begin, end, {axp, ayp}, {bxp, byp}, bx0, by0,
                                  bx1, by1);
}

bool env_any_overlaps_scalar(const double* min_x, const double* min_y,
                             const double* max_x, const double* max_y, std::size_t n,
                             double px0, double py0, double px1, double py1) {
  return detail::env_scalar_range(min_x, min_y, max_x, max_y, 0, n, px0, py0, px1,
                                  py1);
}

constexpr Kernels kScalarKernels{pip_covers_run_scalar, seg_run_intersects_scalar,
                                 env_any_overlaps_scalar};

struct Entry {
  Path path;
  const Kernels* kernels;
};

const Kernels* table_for(Path p) {
  switch (p) {
    case Path::kScalar:
      return &kScalarKernels;
    case Path::kAvx2:
      return avx2_kernel_table();
    case Path::kNeon:
      return neon_kernel_table();
  }
  return nullptr;
}

/// Hardware support for a path (independent of whether its kernels were
/// compiled in).
bool cpu_supports(Path p) {
  switch (p) {
    case Path::kScalar:
      return true;
    case Path::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Path::kNeon:
      // AdvSIMD is baseline on aarch64; no HWCAP probe needed.
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool path_available(Path p) { return cpu_supports(p) && table_for(p) != nullptr; }

Path detect_best() {
  if (path_available(Path::kAvx2)) return Path::kAvx2;
  if (path_available(Path::kNeon)) return Path::kNeon;
  return Path::kScalar;
}

Path startup_policy() {
  const char* env = std::getenv("SJC_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return detect_best();
  }
  Path want = Path::kScalar;
  bool known = std::strcmp(env, "scalar") == 0;
  if (std::strcmp(env, "avx2") == 0) {
    want = Path::kAvx2;
    known = true;
  } else if (std::strcmp(env, "neon") == 0) {
    want = Path::kNeon;
    known = true;
  }
  if (!known) {
    std::fprintf(stderr, "SJC_SIMD=%s not recognized; using auto-detection\n", env);
    return detect_best();
  }
  if (!path_available(want)) {
    std::fprintf(stderr, "SJC_SIMD=%s unavailable on this CPU/build; using auto-detection\n",
                 env);
    return detect_best();
  }
  return want;
}

// One immutable Entry per path keeps the active selection to a single
// atomic pointer: readers on the refinement hot path pay one relaxed load.
const Entry& entry_for(Path p) {
  static const Entry entries[] = {{Path::kScalar, &kScalarKernels},
                                  {Path::kAvx2, table_for(Path::kAvx2)},
                                  {Path::kNeon, table_for(Path::kNeon)}};
  return entries[static_cast<int>(p)];
}

std::atomic<const Entry*>& active_entry() {
  static std::atomic<const Entry*> active{&entry_for(startup_policy())};
  return active;
}

}  // namespace

const char* path_name(Path p) {
  switch (p) {
    case Path::kScalar:
      return "scalar";
    case Path::kAvx2:
      return "avx2";
    case Path::kNeon:
      return "neon";
  }
  return "?";
}

const Kernels& kernels() {
  return *active_entry().load(std::memory_order_relaxed)->kernels;
}

Path active_path() { return active_entry().load(std::memory_order_relaxed)->path; }

const char* active_path_name() { return path_name(active_path()); }

std::vector<Path> available_paths() {
  std::vector<Path> out{Path::kScalar};
  for (const Path p : {Path::kAvx2, Path::kNeon}) {
    if (path_available(p)) out.push_back(p);
  }
  return out;
}

const Kernels* kernels_for(Path p) { return path_available(p) ? table_for(p) : nullptr; }

bool force_path(Path p) {
  if (!path_available(p)) return false;
  active_entry().store(&entry_for(p), std::memory_order_relaxed);
  return true;
}

void reset_from_env() {
  active_entry().store(&entry_for(startup_policy()), std::memory_order_relaxed);
}

}  // namespace sjc::geom::simd
