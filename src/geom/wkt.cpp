#include "geom/wkt.hpp"

#include <charconv>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace sjc::geom {

namespace {

void append_coord(std::string& out, const Coord& c) {
  out += format_double(c.x);
  out.push_back(' ');
  out += format_double(c.y);
}

void append_coord_list(std::string& out, const std::vector<Coord>& coords) {
  out.push_back('(');
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (i > 0) out += ", ";
    append_coord(out, coords[i]);
  }
  out.push_back(')');
}

void append_polygon_body(std::string& out, const Polygon& poly) {
  out.push_back('(');
  append_coord_list(out, poly.shell);
  for (const auto& hole : poly.holes) {
    out += ", ";
    append_coord_list(out, hole);
  }
  out.push_back(')');
}

/// Recursive-descent WKT scanner over a string_view.
class WktParser {
 public:
  explicit WktParser(std::string_view text) : text_(text) {}

  Geometry parse() {
    skip_ws();
    const std::string_view tag = read_tag();
    Geometry g = parse_body(tag);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after geometry");
    return g;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("WKT parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_if(char c) {
    skip_ws();
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view read_tag() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && ((text_[pos_] >= 'A' && text_[pos_] <= 'Z') ||
                                   (text_[pos_] >= 'a' && text_[pos_] <= 'z'))) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected geometry tag");
    return text_.substr(begin, pos_ - begin);
  }

  double read_number() {
    skip_ws();
    double value = 0.0;
    const char* first = text_.data() + pos_;
    const char* last = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc()) fail("expected number");
    pos_ += static_cast<std::size_t>(ptr - first);
    return value;
  }

  Coord read_coord() {
    const double x = read_number();
    const double y = read_number();
    return {x, y};
  }

  std::vector<Coord> read_coord_list() {
    expect('(');
    std::vector<Coord> coords;
    do {
      coords.push_back(read_coord());
    } while (consume_if(','));
    expect(')');
    return coords;
  }

  Polygon read_polygon_body() {
    expect('(');
    Polygon poly;
    poly.shell = read_coord_list();
    while (consume_if(',')) poly.holes.push_back(read_coord_list());
    expect(')');
    return poly;
  }

  Geometry parse_body(std::string_view tag) {
    if (tag == "POINT") {
      expect('(');
      const Coord c = read_coord();
      expect(')');
      return Geometry::point(c.x, c.y);
    }
    if (tag == "LINESTRING") {
      return Geometry::line_string(read_coord_list());
    }
    if (tag == "POLYGON") {
      Polygon poly = read_polygon_body();
      return Geometry::polygon(std::move(poly.shell), std::move(poly.holes));
    }
    if (tag == "MULTILINESTRING") {
      expect('(');
      std::vector<LineString> parts;
      do {
        parts.push_back(LineString{read_coord_list()});
      } while (consume_if(','));
      expect(')');
      return Geometry::multi_line_string(std::move(parts));
    }
    if (tag == "MULTIPOLYGON") {
      expect('(');
      std::vector<Polygon> parts;
      do {
        parts.push_back(read_polygon_body());
      } while (consume_if(','));
      expect(')');
      return Geometry::multi_polygon(std::move(parts));
    }
    fail("unknown geometry tag '" + std::string(tag) + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_wkt(const Geometry& geometry) {
  std::string out = geom_type_name(geometry.type());
  out.push_back(' ');
  switch (geometry.type()) {
    case GeomType::kPoint: {
      out.push_back('(');
      append_coord(out, geometry.as_point());
      out.push_back(')');
      break;
    }
    case GeomType::kLineString:
      append_coord_list(out, geometry.as_line_string().coords);
      break;
    case GeomType::kPolygon:
      append_polygon_body(out, geometry.as_polygon());
      break;
    case GeomType::kMultiLineString: {
      out.push_back('(');
      const auto& parts = geometry.as_multi_line_string().parts;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += ", ";
        append_coord_list(out, parts[i].coords);
      }
      out.push_back(')');
      break;
    }
    case GeomType::kMultiPolygon: {
      out.push_back('(');
      const auto& parts = geometry.as_multi_polygon().parts;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += ", ";
        append_polygon_body(out, parts[i]);
      }
      out.push_back(')');
      break;
    }
  }
  return out;
}

Geometry from_wkt(std::string_view wkt) { return WktParser(wkt).parse(); }

std::optional<Geometry> try_from_wkt(std::string_view wkt, std::string* error) {
  try {
    return WktParser(wkt).parse();
  } catch (const ParseError& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace sjc::geom
