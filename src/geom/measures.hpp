// Geometric measures: length, area, centroid.
//
// Downstream analyses (the example applications, partition statistics)
// need scalar summaries of geometries; these are the standard planar
// formulas (shoelace area with hole subtraction, polyline arc length,
// area-weighted centroids).
#pragma once

#include "geom/geometry.hpp"

namespace sjc::geom {

/// Total arc length of linework: polyline length for (multi)linestrings,
/// ring perimeter for (multi)polygons, 0 for points.
double length(const Geometry& geometry);

/// Planar area: polygon area minus holes (summed over multipolygon parts);
/// 0 for points and linework.
double area(const Geometry& geometry);

/// Centroid: the point itself for points; length-weighted midpoint for
/// linework; area-weighted ring centroid (holes subtracted) for areal
/// geometry. Degenerate geometry (zero length/area) falls back to the
/// first coordinate.
Coord centroid(const Geometry& geometry);

}  // namespace sjc::geom
