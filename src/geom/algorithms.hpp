// Low-level computational-geometry kernels shared by both geometry engines.
//
// Everything here is branch-light and allocation-free; the engines differ in
// *how often* and *over which candidate sets* these kernels run, not in the
// kernels themselves (which keeps the fast and slow engines bit-identical in
// their answers).
#pragma once

#include <cstddef>

#include "geom/geometry.hpp"

namespace sjc::geom {

/// Sign of the cross product (b-a) x (c-a):
///  > 0 left turn, < 0 right turn, 0 collinear.
/// The sign is exact for the given double inputs (adaptive Shewchuk
/// predicate, see geom/exact_predicates.hpp); the magnitude is only
/// approximate on the fast path and must not be used quantitatively.
double orientation(const Coord& a, const Coord& b, const Coord& c);

/// True when point p lies on segment [a, b] (inclusive of endpoints).
bool point_on_segment(const Coord& p, const Coord& a, const Coord& b);

/// True when segments [a1,a2] and [b1,b2] share at least one point
/// (proper crossing, endpoint touch, or collinear overlap).
bool segments_intersect(const Coord& a1, const Coord& a2, const Coord& b1,
                        const Coord& b2);

/// Squared euclidean distance between two points.
double squared_distance(const Coord& a, const Coord& b);

/// Squared distance from point p to segment [a, b].
double squared_distance_point_segment(const Coord& p, const Coord& a, const Coord& b);

/// Squared distance between segments [a1,a2] and [b1,b2] (0 if they
/// intersect).
double squared_distance_segments(const Coord& a1, const Coord& a2, const Coord& b1,
                                 const Coord& b2);

enum class RingSide : int { kOutside = 0, kInside = 1, kBoundary = 2 };

/// Point-in-ring test via ray casting; boundary points are classified as
/// kBoundary. The ring must be closed (first == last coordinate).
RingSide point_in_ring(const Coord& p, const Ring& ring);

/// Point-in-polygon with holes: inside the shell and outside every hole.
/// Boundary (of shell or hole) counts as inside, matching the "covers"
/// semantics that point-in-polygon spatial joins expect (a taxi pickup on a
/// census-block edge belongs to the block).
bool point_in_polygon(const Coord& p, const Polygon& poly);

/// True when any segment of `line` intersects any segment of `other`
/// (naive O(n*m) scan; engines provide indexed variants).
bool linestrings_intersect_naive(const LineString& line, const LineString& other);

/// Squared distance from a point to a polyline.
double squared_distance_point_linestring(const Coord& p, const LineString& line);

}  // namespace sjc::geom
