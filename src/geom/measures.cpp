#include "geom/measures.hpp"

#include <cmath>

namespace sjc::geom {

namespace {

double path_length(const std::vector<Coord>& path) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const double dx = path[i + 1].x - path[i].x;
    const double dy = path[i + 1].y - path[i].y;
    total += std::sqrt(dx * dx + dy * dy);
  }
  return total;
}

double polygon_area(const Polygon& poly) {
  double total = std::abs(ring_signed_area(poly.shell));
  for (const auto& hole : poly.holes) total -= std::abs(ring_signed_area(hole));
  return total;
}

// Length-weighted centroid of a path; weight returned via `weight`.
Coord path_centroid(const std::vector<Coord>& path, double& weight) {
  double cx = 0.0;
  double cy = 0.0;
  weight = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const double dx = path[i + 1].x - path[i].x;
    const double dy = path[i + 1].y - path[i].y;
    const double len = std::sqrt(dx * dx + dy * dy);
    cx += (path[i].x + path[i + 1].x) / 2.0 * len;
    cy += (path[i].y + path[i + 1].y) / 2.0 * len;
    weight += len;
  }
  if (weight == 0.0) return path.empty() ? Coord{0, 0} : path.front();
  return {cx / weight, cy / weight};
}

// Signed-area-weighted ring centroid (standard shoelace centroid); the sign
// of the returned weight follows the ring orientation so holes subtract.
Coord ring_centroid(const Ring& ring, double& signed_weight) {
  double cx = 0.0;
  double cy = 0.0;
  signed_weight = ring_signed_area(ring);
  if (signed_weight == 0.0) return ring.empty() ? Coord{0, 0} : ring.front();
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
    const double cross = ring[i].x * ring[i + 1].y - ring[i + 1].x * ring[i].y;
    cx += (ring[i].x + ring[i + 1].x) * cross;
    cy += (ring[i].y + ring[i + 1].y) * cross;
  }
  return {cx / (6.0 * signed_weight), cy / (6.0 * signed_weight)};
}

Coord polygon_centroid(const Polygon& poly, double& weight) {
  double shell_w = 0.0;
  const Coord shell_c = ring_centroid(poly.shell, shell_w);
  double cx = shell_c.x * std::abs(shell_w);
  double cy = shell_c.y * std::abs(shell_w);
  weight = std::abs(shell_w);
  for (const auto& hole : poly.holes) {
    double hole_w = 0.0;
    const Coord hole_c = ring_centroid(hole, hole_w);
    cx -= hole_c.x * std::abs(hole_w);
    cy -= hole_c.y * std::abs(hole_w);
    weight -= std::abs(hole_w);
  }
  if (weight <= 0.0) return poly.shell.front();
  return {cx / weight, cy / weight};
}

}  // namespace

double length(const Geometry& geometry) {
  switch (geometry.type()) {
    case GeomType::kPoint:
      return 0.0;
    case GeomType::kLineString:
      return path_length(geometry.as_line_string().coords);
    case GeomType::kPolygon: {
      const auto& poly = geometry.as_polygon();
      double total = path_length(poly.shell);
      for (const auto& hole : poly.holes) total += path_length(hole);
      return total;
    }
    case GeomType::kMultiLineString: {
      double total = 0.0;
      for (const auto& part : geometry.as_multi_line_string().parts) {
        total += path_length(part.coords);
      }
      return total;
    }
    case GeomType::kMultiPolygon: {
      double total = 0.0;
      for (const auto& part : geometry.as_multi_polygon().parts) {
        total += path_length(part.shell);
        for (const auto& hole : part.holes) total += path_length(hole);
      }
      return total;
    }
  }
  return 0.0;
}

double area(const Geometry& geometry) {
  switch (geometry.type()) {
    case GeomType::kPolygon:
      return polygon_area(geometry.as_polygon());
    case GeomType::kMultiPolygon: {
      double total = 0.0;
      for (const auto& part : geometry.as_multi_polygon().parts) {
        total += polygon_area(part);
      }
      return total;
    }
    default:
      return 0.0;
  }
}

Coord centroid(const Geometry& geometry) {
  switch (geometry.type()) {
    case GeomType::kPoint:
      return geometry.as_point();
    case GeomType::kLineString: {
      double w = 0.0;
      return path_centroid(geometry.as_line_string().coords, w);
    }
    case GeomType::kPolygon: {
      double w = 0.0;
      return polygon_centroid(geometry.as_polygon(), w);
    }
    case GeomType::kMultiLineString: {
      double cx = 0.0;
      double cy = 0.0;
      double total = 0.0;
      for (const auto& part : geometry.as_multi_line_string().parts) {
        double w = 0.0;
        const Coord c = path_centroid(part.coords, w);
        cx += c.x * w;
        cy += c.y * w;
        total += w;
      }
      if (total == 0.0) {
        return geometry.as_multi_line_string().parts.front().coords.front();
      }
      return {cx / total, cy / total};
    }
    case GeomType::kMultiPolygon: {
      double cx = 0.0;
      double cy = 0.0;
      double total = 0.0;
      for (const auto& part : geometry.as_multi_polygon().parts) {
        double w = 0.0;
        const Coord c = polygon_centroid(part, w);
        cx += c.x * w;
        cy += c.y * w;
        total += w;
      }
      if (total <= 0.0) return geometry.as_multi_polygon().parts.front().shell.front();
      return {cx / total, cy / total};
    }
  }
  return {0, 0};
}

}  // namespace sjc::geom
