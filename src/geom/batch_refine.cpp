#include "geom/batch_refine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "geom/algorithms.hpp"
#include "geom/predicates.hpp"
#include "geom/simd_dispatch.hpp"
#include "util/status.hpp"

namespace sjc::geom {

namespace {

// Early-exit path enumeration in collect_paths order (linestrings, then
// shell before holes per polygon part). fn returns true to stop.
template <typename Fn>
bool any_path(const Geometry& g, Fn&& fn) {
  switch (g.type()) {
    case GeomType::kPoint:
      return false;
    case GeomType::kLineString:
      return fn(std::span<const Coord>(g.as_line_string().coords));
    case GeomType::kPolygon: {
      const auto& poly = g.as_polygon();
      if (fn(std::span<const Coord>(poly.shell))) return true;
      for (const auto& hole : poly.holes) {
        if (fn(std::span<const Coord>(hole))) return true;
      }
      return false;
    }
    case GeomType::kMultiLineString:
      for (const auto& part : g.as_multi_line_string().parts) {
        if (fn(std::span<const Coord>(part.coords))) return true;
      }
      return false;
    case GeomType::kMultiPolygon:
      for (const auto& part : g.as_multi_polygon().parts) {
        if (fn(std::span<const Coord>(part.shell))) return true;
        for (const auto& hole : part.holes) {
          if (fn(std::span<const Coord>(hole))) return true;
        }
      }
      return false;
  }
  return false;
}

// Does [a, b] share a point with the *closed* rectangle r?
bool segment_touches_rect(const Coord& a, const Coord& b, const Envelope& r) {
  if (std::max(a.x, b.x) < r.min_x() || std::min(a.x, b.x) > r.max_x() ||
      std::max(a.y, b.y) < r.min_y() || std::min(a.y, b.y) > r.max_y()) {
    return false;
  }
  if (r.contains(a.x, a.y) || r.contains(b.x, b.y)) return true;
  const Coord c00{r.min_x(), r.min_y()};
  const Coord c10{r.max_x(), r.min_y()};
  const Coord c11{r.max_x(), r.max_y()};
  const Coord c01{r.min_x(), r.max_y()};
  return segments_intersect(a, b, c00, c10) || segments_intersect(a, b, c10, c11) ||
         segments_intersect(a, b, c11, c01) || segments_intersect(a, b, c01, c00);
}

// Grid resolution for the inscribed-rectangle search. The search is a
// heuristic — any candidate it proposes is verified exactly below — so a
// coarse grid only costs approximation quality, never correctness.
constexpr int kInnerGrid = 16;

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

BatchRefiner::BatchRefiner(const Geometry& anchor)
    : anchor_(&anchor), prepared_(anchor) {
  switch (anchor.type()) {
    case GeomType::kPolygon:
      add_part(anchor.as_polygon());
      break;
    case GeomType::kMultiPolygon:
      for (const auto& part : anchor.as_multi_polygon().parts) add_part(part);
      break;
    default:
      break;
  }
  build_chunks();
  build_segment_grid();
  // Point anchors have neither parts nor linework, so the envelope union
  // below would be vacuously empty and reject everything; fall back to
  // exact-only for them.
  approx_ = !parts_.empty() || !chunk_min_x_.empty();
}

void BatchRefiner::add_part(const Polygon& poly) {
  // Mirror PreparedGeometry::add_areal_part's bucketing exactly (same edge
  // multiset, same bucket formulas) so SoAPart::covers scans the same edge
  // set per probe and stays bit-identical to ArealPart::point_covered.
  SoAPart part;
  std::vector<Coord> ea, eb;
  const auto add_ring = [&](const Ring& ring) {
    for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
      ea.push_back(ring[i]);
      eb.push_back(ring[i + 1]);
    }
  };
  add_ring(poly.shell);
  for (const auto& hole : poly.holes) add_ring(hole);

  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    y_min = std::min({y_min, ea[i].y, eb[i].y});
    y_max = std::max({y_max, ea[i].y, eb[i].y});
    part.env.expand_to_include(ea[i].x, ea[i].y);
    part.env.expand_to_include(eb[i].x, eb[i].y);
  }
  part.y_min = y_min;
  part.y_max = y_max;
  const double span = y_max - y_min;
  part.bucket_count =
      static_cast<std::uint32_t>(std::clamp<std::size_t>(ea.size() / 2, 1, 4096));
  part.y_inv_step = span > 0.0 ? part.bucket_count / span : 0.0;

  const auto bucket_range = [&part](const Coord& a, const Coord& b) {
    const double lo = std::min(a.y, b.y);
    const double hi = std::max(a.y, b.y);
    auto b0 = static_cast<std::int64_t>((lo - part.y_min) * part.y_inv_step);
    auto b1 = static_cast<std::int64_t>((hi - part.y_min) * part.y_inv_step);
    b0 = std::clamp<std::int64_t>(b0, 0, part.bucket_count - 1);
    b1 = std::clamp<std::int64_t>(b1, 0, part.bucket_count - 1);
    return std::pair<std::uint32_t, std::uint32_t>(static_cast<std::uint32_t>(b0),
                                                   static_cast<std::uint32_t>(b1));
  };

  // CSR fill, but scattering edge *coordinates* (duplicated per bucket)
  // instead of edge ids: one probe reads one contiguous SoA run.
  std::vector<std::uint32_t> counts(part.bucket_count, 0);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    const auto [b0, b1] = bucket_range(ea[i], eb[i]);
    for (std::uint32_t b = b0; b <= b1; ++b) ++counts[b];
  }
  part.bucket_offsets.assign(part.bucket_count + 1, 0);
  for (std::uint32_t b = 0; b < part.bucket_count; ++b) {
    part.bucket_offsets[b + 1] = part.bucket_offsets[b] + counts[b];
  }
  const std::size_t slots = part.bucket_offsets.back();
  part.ax.resize(slots);
  part.ay.resize(slots);
  part.bx.resize(slots);
  part.by.resize(slots);
  std::vector<std::uint32_t> cursor(part.bucket_offsets.begin(),
                                    part.bucket_offsets.end() - 1);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    const auto [b0, b1] = bucket_range(ea[i], eb[i]);
    for (std::uint32_t b = b0; b <= b1; ++b) {
      const std::uint32_t s = cursor[b]++;
      part.ax[s] = ea[i].x;
      part.ay[s] = ea[i].y;
      part.bx[s] = eb[i].x;
      part.by[s] = eb[i].y;
    }
  }

  // Inner approximation: grid search for a large all-covered rectangle,
  // then exact verification (corner coverage + no edge touching the closed
  // rectangle). A failed verification just drops the rectangle.
  constexpr int G = kInnerGrid;
  const double w = part.env.width();
  const double h = part.env.height();
  if (w > 0.0 && h > 0.0) {
    const double sx = w / G;
    const double sy = h / G;
    const auto cell_of = [](double v, double lo, double step) {
      return std::clamp(static_cast<int>((v - lo) / step), 0, G - 1);
    };
    // A cell is "free" when no edge envelope overlaps it (conservative: no
    // boundary point can lie inside it) and its center is covered — then
    // the whole cell is covered, since coverage is constant on a connected
    // set that avoids the boundary.
    std::array<std::array<bool, G>, G> blocked{};
    for (std::size_t i = 0; i < ea.size(); ++i) {
      const int c0 = cell_of(std::min(ea[i].x, eb[i].x), part.env.min_x(), sx);
      const int c1 = cell_of(std::max(ea[i].x, eb[i].x), part.env.min_x(), sx);
      const int r0 = cell_of(std::min(ea[i].y, eb[i].y), part.env.min_y(), sy);
      const int r1 = cell_of(std::max(ea[i].y, eb[i].y), part.env.min_y(), sy);
      for (int r = r0; r <= r1; ++r) {
        for (int c = c0; c <= c1; ++c) blocked[r][c] = true;
      }
    }
    std::array<std::array<bool, G>, G> free_cell{};
    for (int r = 0; r < G; ++r) {
      for (int c = 0; c < G; ++c) {
        if (blocked[r][c]) continue;
        const Coord center{part.env.min_x() + (c + 0.5) * sx,
                           part.env.min_y() + (r + 0.5) * sy};
        free_cell[r][c] = part.covers(center);
      }
    }
    // Largest rectangle of free cells: per-row histogram + stack.
    int best_area = 0, best_r0 = 0, best_c0 = 0, best_r1 = 0, best_c1 = 0;
    std::array<int, G> heights{};
    for (int r = 0; r < G; ++r) {
      for (int c = 0; c < G; ++c) heights[c] = free_cell[r][c] ? heights[c] + 1 : 0;
      std::array<int, G + 1> stack{};
      int top = -1;
      for (int c = 0; c <= G; ++c) {
        const int cur = c < G ? heights[c] : 0;
        while (top >= 0 && heights[stack[top]] >= cur) {
          const int hgt = heights[stack[top--]];
          const int left = top >= 0 ? stack[top] + 1 : 0;
          const int area = hgt * (c - left);
          if (area > best_area) {
            best_area = area;
            best_r0 = r - hgt + 1;
            best_c0 = left;
            best_r1 = r;
            best_c1 = c - 1;
          }
        }
        stack[++top] = c;
      }
    }
    if (best_area > 0) {
      Envelope rect(part.env.min_x() + best_c0 * sx, part.env.min_y() + best_r0 * sy,
                    part.env.min_x() + (best_c1 + 1) * sx,
                    part.env.min_y() + (best_r1 + 1) * sy);
      const std::array<Coord, 4> corners{
          Coord{rect.min_x(), rect.min_y()}, Coord{rect.max_x(), rect.min_y()},
          Coord{rect.max_x(), rect.max_y()}, Coord{rect.min_x(), rect.max_y()}};
      bool ok = true;
      for (const auto& corner : corners) ok = ok && part.covers(corner);
      for (std::size_t i = 0; ok && i < ea.size(); ++i) {
        ok = !segment_touches_rect(ea[i], eb[i], rect);
      }
      if (ok) part.inner = rect;
    }
  }

  parts_.push_back(std::move(part));
}

void BatchRefiner::build_chunks() {
  std::size_t total_segments = 0;
  any_path(*anchor_, [&](std::span<const Coord> path) {
    total_segments += path.size() > 0 ? path.size() - 1 : 0;
    return false;
  });
  if (total_segments == 0) return;
  // Adaptive chunk length: the reject scan stays a short SoA pass (≤ ~64
  // envelope tests) even for long polylines.
  constexpr std::size_t kMaxChunks = 64;
  const std::size_t chunk_len =
      std::max<std::size_t>(4, (total_segments + kMaxChunks - 1) / kMaxChunks);
  any_path(*anchor_, [&](std::span<const Coord> path) {
    std::size_t i = 0;
    while (i + 1 < path.size()) {
      Envelope e;
      const std::size_t stop = std::min(path.size() - 1, i + chunk_len);
      for (std::size_t j = i; j <= stop; ++j) e.expand_to_include(path[j].x, path[j].y);
      chunk_min_x_.push_back(e.min_x());
      chunk_min_y_.push_back(e.min_y());
      chunk_max_x_.push_back(e.max_x());
      chunk_max_y_.push_back(e.max_y());
      i = stop;
    }
    return false;
  });
}

void BatchRefiner::build_segment_grid() {
  // Same sizing policy as PreparedGeometry::build_grid (≈ segments/2 cells,
  // square grid over the anchor envelope), but the per-cell payload is SoA:
  // endpoint and bbox doubles duplicated per cell entry. A segment is
  // registered in every cell its bbox overlaps, so any probe segment's cell
  // range covers every segment it could intersect.
  std::vector<Coord> sa;
  std::vector<Coord> sb;
  any_path(*anchor_, [&](std::span<const Coord> path) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      sa.push_back(path[i]);
      sb.push_back(path[i + 1]);
    }
    return false;
  });
  if (sa.empty()) return;
  seg_env_ = anchor_->envelope();
  const auto target_cells = std::clamp<std::size_t>(sa.size() / 2, 1, 64 * 64);
  const auto side = static_cast<std::uint32_t>(std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(target_cells)))));
  seg_w_ = seg_h_ = side;
  const double w = seg_env_.width();
  const double h = seg_env_.height();
  seg_x_inv_ = w > 0.0 ? seg_w_ / w : 0.0;
  seg_y_inv_ = h > 0.0 ? seg_h_ / h : 0.0;

  const auto clamp_cell = [](double v, std::uint32_t n) {
    const auto i = static_cast<std::int64_t>(v);
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(i, 0, n - 1));
  };
  const auto cell_range = [&](std::size_t s, std::uint32_t& x0, std::uint32_t& x1,
                              std::uint32_t& y0, std::uint32_t& y1) {
    x0 = clamp_cell((std::min(sa[s].x, sb[s].x) - seg_env_.min_x()) * seg_x_inv_, seg_w_);
    x1 = clamp_cell((std::max(sa[s].x, sb[s].x) - seg_env_.min_x()) * seg_x_inv_, seg_w_);
    y0 = clamp_cell((std::min(sa[s].y, sb[s].y) - seg_env_.min_y()) * seg_y_inv_, seg_h_);
    y1 = clamp_cell((std::max(sa[s].y, sb[s].y) - seg_env_.min_y()) * seg_y_inv_, seg_h_);
  };

  // CSR fill: count, prefix-sum, scatter.
  const std::size_t cells = static_cast<std::size_t>(seg_w_) * seg_h_;
  std::vector<std::uint32_t> counts(cells, 0);
  for (std::size_t s = 0; s < sa.size(); ++s) {
    std::uint32_t x0, x1, y0, y1;
    cell_range(s, x0, x1, y0, y1);
    for (std::uint32_t cy = y0; cy <= y1; ++cy) {
      for (std::uint32_t cx = x0; cx <= x1; ++cx) {
        ++counts[static_cast<std::size_t>(cy) * seg_w_ + cx];
      }
    }
  }
  seg_offsets_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) seg_offsets_[c + 1] = seg_offsets_[c] + counts[c];
  const std::size_t entries = seg_offsets_[cells];
  seg_ax_.resize(entries);
  seg_ay_.resize(entries);
  seg_bx_.resize(entries);
  seg_by_.resize(entries);
  seg_min_x_.resize(entries);
  seg_min_y_.resize(entries);
  seg_max_x_.resize(entries);
  seg_max_y_.resize(entries);
  std::vector<std::uint32_t> cursor(seg_offsets_.begin(), seg_offsets_.end() - 1);
  for (std::size_t s = 0; s < sa.size(); ++s) {
    std::uint32_t x0, x1, y0, y1;
    cell_range(s, x0, x1, y0, y1);
    for (std::uint32_t cy = y0; cy <= y1; ++cy) {
      for (std::uint32_t cx = x0; cx <= x1; ++cx) {
        const std::uint32_t at = cursor[static_cast<std::size_t>(cy) * seg_w_ + cx]++;
        seg_ax_[at] = sa[s].x;
        seg_ay_[at] = sa[s].y;
        seg_bx_[at] = sb[s].x;
        seg_by_[at] = sb[s].y;
        seg_min_x_[at] = std::min(sa[s].x, sb[s].x);
        seg_min_y_[at] = std::min(sa[s].y, sb[s].y);
        seg_max_x_[at] = std::max(sa[s].x, sb[s].x);
        seg_max_y_[at] = std::max(sa[s].y, sb[s].y);
      }
    }
  }
}

bool BatchRefiner::segment_grid_intersects(const Coord& a, const Coord& b) const {
  if (seg_w_ == 0) return false;
  const double bx0 = std::min(a.x, b.x);
  const double bx1 = std::max(a.x, b.x);
  const double by0 = std::min(a.y, b.y);
  const double by1 = std::max(a.y, b.y);
  const auto clamp_cell = [](double v, std::uint32_t n) {
    const auto i = static_cast<std::int64_t>(v);
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(i, 0, n - 1));
  };
  const std::uint32_t x0 = clamp_cell((bx0 - seg_env_.min_x()) * seg_x_inv_, seg_w_);
  const std::uint32_t x1 = clamp_cell((bx1 - seg_env_.min_x()) * seg_x_inv_, seg_w_);
  const std::uint32_t y0 = clamp_cell((by0 - seg_env_.min_y()) * seg_y_inv_, seg_h_);
  const std::uint32_t y1 = clamp_cell((by1 - seg_env_.min_y()) * seg_y_inv_, seg_h_);
  // Per-cell bbox prune + exact test through the dispatched kernel: two
  // segments can only intersect when their bboxes overlap, so skipping
  // non-overlapping candidates never changes the boolean, and the kernels
  // run the same exact test on the same candidates in the same order.
  const simd::SegSoA segs{seg_ax_.data(),    seg_ay_.data(),    seg_bx_.data(),
                          seg_by_.data(),    seg_min_x_.data(), seg_min_y_.data(),
                          seg_max_x_.data(), seg_max_y_.data()};
  const auto seg_run = simd::kernels().seg_run_intersects;
  for (std::uint32_t cy = y0; cy <= y1; ++cy) {
    for (std::uint32_t cx = x0; cx <= x1; ++cx) {
      const std::size_t cell = static_cast<std::size_t>(cy) * seg_w_ + cx;
      if (seg_run(segs, seg_offsets_[cell], seg_offsets_[cell + 1], a.x, a.y, b.x,
                  b.y, bx0, by0, bx1, by1)) {
        return true;
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Approximations
// ---------------------------------------------------------------------------

bool BatchRefiner::inner_accepts(const Envelope& probe_env) const {
  for (const auto& part : parts_) {
    if (part.inner.contains(probe_env)) return true;
  }
  return false;
}

bool BatchRefiner::overlaps_any_part_env(const Envelope& probe_env) const {
  for (const auto& part : parts_) {
    if (part.env.intersects(probe_env)) return true;
  }
  return false;
}

bool BatchRefiner::outer_rejects(const Envelope& probe_env) const {
  if (overlaps_any_part_env(probe_env)) return false;
  // Chunk-envelope early-reject sweep over the SoA arrays via the
  // dispatched kernel (SIMD paths test 2/4 chunks per step).
  return !simd::kernels().env_any_overlaps(
      chunk_min_x_.data(), chunk_min_y_.data(), chunk_max_x_.data(),
      chunk_max_y_.data(), chunk_min_x_.size(), probe_env.min_x(),
      probe_env.min_y(), probe_env.max_x(), probe_env.max_y());
}

// ---------------------------------------------------------------------------
// Batched point-in-polygon
// ---------------------------------------------------------------------------

bool BatchRefiner::SoAPart::covers(const Coord& p) const {
  if (p.y < y_min || p.y > y_max) return false;
  const auto b = std::clamp<std::int64_t>(
      static_cast<std::int64_t>((p.y - y_min) * y_inv_step), 0, bucket_count - 1);
  const std::size_t begin = bucket_offsets[static_cast<std::size_t>(b)];
  const std::size_t end = bucket_offsets[static_cast<std::size_t>(b) + 1];
  // Branchless crossing count over the bucket's SoA run via the dispatched
  // kernel: per edge, accumulate boundary hits (OR) and parity toggles
  // (XOR) without early exits, escalating the boundary sign to the adaptive
  // exact predicate when the float filter is uncertain — mirroring
  // point_covered's decisions exactly. The parity division is masked by the
  // straddle test, which is false whenever the denominator would be zero.
  return simd::kernels().pip_covers_run(ax.data() + begin, ay.data() + begin,
                                        bx.data() + begin, by.data() + begin,
                                        end - begin, p.x, p.y);
}

void BatchRefiner::covers_points(std::span<const Coord> pts,
                                 std::vector<std::uint8_t>& out,
                                 RefineStats& stats) const {
  out.resize(pts.size());
  const Envelope& env = anchor_->envelope();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Coord& p = pts[i];
    if (!env.contains(p.x, p.y)) {
      ++stats.early_rejects;
      out[i] = 0;
      continue;
    }
    bool accepted = false;
    for (const auto& part : parts_) {
      if (part.inner.contains(p.x, p.y)) {
        accepted = true;
        break;
      }
    }
    if (accepted) {
      ++stats.early_accepts;
      out[i] = 1;
      continue;
    }
    const std::uint64_t slow0 = exact::slowpath_calls();
    bool covered = false;
    for (const auto& part : parts_) {
      if (part.covers(p)) {
        covered = true;
        break;
      }
    }
    stats.note_exact(slow0);
    out[i] = covered ? 1 : 0;
  }
}

// ---------------------------------------------------------------------------
// Scalar predicates: approximation gates + exact mirrors
// ---------------------------------------------------------------------------

bool BatchRefiner::intersects(const Geometry& probe, RefineStats& stats) const {
  if (approx_) {
    const Envelope& pe = probe.envelope();
    if (inner_accepts(pe)) {
      ++stats.early_accepts;
      return true;
    }
    // Sound because the anchor's point set is contained in the union of
    // part envelopes and linework chunk envelopes: a shared point would
    // have to lie in the probe envelope too.
    if (outer_rejects(pe)) {
      ++stats.early_rejects;
      return false;
    }
  }
  const std::uint64_t slow0 = exact::slowpath_calls();
  const bool hit = exact_intersects(probe);
  stats.note_exact(slow0);
  return hit;
}

bool BatchRefiner::contains(const Geometry& probe, RefineStats& stats) const {
  // Same precondition as PreparedGeometry::contains — checked before the
  // approximation gates so non-areal anchors throw identically in both
  // refinement modes instead of early-rejecting here.
  require(anchor_->is_areal(), "BatchRefiner::contains: target must be areal");
  if (approx_) {
    const Envelope& pe = probe.envelope();
    if (inner_accepts(pe)) {
      ++stats.early_accepts;
      return true;
    }
    if (!anchor_->envelope().contains(pe) || !overlaps_any_part_env(pe)) {
      ++stats.early_rejects;
      return false;
    }
  }
  const std::uint64_t slow0 = exact::slowpath_calls();
  const bool hit = exact_contains(probe);
  stats.note_exact(slow0);
  return hit;
}

bool BatchRefiner::within_distance(const Geometry& probe, double d,
                                   RefineStats& stats) const {
  // Same envelope gate as GeometryEngine::BoundPredicate::within_distance.
  if (anchor_->envelope().distance(probe.envelope()) > d) {
    ++stats.early_rejects;
    return false;
  }
  if (approx_ && inner_accepts(probe.envelope())) {
    ++stats.early_accepts;  // probe inside a part: distance is exactly 0
    return true;
  }
  const std::uint64_t slow0 = exact::slowpath_calls();
  const bool hit = prepared_.distance(probe) <= d;
  stats.note_exact(slow0);
  return hit;
}

bool BatchRefiner::exact_intersects(const Geometry& probe) const {
  // Branch-for-branch mirror of PreparedGeometry::intersects, minus the
  // per-call path vectors.
  if (!anchor_->envelope().intersects(probe.envelope())) return false;

  if (probe.type() == GeomType::kPoint) {
    const Coord& p = probe.as_point();
    if (prepared_.has_areal() && prepared_.covers_point(p)) return true;
    if (anchor_->type() == GeomType::kPoint) return anchor_->as_point() == p;
    return prepared_.linework_touches_point(p);
  }
  if (anchor_->type() == GeomType::kPoint) {
    return intersects_naive(*anchor_, probe);
  }

  // 1) Any boundary/linework crossing? (SoA grid; boolean-identical to
  // prepared_.linework_intersects.)
  if (any_path(probe, [&](std::span<const Coord> path) {
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          if (segment_grid_intersects(path[i], path[i + 1])) return true;
        }
        return false;
      })) {
    return true;
  }

  // 2) No crossings: containment one way or the other decides.
  if (prepared_.has_areal()) {
    if (any_path(probe, [&](std::span<const Coord> path) {
          return !path.empty() && prepared_.covers_point(path.front());
        })) {
      return true;
    }
  }
  if (probe.is_areal()) {
    const auto reps = prepared_.path_reps();
    const auto check_poly = [&](const Polygon& poly) {
      for (const auto& rep : reps) {
        if (point_in_polygon(rep, poly)) return true;
      }
      return false;
    };
    if (probe.type() == GeomType::kPolygon) return check_poly(probe.as_polygon());
    for (const auto& part : probe.as_multi_polygon().parts) {
      if (check_poly(part)) return true;
    }
  }
  return false;
}

bool BatchRefiner::exact_contains(const Geometry& probe) const {
  require(anchor_->is_areal(), "BatchRefiner::contains: target must be areal");
  if (!anchor_->envelope().contains(probe.envelope())) return false;
  // Mirror of PreparedGeometry::contains without materializing the probe's
  // SimplePart list: every simple part of the probe must be covered by at
  // least one areal part of the anchor.
  switch (probe.type()) {
    case GeomType::kPoint:
      // The probe point is inside our envelope (checked above), so
      // covers_point's envelope gate cannot reject it spuriously.
      return prepared_.covers_point(probe.as_point());
    case GeomType::kLineString:
      return prepared_.any_part_covers_path(probe.as_line_string().coords);
    case GeomType::kPolygon:
      return prepared_.any_part_covers_path(probe.as_polygon().shell);
    case GeomType::kMultiLineString:
      for (const auto& part : probe.as_multi_line_string().parts) {
        if (!prepared_.any_part_covers_path(part.coords)) return false;
      }
      return true;
    case GeomType::kMultiPolygon:
      for (const auto& part : probe.as_multi_polygon().parts) {
        if (!prepared_.any_part_covers_path(part.shell)) return false;
      }
      return true;
  }
  return false;
}

std::size_t BatchRefiner::index_size_bytes() const {
  std::size_t bytes = prepared_.index_size_bytes();
  for (const auto& part : parts_) {
    bytes += (part.ax.size() + part.ay.size() + part.bx.size() + part.by.size()) *
             sizeof(double);
    bytes += part.bucket_offsets.size() * sizeof(std::uint32_t);
  }
  bytes += (chunk_min_x_.size() + chunk_min_y_.size() + chunk_max_x_.size() +
            chunk_max_y_.size()) *
           sizeof(double);
  return bytes;
}

}  // namespace sjc::geom
