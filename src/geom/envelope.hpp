// Axis-aligned envelope (Minimum Bounding Rectangle).
//
// Envelopes drive the *filter* phase of every spatial join in the paper:
// partition pairing in the global join and candidate pairing in the local
// join both operate purely on MBRs; exact geometry is only consulted during
// refinement. Envelope is therefore a trivially-copyable value type used in
// bulk (R-tree nodes, partition tables, shuffle records).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace sjc::geom {

struct Coord {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Coord& a, const Coord& b) {
    return a.x == b.x && a.y == b.y;
  }
};

class Envelope {
 public:
  /// Constructs an empty (inverted) envelope: expanding it with any point
  /// makes it valid; intersects()/contains() on an empty envelope are false.
  constexpr Envelope() = default;

  constexpr Envelope(double min_x, double min_y, double max_x, double max_y)
      : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {}

  static constexpr Envelope of_point(double x, double y) { return {x, y, x, y}; }

  constexpr double min_x() const { return min_x_; }
  constexpr double min_y() const { return min_y_; }
  constexpr double max_x() const { return max_x_; }
  constexpr double max_y() const { return max_y_; }

  constexpr bool empty() const { return min_x_ > max_x_ || min_y_ > max_y_; }

  constexpr double width() const { return empty() ? 0.0 : max_x_ - min_x_; }
  constexpr double height() const { return empty() ? 0.0 : max_y_ - min_y_; }
  constexpr double area() const { return width() * height(); }
  /// Half-perimeter; the classic R-tree node split cost metric.
  constexpr double margin() const { return width() + height(); }

  constexpr double center_x() const { return (min_x_ + max_x_) / 2.0; }
  constexpr double center_y() const { return (min_y_ + max_y_) / 2.0; }

  void expand_to_include(double x, double y) {
    min_x_ = std::min(min_x_, x);
    min_y_ = std::min(min_y_, y);
    max_x_ = std::max(max_x_, x);
    max_y_ = std::max(max_y_, y);
  }

  void expand_to_include(const Envelope& other) {
    if (other.empty()) return;
    min_x_ = std::min(min_x_, other.min_x_);
    min_y_ = std::min(min_y_, other.min_y_);
    max_x_ = std::max(max_x_, other.max_x_);
    max_y_ = std::max(max_y_, other.max_y_);
  }

  /// Grows the envelope by `d` on every side (d may be 0; negative d is a
  /// caller bug and left unchecked for speed).
  constexpr Envelope expanded_by(double d) const {
    return {min_x_ - d, min_y_ - d, max_x_ + d, max_y_ + d};
  }

  constexpr bool intersects(const Envelope& o) const {
    return !(o.min_x_ > max_x_ || o.max_x_ < min_x_ || o.min_y_ > max_y_ ||
             o.max_y_ < min_y_);
  }

  constexpr bool contains(double x, double y) const {
    return x >= min_x_ && x <= max_x_ && y >= min_y_ && y <= max_y_;
  }

  constexpr bool contains(const Envelope& o) const {
    return !o.empty() && o.min_x_ >= min_x_ && o.max_x_ <= max_x_ &&
           o.min_y_ >= min_y_ && o.max_y_ <= max_y_;
  }

  /// Envelope of the intersection (empty envelope when disjoint).
  Envelope intersection(const Envelope& o) const {
    if (!intersects(o)) return Envelope();
    return {std::max(min_x_, o.min_x_), std::max(min_y_, o.min_y_),
            std::min(max_x_, o.max_x_), std::min(max_y_, o.max_y_)};
  }

  Envelope merged(const Envelope& o) const {
    Envelope e = *this;
    e.expand_to_include(o);
    return e;
  }

  /// Minimum distance between envelopes (0 when intersecting).
  double distance(const Envelope& o) const {
    const double dx = std::max({0.0, o.min_x_ - max_x_, min_x_ - o.max_x_});
    const double dy = std::max({0.0, o.min_y_ - max_y_, min_y_ - o.max_y_});
    return std::sqrt(dx * dx + dy * dy);
  }

  friend bool operator==(const Envelope& a, const Envelope& b) {
    return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ && a.max_x_ == b.max_x_ &&
           a.max_y_ == b.max_y_;
  }

 private:
  double min_x_ = std::numeric_limits<double>::infinity();
  double min_y_ = std::numeric_limits<double>::infinity();
  double max_x_ = -std::numeric_limits<double>::infinity();
  double max_y_ = -std::numeric_limits<double>::infinity();
};

}  // namespace sjc::geom
