// Exact spatial predicates over full geometries (naive evaluation).
//
// These free functions are the *reference* implementations: every predicate
// is evaluated by scanning all coordinates with the kernels in
// algorithms.hpp, with no caching or indexing. The Simple ("GEOS-analog")
// engine calls them directly; the Prepared ("JTS-analog") engine must agree
// with them bit-for-bit (enforced by property tests).
//
// Semantics follow DE-9IM "intersects"/"covers" conventions:
//  - boundary contact counts as intersecting;
//  - contains() here is "covers": boundary points are contained.
#pragma once

#include "geom/geometry.hpp"

namespace sjc::geom {

/// True when geometries a and b share at least one point.
bool intersects_naive(const Geometry& a, const Geometry& b);

/// True when areal geometry `a` covers geometry `b` entirely.
/// Supported `a` types: POLYGON, MULTIPOLYGON. Any `b` type.
bool contains_naive(const Geometry& a, const Geometry& b);

/// Minimum euclidean distance between a and b (0 when intersecting).
double distance_naive(const Geometry& a, const Geometry& b);

/// True when distance(a, b) <= d.
bool within_distance_naive(const Geometry& a, const Geometry& b, double d);

}  // namespace sjc::geom
