// Geometry value types: Point, LineString, Polygon (with holes), and the
// Multi* variants the TIGER/census workloads need.
//
// Geometry is a tagged value type (std::variant under the hood) with a
// cached envelope, mirroring how JTS/GEOS geometries carry their MBR. All
// coordinate storage is contiguous (std::vector<Coord>) so predicate loops
// are cache-friendly.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "geom/envelope.hpp"

namespace sjc::geom {

enum class GeomType : std::uint8_t {
  kPoint = 0,
  kLineString = 1,
  kPolygon = 2,
  kMultiLineString = 3,
  kMultiPolygon = 4,
};

/// Human-readable tag name ("POINT", "POLYGON", ...).
const char* geom_type_name(GeomType type);

/// A closed ring is a coordinate sequence whose first and last coordinates
/// are equal; Polygon validation enforces this.
using Ring = std::vector<Coord>;

struct LineString {
  std::vector<Coord> coords;

  friend bool operator==(const LineString&, const LineString&) = default;
};

struct Polygon {
  Ring shell;
  std::vector<Ring> holes;

  friend bool operator==(const Polygon&, const Polygon&) = default;
};

struct MultiLineString {
  std::vector<LineString> parts;

  friend bool operator==(const MultiLineString&, const MultiLineString&) = default;
};

struct MultiPolygon {
  std::vector<Polygon> parts;

  friend bool operator==(const MultiPolygon&, const MultiPolygon&) = default;
};

/// Signed area of a ring (positive = counter-clockwise).
double ring_signed_area(const Ring& ring);

class Geometry {
 public:
  /// Default geometry is an empty point at the origin (needed for
  /// container resizing); prefer the factory functions.
  Geometry();

  static Geometry point(double x, double y);
  /// Requires at least 2 coordinates.
  static Geometry line_string(std::vector<Coord> coords);
  /// Requires a closed shell ring of >= 4 coordinates; holes likewise.
  static Geometry polygon(Ring shell, std::vector<Ring> holes = {});
  static Geometry multi_line_string(std::vector<LineString> parts);
  static Geometry multi_polygon(std::vector<Polygon> parts);

  GeomType type() const { return type_; }
  const Envelope& envelope() const { return envelope_; }

  const Coord& as_point() const;
  const LineString& as_line_string() const;
  const Polygon& as_polygon() const;
  const MultiLineString& as_multi_line_string() const;
  const MultiPolygon& as_multi_polygon() const;

  /// Total coordinate count across all parts/rings.
  std::size_t num_coords() const;

  /// Approximate in-memory footprint in bytes (used by the RDD memory
  /// manager and DFS block accounting).
  std::size_t size_bytes() const;

  /// True for polygons / multipolygons (areal geometry).
  bool is_areal() const {
    return type_ == GeomType::kPolygon || type_ == GeomType::kMultiPolygon;
  }

  /// Structural equality (same type, same coordinates).
  friend bool operator==(const Geometry& a, const Geometry& b);

 private:
  using Storage =
      std::variant<Coord, LineString, Polygon, MultiLineString, MultiPolygon>;

  Geometry(GeomType type, Storage storage);
  void compute_envelope();

  GeomType type_;
  Storage storage_;
  Envelope envelope_;
};

/// Record = geometry + stable 64-bit id (+ the source dataset assigns ids
/// densely so ids double as array offsets).
struct Feature {
  std::uint64_t id = 0;
  Geometry geometry;
};

}  // namespace sjc::geom
