// Well-Known Text reader/writer.
//
// WKT is the wire format of the streaming (HadoopGIS-style) data path: every
// record crosses each pipeline stage as "<id>\t<wkt>" text and is re-parsed
// on the far side. The parser is therefore written for throughput
// (single-pass, from_chars numerics, no regex) while still rejecting
// malformed input with precise ParseError messages.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geom/geometry.hpp"

namespace sjc::geom {

/// Serializes a geometry as canonical WKT, e.g.
/// "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))".
std::string to_wkt(const Geometry& geometry);

/// Parses WKT for the five supported types. Throws ParseError on malformed
/// input (unknown tag, unbalanced parens, bad numbers, unclosed rings, ...).
Geometry from_wkt(std::string_view wkt);

/// Non-throwing parse for hardened input paths: nullopt on malformed input,
/// with the ParseError text copied into `*error` when `error` is non-null.
std::optional<Geometry> try_from_wkt(std::string_view wkt,
                                     std::string* error = nullptr);

}  // namespace sjc::geom
