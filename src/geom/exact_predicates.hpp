// Adaptive exact geometric predicates (Shewchuk's scheme).
//
// orient2d / incircle return a double whose SIGN is the exact sign of the
// underlying determinant for the given double inputs — no epsilon, no
// configuration. Each predicate first evaluates the determinant in plain
// floating point together with a forward error bound; when the magnitude
// clears the bound the approximate value is returned (the fast path, one
// branch more than the naive formula). Otherwise the predicate escalates to
// staged exact evaluation with floating-point expansions (two_sum /
// two_product residual arithmetic), each stage re-testing a tighter bound
// so the common near-degenerate cases stop early and only true ties pay
// for the full expansion.
//
// The fast-path filter is written as a single branchless comparison
//   |det| > kCcwErrBoundA * (|detleft| + |detright|)   (plus detsum == 0)
// instead of Shewchuk's sign-case ladder, so the SIMD point-in-polygon
// kernels (simd_dispatch.hpp) can evaluate the identical filter vectorized
// and escalate on exactly the same inputs as the scalar code — escalation
// *counts*, not just answers, are pinned across dispatch paths.
//
// Escalations are counted in a thread-local counter (slowpath_calls) so the
// refinement layer can report its filter hit ratio
// (refine.exact_fastpath / refine.exact_slowpath).
//
// Range notes: exact for all finite inputs whose intermediate products stay
// clear of overflow and subnormal underflow. When a product overflows
// (coordinates ~1e300 and beyond) the predicate rescales all inputs by a
// power of two (exact for |c| >= 2^-472, and 0) and re-evaluates, so
// coordinates up to +-1.8e308 are decided correctly as long as they are not
// mixed with near-subnormal magnitudes in the same call. Products that
// underflow below 2^-1074 lose their residual (the classic limitation of
// the original); pure powers of two stay exact all the way down.
#pragma once

#include <cstdint>

#include "geom/envelope.hpp"

namespace sjc::geom::exact {

/// 2^-53: half an ulp of 1.0, the unit roundoff used by the error bounds.
inline constexpr double kEpsilon = 1.1102230246251565e-16;
/// 2^27 + 1: Dekker split constant for 53-bit doubles.
inline constexpr double kSplitter = 134217729.0;
inline constexpr double kResultErrBound = (3.0 + 8.0 * kEpsilon) * kEpsilon;
inline constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEpsilon) * kEpsilon;
inline constexpr double kCcwErrBoundB = (2.0 + 12.0 * kEpsilon) * kEpsilon;
inline constexpr double kCcwErrBoundC = (9.0 + 64.0 * kEpsilon) * kEpsilon * kEpsilon;
inline constexpr double kIccErrBoundA = (10.0 + 96.0 * kEpsilon) * kEpsilon;

/// Sign-exact orientation determinant det[pa - pc, pb - pc]:
///   > 0 when (pa, pb, pc) wind counterclockwise, < 0 clockwise,
///   == 0 when the three points are exactly collinear.
/// The magnitude is only approximate on the fast path; consumers must use
/// the sign alone.
double orient2d(const Coord& pa, const Coord& pb, const Coord& pc);

/// Escalation entry point for callers that already ran the A-stage filter
/// themselves (the SIMD kernels): assumes
///   detsum = |(pax-pcx)*(pby-pcy)| + |(pay-pcy)*(pbx-pcx)|
/// did not pass the filter. Increments the slow-path counter and returns a
/// sign-exact determinant.
double orient2d_escalate(double pax, double pay, double pbx, double pby, double pcx,
                         double pcy, double detsum);

/// Sign-exact incircle determinant: > 0 when pd lies inside the circle
/// through (pa, pb, pc) (counterclockwise order), < 0 outside, == 0 when
/// cocircular. Sign flips with the orientation of (pa, pb, pc).
double incircle(const Coord& pa, const Coord& pb, const Coord& pc, const Coord& pd);

/// Thread-local count of filter failures (adaptive escalations) by this
/// thread, across orient2d and incircle. Monotone; callers snapshot before
/// and after an exact test to classify it as fast-path or slow-path.
std::uint64_t slowpath_calls();

}  // namespace sjc::geom::exact
