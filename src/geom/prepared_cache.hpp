// PreparedCache: a cache of bind() results (PreparedGeometry handles)
// keyed by feature id, scoped to a run or — in serving mode — shared
// across every query that touches the same resident dataset pair.
//
// Partition-based joins (the paper's §II design choice shared by all three
// systems) overlap-assign features, so the same right-side geometry appears
// in many partitions and — without this cache — is re-prepared once per
// partition pair it meets. LocationSpark (PAPERS.md) demonstrates the win
// from keeping query-side index/prepared structures alive across
// partitions; PreparedCache brings that to the shared local-join kernel: a
// thread-safe, capacity-bounded (LRU) map from feature id to a bound
// predicate, shared by all tasks of a join wave (and, via
// serving::ResidentCatalog, by all queries against one resident entry).
//
// Each slot owns a private copy of the geometry it was bound against, so a
// cached handle stays valid even when the source partition block (or a
// streaming reducer's transient feature vector) is gone. Eviction never
// invalidates handles already handed out — they share ownership.
//
// An entry carries two independent slots: the per-pair BoundPredicate
// (acquire) and the batched BatchRefiner (acquire_refiner). The slots are
// populated lazily and independently, so queries with different
// `batch_refine` settings can share one cache: a refiner-only entry never
// satisfies an acquire() lookup (and vice versa), and populating one slot
// never discards the other.
//
// Fidelity note: the cache models reuse of *prepared* structures only. The
// Simple (GEOS-analog) engine's from-scratch per-call evaluation is the
// model being measured, so callers must consult the cache only for the
// Prepared engine (core::run_local_join enforces this), keeping the
// JTS-vs-GEOS engine gap of Tables 2-3 intact.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "geom/engine.hpp"

namespace sjc::geom {

class BatchRefiner;

class PreparedCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit PreparedCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the bound predicate for feature `id`, binding `geometry` on
  /// `engine` (against an internally owned copy) on a miss. Two features
  /// with the same id must carry equal geometry — true for the
  /// partition-duplicated datasets this serves.
  std::shared_ptr<const BoundPredicate> acquire(const GeometryEngine& engine,
                                                std::uint64_t id,
                                                const Geometry& geometry);

  /// Like acquire(), but for the batched refinement engine: returns the
  /// BatchRefiner for feature `id`, building one (against an internally
  /// owned copy of `geometry`) on a miss. An entry whose bound-predicate
  /// slot was populated by acquire() keeps it; the refiner slot is filled
  /// alongside. Handles already handed out stay valid through shared
  /// ownership.
  std::shared_ptr<const BatchRefiner> acquire_refiner(std::uint64_t id,
                                                      const Geometry& geometry);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Total acquire()/acquire_refiner() calls. Invariant (checked by
  /// tests, including under TSan): hits() + misses() == lookups().
  std::uint64_t lookups() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  /// hits / lookups, 0 when never queried.
  double hit_rate() const;

  void clear();

 private:
  struct BoundHolder {
    Geometry geometry;  // owned copy; `bound` references it
    std::unique_ptr<BoundPredicate> bound;
  };
  struct RefinerHolder {
    Geometry geometry;  // owned copy; `refiner` references it
    std::unique_ptr<BatchRefiner> refiner;
    ~RefinerHolder();  // out-of-line: BatchRefiner is incomplete here
  };
  struct Entry {
    std::shared_ptr<BoundHolder> bound;      // populated by acquire()
    std::shared_ptr<RefinerHolder> refiner;  // populated by acquire_refiner()
    std::uint64_t last_used = 0;
  };

  /// Bumps last_used and, when over capacity, evicts the LRU entry other
  /// than `keep_id`. Caller holds mutex_.
  void touch_and_evict_locked(Entry& entry, std::uint64_t keep_id);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sjc::geom
