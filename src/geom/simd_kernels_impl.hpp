// Internal: scalar kernel bodies shared by the dispatch layer (as the
// always-built fallback path) and by the SIMD translation units (as the
// remainder/tail loops), so every path runs literally the same scalar code
// on the elements it does not vectorize. Not installed API — include only
// from src/geom SIMD/dispatch sources.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "geom/algorithms.hpp"
#include "geom/envelope.hpp"
#include "geom/exact_predicates.hpp"
#include "geom/simd_dispatch.hpp"

namespace sjc::geom::simd::detail {

/// Point-in-polygon scalar loop over edges [i, n), accumulating boundary
/// hits (OR) and crossing parity (XOR) exactly like the pre-SIMD
/// BatchRefiner::SoAPart::covers — except the boundary decision is now
/// sign-exact: an edge whose cross product fails the A-stage filter (and
/// whose bbox admits the point) escalates to exact::orient2d_escalate. The
/// crossing parity keeps the original masked-division arithmetic; it is
/// bitwise deterministic per IEEE and needs no exactness (it mirrors
/// point_in_ring's half-open rule).
inline void pip_scalar_range(const double* ax, const double* ay, const double* bx,
                             const double* by, std::size_t i, std::size_t n, double px,
                             double py, unsigned& on_boundary, unsigned& inside) {
  for (; i < n; ++i) {
    const double eax = ax[i], eay = ay[i], ebx = bx[i], eby = by[i];
    // det = orient2d(edge_b, probe, edge_a): zero iff the probe is exactly
    // on the edge's supporting line.
    const double detleft = (ebx - eax) * (py - eay);
    const double detright = (eby - eay) * (px - eax);
    const double det = detleft - detright;
    const bool bbox = (px >= std::min(eax, ebx)) & (px <= std::max(eax, ebx)) &
                      (py >= std::min(eay, eby)) & (py <= std::max(eay, eby));
    if (bbox) {
      const double detsum = std::fabs(detleft) + std::fabs(detright);
      const double errbound = exact::kCcwErrBoundA * detsum;
      double sign = det;
      if (!(det > errbound || -det > errbound || detsum == 0.0)) {
        sign = exact::orient2d_escalate(ebx, eby, px, py, eax, eay, detsum);
      }
      on_boundary |= static_cast<unsigned>(sign == 0.0);
    }
    const bool spans = (eay > py) != (eby > py);
    const double x_cross = eax + (py - eay) * (ebx - eax) / (eby - eay);
    inside ^= static_cast<unsigned>(spans) & static_cast<unsigned>(x_cross > px);
  }
}

/// Segment-run scalar loop over candidates [i, end): bbox prune, then the
/// exact intersection test, early exit on the first hit.
inline bool seg_scalar_range(const SegSoA& s, std::size_t i, std::size_t end,
                             const Coord& a, const Coord& b, double bx0, double by0,
                             double bx1, double by1) {
  for (; i < end; ++i) {
    const bool overlap = (s.min_x[i] <= bx1) & (s.max_x[i] >= bx0) &
                         (s.min_y[i] <= by1) & (s.max_y[i] >= by0);
    if (overlap &&
        segments_intersect(a, b, {s.ax[i], s.ay[i]}, {s.bx[i], s.by[i]})) {
      return true;
    }
  }
  return false;
}

/// Envelope-sweep scalar loop over [i, n): true on the first overlap.
inline bool env_scalar_range(const double* min_x, const double* min_y,
                             const double* max_x, const double* max_y, std::size_t i,
                             std::size_t n, double px0, double py0, double px1,
                             double py1) {
  for (; i < n; ++i) {
    if (min_x[i] <= px1 && max_x[i] >= px0 && min_y[i] <= py1 && max_y[i] >= py0) {
      return true;
    }
  }
  return false;
}

}  // namespace sjc::geom::simd::detail
