#include "geom/prepared.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/algorithms.hpp"
#include "geom/predicates.hpp"
#include "geom/simple_parts.hpp"
#include "util/status.hpp"

namespace sjc::geom {

namespace {

// Collects the coordinate paths (linestrings + rings) of a geometry.
void collect_paths(const Geometry& g, std::vector<const std::vector<Coord>*>& out) {
  switch (g.type()) {
    case GeomType::kPoint:
      break;
    case GeomType::kLineString:
      out.push_back(&g.as_line_string().coords);
      break;
    case GeomType::kPolygon: {
      const auto& poly = g.as_polygon();
      out.push_back(&poly.shell);
      for (const auto& hole : poly.holes) out.push_back(&hole);
      break;
    }
    case GeomType::kMultiLineString:
      for (const auto& part : g.as_multi_line_string().parts) out.push_back(&part.coords);
      break;
    case GeomType::kMultiPolygon:
      for (const auto& part : g.as_multi_polygon().parts) {
        out.push_back(&part.shell);
        for (const auto& hole : part.holes) out.push_back(&hole);
      }
      break;
  }
}

bool strict_crossing(const Coord& a1, const Coord& a2, const Coord& b1,
                     const Coord& b2) {
  const double d1 = orientation(b1, b2, a1);
  const double d2 = orientation(b1, b2, a2);
  const double d3 = orientation(a1, a2, b1);
  const double d4 = orientation(a1, a2, b2);
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

PreparedGeometry::PreparedGeometry(const Geometry& geometry) : geometry_(&geometry) {
  switch (geometry.type()) {
    case GeomType::kPoint:
      break;
    case GeomType::kPolygon:
      add_areal_part(geometry.as_polygon());
      break;
    case GeomType::kMultiPolygon:
      for (const auto& part : geometry.as_multi_polygon().parts) add_areal_part(part);
      break;
    default:
      break;
  }
  std::vector<const std::vector<Coord>*> paths;
  collect_paths(geometry, paths);
  for (const auto* path : paths) add_linework(*path);
  build_grid();
}

void PreparedGeometry::add_areal_part(const Polygon& poly) {
  ArealPart part;
  const auto add_ring = [&part](const Ring& ring) {
    for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
      part.edges.push_back({ring[i], ring[i + 1]});
    }
  };
  add_ring(poly.shell);
  for (const auto& hole : poly.holes) add_ring(hole);

  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  for (const auto& e : part.edges) {
    y_min = std::min({y_min, e.a.y, e.b.y});
    y_max = std::max({y_max, e.a.y, e.b.y});
  }
  part.y_min = y_min;
  part.y_max = y_max;
  const double span = y_max - y_min;
  part.bucket_count = static_cast<std::uint32_t>(
      std::clamp<std::size_t>(part.edges.size() / 2, 1, 4096));
  part.y_inv_step = span > 0.0 ? part.bucket_count / span : 0.0;

  // CSR fill: count, prefix-sum, scatter.
  std::vector<std::uint32_t> counts(part.bucket_count, 0);
  const auto bucket_range = [&part](const Segment& e) {
    double lo = std::min(e.a.y, e.b.y);
    double hi = std::max(e.a.y, e.b.y);
    auto b0 = static_cast<std::int64_t>((lo - part.y_min) * part.y_inv_step);
    auto b1 = static_cast<std::int64_t>((hi - part.y_min) * part.y_inv_step);
    b0 = std::clamp<std::int64_t>(b0, 0, part.bucket_count - 1);
    b1 = std::clamp<std::int64_t>(b1, 0, part.bucket_count - 1);
    return std::pair<std::uint32_t, std::uint32_t>(static_cast<std::uint32_t>(b0),
                                                   static_cast<std::uint32_t>(b1));
  };
  for (const auto& e : part.edges) {
    const auto [b0, b1] = bucket_range(e);
    for (std::uint32_t b = b0; b <= b1; ++b) ++counts[b];
  }
  part.bucket_offsets.assign(part.bucket_count + 1, 0);
  for (std::uint32_t b = 0; b < part.bucket_count; ++b) {
    part.bucket_offsets[b + 1] = part.bucket_offsets[b] + counts[b];
  }
  part.bucket_edges.resize(part.bucket_offsets.back());
  std::vector<std::uint32_t> cursor(part.bucket_offsets.begin(),
                                    part.bucket_offsets.end() - 1);
  for (std::uint32_t i = 0; i < part.edges.size(); ++i) {
    const auto [b0, b1] = bucket_range(part.edges[i]);
    for (std::uint32_t b = b0; b <= b1; ++b) part.bucket_edges[cursor[b]++] = i;
  }
  areal_parts_.push_back(std::move(part));
}

void PreparedGeometry::add_linework(const std::vector<Coord>& path) {
  if (!path.empty()) path_reps_.push_back(path.front());
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    segments_.push_back({path[i], path[i + 1]});
  }
}

void PreparedGeometry::build_grid() {
  grid_env_ = geometry_->envelope();
  if (segments_.empty()) {
    grid_w_ = grid_h_ = 0;
    return;
  }
  const auto target_cells =
      std::clamp<std::size_t>(segments_.size() / 2, 1, 64 * 64);
  const auto side = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(
                                   static_cast<double>(target_cells)))));
  grid_w_ = grid_h_ = side;
  const double w = grid_env_.width();
  const double h = grid_env_.height();
  cell_w_inv_ = w > 0.0 ? grid_w_ / w : 0.0;
  cell_h_inv_ = h > 0.0 ? grid_h_ / h : 0.0;

  const auto cell_range = [this](const Envelope& e, std::uint32_t& x0, std::uint32_t& x1,
                                 std::uint32_t& y0, std::uint32_t& y1) {
    const auto clamp_cell = [](double v, std::uint32_t n) {
      auto i = static_cast<std::int64_t>(v);
      return static_cast<std::uint32_t>(std::clamp<std::int64_t>(i, 0, n - 1));
    };
    x0 = clamp_cell((e.min_x() - grid_env_.min_x()) * cell_w_inv_, grid_w_);
    x1 = clamp_cell((e.max_x() - grid_env_.min_x()) * cell_w_inv_, grid_w_);
    y0 = clamp_cell((e.min_y() - grid_env_.min_y()) * cell_h_inv_, grid_h_);
    y1 = clamp_cell((e.max_y() - grid_env_.min_y()) * cell_h_inv_, grid_h_);
  };

  const std::size_t cells = static_cast<std::size_t>(grid_w_) * grid_h_;
  std::vector<std::uint32_t> counts(cells, 0);
  const auto seg_env = [](const Segment& s) {
    Envelope e;
    e.expand_to_include(s.a.x, s.a.y);
    e.expand_to_include(s.b.x, s.b.y);
    return e;
  };
  for (const auto& s : segments_) {
    std::uint32_t x0, x1, y0, y1;
    cell_range(seg_env(s), x0, x1, y0, y1);
    for (std::uint32_t y = y0; y <= y1; ++y) {
      for (std::uint32_t x = x0; x <= x1; ++x) ++counts[y * grid_w_ + x];
    }
  }
  cell_offsets_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) cell_offsets_[c + 1] = cell_offsets_[c] + counts[c];
  cell_segments_.resize(cell_offsets_.back());
  std::vector<std::uint32_t> cursor(cell_offsets_.begin(), cell_offsets_.end() - 1);
  for (std::uint32_t i = 0; i < segments_.size(); ++i) {
    std::uint32_t x0, x1, y0, y1;
    cell_range(seg_env(segments_[i]), x0, x1, y0, y1);
    for (std::uint32_t y = y0; y <= y1; ++y) {
      for (std::uint32_t x = x0; x <= x1; ++x) cell_segments_[cursor[y * grid_w_ + x]++] = i;
    }
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

template <typename Fn>
void PreparedGeometry::for_cells(const Envelope& e, Fn&& fn) const {
  if (grid_w_ == 0) return;
  const auto clamp_cell = [](double v, std::uint32_t n) {
    auto i = static_cast<std::int64_t>(v);
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(i, 0, n - 1));
  };
  const std::uint32_t x0 = clamp_cell((e.min_x() - grid_env_.min_x()) * cell_w_inv_, grid_w_);
  const std::uint32_t x1 = clamp_cell((e.max_x() - grid_env_.min_x()) * cell_w_inv_, grid_w_);
  const std::uint32_t y0 = clamp_cell((e.min_y() - grid_env_.min_y()) * cell_h_inv_, grid_h_);
  const std::uint32_t y1 = clamp_cell((e.max_y() - grid_env_.min_y()) * cell_h_inv_, grid_h_);
  for (std::uint32_t y = y0; y <= y1; ++y) {
    for (std::uint32_t x = x0; x <= x1; ++x) {
      fn(static_cast<std::size_t>(y) * grid_w_ + x);
    }
  }
}

bool PreparedGeometry::ArealPart::point_covered(const Coord& p) const {
  bool inside = false;
  const auto scan_edge = [&](const Segment& e) -> int {
    if (point_on_segment(p, e.a, e.b)) return 1;  // boundary: covered
    if ((e.a.y > p.y) != (e.b.y > p.y)) {
      const double x_cross = e.a.x + (p.y - e.a.y) * (e.b.x - e.a.x) / (e.b.y - e.a.y);
      if (x_cross > p.x) inside = !inside;
    }
    return 0;
  };
  if (p.y < y_min || p.y > y_max) return false;
  if (bucket_count == 0 || y_inv_step == 0.0) {
    for (const auto& e : edges) {
      if (scan_edge(e) == 1) return true;
    }
    return inside;
  }
  const auto b = std::clamp<std::int64_t>(
      static_cast<std::int64_t>((p.y - y_min) * y_inv_step), 0, bucket_count - 1);
  const std::uint32_t begin = bucket_offsets[static_cast<std::size_t>(b)];
  const std::uint32_t end = bucket_offsets[static_cast<std::size_t>(b) + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    if (scan_edge(edges[bucket_edges[i]]) == 1) return true;
  }
  return inside;
}

bool PreparedGeometry::covers_point(const Coord& p) const {
  if (!geometry_->envelope().contains(p.x, p.y)) return false;
  for (const auto& part : areal_parts_) {
    if (part.point_covered(p)) return true;
  }
  return false;
}

bool PreparedGeometry::any_segment_intersecting(const Coord& a, const Coord& b) const {
  Envelope probe;
  probe.expand_to_include(a.x, a.y);
  probe.expand_to_include(b.x, b.y);
  bool hit = false;
  for_cells(probe, [&](std::size_t cell) {
    if (hit) return;
    for (std::uint32_t i = cell_offsets_[cell]; i < cell_offsets_[cell + 1]; ++i) {
      const Segment& s = segments_[cell_segments_[i]];
      if (segments_intersect(a, b, s.a, s.b)) {
        hit = true;
        return;
      }
    }
  });
  return hit;
}

bool PreparedGeometry::ArealPart::strictly_crossed(const Coord& a, const Coord& b) const {
  // Any edge that strictly crosses [a, b] has a y-span overlapping the
  // segment's y-span, so scanning the overlapped buckets is exhaustive.
  const double lo = std::min(a.y, b.y);
  const double hi = std::max(a.y, b.y);
  if (hi < y_min || lo > y_max) return false;
  if (bucket_count == 0 || y_inv_step == 0.0) {
    for (const auto& e : edges) {
      if (strict_crossing(a, b, e.a, e.b)) return true;
    }
    return false;
  }
  const auto b0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>((lo - y_min) * y_inv_step), 0, bucket_count - 1);
  const auto b1 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>((hi - y_min) * y_inv_step), 0, bucket_count - 1);
  for (std::int64_t bk = b0; bk <= b1; ++bk) {
    const std::uint32_t begin = bucket_offsets[static_cast<std::size_t>(bk)];
    const std::uint32_t end = bucket_offsets[static_cast<std::size_t>(bk) + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      if (strict_crossing(a, b, edges[bucket_edges[i]].a, edges[bucket_edges[i]].b)) {
        return true;
      }
    }
  }
  return false;
}

bool PreparedGeometry::ArealPart::covers_path(std::span<const Coord> path) const {
  for (const auto& c : path) {
    if (!point_covered(c)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (strictly_crossed(path[i], path[i + 1])) return false;
    const Coord mid{(path[i].x + path[i + 1].x) / 2.0,
                    (path[i].y + path[i + 1].y) / 2.0};
    if (!point_covered(mid)) return false;
  }
  return true;
}

namespace {
// Path/vertex enumeration over an arbitrary probe geometry.
template <typename Fn>
void for_each_probe_path(const Geometry& g, Fn&& fn) {
  std::vector<const std::vector<Coord>*> paths;
  collect_paths(g, paths);
  for (const auto* p : paths) fn(*p);
}
}  // namespace

bool PreparedGeometry::intersects(const Geometry& other) const {
  if (!geometry_->envelope().intersects(other.envelope())) return false;

  if (other.type() == GeomType::kPoint) {
    const Coord& p = other.as_point();
    if (!areal_parts_.empty() && covers_point(p)) return true;
    if (geometry_->type() == GeomType::kPoint) return geometry_->as_point() == p;
    // Point-on-linework via the grid.
    bool hit = false;
    for_cells(Envelope::of_point(p.x, p.y), [&](std::size_t cell) {
      if (hit) return;
      for (std::uint32_t i = cell_offsets_[cell]; i < cell_offsets_[cell + 1]; ++i) {
        const Segment& s = segments_[cell_segments_[i]];
        if (point_on_segment(p, s.a, s.b)) {
          hit = true;
          return;
        }
      }
    });
    return hit;
  }

  if (geometry_->type() == GeomType::kPoint) {
    return intersects_naive(*geometry_, other);
  }

  // 1) Any boundary/linework crossing?
  bool crossing = false;
  for_each_probe_path(other, [&](const std::vector<Coord>& path) {
    if (crossing) return;
    for (std::size_t i = 0; i + 1 < path.size() && !crossing; ++i) {
      crossing = any_segment_intersecting(path[i], path[i + 1]);
    }
  });
  if (crossing) return true;

  // 2) No crossings: containment one way or the other decides.
  if (!areal_parts_.empty()) {
    // A representative vertex of `other` inside us?
    bool inside = false;
    for_each_probe_path(other, [&](const std::vector<Coord>& path) {
      if (!inside && !path.empty()) inside = covers_point(path.front());
    });
    if (inside) return true;
  }
  if (other.is_areal()) {
    // Any of our per-path representative vertices inside `other`? One vertex
    // per path suffices because, absent crossings, each path lies entirely on
    // one side of other's boundary. (`other` is un-prepared; use the naive
    // hole-aware test.)
    std::vector<Coord> reps = path_reps_;
    if (reps.empty() && geometry_->type() == GeomType::kPoint) {
      reps.push_back(geometry_->as_point());
    }
    const auto check_poly = [&](const Polygon& poly) {
      for (const auto& rep : reps) {
        if (point_in_polygon(rep, poly)) return true;
      }
      return false;
    };
    if (other.type() == GeomType::kPolygon) return check_poly(other.as_polygon());
    for (const auto& part : other.as_multi_polygon().parts) {
      if (check_poly(part)) return true;
    }
  }
  return false;
}

bool PreparedGeometry::contains(const Geometry& other) const {
  require(geometry_->is_areal(), "PreparedGeometry::contains: target must be areal");
  if (!geometry_->envelope().contains(other.envelope())) return false;

  // Mirror contains_naive exactly: every simple part of `other` must be
  // covered by at least one areal part of the target, judged part-by-part.
  std::vector<detail::SimplePart> probe_parts;
  detail::collect_parts(other, probe_parts);
  for (const auto& pb : probe_parts) {
    bool covered = false;
    for (const auto& part : areal_parts_) {
      if (pb.point != nullptr) {
        covered = part.point_covered(*pb.point);
      } else if (pb.line != nullptr) {
        covered = part.covers_path(pb.line->coords);
      } else {
        covered = part.covers_path(pb.polygon->shell);
      }
      if (covered) break;
    }
    if (!covered) return false;
  }
  return true;
}

bool PreparedGeometry::linework_touches_point(const Coord& p) const {
  bool hit = false;
  for_cells(Envelope::of_point(p.x, p.y), [&](std::size_t cell) {
    if (hit) return;
    for (std::uint32_t i = cell_offsets_[cell]; i < cell_offsets_[cell + 1]; ++i) {
      const Segment& s = segments_[cell_segments_[i]];
      if (point_on_segment(p, s.a, s.b)) {
        hit = true;
        return;
      }
    }
  });
  return hit;
}

bool PreparedGeometry::any_part_covers_path(std::span<const Coord> path) const {
  for (const auto& part : areal_parts_) {
    if (part.covers_path(path)) return true;
  }
  return false;
}

double PreparedGeometry::min_sqdist_to_segments(const Coord& p) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : segments_) {
    best = std::min(best, squared_distance_point_segment(p, s.a, s.b));
    if (best == 0.0) break;
  }
  return best;
}

double PreparedGeometry::min_sqdist_seg_to_segments(const Coord& a, const Coord& b) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : segments_) {
    best = std::min(best, squared_distance_segments(a, b, s.a, s.b));
    if (best == 0.0) break;
  }
  return best;
}

double PreparedGeometry::distance(const Geometry& other) const {
  if (intersects(other)) return 0.0;

  // Disjoint: the distance is realized between linework (or isolated
  // points). Scan our flattened segments against the probe's paths.
  double best = std::numeric_limits<double>::infinity();

  if (other.type() == GeomType::kPoint) {
    const Coord& p = other.as_point();
    if (geometry_->type() == GeomType::kPoint) {
      return std::sqrt(squared_distance(geometry_->as_point(), p));
    }
    return std::sqrt(min_sqdist_to_segments(p));
  }

  if (geometry_->type() == GeomType::kPoint) {
    const Coord& p = geometry_->as_point();
    for_each_probe_path(other, [&](const std::vector<Coord>& path) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        best = std::min(best, squared_distance_point_segment(p, path[i], path[i + 1]));
      }
      if (path.size() == 1) best = std::min(best, squared_distance(p, path.front()));
    });
    return std::sqrt(best);
  }

  for_each_probe_path(other, [&](const std::vector<Coord>& path) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      best = std::min(best, min_sqdist_seg_to_segments(path[i], path[i + 1]));
      if (best == 0.0) return;
    }
  });
  return std::sqrt(best);
}

std::size_t PreparedGeometry::index_size_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& part : areal_parts_) {
    bytes += part.edges.size() * sizeof(Segment) +
             part.bucket_offsets.size() * sizeof(std::uint32_t) +
             part.bucket_edges.size() * sizeof(std::uint32_t);
  }
  bytes += segments_.size() * sizeof(Segment) +
           cell_offsets_.size() * sizeof(std::uint32_t) +
           cell_segments_.size() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace sjc::geom
