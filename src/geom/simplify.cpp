#include "geom/simplify.hpp"

#include <cmath>

#include "geom/algorithms.hpp"
#include "util/status.hpp"

namespace sjc::geom {

namespace {

void douglas_peucker(const std::vector<Coord>& path, std::size_t first, std::size_t last,
                     double tol_sq, std::vector<bool>& keep) {
  if (last <= first + 1) return;
  double worst = -1.0;
  std::size_t worst_idx = first;
  for (std::size_t i = first + 1; i < last; ++i) {
    const double d = squared_distance_point_segment(path[i], path[first], path[last]);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > tol_sq) {
    keep[worst_idx] = true;
    douglas_peucker(path, first, worst_idx, tol_sq, keep);
    douglas_peucker(path, worst_idx, last, tol_sq, keep);
  }
}

Ring simplify_ring(const Ring& ring, double tolerance) {
  // Simplify the open path (first == last removed), then re-close. Keep an
  // interior anchor so the ring cannot collapse to a segment: the vertex
  // farthest from the first point always survives.
  if (ring.size() <= 4) return ring;
  std::vector<Coord> open(ring.begin(), ring.end() - 1);

  std::size_t anchor = 1;
  double best = -1.0;
  for (std::size_t i = 1; i < open.size(); ++i) {
    const double d = squared_distance(open[0], open[i]);
    if (d > best) {
      best = d;
      anchor = i;
    }
  }
  std::vector<bool> keep(open.size(), false);
  keep[0] = keep[anchor] = true;
  const double tol_sq = tolerance * tolerance;
  douglas_peucker(open, 0, anchor, tol_sq, keep);
  // Second half wraps around: simplify anchor..end treating open[0] as the
  // far endpoint by appending it temporarily.
  std::vector<Coord> tail(open.begin() + static_cast<std::ptrdiff_t>(anchor), open.end());
  tail.push_back(open[0]);
  std::vector<bool> tail_keep(tail.size(), false);
  tail_keep.front() = tail_keep.back() = true;
  douglas_peucker(tail, 0, tail.size() - 1, tol_sq, tail_keep);

  Ring out;
  for (std::size_t i = 0; i <= anchor; ++i) {
    if (keep[i]) out.push_back(open[i]);
  }
  for (std::size_t i = 1; i + 1 < tail.size(); ++i) {
    if (tail_keep[i]) out.push_back(tail[i]);
  }
  out.push_back(out.front());
  if (out.size() < 4) return ring;  // too aggressive: keep the original
  return out;
}

}  // namespace

std::vector<Coord> simplify_path(const std::vector<Coord>& path, double tolerance) {
  require(tolerance >= 0.0, "simplify_path: tolerance must be non-negative");
  if (path.size() <= 2) return path;
  std::vector<bool> keep(path.size(), false);
  keep.front() = keep.back() = true;
  douglas_peucker(path, 0, path.size() - 1, tolerance * tolerance, keep);
  std::vector<Coord> out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (keep[i]) out.push_back(path[i]);
  }
  return out;
}

Geometry simplify(const Geometry& geometry, double tolerance) {
  require(tolerance >= 0.0, "simplify: tolerance must be non-negative");
  switch (geometry.type()) {
    case GeomType::kPoint:
      return geometry;
    case GeomType::kLineString:
      return Geometry::line_string(
          simplify_path(geometry.as_line_string().coords, tolerance));
    case GeomType::kPolygon: {
      const auto& poly = geometry.as_polygon();
      std::vector<Ring> holes;
      holes.reserve(poly.holes.size());
      for (const auto& hole : poly.holes) holes.push_back(simplify_ring(hole, tolerance));
      return Geometry::polygon(simplify_ring(poly.shell, tolerance), std::move(holes));
    }
    case GeomType::kMultiLineString: {
      std::vector<LineString> parts;
      for (const auto& part : geometry.as_multi_line_string().parts) {
        parts.push_back(LineString{simplify_path(part.coords, tolerance)});
      }
      return Geometry::multi_line_string(std::move(parts));
    }
    case GeomType::kMultiPolygon: {
      std::vector<Polygon> parts;
      for (const auto& part : geometry.as_multi_polygon().parts) {
        std::vector<Ring> holes;
        for (const auto& hole : part.holes) holes.push_back(simplify_ring(hole, tolerance));
        parts.push_back(Polygon{simplify_ring(part.shell, tolerance), std::move(holes)});
      }
      return Geometry::multi_polygon(std::move(parts));
    }
  }
  return geometry;
}

}  // namespace sjc::geom
