// Well-Known Binary reader/writer.
//
// The streaming (HadoopGIS) path moves WKT text, but SpatialHadoop stores
// its partition block files in binary — which is a large part of why its
// local joins skip the parse tax. WKB is that binary form: the standard
// little-endian OGC encoding (byte order marker, uint32 type tag,
// double coordinates), restricted to the five 2-D types this library
// supports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.hpp"

namespace sjc::geom {

/// Serializes to little-endian WKB.
std::vector<std::uint8_t> to_wkb(const Geometry& geometry);

/// Parses little-endian WKB; throws ParseError on malformed or truncated
/// input, unknown type tags, or big-endian payloads.
Geometry from_wkb(const std::vector<std::uint8_t>& wkb);

/// Exact encoded size in bytes (without encoding).
std::size_t wkb_size(const Geometry& geometry);

}  // namespace sjc::geom
