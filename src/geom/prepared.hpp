// PreparedGeometry: per-geometry acceleration structures, in the spirit of
// JTS's PreparedGeometry.
//
// A prepared geometry is built once and queried many times — exactly the
// access pattern of the local-join refinement step, where each polygon (or
// polyline) on the indexed side is tested against many candidates. Two
// structures are precomputed from the geometry's linework:
//
//  * a y-bucket table per areal part: point-in-polygon ray casting only
//    visits edges whose y-span overlaps the query row (O(edges/buckets)
//    instead of O(edges));
//  * a uniform segment grid over the envelope: segment-intersection and
//    covers tests only visit segments in the cells the probe segment
//    overlaps.
//
// All query answers are identical to the naive predicates in
// predicates.hpp; only the candidate enumeration differs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/geometry.hpp"

namespace sjc::geom {

class PreparedGeometry {
 public:
  /// Prepares `geometry`; the reference must outlive this object (geometry
  /// storage in dataset vectors is stable for the duration of a join).
  explicit PreparedGeometry(const Geometry& geometry);

  const Geometry& geometry() const { return *geometry_; }

  /// Same answer as intersects_naive(geometry(), other).
  bool intersects(const Geometry& other) const;

  /// Same answer as contains_naive(geometry(), other); requires areal target.
  bool contains(const Geometry& other) const;

  /// Same answer as distance_naive(geometry(), other).
  double distance(const Geometry& other) const;

  /// Hole-aware covered test against the areal parts of the target.
  bool covers_point(const Coord& p) const;

  // Allocation-free building blocks used by geom::BatchRefiner to mirror
  // intersects()/contains() without the per-call path/part vectors those
  // entry points materialize. Each is exactly the corresponding fragment of
  // the public predicates above.

  /// True when the target has areal (polygon) parts.
  bool has_areal() const { return !areal_parts_.empty(); }

  /// First vertex of every coordinate path (the containment-fallback
  /// representatives used by intersects()).
  std::span<const Coord> path_reps() const { return path_reps_; }

  /// True when [a, b] shares a point with any linework segment (grid scan).
  bool linework_intersects(const Coord& a, const Coord& b) const {
    return any_segment_intersecting(a, b);
  }

  /// True when p lies on any linework segment (grid scan); the point-probe
  /// branch of intersects().
  bool linework_touches_point(const Coord& p) const;

  /// True when at least one areal part covers the whole path — the
  /// part-by-part covered test contains() applies to each probe part.
  bool any_part_covers_path(std::span<const Coord> path) const;

  /// Approximate bytes used by the acceleration structures.
  std::size_t index_size_bytes() const;

 private:
  struct Segment {
    Coord a;
    Coord b;
  };

  // Per-areal-part point-in-polygon accelerator: all ring edges of one
  // polygon part, bucketed by y.
  struct ArealPart {
    std::vector<Segment> edges;
    double y_min = 0.0;
    double y_max = 0.0;
    double y_inv_step = 0.0;  // buckets / (y_max - y_min)
    std::uint32_t bucket_count = 0;
    std::vector<std::uint32_t> bucket_offsets;  // CSR offsets, size+1
    std::vector<std::uint32_t> bucket_edges;    // edge ids per bucket
    bool point_covered(const Coord& p) const;
    /// True when [a, b] strictly crosses any edge of this part.
    bool strictly_crossed(const Coord& a, const Coord& b) const;
    /// Indexed twin of predicates.cpp's polygon_covers_path.
    bool covers_path(std::span<const Coord> path) const;
  };

  void add_areal_part(const Polygon& poly);
  void add_linework(const std::vector<Coord>& path);
  void build_grid();

  // Enumerates grid cells overlapped by envelope `e`, invoking fn(cell).
  template <typename Fn>
  void for_cells(const Envelope& e, Fn&& fn) const;

  bool any_segment_intersecting(const Coord& a, const Coord& b) const;
  double min_sqdist_to_segments(const Coord& p) const;
  double min_sqdist_seg_to_segments(const Coord& a, const Coord& b) const;

  const Geometry* geometry_;
  std::vector<ArealPart> areal_parts_;

  // First vertex of every coordinate path (one per part component); used as
  // representative points for the no-crossing containment fallback.
  std::vector<Coord> path_reps_;

  // Flattened linework (linestring segments + ring edges) and its grid.
  std::vector<Segment> segments_;
  Envelope grid_env_;
  std::uint32_t grid_w_ = 0;
  std::uint32_t grid_h_ = 0;
  double cell_w_inv_ = 0.0;
  double cell_h_inv_ = 0.0;
  std::vector<std::uint32_t> cell_offsets_;  // CSR offsets, grid_w*grid_h+1
  std::vector<std::uint32_t> cell_segments_;
};

}  // namespace sjc::geom
