#include "geom/wkb.hpp"

#include <cstring>

#include "util/status.hpp"

namespace sjc::geom {

namespace {

// OGC geometry type tags.
enum WkbTag : std::uint32_t {
  kTagPoint = 1,
  kTagLineString = 2,
  kTagPolygon = 3,
  kTagMultiLineString = 5,
  kTagMultiPolygon = 6,
};

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  }

  void coords(const std::vector<Coord>& cs) {
    u32(static_cast<std::uint32_t>(cs.size()));
    for (const auto& c : cs) {
      f64(c.x);
      f64(c.y);
    }
  }

  void polygon_body(const Polygon& poly) {
    u32(static_cast<std::uint32_t>(1 + poly.holes.size()));
    coords(poly.shell);
    for (const auto& hole : poly.holes) coords(hole);
  }

  void header(std::uint32_t tag) {
    u8(1);  // little-endian
    u32(tag);
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  double f64() {
    need(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::vector<Coord> coords() {
    const std::uint32_t n = u32();
    // Sanity bound before allocating: each coord needs 16 bytes.
    if (static_cast<std::size_t>(n) * 16 > data_.size() - pos_) {
      throw ParseError("WKB: coordinate count exceeds payload");
    }
    std::vector<Coord> cs;
    cs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const double x = f64();
      const double y = f64();
      cs.push_back({x, y});
    }
    return cs;
  }

  Polygon polygon_body() {
    const std::uint32_t rings = u32();
    if (rings == 0) throw ParseError("WKB: polygon with zero rings");
    Polygon poly;
    poly.shell = coords();
    for (std::uint32_t r = 1; r < rings; ++r) poly.holes.push_back(coords());
    return poly;
  }

  std::uint32_t header() {
    const std::uint8_t order = u8();
    if (order != 1) throw ParseError("WKB: only little-endian (NDR) supported");
    return u32();
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) {
    if (pos_ + n > data_.size()) throw ParseError("WKB: truncated payload");
  }

  const std::vector<std::uint8_t>& data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> to_wkb(const Geometry& geometry) {
  Writer w;
  switch (geometry.type()) {
    case GeomType::kPoint: {
      w.header(kTagPoint);
      w.f64(geometry.as_point().x);
      w.f64(geometry.as_point().y);
      break;
    }
    case GeomType::kLineString:
      w.header(kTagLineString);
      w.coords(geometry.as_line_string().coords);
      break;
    case GeomType::kPolygon:
      w.header(kTagPolygon);
      w.polygon_body(geometry.as_polygon());
      break;
    case GeomType::kMultiLineString: {
      const auto& parts = geometry.as_multi_line_string().parts;
      w.header(kTagMultiLineString);
      w.u32(static_cast<std::uint32_t>(parts.size()));
      for (const auto& part : parts) {
        w.header(kTagLineString);
        w.coords(part.coords);
      }
      break;
    }
    case GeomType::kMultiPolygon: {
      const auto& parts = geometry.as_multi_polygon().parts;
      w.header(kTagMultiPolygon);
      w.u32(static_cast<std::uint32_t>(parts.size()));
      for (const auto& part : parts) {
        w.header(kTagPolygon);
        w.polygon_body(part);
      }
      break;
    }
  }
  return w.take();
}

Geometry from_wkb(const std::vector<std::uint8_t>& wkb) {
  Reader r(wkb);
  const std::uint32_t tag = r.header();
  Geometry result = [&]() -> Geometry {
    switch (tag) {
      case kTagPoint: {
        const double x = r.f64();
        const double y = r.f64();
        return Geometry::point(x, y);
      }
      case kTagLineString:
        return Geometry::line_string(r.coords());
      case kTagPolygon: {
        Polygon poly = r.polygon_body();
        return Geometry::polygon(std::move(poly.shell), std::move(poly.holes));
      }
      case kTagMultiLineString: {
        const std::uint32_t n = r.u32();
        if (n == 0) throw ParseError("WKB: empty multilinestring");
        std::vector<LineString> parts;
        for (std::uint32_t i = 0; i < n; ++i) {
          if (r.header() != kTagLineString) {
            throw ParseError("WKB: multilinestring part is not a linestring");
          }
          parts.push_back(LineString{r.coords()});
        }
        return Geometry::multi_line_string(std::move(parts));
      }
      case kTagMultiPolygon: {
        const std::uint32_t n = r.u32();
        if (n == 0) throw ParseError("WKB: empty multipolygon");
        std::vector<Polygon> parts;
        for (std::uint32_t i = 0; i < n; ++i) {
          if (r.header() != kTagPolygon) {
            throw ParseError("WKB: multipolygon part is not a polygon");
          }
          parts.push_back(r.polygon_body());
        }
        return Geometry::multi_polygon(std::move(parts));
      }
      default:
        throw ParseError("WKB: unknown geometry tag " + std::to_string(tag));
    }
  }();
  if (!r.exhausted()) throw ParseError("WKB: trailing bytes after geometry");
  return result;
}

std::size_t wkb_size(const Geometry& geometry) {
  constexpr std::size_t kHeader = 1 + 4;
  switch (geometry.type()) {
    case GeomType::kPoint:
      return kHeader + 16;
    case GeomType::kLineString:
      return kHeader + 4 + geometry.num_coords() * 16;
    case GeomType::kPolygon: {
      const auto& poly = geometry.as_polygon();
      return kHeader + 4 + (1 + poly.holes.size()) * 4 + geometry.num_coords() * 16;
    }
    case GeomType::kMultiLineString: {
      const auto& parts = geometry.as_multi_line_string().parts;
      return kHeader + 4 + parts.size() * (kHeader + 4) + geometry.num_coords() * 16;
    }
    case GeomType::kMultiPolygon: {
      const auto& parts = geometry.as_multi_polygon().parts;
      std::size_t rings = 0;
      for (const auto& p : parts) rings += 1 + p.holes.size();
      return kHeader + 4 + parts.size() * (kHeader + 4) + rings * 4 +
             geometry.num_coords() * 16;
    }
  }
  return 0;
}

}  // namespace sjc::geom
