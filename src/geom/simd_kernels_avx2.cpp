// AVX2 (4-lane double) variants of the BatchRefiner kernels. Compiled with
// -mavx2 on x86-64 only (see src/geom/CMakeLists.txt); on other targets
// this TU contributes just the nullptr table accessor.
//
// Bit-identity with the scalar kernels is structural:
//  - every arithmetic op is the same IEEE-754 operation the scalar loop
//    performs on the same values, lane by lane (no FMA: -mavx2 does not
//    enable contraction, and sjc_geom builds with -ffp-contract=off),
//  - the A-stage filter comparisons are the same expressions, so the set of
//    escalated edges is identical; uncertain lanes escalate through the
//    same exact::orient2d_escalate calls in ascending index order,
//  - remainder elements (n % 4) run the shared scalar tail
//    (simd_kernels_impl.hpp), and early exits fire at the same candidate.
#include "geom/simd_dispatch.hpp"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include "geom/exact_predicates.hpp"
#include "geom/simd_kernels_impl.hpp"

namespace sjc::geom::simd {
namespace {

bool pip_covers_run_avx2(const double* ax, const double* ay, const double* bx,
                         const double* by, std::size_t n, double px, double py) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  const __m256d vsign = _mm256_set1_pd(-0.0);
  const __m256d verr_a = _mm256_set1_pd(exact::kCcwErrBoundA);
  const __m256d vzero = _mm256_setzero_pd();
  __m256d acc_on = _mm256_setzero_pd();  // boundary hits, OR-accumulated
  __m256d acc_in = _mm256_setzero_pd();  // crossing parity, XOR-accumulated
  unsigned on_boundary = 0;
  unsigned inside = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d eax = _mm256_loadu_pd(ax + i);
    const __m256d eay = _mm256_loadu_pd(ay + i);
    const __m256d ebx = _mm256_loadu_pd(bx + i);
    const __m256d eby = _mm256_loadu_pd(by + i);
    const __m256d dx = _mm256_sub_pd(ebx, eax);
    const __m256d dy = _mm256_sub_pd(eby, eay);
    const __m256d rel_y = _mm256_sub_pd(vpy, eay);  // py - eay
    const __m256d rel_x = _mm256_sub_pd(vpx, eax);  // px - eax
    const __m256d detleft = _mm256_mul_pd(dx, rel_y);
    const __m256d detright = _mm256_mul_pd(dy, rel_x);
    const __m256d det = _mm256_sub_pd(detleft, detright);

    const __m256d bbox = _mm256_and_pd(
        _mm256_and_pd(_mm256_cmp_pd(vpx, _mm256_min_pd(eax, ebx), _CMP_GE_OQ),
                      _mm256_cmp_pd(vpx, _mm256_max_pd(eax, ebx), _CMP_LE_OQ)),
        _mm256_and_pd(_mm256_cmp_pd(vpy, _mm256_min_pd(eay, eby), _CMP_GE_OQ),
                      _mm256_cmp_pd(vpy, _mm256_max_pd(eay, eby), _CMP_LE_OQ)));

    // A-stage filter, vectorized: identical comparisons to the scalar loop.
    const __m256d detsum = _mm256_add_pd(_mm256_andnot_pd(vsign, detleft),
                                         _mm256_andnot_pd(vsign, detright));
    const __m256d errbound = _mm256_mul_pd(verr_a, detsum);
    const __m256d neg_det = _mm256_xor_pd(det, vsign);
    __m256d certain = _mm256_or_pd(_mm256_cmp_pd(det, errbound, _CMP_GT_OQ),
                                   _mm256_cmp_pd(neg_det, errbound, _CMP_GT_OQ));
    certain = _mm256_or_pd(certain, _mm256_cmp_pd(detsum, vzero, _CMP_EQ_OQ));

    // Certain lanes resolve the boundary bit vectorized; uncertain lanes
    // inside the bbox escalate scalar-wise in ascending lane order.
    acc_on = _mm256_or_pd(acc_on, _mm256_and_pd(_mm256_cmp_pd(det, vzero, _CMP_EQ_OQ),
                                                _mm256_and_pd(bbox, certain)));
    int need = _mm256_movemask_pd(_mm256_andnot_pd(certain, bbox));
    while (need != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(need));
      need &= need - 1;
      const std::size_t j = i + static_cast<std::size_t>(lane);
      const double dl = (bx[j] - ax[j]) * (py - ay[j]);
      const double dr = (by[j] - ay[j]) * (px - ax[j]);
      const double ds = std::fabs(dl) + std::fabs(dr);
      const double sign = exact::orient2d_escalate(bx[j], by[j], px, py, ax[j], ay[j], ds);
      on_boundary |= static_cast<unsigned>(sign == 0.0);
    }

    // Crossing parity: same masked-division arithmetic as the scalar loop
    // (lanes with dy == 0 produce inf/NaN quotients that `spans` masks off,
    // exactly like the scalar code).
    const __m256d spans = _mm256_xor_pd(_mm256_cmp_pd(eay, vpy, _CMP_GT_OQ),
                                        _mm256_cmp_pd(eby, vpy, _CMP_GT_OQ));
    const __m256d x_cross =
        _mm256_add_pd(eax, _mm256_div_pd(_mm256_mul_pd(rel_y, dx), dy));
    acc_in = _mm256_xor_pd(
        acc_in, _mm256_and_pd(spans, _mm256_cmp_pd(x_cross, vpx, _CMP_GT_OQ)));
  }
  on_boundary |= static_cast<unsigned>(_mm256_movemask_pd(acc_on) != 0);
  inside ^= static_cast<unsigned>(
                __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(acc_in)))) &
            1u;
  detail::pip_scalar_range(ax, ay, bx, by, i, n, px, py, on_boundary, inside);
  return (on_boundary | inside) != 0;
}

bool seg_run_intersects_avx2(const SegSoA& segs, std::size_t begin, std::size_t end,
                             double axp, double ayp, double bxp, double byp,
                             double bx0, double by0, double bx1, double by1) {
  const Coord a{axp, ayp};
  const Coord b{bxp, byp};
  const __m256d vbx0 = _mm256_set1_pd(bx0);
  const __m256d vby0 = _mm256_set1_pd(by0);
  const __m256d vbx1 = _mm256_set1_pd(bx1);
  const __m256d vby1 = _mm256_set1_pd(by1);
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d overlap = _mm256_and_pd(
        _mm256_and_pd(
            _mm256_cmp_pd(_mm256_loadu_pd(segs.min_x + i), vbx1, _CMP_LE_OQ),
            _mm256_cmp_pd(_mm256_loadu_pd(segs.max_x + i), vbx0, _CMP_GE_OQ)),
        _mm256_and_pd(
            _mm256_cmp_pd(_mm256_loadu_pd(segs.min_y + i), vby1, _CMP_LE_OQ),
            _mm256_cmp_pd(_mm256_loadu_pd(segs.max_y + i), vby0, _CMP_GE_OQ)));
    int m = _mm256_movemask_pd(overlap);
    while (m != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(m));
      m &= m - 1;
      const std::size_t j = i + static_cast<std::size_t>(lane);
      if (segments_intersect(a, b, {segs.ax[j], segs.ay[j]},
                             {segs.bx[j], segs.by[j]})) {
        return true;
      }
    }
  }
  return detail::seg_scalar_range(segs, i, end, a, b, bx0, by0, bx1, by1);
}

bool env_any_overlaps_avx2(const double* min_x, const double* min_y,
                           const double* max_x, const double* max_y, std::size_t n,
                           double px0, double py0, double px1, double py1) {
  const __m256d vpx0 = _mm256_set1_pd(px0);
  const __m256d vpy0 = _mm256_set1_pd(py0);
  const __m256d vpx1 = _mm256_set1_pd(px1);
  const __m256d vpy1 = _mm256_set1_pd(py1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d overlap = _mm256_and_pd(
        _mm256_and_pd(_mm256_cmp_pd(_mm256_loadu_pd(min_x + i), vpx1, _CMP_LE_OQ),
                      _mm256_cmp_pd(_mm256_loadu_pd(max_x + i), vpx0, _CMP_GE_OQ)),
        _mm256_and_pd(_mm256_cmp_pd(_mm256_loadu_pd(min_y + i), vpy1, _CMP_LE_OQ),
                      _mm256_cmp_pd(_mm256_loadu_pd(max_y + i), vpy0, _CMP_GE_OQ)));
    if (_mm256_movemask_pd(overlap) != 0) return true;
  }
  return detail::env_scalar_range(min_x, min_y, max_x, max_y, i, n, px0, py0, px1,
                                  py1);
}

constexpr Kernels kAvx2Kernels{pip_covers_run_avx2, seg_run_intersects_avx2,
                               env_any_overlaps_avx2};

}  // namespace

const Kernels* avx2_kernel_table() { return &kAvx2Kernels; }

}  // namespace sjc::geom::simd

#else  // !(__AVX2__ && x86-64)

namespace sjc::geom::simd {
const Kernels* avx2_kernel_table() { return nullptr; }
}  // namespace sjc::geom::simd

#endif
