#include "geom/occupancy.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sjc::geom {

namespace {

// Monotone clamp of a real coordinate into [0, n): the same idiom the
// partitioner's grid directory uses. `inv` is n / extent (0 for degenerate
// cells, which collapses every coordinate into slot 0). Monotonicity is what
// makes mark/query rasterisation sound for envelopes outside the cell box.
std::uint32_t clamp_coord(double v, double lo, double inv, std::uint32_t n) {
  const double f = (v - lo) * inv;
  if (!(f > 0.0)) return 0;  // also catches NaN
  if (f >= static_cast<double>(n)) return n - 1;
  return static_cast<std::uint32_t>(f);
}

// Word with bits [x0, x1] (inclusive) set. Requires x0 <= x1 <= 63.
std::uint64_t bit_span(std::uint32_t x0, std::uint32_t x1) {
  const std::uint32_t n = x1 - x0 + 1;
  const std::uint64_t run = n >= 64 ? ~0ULL : (1ULL << n) - 1;
  return run << x0;
}

}  // namespace

OccupancyFilter::OccupancyFilter(const std::vector<Envelope>& cells)
    : OccupancyFilter(cells, Config{}) {}

OccupancyFilter::OccupancyFilter(const std::vector<Envelope>& cells,
                                 const Config& config) {
  // A fine row must fit one 64-bit word; the clamp math needs side >= 1.
  const std::uint32_t fine = std::clamp<std::uint32_t>(config.fine_side, 1, 64);
  const std::uint32_t large = std::clamp<std::uint32_t>(config.large_side, fine, 64);

  std::vector<double> areas;
  areas.reserve(cells.size());
  for (const Envelope& box : cells) areas.push_back(box.area());
  double large_cutoff = std::numeric_limits<double>::infinity();
  if (!areas.empty() && large > fine) {
    std::vector<double> sorted = areas;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    large_cutoff = sorted[sorted.size() / 2] * config.large_area_factor;
  }

  cells_.resize(cells.size());
  std::uint32_t offset = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Cell& c = cells_[i];
    c.box = cells[i];
    c.side = areas[i] > large_cutoff ? large : fine;
    c.word_offset = offset;
    offset += c.side;  // one word per fine row
    const double w = c.box.width();
    const double h = c.box.height();
    c.inv_w = w > 0.0 ? static_cast<double>(c.side) / w : 0.0;
    c.inv_h = h > 0.0 ? static_cast<double>(c.side) / h : 0.0;
  }
  words_.assign(offset, 0);
}

OccupancyFilter::SlotRange OccupancyFilter::clamp_range(
    const Cell& c, const Envelope& env) const {
  SlotRange r;
  r.x0 = clamp_coord(env.min_x(), c.box.min_x(), c.inv_w, c.side);
  r.x1 = clamp_coord(env.max_x(), c.box.min_x(), c.inv_w, c.side);
  r.y0 = clamp_coord(env.min_y(), c.box.min_y(), c.inv_h, c.side);
  r.y1 = clamp_coord(env.max_y(), c.box.min_y(), c.inv_h, c.side);
  // The clamp is monotone, so min <= max survives it.
  assert(r.x0 <= r.x1 && r.y0 <= r.y1);
  return r;
}

void OccupancyFilter::mark(std::uint32_t cell, const Envelope& env) {
  assert(cell < cells_.size());
  if (env.empty()) return;
  Cell& c = cells_[cell];
  c.domain.expand_to_include(env);
  c.marked += 1;
  marked_ += 1;
  const SlotRange r = clamp_range(c, env);
  // Level 1: 8x8 coarse summary. cx = sx * 8 / side <= 7 since sx < side.
  const std::uint64_t coarse_row = bit_span(r.x0 * 8 / c.side, r.x1 * 8 / c.side);
  for (std::uint32_t cy = r.y0 * 8 / c.side; cy <= r.y1 * 8 / c.side; ++cy) {
    c.coarse |= coarse_row << (cy * 8);
  }
  // Level 2: fine rows.
  const std::uint64_t row_mask = bit_span(r.x0, r.x1);
  for (std::uint32_t y = r.y0; y <= r.y1; ++y) {
    words_[c.word_offset + y] |= row_mask;
  }
}

bool OccupancyFilter::may_match(std::uint32_t cell, const Envelope& env) const {
  assert(cell < cells_.size());
  const Cell& c = cells_[cell];
  if (c.marked == 0) return false;
  if (env.empty() || !env.intersects(c.domain)) return false;
  const SlotRange r = clamp_range(c, env);
  const std::uint64_t coarse_row = bit_span(r.x0 * 8 / c.side, r.x1 * 8 / c.side);
  std::uint64_t coarse_mask = 0;
  for (std::uint32_t cy = r.y0 * 8 / c.side; cy <= r.y1 * 8 / c.side; ++cy) {
    coarse_mask |= coarse_row << (cy * 8);
  }
  if ((c.coarse & coarse_mask) == 0) return false;
  const std::uint64_t row_mask = bit_span(r.x0, r.x1);
  for (std::uint32_t y = r.y0; y <= r.y1; ++y) {
    if ((words_[c.word_offset + y] & row_mask) != 0) return true;
  }
  return false;
}

std::uint64_t OccupancyFilter::occupied_cells() const {
  std::uint64_t n = 0;
  for (const Cell& c : cells_) n += c.marked > 0 ? 1 : 0;
  return n;
}

std::size_t OccupancyFilter::size_bytes() const {
  // Per cell: domain envelope (4 doubles) + coarse word + fine bitmap rows.
  std::size_t bytes = 0;
  for (const Cell& c : cells_) {
    bytes += 4 * sizeof(double) + sizeof(std::uint64_t) +
             static_cast<std::size_t>(c.side) * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace sjc::geom
