// Douglas-Peucker geometry simplification.
//
// Refinement cost scales with vertex count (see bench_geom_engines), so
// real pipelines routinely simplify dense geometry before joining;
// bench_vertex_complexity uses this to sweep the complexity axis of the
// engine-gap analysis.
#pragma once

#include "geom/geometry.hpp"

namespace sjc::geom {

/// Simplifies a coordinate path with the Douglas-Peucker algorithm: keeps
/// every vertex farther than `tolerance` from the chord of its retained
/// neighbours; endpoints always survive. tolerance 0 removes only exactly
/// collinear vertices.
std::vector<Coord> simplify_path(const std::vector<Coord>& path, double tolerance);

/// Simplifies any geometry: points unchanged; polylines per path; polygon
/// rings per ring while keeping them closed with >= 4 coordinates (rings
/// that would collapse below that are kept at their minimal shape).
/// Throws InvalidArgument on negative tolerance.
Geometry simplify(const Geometry& geometry, double tolerance);

}  // namespace sjc::geom
