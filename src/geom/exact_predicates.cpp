// Adaptive exact predicates: expansion arithmetic + staged escalation.
//
// The residual tricks (two_sum, two_product, Dekker splitting) and the
// zero-eliminating expansion routines require strict IEEE double semantics:
// no FMA contraction, no reassociation. sjc_geom is compiled with
// -ffp-contract=off (see src/geom/CMakeLists.txt); nothing here may be
// moved into a header that other targets compile under different flags.
#include "geom/exact_predicates.hpp"

#include <cmath>

namespace sjc::geom::exact {

namespace {

std::uint64_t& slowpath_counter() {
  thread_local std::uint64_t count = 0;
  return count;
}

// ---------------------------------------------------------------------------
// Residual primitives. Each computes fl(a op b) plus the exact rounding
// error, so (x, y) represents the exact result as x + y.
// ---------------------------------------------------------------------------

inline void fast_two_sum(double a, double b, double& x, double& y) {
  // Requires |a| >= |b| (or a == 0).
  x = a + b;
  const double bvirt = x - a;
  y = b - bvirt;
}

inline void two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  const double bvirt = x - a;
  const double avirt = x - bvirt;
  const double bround = b - bvirt;
  const double around = a - avirt;
  y = around + bround;
}

inline void two_diff(double a, double b, double& x, double& y) {
  x = a - b;
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  y = around + bround;
}

/// Residual of an already-computed difference x = fl(a - b).
inline void two_diff_tail(double a, double b, double x, double& y) {
  const double bvirt = a - x;
  const double avirt = x + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  y = around + bround;
}

inline void split(double a, double& hi, double& lo) {
  const double c = kSplitter * a;
  const double big = c - a;
  hi = c - big;
  lo = a - hi;
}

inline void two_product(double a, double b, double& x, double& y) {
  x = a * b;
  double ahi, alo, bhi, blo;
  split(a, ahi, alo);
  split(b, bhi, blo);
  const double err1 = x - ahi * bhi;
  const double err2 = err1 - alo * bhi;
  const double err3 = err2 - ahi * blo;
  y = alo * blo - err3;
}

inline void two_product_presplit(double a, double b, double bhi, double blo, double& x,
                                 double& y) {
  x = a * b;
  double ahi, alo;
  split(a, ahi, alo);
  const double err1 = x - ahi * bhi;
  const double err2 = err1 - alo * bhi;
  const double err3 = err2 - ahi * blo;
  y = alo * blo - err3;
}

/// (x3, x2, x1, x0) = (a1 + a0) - (b1 + b0), all components exact.
inline void two_two_diff(double a1, double a0, double b1, double b0, double& x3,
                         double& x2, double& x1, double& x0) {
  double j, r0, i;
  two_diff(a0, b0, i, x0);
  two_sum(a1, i, j, r0);
  double k;
  two_diff(r0, b1, k, x1);
  two_sum(j, k, x3, x2);
}

inline double estimate(int n, const double* e) {
  double q = e[0];
  for (int i = 1; i < n; ++i) q += e[i];
  return q;
}

// ---------------------------------------------------------------------------
// Expansion arithmetic (nonoverlapping, nonadjacent components, increasing
// magnitude; zero components elided). Bounds-checked head reads — unlike
// the classic formulation, no element past the end is ever touched, so the
// routines are clean under AddressSanitizer with stack arrays.
// ---------------------------------------------------------------------------

/// h = e + f. h must have room for elen + flen components; h may not alias
/// e or f. Returns the component count of h (>= 1).
int fast_expansion_sum_zeroelim(int elen, const double* e, int flen, const double* f,
                                double* h) {
  int eindex = 0;
  int findex = 0;
  int hindex = 0;
  double q;
  double hh;
  // Seed q with the smaller-magnitude head.
  if ((f[0] > e[0]) == (f[0] > -e[0])) {
    q = e[eindex++];
  } else {
    q = f[findex++];
  }
  if (eindex < elen && findex < flen) {
    const double enow = e[eindex];
    const double fnow = f[findex];
    double qnew;
    if ((fnow > enow) == (fnow > -enow)) {
      fast_two_sum(enow, q, qnew, hh);
      ++eindex;
    } else {
      fast_two_sum(fnow, q, qnew, hh);
      ++findex;
    }
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
    while (eindex < elen && findex < flen) {
      const double en = e[eindex];
      const double fn = f[findex];
      if ((fn > en) == (fn > -en)) {
        two_sum(q, en, qnew, hh);
        ++eindex;
      } else {
        two_sum(q, fn, qnew, hh);
        ++findex;
      }
      q = qnew;
      if (hh != 0.0) h[hindex++] = hh;
    }
  }
  while (eindex < elen) {
    double qnew;
    two_sum(q, e[eindex++], qnew, hh);
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  while (findex < flen) {
    double qnew;
    two_sum(q, f[findex++], qnew, hh);
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if (q != 0.0 || hindex == 0) h[hindex++] = q;
  return hindex;
}

/// h = e * b. h must have room for 2 * elen components; h may not alias e.
int scale_expansion_zeroelim(int elen, const double* e, double b, double* h) {
  double bhi, blo;
  split(b, bhi, blo);
  double q;
  double hh;
  int hindex = 0;
  two_product_presplit(e[0], b, bhi, blo, q, hh);
  if (hh != 0.0) h[hindex++] = hh;
  for (int eindex = 1; eindex < elen; ++eindex) {
    double product1, product0;
    two_product_presplit(e[eindex], b, bhi, blo, product1, product0);
    double sum;
    two_sum(q, product0, sum, hh);
    if (hh != 0.0) h[hindex++] = hh;
    fast_two_sum(product1, sum, q, hh);
    if (hh != 0.0) h[hindex++] = hh;
  }
  if (q != 0.0 || hindex == 0) h[hindex++] = q;
  return hindex;
}

// ---------------------------------------------------------------------------
// orient2d escalation stages
// ---------------------------------------------------------------------------

/// Largest coordinate difference the expansion pipeline handles without
/// overflow: products stay <= 2^996 and Dekker splits stay finite.
constexpr double kMaxSafeDiff = 0x1p498;
/// Exact power-of-two rescue scale for near-overflow inputs; keeps rescaled
/// differences below 2^474 (2^1024 * 2^-550).
constexpr double kRescue = 0x1p-550;

/// Stages B-D: exact evaluation given the A-stage detsum. Requires all four
/// coordinate differences to be finite and <= kMaxSafeDiff in magnitude.
double orient2d_adapt(double pax, double pay, double pbx, double pby, double pcx,
                      double pcy, double detsum) {
  const double acx = pax - pcx;
  const double bcx = pbx - pcx;
  const double acy = pay - pcy;
  const double bcy = pby - pcy;

  double detleft, detlefttail, detright, detrighttail;
  two_product(acx, bcy, detleft, detlefttail);
  two_product(acy, bcx, detright, detrighttail);

  double b[4];
  two_two_diff(detleft, detlefttail, detright, detrighttail, b[3], b[2], b[1], b[0]);

  double det = estimate(4, b);
  double errbound = kCcwErrBoundB * detsum;
  if (det >= errbound || -det >= errbound) return det;

  double acxtail, acytail, bcxtail, bcytail;
  two_diff_tail(pax, pcx, acx, acxtail);
  two_diff_tail(pbx, pcx, bcx, bcxtail);
  two_diff_tail(pay, pcy, acy, acytail);
  two_diff_tail(pby, pcy, bcy, bcytail);
  if (acxtail == 0.0 && acytail == 0.0 && bcxtail == 0.0 && bcytail == 0.0) {
    return det;  // the differences were exact: b already holds the answer
  }

  errbound = kCcwErrBoundC * detsum + kResultErrBound * std::fabs(det);
  det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
  if (det >= errbound || -det >= errbound) return det;

  // Full expansion: fold in the three remaining tail cross terms.
  double u[4];
  double s1, s0, t1, t0;
  two_product(acxtail, bcy, s1, s0);
  two_product(acytail, bcx, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  double c1[8];
  const int c1len = fast_expansion_sum_zeroelim(4, b, 4, u, c1);

  two_product(acx, bcytail, s1, s0);
  two_product(acy, bcxtail, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  double c2[12];
  const int c2len = fast_expansion_sum_zeroelim(c1len, c1, 4, u, c2);

  two_product(acxtail, bcytail, s1, s0);
  two_product(acytail, bcxtail, t1, t0);
  two_two_diff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  double d[16];
  const int dlen = fast_expansion_sum_zeroelim(c2len, c2, 4, u, d);

  return d[dlen - 1];
}

/// Filter + escalation without touching the slow-path counter; used for the
/// rescaled re-evaluation so one uncertain input counts once.
double orient2d_filtered(double pax, double pay, double pbx, double pby, double pcx,
                         double pcy) {
  const double detleft = (pax - pcx) * (pby - pcy);
  const double detright = (pay - pcy) * (pbx - pcx);
  const double det = detleft - detright;
  const double detsum = std::fabs(detleft) + std::fabs(detright);
  const double errbound = kCcwErrBoundA * detsum;
  if (det > errbound || -det > errbound || detsum == 0.0) return det;
  return orient2d_adapt(pax, pay, pbx, pby, pcx, pcy, detsum);
}

}  // namespace

double orient2d_escalate(double pax, double pay, double pbx, double pby, double pcx,
                         double pcy, double detsum) {
  ++slowpath_counter();
  // Overflow rescue: when any coordinate difference is too large for the
  // Dekker splits (or a product already overflowed, making detsum
  // non-finite), rescale every input by an exact power of two and rerun the
  // whole predicate. Scaling preserves the sign of the determinant.
  const double spread =
      std::max(std::max(std::fabs(pax - pcx), std::fabs(pbx - pcx)),
               std::max(std::fabs(pay - pcy), std::fabs(pby - pcy)));
  if (!(spread <= kMaxSafeDiff) || !std::isfinite(detsum)) {
    return orient2d_filtered(pax * kRescue, pay * kRescue, pbx * kRescue,
                             pby * kRescue, pcx * kRescue, pcy * kRescue);
  }
  return orient2d_adapt(pax, pay, pbx, pby, pcx, pcy, detsum);
}

double orient2d(const Coord& pa, const Coord& pb, const Coord& pc) {
  const double detleft = (pa.x - pc.x) * (pb.y - pc.y);
  const double detright = (pa.y - pc.y) * (pb.x - pc.x);
  const double det = detleft - detright;
  const double detsum = std::fabs(detleft) + std::fabs(detright);
  // A-stage filter. detsum == 0 means both products are exactly zero, so
  // det is exact; the strict comparisons route every det == 0 with nonzero
  // detsum through the exact path. NaNs (overflowed products) fail all
  // three tests and escalate into the rescue path.
  const double errbound = kCcwErrBoundA * detsum;
  if (det > errbound || -det > errbound || detsum == 0.0) return det;
  return orient2d_escalate(pa.x, pa.y, pb.x, pb.y, pc.x, pc.y, detsum);
}

// ---------------------------------------------------------------------------
// incircle
// ---------------------------------------------------------------------------

namespace {

/// Fully exact 4x4 incircle determinant by expansion arithmetic (the
/// "exact" tier; no intermediate stages — the A-stage filter already
/// resolves all well-conditioned inputs).
double incircle_exact(const Coord& pa, const Coord& pb, const Coord& pc,
                      const Coord& pd) {
  // Pairwise 2x2 minors ab..bd as 4-component expansions.
  double ab[4], bc[4], cd[4], da[4], ac[4], bd[4];
  const auto minor2 = [](const Coord& p, const Coord& q, double* out) {
    double pq1, pq0, qp1, qp0;
    two_product(p.x, q.y, pq1, pq0);
    two_product(q.x, p.y, qp1, qp0);
    two_two_diff(pq1, pq0, qp1, qp0, out[3], out[2], out[1], out[0]);
  };
  minor2(pa, pb, ab);
  minor2(pb, pc, bc);
  minor2(pc, pd, cd);
  minor2(pd, pa, da);
  minor2(pa, pc, ac);
  minor2(pb, pd, bd);

  // 3x3 cofactor expansions: cda, dab, abc, bcd.
  double temp8[8];
  double cda[12], dab[12], abc[12], bcd[12];
  int templen = fast_expansion_sum_zeroelim(4, cd, 4, da, temp8);
  const int cdalen = fast_expansion_sum_zeroelim(templen, temp8, 4, ac, cda);
  templen = fast_expansion_sum_zeroelim(4, da, 4, ab, temp8);
  const int dablen = fast_expansion_sum_zeroelim(templen, temp8, 4, bd, dab);
  for (int i = 0; i < 4; ++i) {
    bd[i] = -bd[i];
    ac[i] = -ac[i];
  }
  templen = fast_expansion_sum_zeroelim(4, ab, 4, bc, temp8);
  const int abclen = fast_expansion_sum_zeroelim(templen, temp8, 4, ac, abc);
  templen = fast_expansion_sum_zeroelim(4, bc, 4, cd, temp8);
  const int bcdlen = fast_expansion_sum_zeroelim(templen, temp8, 4, bd, bcd);

  // Scale each cofactor by the matching lift (x^2 + y^2), alternating sign.
  double det24x[24], det24y[24], det48x[48], det48y[48];
  double adet[96], bdet[96], cdet[96], ddet[96];
  const auto lift_term = [&](int coflen, const double* cof, const Coord& p,
                             double sign_x, double sign_y, double* out) {
    int xlen = scale_expansion_zeroelim(coflen, cof, p.x, det24x);
    xlen = scale_expansion_zeroelim(xlen, det24x, sign_x * p.x, det48x);
    int ylen = scale_expansion_zeroelim(coflen, cof, p.y, det24y);
    ylen = scale_expansion_zeroelim(ylen, det24y, sign_y * p.y, det48y);
    return fast_expansion_sum_zeroelim(xlen, det48x, ylen, det48y, out);
  };
  const int alen = lift_term(bcdlen, bcd, pa, 1.0, 1.0, adet);
  const int blen = lift_term(cdalen, cda, pb, -1.0, -1.0, bdet);
  const int clen = lift_term(dablen, dab, pc, 1.0, 1.0, cdet);
  const int dlen = lift_term(abclen, abc, pd, -1.0, -1.0, ddet);

  double abdet[192], cddet[192], deter[384];
  const int ablen2 = fast_expansion_sum_zeroelim(alen, adet, blen, bdet, abdet);
  const int cdlen2 = fast_expansion_sum_zeroelim(clen, cdet, dlen, ddet, cddet);
  const int deterlen = fast_expansion_sum_zeroelim(ablen2, abdet, cdlen2, cddet, deter);
  return deter[deterlen - 1];
}

/// Largest coordinate magnitude whose 4th-power terms stay finite in the
/// exact incircle pipeline.
constexpr double kMaxSafeCoord = 0x1p255;

double incircle_filtered(const Coord& pa, const Coord& pb, const Coord& pc,
                         const Coord& pd);

double incircle_escalate(const Coord& pa, const Coord& pb, const Coord& pc,
                         const Coord& pd) {
  ++slowpath_counter();
  double mag = 0.0;
  for (const Coord* p : {&pa, &pb, &pc, &pd}) {
    mag = std::max(mag, std::max(std::fabs(p->x), std::fabs(p->y)));
  }
  if (!(mag <= kMaxSafeCoord)) {
    // Exact power-of-two rescale into [2^200, 2^201): degree-4 expansion
    // terms then peak near 2^804, far from overflow. Power-of-two scaling
    // is exact unless a coordinate lands subnormal, i.e. unless the inputs
    // mix magnitudes more than ~1200 binades apart.
    const double s = std::ldexp(1.0, 200 - std::ilogb(mag));
    return incircle_filtered({pa.x * s, pa.y * s}, {pb.x * s, pb.y * s},
                             {pc.x * s, pc.y * s}, {pd.x * s, pd.y * s});
  }
  return incircle_exact(pa, pb, pc, pd);
}

double incircle_filter_det(const Coord& pa, const Coord& pb, const Coord& pc,
                           const Coord& pd, double& permanent) {
  const double adx = pa.x - pd.x;
  const double bdx = pb.x - pd.x;
  const double cdx = pc.x - pd.x;
  const double ady = pa.y - pd.y;
  const double bdy = pb.y - pd.y;
  const double cdy = pc.y - pd.y;

  const double bdxcdy = bdx * cdy;
  const double cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;
  const double cdxady = cdx * ady;
  const double adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;
  const double adxbdy = adx * bdy;
  const double bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  permanent = (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
              (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
              (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
  return alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
         clift * (adxbdy - bdxady);
}

double incircle_filtered(const Coord& pa, const Coord& pb, const Coord& pc,
                         const Coord& pd) {
  double permanent;
  const double det = incircle_filter_det(pa, pb, pc, pd, permanent);
  const double errbound = kIccErrBoundA * permanent;
  if (det > errbound || -det > errbound || permanent == 0.0) return det;
  return incircle_exact(pa, pb, pc, pd);
}

}  // namespace

double incircle(const Coord& pa, const Coord& pb, const Coord& pc, const Coord& pd) {
  double permanent;
  const double det = incircle_filter_det(pa, pb, pc, pd, permanent);
  const double errbound = kIccErrBoundA * permanent;
  if (det > errbound || -det > errbound || permanent == 0.0) return det;
  return incircle_escalate(pa, pb, pc, pd);
}

std::uint64_t slowpath_calls() { return slowpath_counter(); }

}  // namespace sjc::geom::exact
