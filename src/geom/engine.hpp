// Geometry engines: the JTS-vs-GEOS axis of the paper.
//
// The paper attributes a large share of HadoopGIS's slowness to its GEOS
// geometry library being several times slower than the JTS library used by
// SpatialHadoop/SpatialSpark (Section II.C, citing its ref [6]). We model
// that axis with two engines that return *identical answers* but differ in
// evaluation strategy:
//
//  * SimpleEngine  ("GEOS-analog"): evaluates every predicate from scratch
//    with full coordinate scans — no caching, no indexing, fresh part
//    decomposition per call.
//  * PreparedEngine ("JTS-analog"): prepare() builds a PreparedGeometry
//    (y-bucketed edges + segment grid) once; repeated queries against it are
//    indexed. One-shot calls prepare on the fly when the geometry is complex
//    enough to amortize.
//
// The speed gap measured between them is structural (really doing more/less
// work), not a fudge factor; bench_geom_engines reports it.
#pragma once

#include <memory>
#include <string>

#include "geom/geometry.hpp"

namespace sjc::geom {

enum class EngineKind {
  kSimple = 0,    // GEOS-analog
  kPrepared = 1,  // JTS-analog
};

const char* engine_kind_name(EngineKind kind);

/// A predicate evaluator bound to one "anchor" geometry, queried repeatedly
/// against many probe geometries (the local-join refinement access pattern).
class BoundPredicate {
 public:
  virtual ~BoundPredicate() = default;

  /// anchor ∩ probe ≠ ∅
  virtual bool intersects(const Geometry& probe) const = 0;
  /// anchor covers probe (anchor must be areal)
  virtual bool contains(const Geometry& probe) const = 0;
  /// min distance anchor↔probe
  virtual double distance(const Geometry& probe) const = 0;
  /// distance(probe) <= d, with an MBR early-out
  bool within_distance(const Geometry& probe, double d) const;

  virtual const Geometry& anchor() const = 0;
};

class GeometryEngine {
 public:
  virtual ~GeometryEngine() = default;

  virtual EngineKind kind() const = 0;
  virtual std::string name() const = 0;

  /// One-shot predicates.
  virtual bool intersects(const Geometry& a, const Geometry& b) const = 0;
  virtual bool contains(const Geometry& a, const Geometry& b) const = 0;
  virtual double distance(const Geometry& a, const Geometry& b) const = 0;

  /// Binds `anchor` for repeated queries; `anchor` must outlive the result.
  virtual std::unique_ptr<BoundPredicate> bind(const Geometry& anchor) const = 0;

  /// Process-wide singletons.
  static const GeometryEngine& simple();
  static const GeometryEngine& prepared();
  static const GeometryEngine& get(EngineKind kind);
};

}  // namespace sjc::geom
