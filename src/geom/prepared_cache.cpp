#include "geom/prepared_cache.hpp"

#include <utility>

#include "util/status.hpp"

namespace sjc::geom {

PreparedCache::PreparedCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity > 0, "PreparedCache: capacity must be > 0");
}

std::shared_ptr<const BoundPredicate> PreparedCache::acquire(
    const GeometryEngine& engine, std::uint64_t id, const Geometry& geometry) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(id);
    if (it != entries_.end()) {
      ++hits_;
      it->second.last_used = ++tick_;
      return {it->second.holder, it->second.holder->bound.get()};
    }
    ++misses_;
  }

  // Bind outside the lock: preparation is the expensive part and other
  // tasks must not serialize behind it. A concurrent miss on the same id
  // binds twice; the loser's work is discarded below.
  auto holder = std::make_shared<Holder>();
  holder->geometry = geometry;
  holder->bound = engine.bind(holder->geometry);

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(id);
  if (!inserted) {
    // Another thread won the race; share its handle.
    it->second.last_used = ++tick_;
    return {it->second.holder, it->second.holder->bound.get()};
  }
  it->second.holder = std::move(holder);
  it->second.last_used = ++tick_;
  if (entries_.size() > capacity_) {
    // Evict the least-recently-used entry other than the one just inserted
    // (size > capacity >= 1 guarantees one exists).
    auto victim = entries_.end();
    for (auto cur = entries_.begin(); cur != entries_.end(); ++cur) {
      if (cur->first == id) continue;
      if (victim == entries_.end() || cur->second.last_used < victim->second.last_used) {
        victim = cur;
      }
    }
    entries_.erase(victim);
    ++evictions_;
  }
  return {it->second.holder, it->second.holder->bound.get()};
}

std::size_t PreparedCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t PreparedCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PreparedCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t PreparedCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

double PreparedCache::hit_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void PreparedCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  tick_ = 0;
}

}  // namespace sjc::geom

