#include "geom/prepared_cache.hpp"

#include <utility>

#include "geom/batch_refine.hpp"
#include "util/status.hpp"

namespace sjc::geom {

// Out-of-line so unique_ptr<BatchRefiner> destroys where the type is
// complete (the header only forward-declares it).
PreparedCache::RefinerHolder::~RefinerHolder() = default;

PreparedCache::PreparedCache(std::size_t capacity) : capacity_(capacity) {
  require(capacity > 0, "PreparedCache: capacity must be > 0");
}

void PreparedCache::touch_and_evict_locked(Entry& entry, std::uint64_t keep_id) {
  entry.last_used = ++tick_;
  if (entries_.size() <= capacity_) return;
  // Evict the least-recently-used entry other than the one just touched
  // (size > capacity >= 1 guarantees one exists).
  auto victim = entries_.end();
  for (auto cur = entries_.begin(); cur != entries_.end(); ++cur) {
    if (cur->first == keep_id) continue;
    if (victim == entries_.end() || cur->second.last_used < victim->second.last_used) {
      victim = cur;
    }
  }
  entries_.erase(victim);
  ++evictions_;
}

std::shared_ptr<const BoundPredicate> PreparedCache::acquire(
    const GeometryEngine& engine, std::uint64_t id, const Geometry& geometry) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++lookups_;
    const auto it = entries_.find(id);
    // An entry populated only by acquire_refiner() carries no bound
    // predicate; that is a miss for this slot, not a null handle.
    if (it != entries_.end() && it->second.bound != nullptr) {
      ++hits_;
      it->second.last_used = ++tick_;
      return {it->second.bound, it->second.bound->bound.get()};
    }
    ++misses_;
  }

  // Bind outside the lock: preparation is the expensive part and other
  // tasks must not serialize behind it. A concurrent miss on the same id
  // binds twice; the loser's work is discarded below.
  auto holder = std::make_shared<BoundHolder>();
  holder->geometry = geometry;
  holder->bound = engine.bind(holder->geometry);

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(id);
  if (!inserted && it->second.bound != nullptr) {
    // Another thread won the race; share its handle.
    it->second.last_used = ++tick_;
    return {it->second.bound, it->second.bound->bound.get()};
  }
  // Fresh entry, or a refiner-only entry gaining its bound slot; the
  // refiner slot (if any) is left untouched.
  it->second.bound = std::move(holder);
  touch_and_evict_locked(it->second, id);
  return {it->second.bound, it->second.bound->bound.get()};
}

std::shared_ptr<const BatchRefiner> PreparedCache::acquire_refiner(
    std::uint64_t id, const Geometry& geometry) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++lookups_;
    const auto it = entries_.find(id);
    if (it != entries_.end() && it->second.refiner != nullptr) {
      ++hits_;
      it->second.last_used = ++tick_;
      return {it->second.refiner, it->second.refiner->refiner.get()};
    }
    ++misses_;
  }

  // Build outside the lock (same reasoning as acquire): the loser of a
  // concurrent miss race discards its work below.
  auto holder = std::make_shared<RefinerHolder>();
  holder->geometry = geometry;
  holder->refiner = std::make_unique<BatchRefiner>(holder->geometry);

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(id);
  if (!inserted && it->second.refiner != nullptr) {
    it->second.last_used = ++tick_;
    return {it->second.refiner, it->second.refiner->refiner.get()};
  }
  // Fresh entry, or an acquire()-only entry gaining its refiner slot; the
  // bound slot (if any) is left untouched.
  it->second.refiner = std::move(holder);
  touch_and_evict_locked(it->second, id);
  return {it->second.refiner, it->second.refiner->refiner.get()};
}

std::size_t PreparedCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t PreparedCache::lookups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lookups_;
}

std::uint64_t PreparedCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PreparedCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t PreparedCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

double PreparedCache::hit_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lookups_ == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(lookups_);
}

void PreparedCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  tick_ = 0;
}

}  // namespace sjc::geom
