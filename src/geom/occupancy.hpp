#pragma once

// Per-partition-cell occupancy bitmaps: the map-side spatial shuffle filter
// (LocationSpark's "sFilter" analog).
//
// One OccupancyFilter summarises where the *resident* (right/indexed) side of
// a spatial join actually has geometry inside each partition cell.  The
// opposite (streamed/left) side consults it during partition assignment and
// drops any (record, cell) copy whose expanded envelope cannot overlap an
// occupied grid slot — before the copy is ever placed in a ShuffleArena
// bucket, serialized, or handed to the local-join kernel.
//
// Layout per cell (two levels):
//   - a domain envelope: the running union of every envelope marked into the
//     cell.  Cheapest possible reject, and exact for cells whose occupancy is
//     one compact cluster.
//   - a coarse 8x8 bitmap packed into a single uint64 word (level 1).
//   - a fine side x side bitmap, one uint64 word per row (level 2).  `side`
//     is 16 for ordinary cells and kLargeSide for cells whose area is well
//     above the median — the hierarchical refinement for large cells, which
//     under skewed partitioners (notably STR leaves on hotspot data) would
//     otherwise degrade to a handful of giant always-occupied slots.
//
// Soundness contract: both mark() and may_match() rasterise an envelope to
// the *clamped* slot range of the cell box (the same monotone clamp
// PartitionScheme's grid directory uses).  A monotone clamp maps overlapping
// real intervals to overlapping clamped index ranges, so if a marked envelope
// intersects a queried envelope the two bit ranges overlap and may_match()
// returns true — even when either envelope pokes outside the cell box
// (border slots absorb everything beyond the edge; that only weakens
// pruning, never correctness).  may_match() == false therefore proves the
// queried envelope intersects *no* envelope ever marked into that cell: the
// filter drops only true negatives.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/envelope.hpp"

namespace sjc::geom {

class OccupancyFilter {
 public:
  struct Config {
    std::uint32_t fine_side = 32;        // fine bitmap side for ordinary cells
    std::uint32_t large_side = 64;       // fine bitmap side for large cells
    double large_area_factor = 4.0;      // area > factor * median => large
  };

  // `cells` are the partition cell boxes, indexed by partition id.
  // (Two overloads instead of a `= Config{}` default: a nested class with
  // member initializers is incomplete at the default-argument site.)
  explicit OccupancyFilter(const std::vector<Envelope>& cells);
  OccupancyFilter(const std::vector<Envelope>& cells, const Config& config);

  // Records that the resident side has a geometry with envelope `env`
  // assigned to partition `cell`.  Not thread-safe; build single-threaded.
  void mark(std::uint32_t cell, const Envelope& env);

  // True unless `env` provably intersects no envelope marked into `cell`.
  // Thread-safe once building is done (read-only).
  bool may_match(std::uint32_t cell, const Envelope& env) const;

  bool cell_occupied(std::uint32_t cell) const {
    return cells_[cell].marked > 0;
  }

  std::size_t cell_count() const { return cells_.size(); }
  std::uint64_t marked_envelopes() const { return marked_; }
  std::uint64_t occupied_cells() const;

  // Modeled serialized size: what a real system would broadcast / put in the
  // distributed cache.  Domain envelope + coarse word + fine bitmap per cell.
  std::size_t size_bytes() const;

 private:
  struct Cell {
    Envelope box;               // the partition cell (clamp frame)
    Envelope domain;            // union of marked envelopes (starts empty)
    std::uint32_t side = 0;     // fine bitmap side (rows == side, <= 64 bits)
    std::uint32_t word_offset = 0;  // first fine row word in words_
    std::uint64_t coarse = 0;   // 8x8 level-1 summary
    std::uint64_t marked = 0;   // envelopes marked into this cell
    double inv_w = 0.0;         // side / width(box)  (0 for degenerate)
    double inv_h = 0.0;         // side / height(box)
  };

  struct SlotRange {
    std::uint32_t x0, x1, y0, y1;  // inclusive fine-slot range
  };

  SlotRange clamp_range(const Cell& c, const Envelope& env) const;

  std::vector<Cell> cells_;
  std::vector<std::uint64_t> words_;  // fine rows, side words per cell
  std::uint64_t marked_ = 0;
};

}  // namespace sjc::geom
