#include "geom/geometry.hpp"

#include "util/status.hpp"

namespace sjc::geom {

const char* geom_type_name(GeomType type) {
  switch (type) {
    case GeomType::kPoint: return "POINT";
    case GeomType::kLineString: return "LINESTRING";
    case GeomType::kPolygon: return "POLYGON";
    case GeomType::kMultiLineString: return "MULTILINESTRING";
    case GeomType::kMultiPolygon: return "MULTIPOLYGON";
  }
  return "?";
}

double ring_signed_area(const Ring& ring) {
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
    sum += ring[i].x * ring[i + 1].y - ring[i + 1].x * ring[i].y;
  }
  return sum / 2.0;
}

namespace {

void validate_ring(const Ring& ring, const char* what) {
  require(ring.size() >= 4, std::string(what) + ": ring needs >= 4 coordinates");
  require(ring.front() == ring.back(), std::string(what) + ": ring must be closed");
}

void validate_polygon(const Polygon& poly) {
  validate_ring(poly.shell, "Polygon shell");
  for (const auto& hole : poly.holes) validate_ring(hole, "Polygon hole");
}

}  // namespace

Geometry::Geometry() : Geometry(GeomType::kPoint, Coord{0.0, 0.0}) {}

Geometry::Geometry(GeomType type, Storage storage)
    : type_(type), storage_(std::move(storage)) {
  compute_envelope();
}

Geometry Geometry::point(double x, double y) {
  return Geometry(GeomType::kPoint, Coord{x, y});
}

Geometry Geometry::line_string(std::vector<Coord> coords) {
  require(coords.size() >= 2, "LineString needs >= 2 coordinates");
  return Geometry(GeomType::kLineString, LineString{std::move(coords)});
}

Geometry Geometry::polygon(Ring shell, std::vector<Ring> holes) {
  Polygon poly{std::move(shell), std::move(holes)};
  validate_polygon(poly);
  return Geometry(GeomType::kPolygon, std::move(poly));
}

Geometry Geometry::multi_line_string(std::vector<LineString> parts) {
  require(!parts.empty(), "MultiLineString needs >= 1 part");
  for (const auto& part : parts) {
    require(part.coords.size() >= 2, "MultiLineString part needs >= 2 coordinates");
  }
  return Geometry(GeomType::kMultiLineString, MultiLineString{std::move(parts)});
}

Geometry Geometry::multi_polygon(std::vector<Polygon> parts) {
  require(!parts.empty(), "MultiPolygon needs >= 1 part");
  for (const auto& part : parts) validate_polygon(part);
  return Geometry(GeomType::kMultiPolygon, MultiPolygon{std::move(parts)});
}

const Coord& Geometry::as_point() const {
  require(type_ == GeomType::kPoint, "Geometry is not a POINT");
  return std::get<Coord>(storage_);
}

const LineString& Geometry::as_line_string() const {
  require(type_ == GeomType::kLineString, "Geometry is not a LINESTRING");
  return std::get<LineString>(storage_);
}

const Polygon& Geometry::as_polygon() const {
  require(type_ == GeomType::kPolygon, "Geometry is not a POLYGON");
  return std::get<Polygon>(storage_);
}

const MultiLineString& Geometry::as_multi_line_string() const {
  require(type_ == GeomType::kMultiLineString, "Geometry is not a MULTILINESTRING");
  return std::get<MultiLineString>(storage_);
}

const MultiPolygon& Geometry::as_multi_polygon() const {
  require(type_ == GeomType::kMultiPolygon, "Geometry is not a MULTIPOLYGON");
  return std::get<MultiPolygon>(storage_);
}

void Geometry::compute_envelope() {
  envelope_ = Envelope();
  const auto add_coords = [this](const std::vector<Coord>& coords) {
    for (const auto& c : coords) envelope_.expand_to_include(c.x, c.y);
  };
  switch (type_) {
    case GeomType::kPoint: {
      const auto& p = std::get<Coord>(storage_);
      envelope_.expand_to_include(p.x, p.y);
      break;
    }
    case GeomType::kLineString:
      add_coords(std::get<LineString>(storage_).coords);
      break;
    case GeomType::kPolygon:
      // Shell bounds the holes by definition; scanning it alone suffices.
      add_coords(std::get<Polygon>(storage_).shell);
      break;
    case GeomType::kMultiLineString:
      for (const auto& part : std::get<MultiLineString>(storage_).parts) {
        add_coords(part.coords);
      }
      break;
    case GeomType::kMultiPolygon:
      for (const auto& part : std::get<MultiPolygon>(storage_).parts) {
        add_coords(part.shell);
      }
      break;
  }
}

std::size_t Geometry::num_coords() const {
  switch (type_) {
    case GeomType::kPoint:
      return 1;
    case GeomType::kLineString:
      return std::get<LineString>(storage_).coords.size();
    case GeomType::kPolygon: {
      const auto& poly = std::get<Polygon>(storage_);
      std::size_t n = poly.shell.size();
      for (const auto& hole : poly.holes) n += hole.size();
      return n;
    }
    case GeomType::kMultiLineString: {
      std::size_t n = 0;
      for (const auto& part : std::get<MultiLineString>(storage_).parts) {
        n += part.coords.size();
      }
      return n;
    }
    case GeomType::kMultiPolygon: {
      std::size_t n = 0;
      for (const auto& part : std::get<MultiPolygon>(storage_).parts) {
        n += part.shell.size();
        for (const auto& hole : part.holes) n += hole.size();
      }
      return n;
    }
  }
  return 0;
}

std::size_t Geometry::size_bytes() const {
  // Coordinates dominate; add a small fixed overhead for the object shell.
  return 48 + num_coords() * sizeof(Coord);
}

bool operator==(const Geometry& a, const Geometry& b) {
  return a.type_ == b.type_ && a.storage_ == b.storage_;
}

}  // namespace sjc::geom
