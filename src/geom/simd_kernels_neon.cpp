// NEON (2-lane double, AdvSIMD) variants of the BatchRefiner kernels.
// AdvSIMD is baseline on aarch64 so no extra compile flags are needed; on
// other targets this TU contributes just the nullptr table accessor.
//
// Same bit-identity structure as the AVX2 TU: identical IEEE ops per lane
// (vdivq_f64 is correctly-rounded IEEE division), identical A-stage filter
// comparisons, per-lane escalation in ascending order, shared scalar tail.
#include "geom/simd_dispatch.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "geom/exact_predicates.hpp"
#include "geom/simd_kernels_impl.hpp"

namespace sjc::geom::simd {
namespace {

/// Two-bit movemask: bit L set when lane L's mask is all-ones.
inline unsigned movemask2(uint64x2_t m) {
  return static_cast<unsigned>(vgetq_lane_u64(m, 0) >> 63) |
         (static_cast<unsigned>(vgetq_lane_u64(m, 1) >> 63) << 1);
}

bool pip_covers_run_neon(const double* ax, const double* ay, const double* bx,
                         const double* by, std::size_t n, double px, double py) {
  const float64x2_t vpx = vdupq_n_f64(px);
  const float64x2_t vpy = vdupq_n_f64(py);
  const float64x2_t verr_a = vdupq_n_f64(exact::kCcwErrBoundA);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  uint64x2_t acc_on = vdupq_n_u64(0);
  uint64x2_t acc_in = vdupq_n_u64(0);
  unsigned on_boundary = 0;
  unsigned inside = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t eax = vld1q_f64(ax + i);
    const float64x2_t eay = vld1q_f64(ay + i);
    const float64x2_t ebx = vld1q_f64(bx + i);
    const float64x2_t eby = vld1q_f64(by + i);
    const float64x2_t dx = vsubq_f64(ebx, eax);
    const float64x2_t dy = vsubq_f64(eby, eay);
    const float64x2_t rel_y = vsubq_f64(vpy, eay);
    const float64x2_t rel_x = vsubq_f64(vpx, eax);
    const float64x2_t detleft = vmulq_f64(dx, rel_y);
    const float64x2_t detright = vmulq_f64(dy, rel_x);
    const float64x2_t det = vsubq_f64(detleft, detright);

    const uint64x2_t bbox = vandq_u64(
        vandq_u64(vcgeq_f64(vpx, vminq_f64(eax, ebx)),
                  vcleq_f64(vpx, vmaxq_f64(eax, ebx))),
        vandq_u64(vcgeq_f64(vpy, vminq_f64(eay, eby)),
                  vcleq_f64(vpy, vmaxq_f64(eay, eby))));

    const float64x2_t detsum = vaddq_f64(vabsq_f64(detleft), vabsq_f64(detright));
    const float64x2_t errbound = vmulq_f64(verr_a, detsum);
    const float64x2_t neg_det = vnegq_f64(det);
    uint64x2_t certain =
        vorrq_u64(vcgtq_f64(det, errbound), vcgtq_f64(neg_det, errbound));
    certain = vorrq_u64(certain, vceqq_f64(detsum, vzero));

    acc_on = vorrq_u64(acc_on,
                       vandq_u64(vceqq_f64(det, vzero), vandq_u64(bbox, certain)));
    unsigned need = movemask2(vbicq_u64(bbox, certain));
    while (need != 0) {
      const int lane = __builtin_ctz(need);
      need &= need - 1;
      const std::size_t j = i + static_cast<std::size_t>(lane);
      const double dl = (bx[j] - ax[j]) * (py - ay[j]);
      const double dr = (by[j] - ay[j]) * (px - ax[j]);
      const double ds = std::fabs(dl) + std::fabs(dr);
      const double sign = exact::orient2d_escalate(bx[j], by[j], px, py, ax[j], ay[j], ds);
      on_boundary |= static_cast<unsigned>(sign == 0.0);
    }

    const uint64x2_t spans = veorq_u64(vcgtq_f64(eay, vpy), vcgtq_f64(eby, vpy));
    const float64x2_t x_cross = vaddq_f64(eax, vdivq_f64(vmulq_f64(rel_y, dx), dy));
    acc_in = veorq_u64(acc_in, vandq_u64(spans, vcgtq_f64(x_cross, vpx)));
  }
  on_boundary |= static_cast<unsigned>(movemask2(acc_on) != 0);
  inside ^= static_cast<unsigned>(__builtin_popcount(movemask2(acc_in))) & 1u;
  detail::pip_scalar_range(ax, ay, bx, by, i, n, px, py, on_boundary, inside);
  return (on_boundary | inside) != 0;
}

bool seg_run_intersects_neon(const SegSoA& segs, std::size_t begin, std::size_t end,
                             double axp, double ayp, double bxp, double byp,
                             double bx0, double by0, double bx1, double by1) {
  const Coord a{axp, ayp};
  const Coord b{bxp, byp};
  const float64x2_t vbx0 = vdupq_n_f64(bx0);
  const float64x2_t vby0 = vdupq_n_f64(by0);
  const float64x2_t vbx1 = vdupq_n_f64(bx1);
  const float64x2_t vby1 = vdupq_n_f64(by1);
  std::size_t i = begin;
  for (; i + 2 <= end; i += 2) {
    const uint64x2_t overlap =
        vandq_u64(vandq_u64(vcleq_f64(vld1q_f64(segs.min_x + i), vbx1),
                            vcgeq_f64(vld1q_f64(segs.max_x + i), vbx0)),
                  vandq_u64(vcleq_f64(vld1q_f64(segs.min_y + i), vby1),
                            vcgeq_f64(vld1q_f64(segs.max_y + i), vby0)));
    unsigned m = movemask2(overlap);
    while (m != 0) {
      const int lane = __builtin_ctz(m);
      m &= m - 1;
      const std::size_t j = i + static_cast<std::size_t>(lane);
      if (segments_intersect(a, b, {segs.ax[j], segs.ay[j]},
                             {segs.bx[j], segs.by[j]})) {
        return true;
      }
    }
  }
  return detail::seg_scalar_range(segs, i, end, a, b, bx0, by0, bx1, by1);
}

bool env_any_overlaps_neon(const double* min_x, const double* min_y,
                           const double* max_x, const double* max_y, std::size_t n,
                           double px0, double py0, double px1, double py1) {
  const float64x2_t vpx0 = vdupq_n_f64(px0);
  const float64x2_t vpy0 = vdupq_n_f64(py0);
  const float64x2_t vpx1 = vdupq_n_f64(px1);
  const float64x2_t vpy1 = vdupq_n_f64(py1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t overlap =
        vandq_u64(vandq_u64(vcleq_f64(vld1q_f64(min_x + i), vpx1),
                            vcgeq_f64(vld1q_f64(max_x + i), vpx0)),
                  vandq_u64(vcleq_f64(vld1q_f64(min_y + i), vpy1),
                            vcgeq_f64(vld1q_f64(max_y + i), vpy0)));
    if (movemask2(overlap) != 0) return true;
  }
  return detail::env_scalar_range(min_x, min_y, max_x, max_y, i, n, px0, py0, px1,
                                  py1);
}

constexpr Kernels kNeonKernels{pip_covers_run_neon, seg_run_intersects_neon,
                               env_any_overlaps_neon};

}  // namespace

const Kernels* neon_kernel_table() { return &kNeonKernels; }

}  // namespace sjc::geom::simd

#else  // !__aarch64__

namespace sjc::geom::simd {
const Kernels* neon_kernel_table() { return nullptr; }
}  // namespace sjc::geom::simd

#endif
