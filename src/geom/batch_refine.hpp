// BatchRefiner: batched, SoA refinement engine for the local-join
// refinement step.
//
// The per-pair Prepared path answers one `BoundPredicate` call per
// candidate. BatchRefiner instead refines a whole candidate *group* (all
// candidates of one indexed geometry, as produced by run_local_join's
// counting-sort group-by) against acceleration structures laid out for
// that access pattern:
//
//  1. Packed linework — ring edges flattened into contiguous x[]/y[]
//     arrays in y-bucket CSR order, so batched point-in-polygon runs a
//     branchless crossing-count loop over one bucket's edges per probe
//     while the whole table stays cache-hot across the group.
//  2. Inner/outer approximations — per areal part a *verified* maximal
//     inscribed axis-aligned rectangle (probe MBR inside it ⇒
//     intersects/contains/distance-0 without any exact test) plus
//     per-part envelopes and chunked linework envelopes (probe MBR
//     disjoint from all of them ⇒ no shared point, early reject).
//  3. Exact fallback — allocation-free mirrors of the PreparedGeometry
//     predicates, so every answer is bit-identical to the per-pair path
//     (and therefore to predicates.hpp's naive results).
//
// Every refined candidate is accounted to exactly one of
// RefineStats::{early_accepts, early_rejects, exact_tests}.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/exact_predicates.hpp"
#include "geom/geometry.hpp"
#include "geom/prepared.hpp"

namespace sjc::geom {

/// Refinement accounting: for every candidate that reaches the refiner
/// exactly one of {exact_tests, early_accepts, early_rejects} increments,
/// so those three always sum to the number of refined candidates
/// (test-enforced). Every exact test is additionally classified as
/// fast-path (all adaptive predicate filters held) or slow-path (at least
/// one escalation to expansion arithmetic), so
/// exact_fastpath + exact_slowpath == exact_tests (also test-enforced).
struct RefineStats {
  std::uint64_t exact_tests = 0;
  std::uint64_t early_accepts = 0;
  std::uint64_t early_rejects = 0;
  std::uint64_t exact_fastpath = 0;
  std::uint64_t exact_slowpath = 0;

  std::uint64_t total() const { return exact_tests + early_accepts + early_rejects; }

  /// Accounts one exact test, classified by whether the thread's adaptive
  /// escalation counter moved since `slow_before` (snapshot
  /// exact::slowpath_calls() immediately before the exact test).
  void note_exact(std::uint64_t slow_before) {
    ++exact_tests;
    if (exact::slowpath_calls() != slow_before) {
      ++exact_slowpath;
    } else {
      ++exact_fastpath;
    }
  }

  RefineStats& operator+=(const RefineStats& o) {
    exact_tests += o.exact_tests;
    early_accepts += o.early_accepts;
    early_rejects += o.early_rejects;
    exact_fastpath += o.exact_fastpath;
    exact_slowpath += o.exact_slowpath;
    return *this;
  }
};

class BatchRefiner {
 public:
  /// Prepares `anchor` (the indexed-side geometry); the reference must
  /// outlive this object, like PreparedGeometry.
  explicit BatchRefiner(const Geometry& anchor);

  const Geometry& anchor() const { return *anchor_; }
  const PreparedGeometry& prepared() const { return prepared_; }
  bool has_areal() const { return !parts_.empty(); }

  // Approximation introspection (tests + diagnostics).
  std::size_t part_count() const { return parts_.size(); }
  const Envelope& part_envelope(std::size_t i) const { return parts_[i].env; }
  /// Verified inscribed rectangle of part i; empty when none was proven.
  const Envelope& inner_rect(std::size_t i) const { return parts_[i].inner; }

  /// Same answer as intersects_naive(anchor(), probe).
  bool intersects(const Geometry& probe, RefineStats& stats) const;

  /// Same answer as contains_naive(anchor(), probe); requires areal anchor.
  bool contains(const Geometry& probe, RefineStats& stats) const;

  /// Same answer as the per-pair BoundPredicate::within_distance(probe, d).
  bool within_distance(const Geometry& probe, double d, RefineStats& stats) const;

  /// Batched hole-aware covered test: out[i] = covers(pts[i]), boundary
  /// counts as covered. For point probes against an areal anchor this
  /// equals both intersects() and contains(). Requires has_areal().
  void covers_points(std::span<const Coord> pts, std::vector<std::uint8_t>& out,
                     RefineStats& stats) const;

  /// Approximate bytes used by the acceleration structures (including the
  /// embedded PreparedGeometry).
  std::size_t index_size_bytes() const;

 private:
  // One areal part's edges in y-bucket CSR order, duplicated per bucket so
  // a probe scans one contiguous run of [ax, ay, bx, by] with no index
  // indirection.
  struct SoAPart {
    std::vector<double> ax, ay, bx, by;
    std::vector<std::uint32_t> bucket_offsets;  // size bucket_count + 1
    double y_min = 0.0;
    double y_max = 0.0;
    double y_inv_step = 0.0;
    std::uint32_t bucket_count = 0;
    Envelope env;    // envelope of all ring edges (outer approximation)
    Envelope inner;  // verified inscribed rectangle (inner approximation)

    /// Bit-identical twin of PreparedGeometry::ArealPart::point_covered.
    bool covers(const Coord& p) const;
  };

  void add_part(const Polygon& poly);
  void build_chunks();
  void build_segment_grid();
  /// Exact "does [a, b] intersect any anchor segment" over the SoA segment
  /// grid below. Boolean-identical to PreparedGeometry::linework_intersects
  /// (same exact per-segment test, candidate supersets both contain every
  /// actually-intersecting segment), but scans contiguous coordinate arrays
  /// and prunes candidates with a branchless bbox test before the exact
  /// orientation tests.
  bool segment_grid_intersects(const Coord& a, const Coord& b) const;

  bool inner_accepts(const Envelope& probe_env) const;
  /// True when probe_env overlaps no part envelope and no linework chunk
  /// envelope — i.e. it cannot share a point with the anchor.
  bool outer_rejects(const Envelope& probe_env) const;
  bool overlaps_any_part_env(const Envelope& probe_env) const;

  bool exact_intersects(const Geometry& probe) const;
  bool exact_contains(const Geometry& probe) const;

  const Geometry* anchor_;
  PreparedGeometry prepared_;  // exact fallback + linework grid
  std::vector<SoAPart> parts_;

  // Chunked linework envelopes (SoA): each chunk bounds a run of
  // consecutive segments within one coordinate path. Together with the
  // part envelopes they bound the anchor's entire point set.
  std::vector<double> chunk_min_x_, chunk_min_y_, chunk_max_x_, chunk_max_y_;

  // SoA linework segment grid for exact crossing tests: per-cell CSR with
  // endpoint and precomputed-bbox arrays duplicated per cell entry, so a
  // probe segment walks contiguous doubles with no index indirection.
  Envelope seg_env_;
  std::uint32_t seg_w_ = 0;
  std::uint32_t seg_h_ = 0;
  double seg_x_inv_ = 0.0;
  double seg_y_inv_ = 0.0;
  std::vector<std::uint32_t> seg_offsets_;  // CSR offsets, seg_w*seg_h + 1
  std::vector<double> seg_ax_, seg_ay_, seg_bx_, seg_by_;          // endpoints
  std::vector<double> seg_min_x_, seg_min_y_, seg_max_x_, seg_max_y_;  // bboxes

  // Approximations apply only when the envelopes above actually bound the
  // anchor (false only for point anchors, which have no parts/linework).
  bool approx_ = false;
};

}  // namespace sjc::geom
