#include "geom/engine.hpp"

#include "geom/predicates.hpp"
#include "geom/prepared.hpp"

namespace sjc::geom {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSimple: return "simple(geos-analog)";
    case EngineKind::kPrepared: return "prepared(jts-analog)";
  }
  return "?";
}

bool BoundPredicate::within_distance(const Geometry& probe, double d) const {
  if (anchor().envelope().distance(probe.envelope()) > d) return false;
  return distance(probe) <= d;
}

namespace {

// ---------------------------------------------------------------------------
// Simple engine (GEOS-analog)
// ---------------------------------------------------------------------------

class SimpleBound final : public BoundPredicate {
 public:
  explicit SimpleBound(const Geometry& anchor) : anchor_(&anchor) {}

  bool intersects(const Geometry& probe) const override {
    return intersects_naive(*anchor_, probe);
  }
  bool contains(const Geometry& probe) const override {
    return contains_naive(*anchor_, probe);
  }
  double distance(const Geometry& probe) const override {
    return distance_naive(*anchor_, probe);
  }
  const Geometry& anchor() const override { return *anchor_; }

 private:
  const Geometry* anchor_;
};

class SimpleEngine final : public GeometryEngine {
 public:
  EngineKind kind() const override { return EngineKind::kSimple; }
  std::string name() const override { return engine_kind_name(EngineKind::kSimple); }

  bool intersects(const Geometry& a, const Geometry& b) const override {
    return intersects_naive(a, b);
  }
  bool contains(const Geometry& a, const Geometry& b) const override {
    return contains_naive(a, b);
  }
  double distance(const Geometry& a, const Geometry& b) const override {
    return distance_naive(a, b);
  }
  std::unique_ptr<BoundPredicate> bind(const Geometry& anchor) const override {
    return std::make_unique<SimpleBound>(anchor);
  }
};

// ---------------------------------------------------------------------------
// Prepared engine (JTS-analog)
// ---------------------------------------------------------------------------

class PreparedBound final : public BoundPredicate {
 public:
  explicit PreparedBound(const Geometry& anchor) : prepared_(anchor) {}

  bool intersects(const Geometry& probe) const override {
    return prepared_.intersects(probe);
  }
  bool contains(const Geometry& probe) const override {
    return prepared_.contains(probe);
  }
  double distance(const Geometry& probe) const override {
    return prepared_.distance(probe);
  }
  const Geometry& anchor() const override { return prepared_.geometry(); }

 private:
  PreparedGeometry prepared_;
};

class PreparedEngine final : public GeometryEngine {
 public:
  EngineKind kind() const override { return EngineKind::kPrepared; }
  std::string name() const override { return engine_kind_name(EngineKind::kPrepared); }

  bool intersects(const Geometry& a, const Geometry& b) const override {
    // One-shot: preparing pays off once the anchor has enough edges that the
    // probe would otherwise rescan them all.
    if (a.num_coords() >= kPrepareThreshold) {
      return PreparedGeometry(a).intersects(b);
    }
    return intersects_naive(a, b);
  }
  bool contains(const Geometry& a, const Geometry& b) const override {
    if (a.num_coords() >= kPrepareThreshold) {
      return PreparedGeometry(a).contains(b);
    }
    return contains_naive(a, b);
  }
  double distance(const Geometry& a, const Geometry& b) const override {
    return distance_naive(a, b);
  }
  std::unique_ptr<BoundPredicate> bind(const Geometry& anchor) const override {
    return std::make_unique<PreparedBound>(anchor);
  }

 private:
  static constexpr std::size_t kPrepareThreshold = 32;
};

}  // namespace

const GeometryEngine& GeometryEngine::simple() {
  static const SimpleEngine engine;
  return engine;
}

const GeometryEngine& GeometryEngine::prepared() {
  static const PreparedEngine engine;
  return engine;
}

const GeometryEngine& GeometryEngine::get(EngineKind kind) {
  return kind == EngineKind::kSimple ? simple() : prepared();
}

}  // namespace sjc::geom
