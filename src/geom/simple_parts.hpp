// Internal helper: decomposition of a Geometry into "simple parts".
//
// A simple part is a point, a linestring, or a single (holed) polygon.
// Predicates over arbitrary geometry pairs are defined over the cross
// product of their simple parts; both engines use this same decomposition so
// their answers coincide by construction.
//
// This header is an implementation detail of sjc_geom (not part of the
// public API surface) but lives alongside the public headers because the
// library does not install.
#pragma once

#include <vector>

#include "geom/geometry.hpp"

namespace sjc::geom::detail {

struct SimplePart {
  const Coord* point = nullptr;
  const LineString* line = nullptr;
  const Polygon* polygon = nullptr;
};

inline void collect_parts(const Geometry& g, std::vector<SimplePart>& out) {
  switch (g.type()) {
    case GeomType::kPoint:
      out.push_back({.point = &g.as_point()});
      break;
    case GeomType::kLineString:
      out.push_back({.line = &g.as_line_string()});
      break;
    case GeomType::kPolygon:
      out.push_back({.polygon = &g.as_polygon()});
      break;
    case GeomType::kMultiLineString:
      for (const auto& part : g.as_multi_line_string().parts) {
        out.push_back({.line = &part});
      }
      break;
    case GeomType::kMultiPolygon:
      for (const auto& part : g.as_multi_polygon().parts) {
        out.push_back({.polygon = &part});
      }
      break;
  }
}

}  // namespace sjc::geom::detail
