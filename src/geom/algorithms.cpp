#include "geom/algorithms.hpp"

#include <algorithm>
#include <cmath>

#include "geom/exact_predicates.hpp"

namespace sjc::geom {

double orientation(const Coord& a, const Coord& b, const Coord& c) {
  // (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x) is det[b-a, c-a],
  // which is exact::orient2d(b, c, a) by cyclic symmetry. The adaptive
  // predicate evaluates exactly that expression on its fast path and
  // escalates to expansion arithmetic when the sign is uncertain, so every
  // consumer (point_on_segment, segments_intersect, both engines' crossing
  // tests) now decides degenerate cases robustly instead of by rounding
  // luck.
  return exact::orient2d(b, c, a);
}

bool point_on_segment(const Coord& p, const Coord& a, const Coord& b) {
  if (orientation(a, b, p) != 0.0) return false;
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

bool segments_intersect(const Coord& a1, const Coord& a2, const Coord& b1,
                        const Coord& b2) {
  const double d1 = orientation(b1, b2, a1);
  const double d2 = orientation(b1, b2, a2);
  const double d3 = orientation(a1, a2, b1);
  const double d4 = orientation(a1, a2, b2);

  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;  // proper crossing
  }
  if (d1 == 0 && point_on_segment(a1, b1, b2)) return true;
  if (d2 == 0 && point_on_segment(a2, b1, b2)) return true;
  if (d3 == 0 && point_on_segment(b1, a1, a2)) return true;
  if (d4 == 0 && point_on_segment(b2, a1, a2)) return true;
  return false;
}

double squared_distance(const Coord& a, const Coord& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double squared_distance_point_segment(const Coord& p, const Coord& a, const Coord& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  if (len2 == 0.0) return squared_distance(p, a);  // degenerate segment
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  const Coord proj{a.x + t * abx, a.y + t * aby};
  return squared_distance(p, proj);
}

double squared_distance_segments(const Coord& a1, const Coord& a2, const Coord& b1,
                                 const Coord& b2) {
  if (segments_intersect(a1, a2, b1, b2)) return 0.0;
  return std::min({squared_distance_point_segment(a1, b1, b2),
                   squared_distance_point_segment(a2, b1, b2),
                   squared_distance_point_segment(b1, a1, a2),
                   squared_distance_point_segment(b2, a1, a2)});
}

RingSide point_in_ring(const Coord& p, const Ring& ring) {
  bool inside = false;
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
    const Coord& a = ring[i];
    const Coord& b = ring[i + 1];
    if (point_on_segment(p, a, b)) return RingSide::kBoundary;
    // Half-open crossing rule: count edges whose y-span straddles p.y.
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_cross > p.x) inside = !inside;
    }
  }
  return inside ? RingSide::kInside : RingSide::kOutside;
}

bool point_in_polygon(const Coord& p, const Polygon& poly) {
  const RingSide shell_side = point_in_ring(p, poly.shell);
  if (shell_side == RingSide::kOutside) return false;
  if (shell_side == RingSide::kBoundary) return true;
  for (const auto& hole : poly.holes) {
    const RingSide hole_side = point_in_ring(p, hole);
    if (hole_side == RingSide::kInside) return false;
    if (hole_side == RingSide::kBoundary) return true;  // on hole edge: covered
  }
  return true;
}

bool linestrings_intersect_naive(const LineString& line, const LineString& other) {
  for (std::size_t i = 0; i + 1 < line.coords.size(); ++i) {
    for (std::size_t j = 0; j + 1 < other.coords.size(); ++j) {
      if (segments_intersect(line.coords[i], line.coords[i + 1], other.coords[j],
                             other.coords[j + 1])) {
        return true;
      }
    }
  }
  return false;
}

double squared_distance_point_linestring(const Coord& p, const LineString& line) {
  double best = squared_distance(p, line.coords.front());
  for (std::size_t i = 0; i + 1 < line.coords.size(); ++i) {
    best = std::min(best,
                    squared_distance_point_segment(p, line.coords[i], line.coords[i + 1]));
    if (best == 0.0) break;
  }
  return best;
}

}  // namespace sjc::geom
