// Runtime-dispatched SIMD kernels for the BatchRefiner hot loops.
//
// Three kernels cover the refinement engine's inner loops:
//   pip_covers_run     — branchless crossing-count point-in-polygon over one
//                        y-bucket run of SoA edges (boundary decisions are
//                        sign-exact: uncertain edges escalate through
//                        exact::orient2d_escalate),
//   seg_run_intersects — segment-grid per-cell bbox prune + exact
//                        segment-intersection tests in ascending order,
//   env_any_overlaps   — part/chunk envelope early-reject sweep.
//
// Each kernel has a scalar implementation (always built, the reference) and
// optional AVX2 (x86-64) / NEON (aarch64) variants selected at startup by
// CPU detection (cpuid / baseline HWCAP) behind per-kernel function
// pointers. The SJC_SIMD environment variable overrides detection:
//   SJC_SIMD=scalar|avx2|neon|auto   (default auto = best available)
// An unavailable request falls back to auto with a warning on stderr.
//
// Bit-identity contract: for identical inputs every variant returns the
// same boolean AND performs the same exact-predicate escalations in the
// same order as the scalar kernel (the SIMD filter comparisons are
// bitwise-equivalent to the scalar ones, uncertain lanes fall back to the
// same scalar escalation calls in ascending index order, and remainder
// elements share the scalar tail loop). Tests pin accept vectors and
// escalation counts across every available path.
#pragma once

#include <cstddef>
#include <vector>

namespace sjc::geom::simd {

enum class Path { kScalar = 0, kAvx2 = 1, kNeon = 2 };

const char* path_name(Path p);

/// One contiguous SoA run of segments with precomputed bboxes, as laid out
/// by BatchRefiner's segment-grid cells.
struct SegSoA {
  const double* ax;
  const double* ay;
  const double* bx;
  const double* by;
  const double* min_x;
  const double* min_y;
  const double* max_x;
  const double* max_y;
};

struct Kernels {
  /// Hole-aware covered test of point (px, py) against the n edges
  /// [ax, ay] -> [bx, by]: true when the point is on any edge or the
  /// crossing parity says inside.
  bool (*pip_covers_run)(const double* ax, const double* ay, const double* bx,
                         const double* by, std::size_t n, double px, double py);
  /// Does probe segment [a, b] (bbox [bx0, by0, bx1, by1]) intersect any of
  /// segs[begin, end)? Candidates whose bboxes overlap the probe's are
  /// tested exactly in ascending index order with early exit.
  bool (*seg_run_intersects)(const SegSoA& segs, std::size_t begin, std::size_t end,
                             double axp, double ayp, double bxp, double byp,
                             double bx0, double by0, double bx1, double by1);
  /// Does the closed probe rect [px0, py0, px1, py1] overlap any of the n
  /// envelopes?
  bool (*env_any_overlaps)(const double* min_x, const double* min_y,
                           const double* max_x, const double* max_y, std::size_t n,
                           double px0, double py0, double px1, double py1);
};

/// The active kernel table (lock-free read; safe to call concurrently).
const Kernels& kernels();
Path active_path();
const char* active_path_name();

/// Paths runnable on this CPU with kernels compiled in; always contains
/// kScalar, ordered scalar first.
std::vector<Path> available_paths();

/// Kernel table for a specific path, or nullptr when unavailable.
const Kernels* kernels_for(Path p);

/// Forces the active path (tests/bench). Returns false — leaving dispatch
/// unchanged — when the path is unavailable on this CPU.
bool force_path(Path p);

/// Restores the startup policy: SJC_SIMD override if set, else detection.
void reset_from_env();

}  // namespace sjc::geom::simd
