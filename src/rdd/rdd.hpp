// Rdd<T>: typed, partitioned, memory-accounted datasets with Spark-style
// transformations.
//
// Ownership: an Rdd is a cheap handle onto shared partition storage; the
// storage registers its bytes with the runtime's MemoryManager on creation
// and releases them when the last handle drops — so the OOM gate sees the
// true working set, including intermediates a careless pipeline keeps
// alive. Transformations execute eagerly but are *accounted* like Spark
// stages: narrow ops charge CPU only, wide ops (group_by_key, join_by_key)
// charge a shuffle.
//
// Every Rdd carries a byte sizer for its element type; transformations that
// change the type take the new sizer as an argument.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mapreduce/shuffle_arena.hpp"
#include "rdd/spark_runtime.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sjc::rdd {

template <typename T>
using Sizer = std::function<std::uint64_t(const T&)>;

namespace detail {

template <typename T>
struct RddStorage {
  SparkRuntime* runtime = nullptr;
  std::vector<std::vector<T>> partitions;
  Sizer<T> sizer;
  std::uint64_t bytes = 0;
  std::string name;

  RddStorage(SparkRuntime* rt, std::vector<std::vector<T>> parts, Sizer<T> sz,
             std::string rdd_name)
      : runtime(rt), partitions(std::move(parts)), sizer(std::move(sz)),
        name(std::move(rdd_name)) {
    for (const auto& p : partitions) {
      for (const auto& item : p) bytes += sizer(item);
    }
    runtime->memory().allocate(bytes, "rdd:" + name);
  }

  ~RddStorage() { runtime->memory().release(bytes); }

  RddStorage(const RddStorage&) = delete;
  RddStorage& operator=(const RddStorage&) = delete;
};

}  // namespace detail

template <typename T>
class Rdd {
 public:
  Rdd() = default;

  static Rdd create(SparkRuntime& rt, std::vector<std::vector<T>> partitions,
                    Sizer<T> sizer, std::string name) {
    Rdd rdd;
    rdd.storage_ = std::make_shared<detail::RddStorage<T>>(
        &rt, std::move(partitions), std::move(sizer), std::move(name));
    return rdd;
  }

  bool valid() const { return storage_ != nullptr; }
  SparkRuntime& runtime() const {
    require(valid(), "Rdd: uninitialized handle");
    return *storage_->runtime;
  }
  std::size_t num_partitions() const {
    require(valid(), "Rdd: uninitialized handle");
    return storage_->partitions.size();
  }
  const std::vector<std::vector<T>>& partitions() const {
    require(valid(), "Rdd: uninitialized handle");
    return storage_->partitions;
  }
  const Sizer<T>& sizer() const {
    require(valid(), "Rdd: uninitialized handle");
    return storage_->sizer;
  }
  std::uint64_t bytes() const {
    require(valid(), "Rdd: uninitialized handle");
    return storage_->bytes;
  }
  const std::string& name() const {
    require(valid(), "Rdd: uninitialized handle");
    return storage_->name;
  }

  std::size_t count() const {
    require(valid(), "Rdd: uninitialized handle");
    std::size_t n = 0;
    for (const auto& p : storage_->partitions) n += p.size();
    storage_->runtime->record_collect(storage_->name + ".count", 8 * num_partitions());
    return n;
  }

  std::vector<T> collect() const {
    require(valid(), "Rdd: uninitialized handle");
    std::vector<T> out;
    for (const auto& p : storage_->partitions) {
      out.insert(out.end(), p.begin(), p.end());
    }
    storage_->runtime->record_collect(storage_->name + ".collect", bytes());
    return out;
  }

  /// Narrow 1:1 transformation.
  template <typename U>
  Rdd<U> map(const std::string& name, const std::function<U(const T&)>& fn,
             Sizer<U> out_sizer) const {
    return transform_partitions<U>(
        name,
        [&fn](const std::vector<T>& in, std::vector<U>& out) {
          out.reserve(in.size());
          for (const auto& item : in) out.push_back(fn(item));
        },
        std::move(out_sizer));
  }

  /// Narrow 1:N transformation.
  template <typename U>
  Rdd<U> flat_map(const std::string& name,
                  const std::function<void(const T&, std::vector<U>&)>& fn,
                  Sizer<U> out_sizer) const {
    return transform_partitions<U>(
        name,
        [&fn](const std::vector<T>& in, std::vector<U>& out) {
          for (const auto& item : in) fn(item, out);
        },
        std::move(out_sizer));
  }

  /// Narrow whole-partition transformation (mapPartitions).
  template <typename U>
  Rdd<U> map_partitions(const std::string& name,
                        const std::function<void(const std::vector<T>&, std::vector<U>&)>& fn,
                        Sizer<U> out_sizer) const {
    return transform_partitions<U>(name, fn, std::move(out_sizer));
  }

  /// Narrow whole-partition transformation that also sees the partition
  /// index (mapPartitionsWithIndex). The zero-copy data plane uses this to
  /// parse each partition into a stable per-partition store and emit
  /// references into it.
  template <typename U>
  Rdd<U> map_partitions_indexed(
      const std::string& name,
      const std::function<void(std::size_t, const std::vector<T>&, std::vector<U>&)>& fn,
      Sizer<U> out_sizer) const {
    return transform_partitions_indexed<U>(name, fn, std::move(out_sizer));
  }

  Rdd<T> filter(const std::string& name, const std::function<bool(const T&)>& pred) const {
    require(valid(), "Rdd: uninitialized handle");
    return transform_partitions<T>(
        name,
        [&pred](const std::vector<T>& in, std::vector<T>& out) {
          for (const auto& item : in) {
            if (pred(item)) out.push_back(item);
          }
        },
        storage_->sizer);
  }

  /// Bernoulli sample (what Spark's sample(false, rate) does).
  Rdd<T> sample(const std::string& name, double rate, std::uint64_t seed) const {
    require(rate >= 0.0 && rate <= 1.0, "Rdd::sample: rate must be in [0, 1]");
    Rng base(seed);
    std::vector<Rng> rngs;
    rngs.reserve(num_partitions());
    for (std::size_t p = 0; p < num_partitions(); ++p) rngs.push_back(base.fork(p));
    // Partitions run in parallel but each body only touches its own Rng
    // (indexed by partition), so this is race-free and deterministic.
    return transform_partitions_indexed<T>(
        name,
        [&rngs, rate](std::size_t p, const std::vector<T>& in, std::vector<T>& out) {
          for (const auto& item : in) {
            if (rngs[p].bernoulli(rate)) out.push_back(item);
          }
        },
        storage_->sizer);
  }

 private:
  template <typename U>
  Rdd<U> transform_partitions(
      const std::string& name,
      const std::function<void(const std::vector<T>&, std::vector<U>&)>& body,
      Sizer<U> out_sizer) const {
    return transform_partitions_indexed<U>(
        name,
        [&body](std::size_t, const std::vector<T>& in, std::vector<U>& out) {
          body(in, out);
        },
        std::move(out_sizer));
  }

  template <typename U>
  Rdd<U> transform_partitions_indexed(
      const std::string& name,
      const std::function<void(std::size_t, const std::vector<T>&, std::vector<U>&)>& body,
      Sizer<U> out_sizer) const {
    require(valid(), "Rdd: uninitialized handle");
    const std::size_t n = num_partitions();
    std::vector<std::vector<U>> out(n);
    std::vector<double> cpu(n, 0.0);
    ThreadPool::shared().parallel_for(n, [&](std::size_t p) {
      CpuStopwatch watch;
      body(p, storage_->partitions[p], out[p]);
      cpu[p] = watch.seconds();
    });
    storage_->runtime->record_narrow_stage(storage_->name + "." + name, cpu);
    return Rdd<U>::create(*storage_->runtime, std::move(out), std::move(out_sizer),
                          storage_->name + "." + name);
  }

  std::shared_ptr<detail::RddStorage<T>> storage_;

  template <typename>
  friend class Rdd;
};

// ---------------------------------------------------------------------------
// Wide (shuffle) operations over pair RDDs
// ---------------------------------------------------------------------------

/// Hash-partitions (K, V) pairs into `num_partitions` groups and collects
/// each key's values (Spark's groupByKey). Shuffle buffers are charged to
/// the memory manager while live — the step the paper identifies as
/// SpatialSpark's OOM risk.
template <typename K, typename V>
Rdd<std::pair<K, std::vector<V>>> group_by_key(
    const Rdd<std::pair<K, V>>& in, std::uint32_t num_partitions,
    Sizer<std::pair<K, std::vector<V>>> out_sizer, const std::string& name = "groupByKey") {
  require(in.valid(), "group_by_key: uninitialized rdd");
  require(num_partitions >= 1, "group_by_key: need at least one partition");
  SparkRuntime& rt = in.runtime();

  // Map side: bucket by hash(K).
  const std::size_t n_in = in.num_partitions();
  std::vector<std::vector<std::vector<std::pair<K, V>>>> buckets(n_in);
  std::vector<double> map_cpu(n_in, 0.0);
  ThreadPool::shared().parallel_for(n_in, [&](std::size_t p) {
    CpuStopwatch watch;
    buckets[p].resize(num_partitions);
    for (const auto& kv : in.partitions()[p]) {
      buckets[p][std::hash<K>{}(kv.first) % num_partitions].push_back(kv);
    }
    map_cpu[p] = watch.seconds();
  });
  // Shuffle buffers hold a full copy of the data while in flight.
  rt.memory().allocate(in.bytes(), "shuffle:" + name);

  // Reduce side: group values per key.
  std::vector<std::vector<std::pair<K, std::vector<V>>>> out(num_partitions);
  std::vector<double> reduce_cpu(num_partitions, 0.0);
  ThreadPool::shared().parallel_for(num_partitions, [&](std::size_t r) {
    CpuStopwatch watch;
    std::unordered_map<K, std::vector<V>> groups;
    for (std::size_t p = 0; p < n_in; ++p) {
      for (auto& kv : buckets[p][r]) {
        groups[kv.first].push_back(std::move(kv.second));
      }
    }
    out[r].reserve(groups.size());
    for (auto& [key, values] : groups) {
      out[r].emplace_back(key, std::move(values));
    }
    reduce_cpu[r] = watch.seconds();
  });

  std::vector<double> cpu = map_cpu;
  cpu.insert(cpu.end(), reduce_cpu.begin(), reduce_cpu.end());
  rt.record_shuffle_stage(in.name() + "." + name, cpu, in.bytes());

  auto result = Rdd<std::pair<K, std::vector<V>>>::create(
      rt, std::move(out), std::move(out_sizer), in.name() + "." + name);
  rt.memory().release(in.bytes());
  return result;
}

/// Hash-partitions (K, V) pairs into `num_partitions` output partitions
/// WITHOUT grouping values (Spark's partitionBy): a pure redistribution
/// shuffle. Map-side buckets are chunked-arena backed; pairs within an
/// output partition arrive in (input partition, emission) order, so the
/// result is deterministic. Shuffle buffers are charged to the memory
/// manager while in flight, exactly like group_by_key — the sizer decides
/// the modeled bytes, so shipping FeatureRef handles still charges the
/// referenced records' full modeled size.
template <typename K, typename V>
Rdd<std::pair<K, V>> partition_by(const Rdd<std::pair<K, V>>& in,
                                  std::uint32_t num_partitions,
                                  Sizer<std::pair<K, V>> out_sizer,
                                  const std::string& name = "partitionBy") {
  require(in.valid(), "partition_by: uninitialized rdd");
  require(num_partitions >= 1, "partition_by: need at least one partition");
  SparkRuntime& rt = in.runtime();

  // Map side: bucket by hash(K) into per-input-partition arenas.
  const std::size_t n_in = in.num_partitions();
  std::vector<mapreduce::ShuffleArena<std::pair<K, V>>> buckets(n_in);
  std::vector<double> map_cpu(n_in, 0.0);
  ThreadPool::shared().parallel_for(n_in, [&](std::size_t p) {
    CpuStopwatch watch;
    buckets[p].reset(num_partitions);
    for (const auto& kv : in.partitions()[p]) {
      buckets[p].push(std::hash<K>{}(kv.first) % num_partitions, kv);
    }
    map_cpu[p] = watch.seconds();
  });
  // Shuffle buffers hold a full copy of the data while in flight.
  rt.memory().allocate(in.bytes(), "shuffle:" + name);

  // Reduce side: concatenate each output partition's buckets in input-
  // partition order.
  std::vector<std::vector<std::pair<K, V>>> out(num_partitions);
  std::vector<double> reduce_cpu(num_partitions, 0.0);
  ThreadPool::shared().parallel_for(num_partitions, [&](std::size_t r) {
    CpuStopwatch watch;
    for (std::size_t p = 0; p < n_in; ++p) {
      buckets[p].consume(r, [&](std::pair<K, V>& kv) {
        out[r].push_back(std::move(kv));
      });
    }
    reduce_cpu[r] = watch.seconds();
  });

  std::vector<double> cpu = map_cpu;
  cpu.insert(cpu.end(), reduce_cpu.begin(), reduce_cpu.end());
  rt.record_shuffle_stage(in.name() + "." + name, cpu, in.bytes());

  auto result = Rdd<std::pair<K, V>>::create(rt, std::move(out), std::move(out_sizer),
                                             in.name() + "." + name);
  rt.memory().release(in.bytes());
  return result;
}

/// Inner join of two pair RDDs on K (Spark's join): co-partitions both
/// sides by hash(K), then hash-joins within each partition. Emits one
/// (K, A, B) tuple per matching (A, B) combination.
template <typename K, typename A, typename B>
Rdd<std::tuple<K, A, B>> join_by_key(const Rdd<std::pair<K, A>>& left,
                                     const Rdd<std::pair<K, B>>& right,
                                     std::uint32_t num_partitions,
                                     Sizer<std::tuple<K, A, B>> out_sizer,
                                     const std::string& name = "join") {
  require(left.valid() && right.valid(), "join_by_key: uninitialized rdd");
  require(num_partitions >= 1, "join_by_key: need at least one partition");
  SparkRuntime& rt = left.runtime();

  const std::uint64_t shuffle_bytes = left.bytes() + right.bytes();
  rt.memory().allocate(shuffle_bytes, "shuffle:" + name);

  // Co-partition both sides.
  std::vector<std::vector<std::pair<K, A>>> left_parts(num_partitions);
  std::vector<std::vector<std::pair<K, B>>> right_parts(num_partitions);
  std::vector<double> part_cpu;
  {
    CpuStopwatch watch;
    for (const auto& part : left.partitions()) {
      for (const auto& kv : part) {
        left_parts[std::hash<K>{}(kv.first) % num_partitions].push_back(kv);
      }
    }
    for (const auto& part : right.partitions()) {
      for (const auto& kv : part) {
        right_parts[std::hash<K>{}(kv.first) % num_partitions].push_back(kv);
      }
    }
    part_cpu.push_back(watch.seconds());
  }

  // Per-partition hash join.
  std::vector<std::vector<std::tuple<K, A, B>>> out(num_partitions);
  std::vector<double> join_cpu(num_partitions, 0.0);
  ThreadPool::shared().parallel_for(num_partitions, [&](std::size_t r) {
    CpuStopwatch watch;
    std::unordered_map<K, std::vector<const B*>> table;
    for (const auto& kv : right_parts[r]) {
      table[kv.first].push_back(&kv.second);
    }
    for (const auto& kv : left_parts[r]) {
      const auto it = table.find(kv.first);
      if (it == table.end()) continue;
      for (const B* b : it->second) {
        out[r].emplace_back(kv.first, kv.second, *b);
      }
    }
    join_cpu[r] = watch.seconds();
  });

  std::vector<double> cpu = part_cpu;
  cpu.insert(cpu.end(), join_cpu.begin(), join_cpu.end());
  rt.record_shuffle_stage(left.name() + "." + name, cpu, shuffle_bytes);

  auto result = Rdd<std::tuple<K, A, B>>::create(rt, std::move(out),
                                                 std::move(out_sizer),
                                                 left.name() + "." + name);
  rt.memory().release(shuffle_bytes);
  return result;
}

// ---------------------------------------------------------------------------
// Broadcast variables
// ---------------------------------------------------------------------------

/// Read-only value replicated to every executor. Memory is charged per node
/// for the lifetime of the broadcast.
template <typename T>
class Broadcast {
 public:
  Broadcast(SparkRuntime& rt, T value, std::uint64_t bytes, const std::string& name)
      : runtime_(&rt),
        value_(std::make_shared<const T>(std::move(value))),
        charged_bytes_(bytes * rt.cluster().node_count) {
    rt.memory().allocate(charged_bytes_, "broadcast:" + name);
    rt.record_broadcast(name, bytes);
  }

  ~Broadcast() {
    if (runtime_ != nullptr) runtime_->memory().release(charged_bytes_);
  }

  Broadcast(const Broadcast&) = delete;
  Broadcast& operator=(const Broadcast&) = delete;
  Broadcast(Broadcast&& other) noexcept
      : runtime_(other.runtime_), value_(std::move(other.value_)),
        charged_bytes_(other.charged_bytes_) {
    other.runtime_ = nullptr;
  }
  Broadcast& operator=(Broadcast&&) = delete;

  const T& value() const { return *value_; }

 private:
  SparkRuntime* runtime_;
  std::shared_ptr<const T> value_;
  std::uint64_t charged_bytes_;
};

}  // namespace sjc::rdd
