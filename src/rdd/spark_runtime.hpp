// SparkRuntime: the non-templated core of the RDD engine.
//
// Models the execution characteristics that separate Spark from Hadoop in
// the paper's analysis:
//  * narrow transformations pipeline in memory — a stage charges measured
//    CPU plus a sub-second scheduling overhead, never DFS I/O;
//  * shuffles move bytes over the network (plus a small local spill-file
//    write), not through replicated DFS files;
//  * HDFS is touched exactly once, when input is first read;
//  * everything lives in executor memory, policed by MemoryManager;
//  * executor loss (a scheduled datanode-loss event) drops the partitions
//    cached on that node — Spark recomputes them from lineage, so the run
//    survives but pays the recompute CPU/shuffle again (charged as a
//    "<stage>.recompute" phase) and keeps going on the surviving executors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/counters.hpp"
#include "cluster/fault_injector.hpp"
#include "cluster/metrics.hpp"
#include "cluster/sim_task.hpp"
#include "dfs/sim_dfs.hpp"
#include "rdd/memory_manager.hpp"
#include "trace/trace.hpp"

namespace sjc::rdd {

struct SparkConfig {
  /// Per-stage scheduling overhead (paper seconds); Spark stages launch in
  /// ~100s of ms, vs ~10s for a Hadoop job.
  double stage_overhead_s = 0.5;
  /// Per-task launch overhead (paper seconds).
  double task_overhead_s = 0.05;
  /// Fraction of node memory usable by executors.
  double memory_fraction = 1.0;
  /// Per-node memory lost to OS, daemons and driver/executor overhead
  /// before the fraction applies (paper-unit bytes). This is why small-node
  /// clusters (EC2) lose proportionally more usable memory than the
  /// workstation — the lever behind the paper's EC2-8/EC2-6 OOM failures.
  std::uint64_t memory_reserve_per_node = 2816ULL * 1024 * 1024;  // 2.75 GB
  /// Extra inflation applied on top of the sizers' object-level accounting
  /// (sizers already include per-record JVM overhead; keep at 1.0 unless
  /// exploring sensitivity).
  double jvm_inflation = 1.0;
  /// Fraction of shuffled bytes written to local spill files (hash-shuffle
  /// map outputs; OS page cache absorbs the rest).
  double shuffle_spill_fraction = 0.3;
  /// Ratio of this simulator's native C++ throughput to Spark's JVM/Scala
  /// stack; measured task CPU is divided by this.
  double cpu_efficiency = 0.2;
  /// Fault plan for this run (trivial by default: no injected faults, no
  /// retries). Datanode-loss events double as executor losses: the DFS
  /// re-replicates the node's blocks and Spark recomputes its cached
  /// partitions from lineage.
  cluster::FaultPlan faults;
};

class SparkRuntime {
 public:
  SparkRuntime(const cluster::ClusterSpec& cluster, double data_scale,
               dfs::SimDfs* dfs, cluster::RunMetrics* metrics,
               SparkConfig config = {});

  const cluster::ClusterSpec& cluster() const { return cluster_; }
  const SparkConfig& config() const { return config_; }
  double data_scale() const { return data_scale_; }
  MemoryManager& memory() { return memory_; }
  dfs::SimDfs* dfs() { return dfs_; }

  std::uint32_t default_parallelism() const { return cluster_.total_slots(); }

  double remote_fraction() const {
    return cluster_.node_count <= 1
               ? 0.0
               : static_cast<double>(cluster_.node_count - 1) /
                     static_cast<double>(cluster_.node_count);
  }

  /// Records a narrow (pipelined, in-memory) stage from per-task CPU times.
  void record_narrow_stage(const std::string& name, const std::vector<double>& task_cpu);

  /// Records a shuffle stage: per-task CPU plus total bytes crossing the
  /// shuffle.
  void record_shuffle_stage(const std::string& name, const std::vector<double>& task_cpu,
                            std::uint64_t shuffle_bytes);

  /// Records the one-time HDFS scan of an input dataset.
  void record_input_read(const std::string& name, std::uint64_t bytes,
                         std::size_t tasks);

  /// Records a driver-side broadcast of `bytes` to every node.
  void record_broadcast(const std::string& name, std::uint64_t bytes);

  /// Records collecting `bytes` back to the driver.
  void record_collect(const std::string& name, std::uint64_t bytes);

  /// Attaches a per-task span sink: every stage task attempt, lineage
  /// recompute and DFS repair lands on the run's trace timeline. Tracing
  /// never changes what the stages charge.
  void set_trace(trace::TraceCollector* trace) { trace_ = trace; }

  /// Attaches a named-counter sink for commit/quarantine/budget accounting
  /// (the RDD engine has no MrContext to carry one).
  void set_counters(cluster::Counters* counters) { counters_ = counters; }

  /// Failed-attempt retries consumed so far across the job.
  std::uint64_t retries_used() const { return retries_used_; }

  /// Executors lost to datanode-loss events so far.
  std::uint32_t lost_executors() const { return lost_executors_; }
  /// Partitions recomputed from lineage across all losses.
  std::uint64_t recomputed_partitions() const { return recomputed_partitions_; }

 private:
  void record(const std::string& name, std::vector<cluster::SimTask> tasks,
              std::uint64_t bytes_read, std::uint64_t bytes_written,
              std::uint64_t bytes_shuffled);

  /// Applies datanode-loss events the simulated clock has passed: the DFS
  /// loses the node (re-replication charged), the executor's cached
  /// partitions are recomputed from lineage, and the cluster shrinks by one
  /// node for subsequent stages.
  void apply_due_losses(const std::string& after_stage);

  cluster::ClusterSpec cluster_;
  double data_scale_;
  dfs::SimDfs* dfs_;
  cluster::RunMetrics* metrics_;
  SparkConfig config_;
  MemoryManager memory_;
  cluster::FaultInjector faults_;
  trace::TraceCollector* trace_ = nullptr;
  cluster::Counters* counters_ = nullptr;
  std::uint64_t retries_used_ = 0;
  std::size_t losses_applied_ = 0;
  std::uint32_t lost_executors_ = 0;
  std::uint64_t recomputed_partitions_ = 0;
  /// Average per-task simulated seconds accumulated over the lineage so
  /// far: what recomputing one lost partition from scratch costs.
  double lineage_per_task_seconds_ = 0.0;
  /// Task count of the most recent stage (partitions cached per node).
  std::size_t last_stage_tasks_ = 0;
};

}  // namespace sjc::rdd
