// Executor memory accounting for the RDD engine.
//
// The paper's headline robustness result is that SpatialSpark fails with
// out-of-memory on EC2-8/EC2-6 while succeeding on the workstation (128 GB)
// and EC2-10 (150 GB aggregate): Spark 1.1's in-memory pipeline for this
// workload cannot spill. MemoryManager is that gate: every materialized
// RDD, shuffle buffer and broadcast registers its bytes; exceeding the
// usable fraction of aggregate cluster memory throws SimOutOfMemory.
//
// Raw bytes are converted to paper magnitude (x data_scale) and inflated by
// a JVM object-overhead factor (boxed records, pointer-heavy Scala
// collections) before being charged against capacity.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace sjc::rdd {

class MemoryManager {
 public:
  /// `capacity_bytes` is usable executor memory at paper magnitude
  /// (aggregate memory x memory_fraction).
  MemoryManager(std::uint64_t capacity_bytes, double data_scale, double jvm_inflation);

  /// Registers `raw_bytes` (scaled magnitude) of live data; throws
  /// SimOutOfMemory when the inflated paper-magnitude total would exceed
  /// capacity.
  void allocate(std::uint64_t raw_bytes, const std::string& what);

  /// Releases a previous allocation.
  void release(std::uint64_t raw_bytes);

  /// Live raw bytes (scaled magnitude).
  std::uint64_t live_raw_bytes() const;

  /// High-water mark at paper magnitude (inflated).
  std::uint64_t peak_paper_bytes() const;

  std::uint64_t capacity_bytes() const { return capacity_; }

  /// Paper-magnitude inflated size of `raw_bytes`.
  std::uint64_t to_paper_bytes(std::uint64_t raw_bytes) const;

 private:
  std::uint64_t capacity_;
  double data_scale_;
  double jvm_inflation_;
  mutable std::mutex mutex_;
  std::uint64_t live_ = 0;  // raw (scaled) bytes
  std::uint64_t peak_paper_ = 0;
};

}  // namespace sjc::rdd
