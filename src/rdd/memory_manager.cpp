#include "rdd/memory_manager.hpp"

#include "util/status.hpp"
#include "util/strings.hpp"

namespace sjc::rdd {

MemoryManager::MemoryManager(std::uint64_t capacity_bytes, double data_scale,
                             double jvm_inflation)
    : capacity_(capacity_bytes), data_scale_(data_scale), jvm_inflation_(jvm_inflation) {
  require(data_scale > 0.0, "MemoryManager: data_scale must be positive");
  require(jvm_inflation >= 1.0, "MemoryManager: jvm_inflation must be >= 1");
}

std::uint64_t MemoryManager::to_paper_bytes(std::uint64_t raw_bytes) const {
  return static_cast<std::uint64_t>(static_cast<double>(raw_bytes) * data_scale_ *
                                    jvm_inflation_);
}

void MemoryManager::allocate(std::uint64_t raw_bytes, const std::string& what) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t new_live = live_ + raw_bytes;
  const std::uint64_t paper = to_paper_bytes(new_live);
  if (paper > capacity_) {
    throw SimOutOfMemory("executor memory exhausted allocating " + what + ": " +
                         format_bytes(paper) + " needed > " + format_bytes(capacity_) +
                         " usable");
  }
  live_ = new_live;
  if (paper > peak_paper_) peak_paper_ = paper;
}

void MemoryManager::release(std::uint64_t raw_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  live_ = raw_bytes > live_ ? 0 : live_ - raw_bytes;
}

std::uint64_t MemoryManager::live_raw_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

std::uint64_t MemoryManager::peak_paper_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_paper_;
}

}  // namespace sjc::rdd
