#include "rdd/spark_runtime.hpp"
#include <algorithm>

#include "cluster/scheduler.hpp"
#include "util/status.hpp"

namespace sjc::rdd {

SparkRuntime::SparkRuntime(const cluster::ClusterSpec& cluster, double data_scale,
                           dfs::SimDfs* dfs, cluster::RunMetrics* metrics,
                           SparkConfig config)
    : cluster_(cluster),
      data_scale_(data_scale),
      dfs_(dfs),
      metrics_(metrics),
      config_(config),
      memory_(
          [&] {
            const double per_node =
                static_cast<double>(cluster.node.memory_bytes) * config.memory_fraction -
                static_cast<double>(config.memory_reserve_per_node);
            return static_cast<std::uint64_t>(std::max(per_node, 0.0) *
                                              cluster.node_count);
          }(),
          data_scale, config.jvm_inflation),
      faults_(config.faults) {
  require(metrics != nullptr, "SparkRuntime: metrics sink required");
}

void SparkRuntime::record(const std::string& name, std::vector<cluster::SimTask> tasks,
                          std::uint64_t bytes_read, std::uint64_t bytes_written,
                          std::uint64_t bytes_shuffled) {
  std::vector<double> durations;
  durations.reserve(tasks.size());
  for (const auto& t : tasks) durations.push_back(t.duration(cluster_, data_scale_));
  std::vector<cluster::ScheduledAttempt> attempts;
  const cluster::ScheduleOutcome outcome = cluster::list_schedule_makespan(
      durations, cluster_.total_slots(), faults_,
      cluster::FaultInjector::phase_id(name), nullptr,
      trace_ != nullptr ? &attempts : nullptr, cluster_.node.cores);
  const cluster::FaultPlan& plan = faults_.plan();
  // A successful stage overrunning its deadline is killed at exactly the
  // timeout: charge the timeout, not the makespan.
  const bool timed_out =
      plan.phase_timeout_s > 0.0 && outcome.success &&
      outcome.makespan + config_.stage_overhead_s > plan.phase_timeout_s;
  if (trace_ != nullptr) {
    // Stage overhead (scheduling/launch) precedes the task waves on the run
    // clock.
    const double offset = metrics_->total_seconds() + config_.stage_overhead_s;
    for (const auto& a : attempts) {
      trace::TaskSpan span;
      span.phase = name;
      span.task = a.task;
      span.attempt = a.attempt;
      span.speculative = a.speculative;
      span.slot = a.slot;
      span.sim_start = offset + a.start;
      span.sim_end = offset + a.end;
      span.cpu_seconds = tasks[a.task].cpu_seconds;
      span.bytes_in = tasks[a.task].disk_read;
      span.bytes_out = tasks[a.task].disk_write;
      span.bytes_shuffled = tasks[a.task].network;
      span.outcome = a.outcome;
      trace_->record(std::move(span));
    }
    // Zero-duration markers at the moment each node was blacklisted.
    for (const auto& q : outcome.quarantines) {
      trace::TaskSpan span;
      span.phase = name;
      span.task = q.node;
      span.attempt = q.failures;
      span.slot = q.node * cluster_.node.cores;
      span.sim_start = offset + q.time_s;
      span.sim_end = offset + q.time_s;
      span.outcome = trace::SpanOutcome::kQuarantined;
      trace_->record(std::move(span));
    }
  }
  cluster::PhaseReport phase;
  phase.name = name;
  phase.sim_seconds = timed_out ? plan.phase_timeout_s
                                : outcome.makespan + config_.stage_overhead_s;
  phase.bytes_read = bytes_read;
  phase.bytes_written = bytes_written;
  phase.bytes_shuffled = bytes_shuffled;
  phase.task_count = tasks.size();
  phase.task_attempts = outcome.attempts;
  phase.speculative_clones = outcome.speculative_clones;
  phase.wasted_seconds = outcome.wasted_seconds;
  phase.commits_published = outcome.commits_published;
  phase.commits_rejected = outcome.commits_rejected;
  phase.attempts_aborted = outcome.attempts_aborted;
  phase.nodes_quarantined = outcome.quarantines.size();
  metrics_->add_phase(std::move(phase));
  if (counters_ != nullptr) {
    if (outcome.commits_published > 0) {
      counters_->add("commit.published", outcome.commits_published);
    }
    if (outcome.commits_rejected > 0) {
      counters_->add("commit.rejected", outcome.commits_rejected);
    }
    if (outcome.attempts_aborted > 0) {
      counters_->add("commit.aborted", outcome.attempts_aborted);
    }
    if (!outcome.quarantines.empty()) {
      counters_->add("quarantine.nodes", outcome.quarantines.size());
    }
  }
  if (!outcome.success) {
    throw TaskFailed(name + ": task " +
                     std::to_string(outcome.first_failed_task) +
                     " crashed and exhausted its attempts");
  }
  if (timed_out) {
    if (counters_ != nullptr) counters_->add("budget.phase_timeouts", 1);
    throw DeadlineExceeded(
        "stage '" + name + "' overran its deadline: makespan " +
        std::to_string(outcome.makespan + config_.stage_overhead_s) +
        "s > timeout " + std::to_string(plan.phase_timeout_s) + "s");
  }
  const std::uint64_t retries =
      outcome.attempts - tasks.size() - outcome.speculative_clones;
  if (retries > 0) {
    retries_used_ += retries;
    if (counters_ != nullptr) counters_->add("budget.retries_used", retries);
  }
  if (plan.job_retry_budget > 0 && retries_used_ > plan.job_retry_budget) {
    throw RetryBudgetExhausted(
        "job retry budget exhausted: " + std::to_string(retries_used_) +
        " retries used, budget " + std::to_string(plan.job_retry_budget) +
        " (last stage '" + name + "')");
  }
  // Grow the lineage: recomputing one partition later costs the average
  // per-task time of every stage it passed through.
  if (!durations.empty()) {
    double sum = 0.0;
    for (const double d : durations) sum += d;
    lineage_per_task_seconds_ += sum / static_cast<double>(durations.size());
    last_stage_tasks_ = durations.size();
  }
  apply_due_losses(name);
}

void SparkRuntime::apply_due_losses(const std::string& after_stage) {
  const auto due = faults_.losses_due(metrics_->total_seconds(), losses_applied_);
  for (const auto& event : due) {
    ++losses_applied_;
    if (cluster_.node_count <= 1) continue;  // the driver's node never dies
    const std::uint32_t node = event.node % cluster_.node_count;

    // The node hosted a datanode too: surviving replicas are re-copied.
    if (dfs_ != nullptr) {
      const dfs::ReplicationRepair repair = dfs_->fail_datanode(node);
      if (repair.bytes_rereplicated > 0 || repair.blocks_lost > 0) {
        cluster::SimTask task;
        task.disk_read = repair.cost.disk_read;
        task.disk_write = repair.cost.disk_write;
        task.network = repair.cost.network;
        cluster::PhaseReport phase;
        phase.name = "dfs/re-replicate[node" + std::to_string(node) + "]";
        phase.sim_seconds = task.duration(cluster_, data_scale_);
        phase.bytes_read = repair.cost.disk_read;
        phase.bytes_written = repair.cost.disk_write;
        phase.task_count = 1;
        phase.task_attempts = 1;
        phase.commits_published = 1;
        phase.rereplicated_bytes = repair.bytes_rereplicated;
        if (trace_ != nullptr) {
          trace::TaskSpan span;
          span.phase = phase.name;
          span.sim_start = metrics_->total_seconds();
          span.sim_end = span.sim_start + phase.sim_seconds;
          span.bytes_in = phase.bytes_read;
          span.bytes_out = phase.bytes_written;
          trace_->record(std::move(span));
        }
        metrics_->add_phase(std::move(phase));
      }
    }

    // The executor's cached partitions are gone; recompute them from
    // lineage on the surviving executors.
    cluster_.node_count -= 1;
    ++lost_executors_;
    const std::size_t lost_partitions =
        last_stage_tasks_ == 0
            ? 0
            : (last_stage_tasks_ + cluster_.node_count) /
                  (cluster_.node_count + 1);  // ceil over the pre-loss nodes
    if (lost_partitions == 0 || lineage_per_task_seconds_ <= 0.0) continue;
    std::vector<double> recompute(lost_partitions, lineage_per_task_seconds_);
    cluster::PhaseReport phase;
    phase.name = after_stage + ".recompute[node" + std::to_string(node) + "]";
    std::vector<cluster::ScheduledAttempt> attempts;
    phase.sim_seconds =
        cluster::list_schedule_makespan(recompute, cluster_.total_slots(),
                                        trace_ != nullptr ? &attempts : nullptr) +
        config_.stage_overhead_s;
    if (trace_ != nullptr) {
      const double offset = metrics_->total_seconds() + config_.stage_overhead_s;
      for (const auto& a : attempts) {
        trace::TaskSpan span;
        span.phase = phase.name;
        span.task = a.task;
        span.slot = a.slot;
        span.sim_start = offset + a.start;
        span.sim_end = offset + a.end;
        trace_->record(std::move(span));
      }
    }
    phase.task_count = lost_partitions;
    phase.task_attempts = lost_partitions;
    phase.commits_published = lost_partitions;
    phase.recomputed_partitions = lost_partitions;
    recomputed_partitions_ += lost_partitions;
    metrics_->add_phase(std::move(phase));
  }
}

void SparkRuntime::record_narrow_stage(const std::string& name,
                                       const std::vector<double>& task_cpu) {
  std::vector<cluster::SimTask> tasks;
  tasks.reserve(task_cpu.size());
  for (const double cpu : task_cpu) {
    cluster::SimTask t;
    t.cpu_seconds = cpu / config_.cpu_efficiency;
    t.fixed_overhead = config_.task_overhead_s;
    tasks.push_back(t);
  }
  record(name, std::move(tasks), 0, 0, 0);
}

void SparkRuntime::record_shuffle_stage(const std::string& name,
                                        const std::vector<double>& task_cpu,
                                        std::uint64_t shuffle_bytes) {
  std::vector<cluster::SimTask> tasks;
  tasks.reserve(task_cpu.size());
  const std::size_t n = task_cpu.empty() ? 1 : task_cpu.size();
  const auto per_task_shuffle = shuffle_bytes / n;
  for (const double cpu : task_cpu) {
    cluster::SimTask t;
    t.cpu_seconds = cpu / config_.cpu_efficiency;
    t.network = static_cast<std::uint64_t>(static_cast<double>(per_task_shuffle) *
                                           remote_fraction());
    t.disk_write = static_cast<std::uint64_t>(static_cast<double>(per_task_shuffle) *
                                              config_.shuffle_spill_fraction);
    t.disk_read = t.disk_write;  // spill files are read back during the fetch
    t.fixed_overhead = config_.task_overhead_s;
    tasks.push_back(t);
  }
  record(name, std::move(tasks), 0, 0, shuffle_bytes);
}

void SparkRuntime::record_input_read(const std::string& name, std::uint64_t bytes,
                                     std::size_t tasks) {
  const std::size_t n = std::max<std::size_t>(tasks, 1);
  std::vector<cluster::SimTask> sim_tasks;
  sim_tasks.reserve(n);
  const std::uint64_t per_task = bytes / n;
  for (std::size_t i = 0; i < n; ++i) {
    cluster::SimTask t;
    if (dfs_ != nullptr) {
      const auto rc = dfs_->read_cost(per_task);
      t.disk_read = rc.disk_read;
      t.network = rc.network;
    } else {
      t.disk_read = per_task;
    }
    t.fixed_overhead = config_.task_overhead_s;
    sim_tasks.push_back(t);
  }
  record(name, std::move(sim_tasks), bytes, 0, 0);
}

void SparkRuntime::record_broadcast(const std::string& name, std::uint64_t bytes) {
  // Torrent broadcast: every node pulls one copy concurrently at full NIC
  // bandwidth (unlike task I/O, which shares the NIC across busy slots), so
  // the transfer time is one copy's worth of wire time. Computed directly
  // into fixed_overhead (already paper-magnitude).
  cluster::SimTask t;
  if (cluster_.node_count > 1) {
    t.fixed_overhead = static_cast<double>(bytes) * data_scale_ /
                       cluster_.node.network_bw;
  }
  record(name, {t}, 0, 0, 0);
}

void SparkRuntime::record_collect(const std::string& name, std::uint64_t bytes) {
  // Driver gather: remote partitions stream in over the driver's NIC.
  cluster::SimTask t;
  t.fixed_overhead = static_cast<double>(bytes) * data_scale_ * remote_fraction() /
                     cluster_.node.network_bw;
  record(name, {t}, bytes, 0, 0);
}

}  // namespace sjc::rdd
