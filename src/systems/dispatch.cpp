// Implements the SystemKind dispatcher declared in core/spatial_join.hpp.
// Lives in sjc_systems (not sjc_core) so the core library does not depend
// on the three system libraries.
#include "core/spatial_join.hpp"
#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "util/status.hpp"

namespace sjc::core {

RunReport run_spatial_join(SystemKind system, const workload::Dataset& left,
                           const workload::Dataset& right, const JoinQueryConfig& query,
                           const ExecutionConfig& exec) {
  switch (system) {
    case SystemKind::kHadoopGisSim:
      return systems::run_hadoop_gis(left, right, query, exec);
    case SystemKind::kSpatialHadoopSim:
      return systems::run_spatial_hadoop(left, right, query, exec);
    case SystemKind::kSpatialSparkSim:
      return systems::run_spatial_spark(left, right, query, exec);
  }
  throw InvalidArgument("run_spatial_join: unknown system kind");
}

}  // namespace sjc::core
