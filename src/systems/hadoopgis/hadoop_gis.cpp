#include "systems/hadoopgis/hadoop_gis.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "core/local_join.hpp"
#include "geom/wkt.hpp"
#include "index/rtree_dynamic.hpp"
#include "partition/partitioner.hpp"
#include "plan/partition_refiner.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "workload/quarantine.hpp"
#include "workload/tsv.hpp"

namespace sjc::systems {

namespace {

using core::JoinPair;
using mapreduce::StreamingSpec;

/// Splits `lines` into `n` contiguous chunks (HDFS block splits).
std::vector<std::vector<std::string>> chunk_lines(std::vector<std::string> lines,
                                                  std::size_t n) {
  std::vector<std::vector<std::string>> out;
  const std::size_t total = lines.size();
  const std::size_t per = (total + n - 1) / std::max<std::size_t>(n, 1);
  std::size_t i = 0;
  while (i < total) {
    const std::size_t end = std::min(i + per, total);
    out.emplace_back(std::make_move_iterator(lines.begin() + static_cast<std::ptrdiff_t>(i)),
                     std::make_move_iterator(lines.begin() + static_cast<std::ptrdiff_t>(end)));
    i = end;
  }
  if (out.empty()) out.emplace_back();
  return out;
}

std::uint64_t lines_bytes(const std::vector<std::string>& lines) {
  std::uint64_t total = 0;
  for (const auto& l : lines) total += l.size() + 1;
  return total;
}

std::string mbr_line(const geom::Envelope& e) {
  return "m\t" + format_double(e.min_x()) + " " + format_double(e.min_y()) + " " +
         format_double(e.max_x()) + " " + format_double(e.max_y());
}

geom::Envelope parse_mbr_line(const std::string& line) {
  // Reparse scratch: this runs once per record in the streaming loops, so
  // the token vectors are thread_local and reused instead of reallocated.
  static thread_local std::vector<std::string_view> fields;
  static thread_local std::vector<std::string_view> nums;
  split_into(line, '\t', fields);
  split_into(trim(fields.at(1)), ' ', nums);
  return {parse_double(nums.at(0)), parse_double(nums.at(1)), parse_double(nums.at(2)),
          parse_double(nums.at(3))};
}

struct PreprocessedDataset {
  std::vector<std::string> partitioned_lines;  // "p<pid>\t<id>\t<wkt>[\t<pad>]"
  std::vector<geom::Envelope> samples;
  std::uint64_t sample_text_bytes = 0;
  geom::Envelope extent;
};

struct GisContext {
  mapreduce::MrContext* mr;
  mapreduce::StreamingConfig streaming;
  const core::JoinQueryConfig* query;
  const core::ExecutionConfig* exec;
  const HadoopGisConfig* config;
  /// Sink for malformed records on every streaming reparse path; the
  /// hardened parse sites divert bad rows here instead of dying mid-phase.
  workload::RowQuarantine* quarantine;
};

/// The six-step HadoopGIS preprocessing for one dataset (paper §II.A).
PreprocessedDataset preprocess(GisContext& gis, const workload::Dataset& data,
                               const std::string& tag) {
  PreprocessedDataset out;
  mapreduce::MrContext& ctx = *gis.mr;
  const std::size_t split_count =
      std::max<std::size_t>(gis.exec->cluster.total_slots(),
                            data.text_bytes() / ctx.dfs->config().block_size + 1);

  // Raw input as it lands in HDFS, plus any junk rows the fault plan
  // injects (extra lines, never corrupted real ones — so a run that
  // quarantines them all joins bit-identically to the fault-free run).
  auto raw_lines = workload::dataset_to_tsv(data, /*include_pad=*/true);
  if (gis.config->faults.malformed_rows > 0) {
    workload::inject_malformed_rows(
        raw_lines, gis.config->faults.malformed_rows,
        gis.config->faults.seed ^ std::hash<std::string>{}(tag));
    if (ctx.counters != nullptr) {
      ctx.counters->add("input.malformed_rows_injected",
                        gis.config->faults.malformed_rows);
    }
  }
  auto raw_splits = chunk_lines(std::move(raw_lines), split_count);
  {
    std::uint64_t raw_bytes = 0;
    for (const auto& s : raw_splits) raw_bytes += lines_bytes(s);
    ctx.dfs->put(tag + ".raw", std::any(), raw_bytes);
  }

  // ---- Step 1: map-only convert-to-TSV job (reads/writes everything) ------
  StreamingSpec convert;
  convert.name = tag + "/1-convert";
  convert.config = gis.streaming;
  convert.map = [](const std::string& line, std::vector<std::string>& emit) {
    // Format conversion: the real system rewrites OGR fields to TSV; the
    // work that remains at this fidelity is copying every byte through.
    emit.push_back(line);
  };
  auto converted = chunk_lines(
      mapreduce::run_streaming_map_only(ctx, convert, raw_splits), split_count);
  raw_splits.clear();

  // ---- Step 2: map-only sample job (parses WKT of every record!) ----------
  Rng sample_base(gis.query->seed ^ std::hash<std::string>{}(tag));
  StreamingSpec sample;
  sample.name = tag + "/2-sample";
  sample.config = gis.streaming;
  const double sample_rate = core::effective_sample_rate(
      gis.query->sample_rate, data.size(),
      core::effective_target_partitions(*gis.query, gis.exec->cluster));
  workload::RowQuarantine* quarantine = gis.quarantine;
  const std::string sample_site = sample.name;
  sample.make_mapper = [&, quarantine, sample_site](std::size_t task)
      -> mapreduce::StreamingMapFn {
    auto rng = std::make_shared<Rng>(sample_base.fork(task));
    const double rate = sample_rate;
    return [rng, rate, quarantine, sample_site](const std::string& line,
                                                std::vector<std::string>& emit) {
      std::string error;
      const auto f = workload::try_feature_from_tsv(line, &error);
      if (!f) {
        quarantine->divert(sample_site, line, error);
        return;
      }
      if (rng->bernoulli(rate)) emit.push_back(mbr_line(f->geometry.envelope()));
    };
  };
  const auto sample_lines = mapreduce::run_streaming_map_only(ctx, sample, converted);
  out.sample_text_bytes = lines_bytes(sample_lines);

  // ---- Step 3: MR job, single reducer: dataset extent ----------------------
  StreamingSpec extent_job;
  extent_job.name = tag + "/3-extent";
  extent_job.config = gis.streaming;
  extent_job.config.mr.reduce_tasks = 1;
  extent_job.map = [](const std::string& line, std::vector<std::string>& emit) {
    emit.push_back(line);  // constant key "m": everything meets at one reducer
  };
  extent_job.reduce = [](const std::vector<std::string>& lines,
                         std::vector<std::string>& emit) {
    geom::Envelope extent;
    for (const auto& line : lines) extent.expand_to_include(parse_mbr_line(line));
    emit.push_back(mbr_line(extent));
  };
  const auto extent_lines =
      mapreduce::run_streaming(ctx, extent_job, chunk_lines(sample_lines, 4));
  out.extent = parse_mbr_line(extent_lines.at(0));

  // ---- Step 4: map-only normalize job --------------------------------------
  const geom::Envelope extent = out.extent;
  StreamingSpec normalize;
  normalize.name = tag + "/4-normalize";
  normalize.config = gis.streaming;
  normalize.map = [extent](const std::string& line, std::vector<std::string>& emit) {
    const geom::Envelope e = parse_mbr_line(line);
    const double w = std::max(extent.width(), 1e-12);
    const double h = std::max(extent.height(), 1e-12);
    emit.push_back(mbr_line({(e.min_x() - extent.min_x()) / w,
                             (e.min_y() - extent.min_y()) / h,
                             (e.max_x() - extent.min_x()) / w,
                             (e.max_y() - extent.min_y()) / h}));
  };
  const auto norm_lines = mapreduce::run_streaming_map_only(
      ctx, normalize, chunk_lines(sample_lines, gis.exec->cluster.total_slots()));

  // ---- Step 5: local serial partition generation ---------------------------
  // Samples are copied out of HDFS, partitions computed serially and copied
  // back — the paper flags the copy round-trip as a bottleneck.
  CpuStopwatch master_cpu;
  out.samples.reserve(norm_lines.size());
  {
    const double w = std::max(extent.width(), 1e-12);
    const double h = std::max(extent.height(), 1e-12);
    for (const auto& line : norm_lines) {
      const geom::Envelope n = parse_mbr_line(line);
      out.samples.emplace_back(extent.min_x() + n.min_x() * w,
                               extent.min_y() + n.min_y() * h,
                               extent.min_x() + n.max_x() * w,
                               extent.min_y() + n.max_y() * h);
    }
  }
  const std::uint32_t target_cells =
      core::effective_target_partitions(*gis.query, gis.exec->cluster);
  const partition::PartitionScheme scheme = partition::make_partitions(
      gis.query->partitioner, out.samples, data.extent(), target_cells);
  ctx.dfs->put(tag + ".partitions", std::any(), scheme.size_bytes());
  mapreduce::charge_master_step(ctx, tag + "/5-local-partition", master_cpu.seconds(),
                                /*read=*/lines_bytes(norm_lines),
                                /*write=*/scheme.size_bytes() + lines_bytes(norm_lines));

  // ---- Step 6: MR job assigning partition ids ------------------------------
  StreamingSpec assign;
  assign.name = tag + "/6-assign";
  assign.config = gis.streaming;
  // Shared across mapper tasks: records replicated to >1 cell by the
  // multi-assignment (boundary-straddling MBRs) — the same quantity the
  // other two systems report as partition.duplicated_records.
  auto dup_records = std::make_shared<std::atomic<std::uint64_t>>(0);
  const std::string assign_site = assign.name;
  assign.make_mapper = [&scheme, dup_records, quarantine,
                        assign_site](std::size_t) -> mapreduce::StreamingMapFn {
    // Every mapper rebuilds the partition index (insert-built R-tree on the
    // broadcast partition file) — a HadoopGIS design cost the paper calls
    // out explicitly.
    auto tree = std::make_shared<index::DynamicRTree>();
    for (std::uint32_t pid = 0; pid < scheme.cell_count(); ++pid) {
      tree->insert(scheme.cells()[pid], pid);
    }
    const auto* scheme_ptr = &scheme;
    return [tree, scheme_ptr, dup_records, quarantine,
            assign_site](const std::string& line, std::vector<std::string>& emit) {
      std::string error;
      const auto f = workload::try_feature_from_tsv(line, &error);
      if (!f) {
        quarantine->divert(assign_site, line, error);
        return;
      }
      std::vector<std::uint32_t> pids = tree->query_ids(f->geometry.envelope());
      if (pids.empty()) pids = scheme_ptr->assign(f->geometry.envelope());
      if (!pids.empty()) {
        dup_records->fetch_add(pids.size() - 1, std::memory_order_relaxed);
      }
      for (const auto pid : pids) {
        emit.push_back("p" + std::to_string(pid) + "\t" + line);
      }
    };
  };
  assign.reduce = [](const std::vector<std::string>& lines,
                     std::vector<std::string>& emit) {
    // cat | sort | uniq: input arrives sorted; drop exact duplicates.
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == 0 || lines[i] != lines[i - 1]) emit.push_back(lines[i]);
    }
  };
  out.partitioned_lines = mapreduce::run_streaming(ctx, assign, converted);
  if (ctx.counters != nullptr) {
    ctx.counters->add("partition.duplicated_records",
                      dup_records->load(std::memory_order_relaxed));
  }
  return out;
}

/// Steps (b) and (c) of the HadoopGIS join — the big distributed-join
/// streaming job and the sort-unique dedup job — shared verbatim by the
/// cold batch driver and the resident serving path: given the same inputs
/// (partitioned line splits, joint scheme, occupancy bitmaps) both produce
/// bit-identical pair sets and identical shuffle.* / refine.* / join.*
/// counters. `shared_cache`, when non-null, is a cross-query
/// geom::PreparedCache owned by the caller (the serving catalog); the
/// cache-hit counters always record only this run's delta.
std::vector<JoinPair> run_gis_join(mapreduce::MrContext& ctx,
                                   const mapreduce::StreamingConfig& streaming,
                                   const core::JoinQueryConfig& query,
                                   const core::ExecutionConfig& exec,
                                   const HadoopGisConfig& config,
                                   const partition::PartitionScheme& joint_scheme,
                                   const geom::OccupancyFilter* filt_a,
                                   const geom::OccupancyFilter* filt_b,
                                   bool filter_on,
                                   const std::vector<std::vector<std::string>>& splits,
                                   std::size_t n_a,
                                   workload::RowQuarantine& quarantine_sink,
                                   geom::PreparedCache* shared_cache,
                                   core::RunReport& report) {
  const std::size_t slots = exec.cluster.total_slots();

  core::LocalJoinSpec local_spec;
  local_spec.algorithm = query.local_algorithm.value_or(config.local_algorithm);
  local_spec.engine = &geom::GeometryEngine::get(config.engine);
  local_spec.predicate = query.predicate;
  local_spec.within_distance = query.within_distance;
  // Run-scoped bind() cache (or the caller's resident cache); inert under
  // the default Simple (GEOS-analog) engine — run_local_join consults it
  // only for the Prepared engine, so the system's measured per-call
  // refinement cost is unchanged. A resident cache carries hit/miss history
  // from earlier queries, so snapshot and report only this run's delta.
  geom::PreparedCache local_cache;
  geom::PreparedCache& prepared_cache =
      shared_cache != nullptr ? *shared_cache : local_cache;
  const std::uint64_t cache_hits0 = prepared_cache.hits();
  const std::uint64_t cache_misses0 = prepared_cache.misses();
  local_spec.prepared_cache = &prepared_cache;
  // refine.* accounting (thread-safe; flushed once per run_local_join
  // call). Under the default Simple engine every refined candidate counts
  // as an exact test — the approximations are a Prepared-path feature.
  local_spec.refine_counters = &report.counters;

  const double expand = local_spec.envelope_expansion();

  // Shared across map tasks; run_streaming executes user code exactly once
  // per task, so retries never double-count (same pattern as dup_records).
  auto shuffle_assigned = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto shuffle_emitted = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto filtered_line_bytes = std::make_shared<std::atomic<std::uint64_t>>(0);

  StreamingSpec join_job;
  join_job.name = "join/b-distributed-join";
  join_job.config = streaming;
  workload::RowQuarantine* quarantine = &quarantine_sink;
  join_job.make_mapper = [&joint_scheme, n_a, expand, quarantine, filt_a,
                          filt_b, shuffle_assigned, shuffle_emitted,
                          filtered_line_bytes](std::size_t task)
      -> mapreduce::StreamingMapFn {
    const char side = task < n_a ? 'A' : 'B';
    // Each side drops against the *other* side's occupancy bitmap.
    const geom::OccupancyFilter* filt = side == 'A' ? filt_b : filt_a;
    auto tree = std::make_shared<index::DynamicRTree>();
    for (std::uint32_t pid = 0; pid < joint_scheme.cell_count(); ++pid) {
      tree->insert(joint_scheme.cells()[pid], pid);
    }
    const auto* scheme_ptr = &joint_scheme;
    return [tree, scheme_ptr, side, expand, quarantine, filt, shuffle_assigned,
            shuffle_emitted, filtered_line_bytes](
               const std::string& line, std::vector<std::string>& emit) {
      // Input lines look like "p<pid>\t<id>\t<wkt>[\t<pad>]": the stale
      // pid is skipped, the record re-parsed, the joint index queried.
      std::string error;
      const auto parsed = workload::try_feature_from_tsv_at(line, 1, &error);
      if (!parsed) {
        quarantine->divert("join/b-distributed-join.map", line, error);
        return;
      }
      const geom::Feature& f = *parsed;
      // View, not substr: the emitted line is assembled below without an
      // intermediate copy of the record tail.
      const std::string_view rest = std::string_view(line).substr(line.find('\t') + 1);
      const geom::Envelope env = f.geometry.envelope().expanded_by(expand);
      std::vector<std::uint32_t> pids = tree->query_ids(env);
      if (pids.empty()) pids = scheme_ptr->assign(env);
      if (filt != nullptr) {
        shuffle_assigned->fetch_add(pids.size(), std::memory_order_relaxed);
        // Drop tile copies with no occupied slot under the envelope: the
        // line is never built, never buffered, never crosses the pipe.
        std::size_t kept = 0;
        std::uint64_t dropped_bytes = 0;
        for (const auto pid : pids) {
          if (filt->may_match(pid, env)) {
            pids[kept++] = pid;
          } else {
            // Size of the "j<pid>\t<side>\t<rest>" line (+1 for the
            // newline the pipe accounting charges per emitted line).
            dropped_bytes += rest.size() + std::to_string(pid).size() + 5;
          }
        }
        if (dropped_bytes > 0) {
          filtered_line_bytes->fetch_add(dropped_bytes,
                                         std::memory_order_relaxed);
        }
        pids.resize(kept);
        shuffle_emitted->fetch_add(pids.size(), std::memory_order_relaxed);
      }
      for (const auto pid : pids) {
        std::string out;
        out.reserve(rest.size() + 16);
        out += 'j';
        out += std::to_string(pid);
        out += '\t';
        out += side;
        out += '\t';
        out += rest;
        emit.push_back(std::move(out));
      }
    };
  };
  // Query-owned scratch pool instead of a `static thread_local` scratch:
  // index trees and candidate buffers stay warm across the cells a reducer
  // thread processes but die with the query, so nothing survives onto the
  // pool threads a serving process keeps around (see core::ScratchPool).
  core::ScratchPool scratch_pool;
  join_job.reduce = [&local_spec, &scratch_pool, quarantine](
                        const std::vector<std::string>& lines,
                        std::vector<std::string>& emit) {
    // Lines arrive sorted, so partitions are contiguous and, within one,
    // side A sorts before side B.
    std::size_t i = 0;
    while (i < lines.size()) {
      const std::string_view key = mapreduce::streaming_key(lines[i]);
      std::vector<geom::Feature> left_features;
      std::vector<geom::Feature> right_features;
      while (i < lines.size() && mapreduce::streaming_key(lines[i]) == key) {
        static thread_local std::vector<std::string_view> fields;
        split_into(lines[i], '\t', fields);
        std::string error;
        auto f = workload::try_feature_from_tsv_at(lines[i], 2, &error);
        if (!f) {
          quarantine->divert("join/b-distributed-join.reduce", lines[i], error);
          ++i;
          continue;
        }
        (fields.at(1) == "A" ? left_features : right_features)
            .push_back(std::move(*f));
        ++i;
      }
      std::vector<JoinPair> pairs;
      auto scratch = scratch_pool.acquire();
      core::run_local_join(std::span<const geom::Feature>(left_features),
                           std::span<const geom::Feature>(right_features), local_spec,
                           core::AcceptAllPairs{}, *scratch, pairs);
      for (const auto& p : pairs) {
        emit.push_back(std::to_string(p.left_id) + "\t" + std::to_string(p.right_id));
      }
    }
  };
  const auto pair_lines = mapreduce::run_streaming(ctx, join_job, splits);
  if (filter_on) {
    const std::uint64_t assigned = shuffle_assigned->load(std::memory_order_relaxed);
    const std::uint64_t emitted = shuffle_emitted->load(std::memory_order_relaxed);
    report.counters.add("shuffle.assigned_records", assigned);
    report.counters.add("shuffle.records", emitted);
    report.counters.add("shuffle.filtered_records", assigned - emitted);
    report.counters.add("shuffle.filtered_bytes",
                        filtered_line_bytes->load(std::memory_order_relaxed));
  }
  report.counters.add("join.pair_lines_before_dedup", pair_lines.size());
  report.counters.add("join.prepared_cache_hits",
                      prepared_cache.hits() - cache_hits0);
  report.counters.add("join.prepared_cache_misses",
                      prepared_cache.misses() - cache_misses0);

  // ---- Step (c): sort-unique dedup job ------------------------------------
  StreamingSpec dedup;
  dedup.name = "join/c-dedup";
  dedup.config = streaming;
  dedup.map = [](const std::string& line, std::vector<std::string>& emit) {
    emit.push_back(line);
  };
  dedup.reduce = [](const std::vector<std::string>& lines,
                    std::vector<std::string>& emit) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == 0 || lines[i] != lines[i - 1]) emit.push_back(lines[i]);
    }
  };
  const auto final_lines =
      mapreduce::run_streaming(ctx, dedup, chunk_lines(pair_lines, slots));

  report.counters.add("join.pair_lines_after_dedup", final_lines.size());
  std::vector<JoinPair> pairs;
  pairs.reserve(final_lines.size());
  std::vector<std::string_view> fields;  // master-side reuse, one per loop
  for (const auto& line : final_lines) {
    split_into(line, '\t', fields);
    pairs.push_back({parse_u64(fields.at(0)), parse_u64(fields.at(1))});
  }
  return pairs;
}

mapreduce::StreamingConfig make_streaming_config(const core::ExecutionConfig& exec,
                                                 const HadoopGisConfig& config) {
  mapreduce::StreamingConfig streaming;
  streaming.mr = config.mr;
  streaming.pipe_bandwidth = config.pipe_bandwidth;
  streaming.pipe_capacity_bytes = static_cast<std::uint64_t>(
      config.pipe_capacity_fraction *
      static_cast<double>(exec.cluster.node.memory_bytes) / exec.cluster.node.cores *
      (exec.cluster.node_count > 1 ? config.multi_node_pipe_derating : 1.0));
  return streaming;
}

dfs::DfsConfig gis_dfs_config(const core::JoinQueryConfig& query,
                              const core::ExecutionConfig& exec) {
  return dfs::DfsConfig{
      .block_size = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(64.0 * 1024 * 1024 / exec.data_scale)),
      .replication = 3,
      .datanode_count = exec.cluster.node_count,
      .seed = query.seed,
  };
}

}  // namespace

/// Everything the serving layer keeps resident between queries for one
/// dataset pair: the partitioned line files both preprocessing pipelines
/// produced (already chunked into the join job's splits — the chunking
/// depends only on the cluster's slot count, which is fixed per catalog
/// entry), the joint partition scheme, the occupancy bitmaps, and the
/// ingest-time counters — replayed into every resident query's report so
/// the full counter set matches a cold batch run exactly.
struct HadoopGisResident::Impl {
  std::vector<std::vector<std::string>> splits;  // A chunks then B chunks
  std::size_t n_a = 0;
  std::optional<partition::PartitionScheme> joint_scheme;
  std::unique_ptr<geom::OccupancyFilter> sfilter_a;  // A occupancy, filters B
  std::unique_ptr<geom::OccupancyFilter> sfilter_b;  // B occupancy, filters A
  bool filter_on = false;
  double expand = 0.0;
  cluster::Counters ingest_counters;
  core::RunReport build_report;
};

namespace {

core::RunReport run_hadoop_gis_impl(const workload::Dataset& left,
                                    const workload::Dataset& right,
                                    const core::JoinQueryConfig& query,
                                    const core::ExecutionConfig& exec,
                                    const HadoopGisConfig& config,
                                    HadoopGisResident::Impl* capture) {
  core::RunReport report;
  trace::TraceCollector collector(exec.cluster.node_count, exec.cluster.node.cores);
  // Two sinks so the ingest share of the quarantine counters can be captured
  // for resident replay; a cold run's totals are the sum of both, identical
  // to the seed single-sink accounting.
  workload::RowQuarantine build_quarantine;
  workload::RowQuarantine join_quarantine;
  // Ingest counters accumulate separately and are merged into the run's
  // counters once preprocessing is done — totals are unchanged for a cold
  // run, and a resident build keeps the ingest share for replay.
  cluster::Counters ingest_counters;
  bool ingest_merged = false;

  try {
    // Fault-plan validation (FaultInjector's constructor) and DFS setup can
    // throw on a bad plan: inside the try so a chaos-generated invalid plan
    // reports a structured Status instead of escaping the driver.
    dfs::SimDfs dfs(gis_dfs_config(query, exec));
    const cluster::FaultInjector faults(config.faults);
    mapreduce::MrContext ctx{&exec.cluster, exec.data_scale, &dfs, &report.metrics,
                             &ingest_counters, &faults};
    if (exec.trace) ctx.trace = &collector;

    const mapreduce::StreamingConfig streaming = make_streaming_config(exec, config);

    GisContext gis{&ctx, streaming, &query, &exec, &config, &build_quarantine};

    // ---- Preprocessing (IA, IB) --------------------------------------------
    PreprocessedDataset pa = preprocess(gis, left, "A");
    PreprocessedDataset pb = preprocess(gis, right, "B");

    // ---- Global join step (a): joint partitions built locally --------------
    // The per-dataset partition ids cannot be reused (invisible through
    // streaming), so the samples are concatenated and re-partitioned on the
    // master — with the HDFS copy round-trips charged.
    CpuStopwatch master_cpu;
    std::vector<geom::Envelope> joint_samples = pa.samples;
    joint_samples.insert(joint_samples.end(), pb.samples.begin(), pb.samples.end());
    geom::Envelope joint_extent = left.extent();
    joint_extent.expand_to_include(right.extent());
    const std::uint32_t target_cells =
        core::effective_target_partitions(query, exec.cluster);
    partition::PartitionScheme joint_scheme = partition::make_partitions(
        query.partitioner, joint_samples, joint_extent, target_cells);
    dfs.put("join.partitions", std::any(), joint_scheme.size_bytes());
    mapreduce::charge_master_step(ctx, "join/a-joint-partition", master_cpu.seconds(),
                                  pa.sample_text_bytes + pb.sample_text_bytes,
                                  joint_scheme.size_bytes());

    // ---- Global+local join step (b) inputs ---------------------------------
    const std::size_t slots = exec.cluster.total_slots();
    auto splits_a = chunk_lines(std::move(pa.partitioned_lines), slots);
    const std::size_t n_a = splits_a.size();
    {
      auto splits_b = chunk_lines(std::move(pb.partitioned_lines), slots);
      for (auto& s : splits_b) splits_a.push_back(std::move(s));
    }

    const double expand = query.predicate == core::JoinPredicate::kWithinDistance
                              ? query.within_distance / 2.0
                              : 0.0;

    // ---- Global join step (a1): optional skew-aware tile refinement ---------
    // Probe the per-tile load the join mappers below would push through the
    // streaming pipes (the same expanded-envelope assignment over both
    // datasets, tallied instead of emitted), split hotspot tiles on the
    // master, and rewrite the partition file — the filter bitmaps and the
    // join job then see the refined tile set.
    if (config.policy.repartition.value_or(false)) {
      CpuStopwatch skew_cpu;
      const plan::PartitionRefiner refiner(query.partitioner, config.policy.skew);
      const auto probe = [&](const partition::PartitionScheme& s) {
        std::vector<plan::CellLoad> loads(s.cell_count());
        std::vector<std::uint32_t> pids;
        const auto tally = [&](const workload::Dataset& data) {
          const auto envs = data.envelopes();
          for (std::size_t i = 0; i < envs.size(); ++i) {
            s.assign_into(envs[i].expanded_by(expand), pids);
            const std::uint64_t bytes = 4 + data.record_text_bytes(i);
            for (const auto pid : pids) {
              ++loads[pid].records;
              loads[pid].bytes += bytes;
            }
          }
        };
        tally(left);
        tally(right);
        return loads;
      };
      plan::RefineResult refined = refiner.refine(joint_scheme, probe);
      if (ctx.counters != nullptr) {
        plan::record_repartition_counters(refined, *ctx.counters);
      }
      const std::uint64_t before_bytes = joint_scheme.size_bytes();
      joint_scheme = std::move(refined.scheme);
      dfs.put("join.partitions", std::any(), joint_scheme.size_bytes());
      mapreduce::charge_master_step(ctx, "join/a1-skew-refine", skew_cpu.seconds(),
                                    before_bytes, joint_scheme.size_bytes());
    }

    // ---- Global join step (a2): optional shuffle filter ---------------------
    // LocationSpark's sFilter analog: a master-side pass over each dataset
    // replays the join mapper's assignment (query + nearest-cell fallback)
    // and marks each record's expanded envelope into its tiles' occupancy
    // bitmaps. The scheme is joint, so filtering is symmetric: A-side
    // mappers drop tile line copies the B bitmap proves can match no B
    // geometry in that tile, and B-side mappers drop against the A bitmap —
    // before the line is pushed through the streaming pipe. Both bitmaps
    // ship to every mapper via the distributed cache.
    const bool filter_on = config.policy.shuffle_filter.value_or(true);
    std::unique_ptr<geom::OccupancyFilter> sfilter_b;  // B occupancy, filters A
    std::unique_ptr<geom::OccupancyFilter> sfilter_a;  // A occupancy, filters B
    if (filter_on) {
      CpuStopwatch filter_cpu;
      const auto build_occupancy = [&](const workload::Dataset& data) {
        auto filter = std::make_unique<geom::OccupancyFilter>(joint_scheme.cells());
        const auto envs = data.envelopes();
        std::vector<std::uint32_t> mark_pids;
        for (std::size_t i = 0; i < envs.size(); ++i) {
          const geom::Envelope env = envs[i].expanded_by(expand);
          joint_scheme.assign_into(env, mark_pids);
          for (const auto pid : mark_pids) filter->mark(pid, env);
        }
        return filter;
      };
      sfilter_b = build_occupancy(right);
      sfilter_a = build_occupancy(left);
      dfs.put("join.sfilter", std::any(),
              sfilter_a->size_bytes() + sfilter_b->size_bytes());
      mapreduce::charge_master_step(ctx, "join/a2-filter-build", filter_cpu.seconds(),
                                    left.text_bytes() + right.text_bytes(),
                                    sfilter_a->size_bytes() + sfilter_b->size_bytes());
    }
    const geom::OccupancyFilter* filt_b = sfilter_b.get();
    const geom::OccupancyFilter* filt_a = sfilter_a.get();

    // Preprocessing is done: fold its counters (including its quarantined
    // rows) into the run and point the context at the run's counters for
    // the join jobs.
    build_quarantine.flush_counters(ingest_counters);
    report.counters.merge(ingest_counters);
    ingest_merged = true;
    ctx.counters = &report.counters;

    if (capture != nullptr) {
      capture->splits = splits_a;
      capture->n_a = n_a;
      capture->joint_scheme.emplace(joint_scheme);
      if (sfilter_a != nullptr) {
        capture->sfilter_a = std::make_unique<geom::OccupancyFilter>(*sfilter_a);
        capture->sfilter_b = std::make_unique<geom::OccupancyFilter>(*sfilter_b);
      }
      capture->filter_on = filter_on;
      capture->expand = expand;
      capture->ingest_counters = ingest_counters;
    }
    // ---- Steps (b) + (c): join + dedup streaming jobs -----------------------
    std::vector<JoinPair> pairs =
        run_gis_join(ctx, streaming, query, exec, config, joint_scheme, filt_a,
                     filt_b, filter_on, splits_a, n_a, join_quarantine,
                     /*shared_cache=*/nullptr, report);

    report.success = true;
    report.status = Status::Ok();
    report.result_count = pairs.size();
    report.result_hash = core::hash_pairs_unordered(pairs);
    if (exec.collect_pairs) report.pairs = std::move(pairs);
  } catch (const SjcError& e) {
    // BrokenPipe (pipe overflow past the retry budget), TaskFailed
    // (injected crash exhausting attempts), BlockUnavailable (all replicas
    // of an input lost), DeadlineExceeded / RetryBudgetExhausted (lifecycle
    // enforcement), InvalidArgument (a bad fault plan): every library error
    // becomes a structured Status — nothing escapes the driver.
    report.success = false;
    report.failure_reason = e.what();
    report.status = status_from_exception(e);
  }

  // A failure mid-preprocessing leaves the ingest share unmerged: fold it in
  // here so failed runs report the same counters as the seed single-counter
  // accounting did.
  if (!ingest_merged) {
    build_quarantine.flush_counters(ingest_counters);
    report.counters.merge(ingest_counters);
  }
  join_quarantine.flush_counters(report.counters);
  report.index_a_seconds = report.metrics.seconds_with_prefix("A/");
  report.index_b_seconds = report.metrics.seconds_with_prefix("B/");
  report.join_seconds = report.metrics.seconds_with_prefix("join/");
  report.total_seconds = report.metrics.total_seconds();
  if (exec.trace) report.trace = collector.merged();
  core::annotate_recovery(report);
  return report;
}

}  // namespace

core::RunReport run_hadoop_gis(const workload::Dataset& left,
                               const workload::Dataset& right,
                               const core::JoinQueryConfig& query,
                               const core::ExecutionConfig& exec,
                               const HadoopGisConfig& config) {
  return run_hadoop_gis_impl(left, right, query, exec, config, /*capture=*/nullptr);
}

const core::RunReport& HadoopGisResident::build_report() const {
  require(impl_ != nullptr, "HadoopGisResident: not built");
  return impl_->build_report;
}

HadoopGisResident hadoop_gis_build_resident(const workload::Dataset& left,
                                            const workload::Dataset& right,
                                            const core::JoinQueryConfig& query,
                                            const core::ExecutionConfig& exec,
                                            const HadoopGisConfig& config) {
  auto impl = std::make_shared<HadoopGisResident::Impl>();
  impl->build_report =
      run_hadoop_gis_impl(left, right, query, exec, config, impl.get());
  require(impl->build_report.success,
          "hadoop_gis_build_resident: build run failed: " +
              impl->build_report.failure_reason);
  HadoopGisResident resident;
  resident.impl_ = std::move(impl);
  return resident;
}

core::RunReport run_hadoop_gis_resident(const HadoopGisResident& resident,
                                        const core::JoinQueryConfig& query,
                                        const core::ExecutionConfig& exec,
                                        const HadoopGisConfig& config,
                                        geom::PreparedCache* shared_cache) {
  core::RunReport report;
  trace::TraceCollector collector(exec.cluster.node_count, exec.cluster.node.cores);
  workload::RowQuarantine join_quarantine;

  try {
    require(resident.impl_ != nullptr, "run_hadoop_gis_resident: not built");
    const HadoopGisResident::Impl& impl = *resident.impl_;
    {
      core::LocalJoinSpec probe;
      probe.predicate = query.predicate;
      probe.within_distance = query.within_distance;
      require(probe.envelope_expansion() == impl.expand,
              "run_hadoop_gis_resident: query envelope expansion does not "
              "match the resident build");
    }

    // Fresh runtime per query — a serving process answers each query on its
    // own simulated job, like the indexed SpatialHadoop path. The
    // preprocessing products (partition scheme, bitmaps, partitioned lines)
    // come from the catalog; no A/ or B/ phase runs, so IA/IB report as 0.
    dfs::SimDfs dfs(gis_dfs_config(query, exec));
    mapreduce::MrContext ctx{&exec.cluster, exec.data_scale, &dfs, &report.metrics,
                             &report.counters};
    if (exec.trace) ctx.trace = &collector;
    const mapreduce::StreamingConfig streaming = make_streaming_config(exec, config);

    // Replay the ingest-time counters so the resident report's counter set
    // (partition.*, quarantine.*, ...) matches a cold batch run exactly.
    report.counters.merge(impl.ingest_counters);

    std::vector<JoinPair> pairs = run_gis_join(
        ctx, streaming, query, exec, config, *impl.joint_scheme,
        impl.sfilter_a.get(), impl.sfilter_b.get(), impl.filter_on, impl.splits,
        impl.n_a, join_quarantine, shared_cache, report);

    report.success = true;
    report.status = Status::Ok();
    report.result_count = pairs.size();
    report.result_hash = core::hash_pairs_unordered(pairs);
    if (exec.collect_pairs) report.pairs = std::move(pairs);
  } catch (const SjcError& e) {
    report.success = false;
    report.failure_reason = e.what();
    report.status = status_from_exception(e);
  }

  join_quarantine.flush_counters(report.counters);
  report.index_a_seconds = 0.0;
  report.index_b_seconds = 0.0;
  report.join_seconds = report.metrics.seconds_with_prefix("join/");
  report.total_seconds = report.metrics.total_seconds();
  if (exec.trace) report.trace = collector.merged();
  core::annotate_recovery(report);
  return report;
}

}  // namespace sjc::systems
