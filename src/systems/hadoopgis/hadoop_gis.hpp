// HadoopGIS analog: spatial joins over (simulated) Hadoop Streaming.
//
// Faithfully reproduces the pipeline the paper dissects in Section II —
// including its inefficiencies, which are the point of the comparison:
//
//  Preprocessing, per dataset, as SIX separate jobs/steps (Section II.A):
//   1. map-only convert-to-TSV job (reads and rewrites every record);
//   2. map-only sample job (parses every record's WKT just to sample MBRs);
//   3. MR job with a single reducer computing the dataset extent;
//   4. map-only job normalizing the sampled MBRs;
//   5. a *local serial program* generating partitions (samples copied from
//      HDFS to the master and the partition file copied back);
//   6. MR job assigning partition ids (every mapper re-parses records and
//      queries a per-task index; the reducer deduplicates with the
//      cat | sort | uniq idiom — a real string sort here).
//
//  Global join + local join (Section II.B/II.C): the partition ids from
//  preprocessing CANNOT be reused (invisible to Hadoop Streaming), so a
//  joint partition scheme is rebuilt on the master from the two sample
//  files, every mapper of the join job rebuilds an R-tree from it
//  (insert-built, libspatialindex-style), re-parses and re-assigns both
//  datasets, and the reducers run the local join with the slow
//  (GEOS-analog) geometry engine. Duplicated result pairs are removed by a
//  final sort-unique streaming job.
//
// Every record crosses every stage boundary as a text line; the engine
// enforces a per-task pipe capacity, so runs on large inputs die with
// BrokenPipe exactly as HadoopGIS does in Tables 2-3.
#pragma once

#include "core/spatial_join.hpp"
#include "mapreduce/streaming.hpp"
#include "plan/exec_policy.hpp"

namespace sjc::geom {
class PreparedCache;
}

namespace sjc::systems {

struct HadoopGisConfig {
  mapreduce::MrConfig mr{
      // Streaming stacks text pipes, Python glue and the GEOS-analog on top
      // of Hadoop: roughly half the effective CPU throughput of the native
      // SpatialHadoop stack.
      .cpu_efficiency = 0.1,
  };
  /// Streaming pipe throughput (paper units).
  double pipe_bandwidth = 180.0 * 1024 * 1024;
  /// Pipe capacity as a fraction of per-slot node memory (node memory /
  /// cores). Calibrated so the failure matrix of Tables 2-3 reproduces:
  /// full datasets overflow everywhere, sample datasets only on the
  /// small-memory EC2 nodes. See DESIGN.md §5.
  double pipe_capacity_fraction = 0.24;
  /// Extra pipe-capacity derating on multi-node clusters: distributed
  /// streaming reads shuffle data through network-attached pipes with
  /// tighter buffers/timeouts, the fragile path behind HadoopGIS's EC2
  /// failures. 1.0 disables.
  double multi_node_pipe_derating = 0.17;
  /// Local join algorithm (libspatialindex R-tree, insert-built per task).
  index::LocalJoinAlgorithm local_algorithm =
      index::LocalJoinAlgorithm::kIndexedNestedLoopDynamic;
  /// Geometry engine for refinement. HadoopGIS ships GEOS (the Simple
  /// analog); overriding to kPrepared answers the paper's what-if: how much
  /// of HadoopGIS's slowness is the geometry library?
  geom::EngineKind engine = geom::EngineKind::kSimple;
  /// Fault plan (injected crashes, stragglers, datanode losses) and
  /// recovery budget (max_attempts, backoff, speculation). The default is
  /// trivial: no faults, first failure fatal — the seed model of Tables 2-3.
  cluster::FaultPlan faults;
  /// Adaptive-execution knobs (see plan/exec_policy.hpp):
  ///  - policy.shuffle_filter: master-side occupancy bitmap over the right
  ///    dataset shipped to the join mappers via the distributed cache;
  ///    A-side mappers drop tile line copies that provably match no B
  ///    geometry before the line crosses the streaming pipe (sFilter
  ///    analog). Unset resolves to on.
  ///  - policy.repartition: probe per-tile load after the joint scheme is
  ///    derived on the master and split hotspot tiles before the join job's
  ///    mappers re-assign both datasets; unset resolves to off.
  plan::ExecPolicy policy;
};

core::RunReport run_hadoop_gis(const workload::Dataset& left,
                               const workload::Dataset& right,
                               const core::JoinQueryConfig& query,
                               const core::ExecutionConfig& exec,
                               const HadoopGisConfig& config = {});

/// Resident (serving-mode) state for one dataset pair: the partitioned
/// line files the six preprocessing steps produced for both inputs
/// (pre-chunked into the join job's splits), the joint partition scheme,
/// and the occupancy bitmaps — all captured from one cold run
/// (capture-on-build). A resident query re-executes only the big
/// distributed-join streaming job and the sort-unique dedup job; the
/// ingest-time counters are replayed into its report so the full counter
/// set matches a cold batch run exactly. Cheap to copy (shared immutable
/// state).
class HadoopGisResident {
 public:
  HadoopGisResident() = default;

  /// The full RunReport of the cold run that built this state (ingest cost).
  const core::RunReport& build_report() const;

  struct Impl;

 private:
  friend HadoopGisResident hadoop_gis_build_resident(const workload::Dataset& left,
                                                     const workload::Dataset& right,
                                                     const core::JoinQueryConfig& query,
                                                     const core::ExecutionConfig& exec,
                                                     const HadoopGisConfig& config);
  friend core::RunReport run_hadoop_gis_resident(const HadoopGisResident& resident,
                                                 const core::JoinQueryConfig& query,
                                                 const core::ExecutionConfig& exec,
                                                 const HadoopGisConfig& config,
                                                 geom::PreparedCache* shared_cache);

  std::shared_ptr<const Impl> impl_;
};

/// Runs one cold end-to-end HadoopGIS join (identical to run_hadoop_gis)
/// and captures the preprocessing products for resident reuse. Throws
/// SjcError when the build run fails.
HadoopGisResident hadoop_gis_build_resident(const workload::Dataset& left,
                                            const workload::Dataset& right,
                                            const core::JoinQueryConfig& query,
                                            const core::ExecutionConfig& exec,
                                            const HadoopGisConfig& config = {});

/// Answers one join query from resident state: the distributed-join and
/// dedup streaming jobs on a fresh runtime, with IA/IB reported as 0 and
/// ingest counters replayed for parity with the cold path. `shared_cache`,
/// when non-null, is a cross-query geom::PreparedCache owned by the caller
/// (the serving catalog); it is consulted only under the Prepared engine,
/// exactly like the cold path's run-scoped cache. The query must use the
/// same envelope expansion as the build; a mismatch yields a
/// kInvalidArgument report.
core::RunReport run_hadoop_gis_resident(const HadoopGisResident& resident,
                                        const core::JoinQueryConfig& query,
                                        const core::ExecutionConfig& exec,
                                        const HadoopGisConfig& config = {},
                                        geom::PreparedCache* shared_cache = nullptr);

}  // namespace sjc::systems
