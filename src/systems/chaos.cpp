#include "systems/chaos.hpp"

#include <string>

#include "systems/hadoopgis/hadoop_gis.hpp"
#include "systems/spatialhadoop/spatial_hadoop.hpp"
#include "systems/spatialspark/spatial_spark.hpp"
#include "util/status.hpp"

namespace sjc::systems {

cluster::FaultPlan random_fault_plan(Rng& rng, std::uint32_t node_count) {
  cluster::FaultPlan plan;
  plan.seed = rng.next_u64();

  // Injected faults. Each family is off roughly half the time so plans mix
  // single-fault and multi-fault scenarios.
  if (rng.bernoulli(0.5)) plan.task_crash_probability = rng.uniform(0.0, 0.3);
  if (rng.bernoulli(0.5)) {
    plan.straggler_probability = rng.uniform(0.0, 0.5);
    plan.straggler_slowdown = rng.uniform(1.0, 4.0);
  }
  if (rng.bernoulli(0.4)) {
    plan.bad_node_probability = rng.uniform(0.0, 0.5);
    plan.bad_node_crash_probability = rng.uniform(0.0, 0.6);
  }
  if (rng.bernoulli(0.5)) plan.malformed_rows = 1 + rng.next_below(8);
  if (rng.bernoulli(0.2) && node_count > 0) {
    plan.datanode_losses.push_back(
        {rng.uniform(0.5, 30.0),
         static_cast<std::uint32_t>(rng.next_below(node_count))});
  }

  // Recovery semantics. max_attempts skews high so crashy plans usually
  // survive; budgets and timeouts are occasionally tight on purpose — the
  // clean-failure path is part of the sweep's coverage.
  plan.max_attempts = static_cast<std::uint32_t>(2 + rng.next_below(7));
  plan.retry_backoff_s = rng.uniform(0.0, 4.0);
  plan.max_backoff_s = rng.uniform(1.0, 30.0);
  plan.backoff_jitter = rng.bernoulli(0.5) ? rng.uniform(0.0, 1.0) : 0.0;
  if (rng.bernoulli(0.5)) {
    plan.node_blacklist_threshold = static_cast<std::uint32_t>(1 + rng.next_below(4));
  }
  if (rng.bernoulli(0.3)) plan.job_retry_budget = 1 + rng.next_below(64);
  if (rng.bernoulli(0.15)) plan.phase_timeout_s = rng.uniform(1.0, 5000.0);
  if (rng.bernoulli(0.3)) {
    plan.speculative_execution = true;
    plan.speculation_threshold = rng.uniform(1.2, 3.0);
  }
  return plan;
}

core::RunReport run_under_plan(core::SystemKind system,
                               const workload::Dataset& left,
                               const workload::Dataset& right,
                               const core::JoinQueryConfig& query,
                               const core::ExecutionConfig& exec,
                               const cluster::FaultPlan& plan,
                               const plan::ExecPolicy& policy) {
  switch (system) {
    case core::SystemKind::kHadoopGisSim: {
      HadoopGisConfig config;
      config.faults = plan;
      config.policy = policy;
      return run_hadoop_gis(left, right, query, exec, config);
    }
    case core::SystemKind::kSpatialHadoopSim: {
      SpatialHadoopConfig config;
      config.faults = plan;
      config.policy = policy;
      return run_spatial_hadoop(left, right, query, exec, config);
    }
    case core::SystemKind::kSpatialSparkSim: {
      SpatialSparkConfig config;
      config.spark.faults = plan;
      config.policy = policy;
      return run_spatial_spark(left, right, query, exec, config);
    }
  }
  throw InvalidArgument("run_under_plan: unknown system kind");
}

std::vector<std::string> chaos_violations(const core::RunReport& report,
                                          const core::RunReport& truth,
                                          const cluster::FaultPlan& plan) {
  std::vector<std::string> out;
  const auto fail = [&out](std::string what) { out.push_back(std::move(what)); };

  // 1. Exactly one terminal state, and it is structured.
  if (report.success != report.status.ok()) {
    fail("success flag disagrees with status: success=" +
         std::to_string(report.success) + " status=" + report.status.to_string());
  }
  if (!report.success && report.failure_reason.empty()) {
    fail("failed run carries no failure_reason");
  }

  // 2. Survivors are bit-identical to the fault-free ground truth.
  if (report.success) {
    if (report.result_hash != truth.result_hash) {
      fail("surviving run's pair-set hash differs from fault-free truth");
    }
    if (report.result_count != truth.result_count) {
      fail("surviving run found " + std::to_string(report.result_count) +
           " pairs, truth has " + std::to_string(truth.result_count));
    }
  }

  // 3. The commit ledger balances phase by phase: every attempt published,
  //    was rejected, or aborted. (Master-side serial phases have
  //    task_attempts == commits_published == 1 and balance trivially.)
  for (const auto& phase : report.metrics.phases()) {
    if (phase.task_attempts == 0) continue;
    const std::uint64_t accounted =
        phase.commits_published + phase.commits_rejected + phase.attempts_aborted;
    if (phase.task_attempts != accounted) {
      fail("commit ledger unbalanced in phase '" + phase.name + "': " +
           std::to_string(phase.task_attempts) + " attempts vs " +
           std::to_string(accounted) + " accounted");
    }
    // A completed phase publishes exactly one output per task.
    if (report.success && phase.task_count > 0 &&
        phase.commits_published != phase.task_count) {
      fail("phase '" + phase.name + "' published " +
           std::to_string(phase.commits_published) + " outputs for " +
           std::to_string(phase.task_count) + " tasks");
    }
  }

  // 4. Rejected commits only ever come from losing speculative clones.
  if (report.metrics.total_commits_rejected() >
      report.metrics.total_speculative_clones()) {
    fail("more rejected commits than speculative clones");
  }
  if (!plan.speculative_execution && report.metrics.total_commits_rejected() > 0) {
    fail("rejected commits without speculative execution");
  }

  // 5. A surviving run respected its retry budget.
  if (report.success && plan.job_retry_budget > 0 &&
      report.counters.get("budget.retries_used") > plan.job_retry_budget) {
    fail("surviving run spent " +
         std::to_string(report.counters.get("budget.retries_used")) +
         " retries against a budget of " + std::to_string(plan.job_retry_budget));
  }

  // 6. Injected junk rows were quarantined, never silently dropped or
  //    fatal. (Systems without a raw-text ingest path inject nothing, so
  //    the injected counter gates the check.)
  const std::uint64_t injected = report.counters.get("input.malformed_rows_injected");
  if (report.success && injected > 0 &&
      report.counters.get("input.quarantined_rows") < injected) {
    fail("only " + std::to_string(report.counters.get("input.quarantined_rows")) +
         " of " + std::to_string(injected) + " injected junk rows were quarantined");
  }

  // 7. Node quarantine never fires unless the plan enables blacklisting.
  if (plan.node_blacklist_threshold == 0 &&
      report.metrics.total_nodes_quarantined() > 0) {
    fail("nodes quarantined with blacklisting disabled");
  }
  return out;
}

}  // namespace sjc::systems
