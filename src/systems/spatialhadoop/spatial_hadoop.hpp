// SpatialHadoop analog: spatial joins tightly integrated with (simulated)
// native Hadoop.
//
// Pipeline (paper Section II, Fig. 1b):
//
//  Preprocessing, per dataset (two MR jobs):
//    1. sample job  — map-only scan that samples record MBRs; the partition
//       scheme is then derived centrally and written as the "_master" file;
//    2. partition job — full MR: map assigns each record to every partition
//       cell its MBR intersects; shuffle groups records by partition id;
//       reduce writes one block file per partition, with an STR index
//       packed into the block ("indexes built virtually for free").
//
//  Global join:
//    implemented *inside getSplits()* on the master node: read both
//    _master files, plane-sweep join the partition MBRs, and emit one input
//    split per overlapping (cellA, cellB) pair.
//
//  Local join (map-only job, no shuffle):
//    each map task reads its two block files and performs the serial
//    filter+refine join (plane-sweep by default, per the paper), using the
//    fast (JTS-analog) geometry engine. Duplicate results from overlap
//    partitioning are avoided with the reference-point technique, so no
//    dedup pass is needed.
//
// SpatialHadoop never buffers a dataset in memory — every stage spills
// through the DFS — which is exactly why it is the robustness winner in the
// paper: this analog has no failure modes.
#pragma once

#include "core/spatial_join.hpp"
#include "mapreduce/mr_context.hpp"
#include "plan/exec_policy.hpp"

namespace sjc::geom {
class PreparedCache;
}

namespace sjc::systems {

struct SpatialHadoopConfig {
  mapreduce::MrConfig mr;
  /// Serial in-partition join algorithm; the paper names plane-sweep and
  /// synchronized R-tree traversal as SpatialHadoop's options.
  index::LocalJoinAlgorithm local_algorithm = index::LocalJoinAlgorithm::kPlaneSweep;
  /// Geometry engine for refinement (JTS analog by default; override to
  /// kSimple to measure what SpatialHadoop would lose on GEOS).
  geom::EngineKind engine = geom::EngineKind::kPrepared;
  /// Fault plan and recovery budget. Trivial by default — SpatialHadoop
  /// has no intrinsic failure modes, so only injected faults (crashes past
  /// max_attempts, losing every replica of a block) can make it fail.
  cluster::FaultPlan faults;
  /// Data-plane selection. The zero-copy plane (default) stores partition
  /// blocks as index vectors into the source dataset's feature array and
  /// uses the typed MR specs (inlined functors + arena shuffle buckets);
  /// every modeled quantity — shuffle bytes, block text_bytes, phase task
  /// shapes, join cardinality — is identical to the seed copying plane,
  /// which is kept as the bench_shuffle baseline. Zero-copy blocks borrow
  /// the dataset's features, so the source Dataset must outlive any
  /// SpatialHadoopIndex built from it.
  bool zero_copy_plane = true;
  /// Adaptive-execution knobs (see plan/exec_policy.hpp):
  ///  - policy.shuffle_filter: index the resident (right) dataset first,
  ///    build a per-cell occupancy bitmap from its partition blocks, and
  ///    drop streamed (left) record copies that provably match nothing in
  ///    the target cell before they are shuffled (sFilter analog). Unset
  ///    resolves to the data-plane default: on for the zero-copy plane, off
  ///    for the seed baseline plane. The pre-indexed join path
  ///    (run_spatial_hadoop_indexed) never filters — both inputs are
  ///    partitioned before the join pairing is known.
  ///  - policy.repartition: probe per-cell load after the sample job derives
  ///    a dataset's scheme and split hotspot cells on the master before the
  ///    partition MR job writes blocks; unset resolves to off.
  plan::ExecPolicy policy;
};

core::RunReport run_spatial_hadoop(const workload::Dataset& left,
                                   const workload::Dataset& right,
                                   const core::JoinQueryConfig& query,
                                   const core::ExecutionConfig& exec,
                                   const SpatialHadoopConfig& config = {});

/// A persisted SpatialHadoop index: the partition scheme plus the written
/// block files, reusable across joins. The paper notes "SpatialHadoop can
/// run faster when re-partitioning can be skipped" — i.e. when both inputs
/// are already indexed, the distributed join starts directly at getSplits.
/// (HadoopGIS cannot do this: its preprocessing partition ids are invisible
/// to the streaming join and get recomputed every time.)
class SpatialHadoopIndex {
 public:
  /// Cost of building this index (the IA or IB column).
  double build_seconds() const;
  const cluster::RunMetrics& build_metrics() const { return metrics_; }
  const std::string& dataset_name() const { return name_; }
  std::size_t partition_count() const;

 private:
  friend SpatialHadoopIndex spatial_hadoop_build_index(const workload::Dataset&,
                                                       const core::JoinQueryConfig&,
                                                       const core::ExecutionConfig&,
                                                       const SpatialHadoopConfig&);
  friend core::RunReport run_spatial_hadoop_indexed(const SpatialHadoopIndex&,
                                                    const SpatialHadoopIndex&,
                                                    const core::JoinQueryConfig&,
                                                    const core::ExecutionConfig&,
                                                    const SpatialHadoopConfig&);
  struct Impl;
  std::shared_ptr<const Impl> impl_;
  cluster::RunMetrics metrics_;
  std::string name_;
};

/// Runs the two preprocessing MR jobs for one dataset and returns the
/// persisted index.
SpatialHadoopIndex spatial_hadoop_build_index(const workload::Dataset& data,
                                              const core::JoinQueryConfig& query,
                                              const core::ExecutionConfig& exec,
                                              const SpatialHadoopConfig& config = {});

/// Joins two pre-indexed datasets: getSplits + the map-only local join,
/// skipping both indexing phases. The report's IA/IB are 0 and DJ == TOT.
core::RunReport run_spatial_hadoop_indexed(const SpatialHadoopIndex& left,
                                           const SpatialHadoopIndex& right,
                                           const core::JoinQueryConfig& query,
                                           const core::ExecutionConfig& exec,
                                           const SpatialHadoopConfig& config = {});

/// Resident (serving-mode) state for one dataset pair: owned copies of both
/// datasets plus the two indexed partition directories the cold driver's own
/// preprocessing built over them (capture-on-build), including the shuffle
/// filter when the cold path would use one. A resident query re-executes
/// only getSplits + the map-only local join; the ingest-time counters
/// (partition.*, shuffle.*) are replayed into the query's report so the
/// full counter set matches a cold batch run exactly. Cheap to copy
/// (shared immutable state).
class SpatialHadoopResident {
 public:
  SpatialHadoopResident() = default;

  /// The full RunReport of the cold run that built this state (ingest cost).
  const core::RunReport& build_report() const;
  std::size_t left_size() const;
  std::size_t right_size() const;

  struct Impl;

 private:
  friend SpatialHadoopResident spatial_hadoop_build_resident(
      const workload::Dataset& left, const workload::Dataset& right,
      const core::JoinQueryConfig& query, const core::ExecutionConfig& exec,
      const SpatialHadoopConfig& config);
  friend core::RunReport run_spatial_hadoop_resident(
      const SpatialHadoopResident& resident, const core::JoinQueryConfig& query,
      const core::ExecutionConfig& exec, const SpatialHadoopConfig& config,
      geom::PreparedCache* shared_cache);

  std::shared_ptr<const Impl> impl_;
};

/// Runs one cold end-to-end join (identical to run_spatial_hadoop, including
/// the filtered indexing order) and captures both indexed datasets for
/// resident reuse. Throws SjcError when the build run fails.
SpatialHadoopResident spatial_hadoop_build_resident(
    const workload::Dataset& left, const workload::Dataset& right,
    const core::JoinQueryConfig& query, const core::ExecutionConfig& exec,
    const SpatialHadoopConfig& config = {});

/// Answers one join query from resident state: getSplits + map-only local
/// join on a fresh runtime, with IA/IB reported as 0 (like the pre-indexed
/// path) and ingest counters replayed for parity with the cold path.
/// `shared_cache`, when non-null, is a cross-query geom::PreparedCache owned
/// by the caller (the serving catalog). The query must use the same envelope
/// expansion as the build; a mismatch yields a kInvalidArgument report.
core::RunReport run_spatial_hadoop_resident(const SpatialHadoopResident& resident,
                                            const core::JoinQueryConfig& query,
                                            const core::ExecutionConfig& exec,
                                            const SpatialHadoopConfig& config = {},
                                            geom::PreparedCache* shared_cache = nullptr);

}  // namespace sjc::systems
