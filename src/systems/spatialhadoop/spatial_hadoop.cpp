#include "systems/spatialhadoop/spatial_hadoop.hpp"

#include <memory>

#include "core/feature_view.hpp"
#include "core/local_join.hpp"
#include "index/str_tree.hpp"
#include "mapreduce/map_reduce.hpp"
#include "partition/partitioner.hpp"
#include "partition/sampler.hpp"
#include "plan/partition_refiner.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace sjc::systems {

namespace {

using core::JoinPair;

/// One partition block file: the records shuffled into a partition plus the
/// STR index packed at the head of the block. Two storage modes share the
/// struct: the seed copying plane materializes `features`; the zero-copy
/// plane stores `indices` into the source dataset's stable feature span
/// (`base`). `text_bytes` — the modeled on-disk size — is identical either
/// way.
struct PartBlock {
  std::vector<geom::Feature> features;        // seed-copy plane
  std::span<const geom::Feature> base;        // zero-copy plane
  std::vector<std::uint32_t> indices;         // zero-copy plane
  std::uint64_t text_bytes = 0;

  core::FeatureIndexSpan view() const { return {base, indices}; }
};

struct IndexedDataset {
  partition::PartitionScheme scheme{std::vector<geom::Envelope>{geom::Envelope(0, 0, 1, 1)},
                                    geom::Envelope(0, 0, 1, 1)};
  std::vector<std::shared_ptr<PartBlock>> blocks;  // by partition id
  std::string dfs_prefix;
};

std::uint32_t default_partitions(const core::JoinQueryConfig& query,
                                 const core::ExecutionConfig& exec) {
  return core::effective_target_partitions(query, exec.cluster);
}

/// What the shuffle filter is built from: the already-indexed resident
/// (right) dataset. The streamed side marks every resident block's expanded
/// record envelopes into each of its own cells that intersect the resident
/// cell, so any (cellA, cellB) split the global join can later pair is
/// covered by construction.
struct FilterSource {
  const IndexedDataset* indexed;
  const workload::Dataset* data;
};

/// The two preprocessing MR jobs for one dataset ("indexA"/"indexB" in the
/// paper's Table 3 breakdown). When `filter_source` is non-null a per-cell
/// occupancy bitmap is derived from it on the master (a third, cheap
/// master-side step) and the partition job drops record copies the bitmap
/// proves can match nothing in their target cell. `count_shuffle` turns on
/// the shuffle.assigned_records / shuffle.records / shuffle.filtered_*
/// accounting for the partition job (both datasets' jobs count when the
/// filter knob is on, so assigned == shuffled + filtered holds globally).
IndexedDataset index_dataset(mapreduce::MrContext& ctx, const workload::Dataset& data,
                             const std::string& tag, const core::JoinQueryConfig& query,
                             const core::ExecutionConfig& exec,
                             const SpatialHadoopConfig& config,
                             const FilterSource* filter_source = nullptr,
                             bool count_shuffle = false) {
  IndexedDataset out;
  out.dfs_prefix = tag + ".part/";
  const std::uint32_t target_cells = default_partitions(query, exec);

  // Raw input sits in HDFS.
  ctx.dfs->put(tag + ".raw", std::any(), data.text_bytes());

  // ---- Job 1: sample MBRs (map-only) + central partition generation ------
  const auto ranges = data.split_ranges(std::max<std::size_t>(
      ctx.dfs->block_count(tag + ".raw"), exec.cluster.total_slots()));
  Rng sample_rng(query.seed ^ std::hash<std::string>{}(tag));

  struct SampleSplit {
    std::size_t begin;
    std::size_t end;
    Rng rng;
  };
  std::vector<SampleSplit> sample_splits;
  sample_splits.reserve(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    sample_splits.push_back({ranges[s].first, ranges[s].second, sample_rng.fork(s)});
  }

  const double sample_rate =
      core::effective_sample_rate(query.sample_rate, data.size(), target_cells);
  const auto sample_map = [&data, sample_rate](const SampleSplit& split,
                                               std::vector<geom::Envelope>& out_envs) {
    const auto envs = data.envelopes();
    Rng rng = split.rng;  // task-local copy keeps the job deterministic
    for (std::size_t i = split.begin; i < split.end; ++i) {
      if (rng.bernoulli(sample_rate)) out_envs.push_back(envs[i]);
    }
  };
  const auto sample_split_bytes = [&data](const SampleSplit& split) {
    std::uint64_t bytes = 0;
    for (std::size_t i = split.begin; i < split.end; ++i) {
      bytes += data.record_text_bytes(i);
    }
    return bytes;
  };
  const auto sample_output_bytes = [](const geom::Envelope&) -> std::uint64_t {
    return 32;
  };
  std::vector<geom::Envelope> sample;
  if (config.zero_copy_plane) {
    auto sample_spec = mapreduce::make_typed_map_only_spec<SampleSplit, geom::Envelope>(
        tag + "/sample", sample_map, sample_split_bytes, sample_output_bytes);
    sample_spec.config = config.mr;
    sample = mapreduce::run_map_only(ctx, sample_spec, sample_splits);
  } else {
    mapreduce::MapOnlySpec<SampleSplit, geom::Envelope> sample_spec;
    sample_spec.name = tag + "/sample";
    sample_spec.config = config.mr;
    sample_spec.map = sample_map;
    sample_spec.split_bytes = sample_split_bytes;
    sample_spec.output_bytes = sample_output_bytes;
    sample = mapreduce::run_map_only(ctx, sample_spec, sample_splits);
  }

  // Central scheme derivation (the SpatialHadoop master writes the _master
  // file that subsequent jobs read via HDFS).
  CpuStopwatch master_cpu;
  out.scheme = partition::make_partitions(query.partitioner, sample, data.extent(),
                                          target_cells);
  const std::uint64_t master_bytes = out.scheme.size_bytes();
  ctx.dfs->put(tag + "._master", std::any(), master_bytes);
  mapreduce::charge_master_step(ctx, tag + "/master-partition", master_cpu.seconds(),
                                /*read=*/sample.size() * 32, /*write=*/master_bytes);

  const double expand = query.predicate == core::JoinPredicate::kWithinDistance
                            ? query.within_distance / 2.0
                            : 0.0;

  // ---- Optional master step: skew-aware hotspot refinement ----------------
  // Probe the per-cell load the partition job below would shuffle (the same
  // expanded-envelope assignment, tallied instead of emitted), split hotspot
  // cells on the master, and rewrite the _master file — so Job 2, the
  // shuffle filter and getSplits all see the refined cell set.
  if (config.policy.repartition.value_or(false)) {
    CpuStopwatch skew_cpu;
    const plan::PartitionRefiner refiner(query.partitioner, config.policy.skew);
    const auto envs = data.envelopes();
    const auto probe = [&](const partition::PartitionScheme& s) {
      std::vector<plan::CellLoad> loads(s.cell_count());
      std::vector<std::uint32_t> pids;
      for (std::size_t i = 0; i < envs.size(); ++i) {
        s.assign_into(envs[i].expanded_by(expand), pids);
        const std::uint64_t bytes = 4 + data.record_text_bytes(i);
        for (const auto pid : pids) {
          ++loads[pid].records;
          loads[pid].bytes += bytes;
        }
      }
      return loads;
    };
    plan::RefineResult refined = refiner.refine(out.scheme, probe);
    if (ctx.counters != nullptr) {
      plan::record_repartition_counters(refined, *ctx.counters);
    }
    out.scheme = std::move(refined.scheme);
    const std::uint64_t refined_bytes = out.scheme.size_bytes();
    ctx.dfs->put(tag + "._master", std::any(), refined_bytes);
    mapreduce::charge_master_step(ctx, tag + "/skew-refine", skew_cpu.seconds(),
                                  /*read=*/master_bytes, /*write=*/refined_bytes);
  }

  // ---- Optional master step: build the shuffle filter from the resident
  // side's partition blocks. Every resident record's expanded envelope is
  // marked into each of *this* scheme's cells intersecting its resident
  // cell; a later split (cellA, cellB) exists only if those cells intersect,
  // so every pair the local join could emit is covered by some mark. The
  // bitmap is tiny (a few uint64 words per cell) and lands in the
  // distributed cache next to the _master file.
  std::unique_ptr<geom::OccupancyFilter> sfilter;
  if (filter_source != nullptr) {
    CpuStopwatch filter_cpu;
    sfilter = std::make_unique<geom::OccupancyFilter>(out.scheme.cells());
    const auto src_envs = filter_source->data->envelopes();
    const IndexedDataset& src = *filter_source->indexed;
    std::vector<std::uint32_t> cells_scratch;
    std::uint64_t src_bytes = 0;
    for (std::uint32_t pb = 0; pb < src.blocks.size(); ++pb) {
      const auto& block = src.blocks[pb];
      if (block == nullptr) continue;
      src_bytes += block->text_bytes;
      out.scheme.assign_into(src.scheme.cells()[pb], cells_scratch);
      const auto mark_env = [&](const geom::Envelope& raw) {
        const geom::Envelope env = raw.expanded_by(expand);
        for (const auto ca : cells_scratch) sfilter->mark(ca, env);
      };
      if (!block->indices.empty()) {
        for (const auto src_idx : block->indices) mark_env(src_envs[src_idx]);
      } else {
        for (const auto& f : block->features) mark_env(f.geometry.envelope());
      }
    }
    const std::uint64_t filter_bytes = sfilter->size_bytes();
    ctx.dfs->put(tag + "._sfilter", std::any(), filter_bytes);
    mapreduce::charge_master_step(ctx, tag + "/filter-build", filter_cpu.seconds(),
                                  /*read=*/src_bytes, /*write=*/filter_bytes);
  }

  // ---- Job 2: partition + pack per-block index (full MR) ------------------
  std::vector<std::vector<std::uint32_t>> idx_splits;
  idx_splits.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    std::vector<std::uint32_t> split;
    split.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) split.push_back(static_cast<std::uint32_t>(i));
    idx_splits.push_back(std::move(split));
  }

  out.blocks.assign(out.scheme.cell_count(), nullptr);

  // Shared job logic (both planes): the map assigns a record to every cell
  // its expanded envelope touches; the reduce materializes one block per
  // cell and packs its STR index. Only the block storage differs — the
  // zero-copy plane keeps indices into the dataset's stable feature span
  // instead of deep feature copies; `text_bytes` (the modeled block size)
  // is computed from the same per-record sizes either way.
  const bool zero_copy = config.zero_copy_plane;
  const geom::OccupancyFilter* filt = sfilter.get();
  const auto part_map = [&data, &out, expand, &ctx, zero_copy, filt,
                         count_shuffle](const std::uint32_t& idx, const auto& emit) {
    // Per-thread scratch keeps the zero-copy plane's assignment free of
    // per-record allocation; the seed plane keeps the verbatim allocating
    // path. Same ids, same order, same counters either way.
    static thread_local std::vector<std::uint32_t> pids_scratch;
    const geom::Envelope env = data.envelopes()[idx].expanded_by(expand);
    std::uint32_t dropped = 0;
    if (filt != nullptr) {
      // Filtered assignment: true negatives never reach the emit (never
      // buffered, never shuffled); a fully filtered record vanishes here.
      dropped = out.scheme.assign_into(env, *filt, pids_scratch);
    } else if (zero_copy) {
      out.scheme.assign_into(env, pids_scratch);
    } else {
      pids_scratch = out.scheme.assign(env);
    }
    const auto& pids = pids_scratch;
    for (const auto pid : pids) emit(pid, idx);
    if (ctx.counters != nullptr) {
      ctx.counters->add("partition.assignments", pids.size());
      ctx.counters->add("partition.records", 1);
      ctx.counters->add("partition.duplicated_records",
                        pids.empty() ? 0 : pids.size() - 1);
      if (count_shuffle) {
        ctx.counters->add("shuffle.assigned_records", pids.size() + dropped);
        ctx.counters->add("shuffle.records", pids.size());
        if (dropped > 0) {
          ctx.counters->add("shuffle.filtered_records", dropped);
          ctx.counters->add("shuffle.filtered_bytes",
                            dropped * (4 + data.record_text_bytes(idx)));
        }
      }
    }
  };
  const auto part_reduce = [&data, &out, zero_copy](const std::uint32_t& pid,
                                                    std::vector<std::uint32_t>& idxs,
                                                    std::vector<std::uint32_t>& outv) {
    auto block = std::make_shared<PartBlock>();
    // Pack an STR index into the block head (built while writing: "virtually
    // for free" in disk terms, but its CPU cost is real and measured here).
    const auto envs = data.envelopes();
    std::vector<index::IndexEntry> entries;
    entries.reserve(idxs.size());
    for (std::uint32_t i = 0; i < idxs.size(); ++i) {
      block->text_bytes += data.record_text_bytes(idxs[i]);
      entries.push_back({envs[idxs[i]], i});
    }
    if (zero_copy) {
      block->base = std::span<const geom::Feature>(data.features());
      block->indices = std::move(idxs);
    } else {
      block->features.reserve(idxs.size());
      for (const auto idx : idxs) block->features.push_back(data.features()[idx]);
    }
    const index::StrTree tree(std::move(entries));
    block->text_bytes += tree.size_bytes() / 4;  // serialized index is compact
    out.blocks[pid] = block;
    outv.push_back(pid);
  };
  const auto part_input_bytes = [&data](const std::uint32_t& idx) {
    return data.record_text_bytes(idx);
  };
  const auto part_pair_bytes = [&data](const std::uint32_t&, const std::uint32_t& idx) {
    return 4 + data.record_text_bytes(idx);
  };
  const auto part_output_bytes = [&out](const std::uint32_t& pid) {
    return out.blocks[pid] != nullptr ? out.blocks[pid]->text_bytes : 0;
  };
  if (zero_copy) {
    auto part_spec = mapreduce::make_typed_spec<std::uint32_t, std::uint32_t,
                                                std::uint32_t, std::uint32_t>(
        tag + "/partition", part_map, part_reduce, part_input_bytes, part_pair_bytes,
        part_output_bytes);
    part_spec.config = config.mr;
    mapreduce::run_map_reduce(ctx, part_spec, idx_splits);
  } else {
    mapreduce::MapReduceSpec<std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t>
        part_spec;
    part_spec.name = tag + "/partition";
    part_spec.config = config.mr;
    part_spec.map = part_map;
    part_spec.reduce = part_reduce;
    part_spec.input_bytes = part_input_bytes;
    part_spec.pair_bytes = part_pair_bytes;
    part_spec.output_bytes = part_output_bytes;
    part_spec.key_less = std::less<std::uint32_t>();
    part_spec.key_hash = std::hash<std::uint32_t>();
    mapreduce::run_map_reduce(ctx, part_spec, idx_splits);
  }

  // Record the block files in the DFS catalog.
  for (std::uint32_t pid = 0; pid < out.blocks.size(); ++pid) {
    if (out.blocks[pid] != nullptr) {
      ctx.dfs->put(out.dfs_prefix + std::to_string(pid), std::any(out.blocks[pid]),
                   out.blocks[pid]->text_bytes);
    }
  }
  return out;
}

}  // namespace

core::RunReport run_spatial_hadoop(const workload::Dataset& left,
                                   const workload::Dataset& right,
                                   const core::JoinQueryConfig& query,
                                   const core::ExecutionConfig& exec,
                                   const SpatialHadoopConfig& config);

namespace {

dfs::DfsConfig dfs_config(const core::JoinQueryConfig& query,
                          const core::ExecutionConfig& exec) {
  return dfs::DfsConfig{
      .block_size = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(64.0 * 1024 * 1024 / exec.data_scale)),
      .replication = 3,
      .datanode_count = exec.cluster.node_count,
      .seed = query.seed,
  };
}

/// The distributed-join stage shared by the end-to-end, pre-indexed and
/// resident entry points: getSplits on the master, then a map-only
/// local-join job. `shared_cache`, when non-null, is a cross-query
/// geom::PreparedCache owned by the caller (the serving catalog); the
/// join's cache-hit counters always record only this run's delta.
std::vector<JoinPair> run_distributed_join(mapreduce::MrContext& ctx,
                                           const IndexedDataset& ia,
                                           const IndexedDataset& ib,
                                           const core::JoinQueryConfig& query,
                                           const SpatialHadoopConfig& config,
                                           geom::PreparedCache* shared_cache = nullptr) {
  // ---- Global join in getSplits(): master-side MBR join of partitions ------
  CpuStopwatch splits_cpu;
  struct JoinSplit {
    std::uint32_t pa;
    std::uint32_t pb;
  };
  std::vector<JoinSplit> join_splits;
  {
    std::vector<index::IndexEntry> cells_a;
    std::vector<index::IndexEntry> cells_b;
    for (std::uint32_t i = 0; i < ia.scheme.cell_count(); ++i) {
      if (ia.blocks[i] != nullptr) cells_a.push_back({ia.scheme.cells()[i], i});
    }
    for (std::uint32_t i = 0; i < ib.scheme.cell_count(); ++i) {
      if (ib.blocks[i] != nullptr) cells_b.push_back({ib.scheme.cells()[i], i});
    }
    index::plane_sweep_join(cells_a, cells_b, [&](std::uint32_t a, std::uint32_t b) {
      join_splits.push_back({a, b});
    });
  }
  mapreduce::charge_master_step(
      ctx, "join/getSplits", splits_cpu.seconds(),
      /*read=*/ia.scheme.size_bytes() + ib.scheme.size_bytes(), /*write=*/0);

  // ---- Local join: map-only job, one task per partition pair ---------------
  // One prepared-geometry cache per join wave (or the caller's resident
  // cache): overlap-duplicated B-side geometries are bound once and shared
  // across partition pairs (and across the concurrently running map tasks —
  // the cache is thread-safe). A resident cache carries hit/miss history
  // from earlier queries, so snapshot and report only this run's delta;
  // for the run-scoped cache the delta equals the totals.
  geom::PreparedCache local_cache;
  geom::PreparedCache& prepared_cache =
      shared_cache != nullptr ? *shared_cache : local_cache;
  const std::uint64_t cache_hits0 = prepared_cache.hits();
  const std::uint64_t cache_misses0 = prepared_cache.misses();
  core::LocalJoinSpec local_spec;
  local_spec.algorithm = query.local_algorithm.value_or(config.local_algorithm);
  local_spec.engine = &geom::GeometryEngine::get(config.engine);
  local_spec.predicate = query.predicate;
  local_spec.within_distance = query.within_distance;
  local_spec.prepared_cache = &prepared_cache;
  // Surface the refine.* accounting (exact tests vs approximation early
  // accepts/rejects) in this run's counters; Counters is thread-safe and
  // run_local_join flushes once per call, not per pair.
  local_spec.refine_counters = ctx.counters;

  const bool zero_copy = config.zero_copy_plane;
  // Query-owned scratch pool instead of a `static thread_local` scratch:
  // index trees and candidate buffers stay warm across the partition pairs
  // of this join wave but die with the query, so nothing survives onto the
  // pool threads a serving process keeps around (see core::ScratchPool).
  core::ScratchPool scratch_pool;
  const auto join_map = [&, zero_copy](const JoinSplit& split,
                                       std::vector<JoinPair>& out_pairs) {
    const PartBlock& block_a = *ia.blocks[split.pa];
    const PartBlock& block_b = *ib.blocks[split.pb];
    // Reference-point duplicate avoidance: emit only in the canonical
    // (lowest-id) cell pair containing the reference point.
    const auto accept = [&](const geom::Envelope& le, const geom::Envelope& re) {
      const geom::Coord p = core::reference_point(le, re);
      const geom::Envelope pe = geom::Envelope::of_point(p.x, p.y);
      if (zero_copy) {
        // min_assigned scans the grid cell directory and skips the id-list
        // materialization; same canonical cell as the seed path below.
        return ia.scheme.min_assigned(pe) == split.pa &&
               ib.scheme.min_assigned(pe) == split.pb;
      }
      const auto cells_a = ia.scheme.assign(pe);
      const auto cells_b = ib.scheme.assign(pe);
      const std::uint32_t canon_a = *std::min_element(cells_a.begin(), cells_a.end());
      const std::uint32_t canon_b = *std::min_element(cells_b.begin(), cells_b.end());
      return canon_a == split.pa && canon_b == split.pb;
    };
    auto scratch = scratch_pool.acquire();
    if (zero_copy) {
      core::run_local_join(block_a.view(), block_b.view(), local_spec, accept,
                           *scratch, out_pairs);
    } else {
      core::run_local_join(std::span<const geom::Feature>(block_a.features),
                           std::span<const geom::Feature>(block_b.features),
                           local_spec, accept, *scratch, out_pairs);
    }
  };
  const auto join_split_bytes = [&](const JoinSplit& split) {
    return ia.blocks[split.pa]->text_bytes + ib.blocks[split.pb]->text_bytes;
  };
  const auto join_output_bytes = [](const JoinPair&) -> std::uint64_t { return 16; };
  std::vector<JoinPair> pairs;
  if (zero_copy) {
    auto join_spec = mapreduce::make_typed_map_only_spec<JoinSplit, JoinPair>(
        "join/local", join_map, join_split_bytes, join_output_bytes);
    join_spec.config = config.mr;
    pairs = mapreduce::run_map_only(ctx, join_spec, join_splits);
  } else {
    mapreduce::MapOnlySpec<JoinSplit, JoinPair> join_spec;
    join_spec.name = "join/local";
    join_spec.config = config.mr;
    join_spec.map = join_map;
    join_spec.split_bytes = join_split_bytes;
    join_spec.output_bytes = join_output_bytes;
    pairs = mapreduce::run_map_only(ctx, join_spec, join_splits);
  }
  if (ctx.counters != nullptr) {
    ctx.counters->add("join.partition_pairs", join_splits.size());
    ctx.counters->add("join.result_pairs", pairs.size());
    ctx.counters->add("join.prepared_cache_hits",
                      prepared_cache.hits() - cache_hits0);
    ctx.counters->add("join.prepared_cache_misses",
                      prepared_cache.misses() - cache_misses0);
  }
  return pairs;
}

void finalize_report(core::RunReport& report, std::vector<JoinPair> pairs,
                     const core::ExecutionConfig& exec) {
  report.success = true;
  report.status = Status::Ok();
  report.result_count = pairs.size();
  report.result_hash = core::hash_pairs_unordered(pairs);
  if (exec.collect_pairs) report.pairs = std::move(pairs);
  report.index_a_seconds = report.metrics.seconds_with_prefix("A/");
  report.index_b_seconds = report.metrics.seconds_with_prefix("B/");
  report.join_seconds = report.metrics.seconds_with_prefix("join/");
  report.total_seconds = report.metrics.total_seconds();
  core::annotate_recovery(report);
}

}  // namespace

/// Everything the serving layer keeps resident between queries for one
/// dataset pair: owned copies of both datasets (zero-copy partition blocks
/// span the indexed dataset's feature array, so the resident state must
/// index its own copies) plus the indexed partition directories the cold
/// driver's own preprocessing built over them, and the ingest-time counters
/// those jobs emitted — replayed into every resident query's report so the
/// full counter set matches a cold batch run exactly.
struct SpatialHadoopResident::Impl {
  workload::Dataset left;
  workload::Dataset right;
  IndexedDataset ia;
  IndexedDataset ib;
  cluster::Counters ingest_counters;
  double expand = 0.0;
  core::RunReport build_report;
};

namespace {

core::RunReport run_spatial_hadoop_impl(const workload::Dataset& left,
                                        const workload::Dataset& right,
                                        const core::JoinQueryConfig& query,
                                        const core::ExecutionConfig& exec,
                                        const SpatialHadoopConfig& config,
                                        SpatialHadoopResident::Impl* capture) {
  core::RunReport report;
  trace::TraceCollector collector(exec.cluster.node_count, exec.cluster.node.cores);
  // Indexing counters accumulate separately and are merged into the run's
  // counters below — totals are unchanged for a cold run, and a resident
  // build keeps the ingest share to replay into resident query reports.
  // Declared outside the try so a failure mid-preprocessing (phase timeout,
  // crash past the budget) still surfaces its counters in the report.
  cluster::Counters ingest_counters;
  bool ingest_merged = false;

  try {
    // Fault-plan validation and DFS setup inside the try: a chaos-generated
    // invalid plan reports a structured Status instead of escaping.
    dfs::SimDfs dfs(dfs_config(query, exec));
    const cluster::FaultInjector faults(config.faults);
    mapreduce::MrContext ctx{&exec.cluster, exec.data_scale, &dfs, &report.metrics,
                             &ingest_counters, &faults};
    if (exec.trace) ctx.trace = &collector;

    // ---- Preprocessing: index both inputs (IA, IB) -------------------------
    // With the shuffle filter on, the resident (right) side is indexed first
    // so its partition blocks can seed the occupancy bitmap that prunes the
    // streamed (left) side's shuffle. The knob defaults to the data-plane
    // default: on for the reworked zero-copy plane, off for the seed
    // baseline plane.
    const bool filter_on = config.policy.shuffle_filter.value_or(config.zero_copy_plane);
    IndexedDataset ia;
    IndexedDataset ib;
    if (filter_on) {
      ib = index_dataset(ctx, right, "B", query, exec, config, nullptr,
                         /*count_shuffle=*/true);
      const FilterSource source{&ib, &right};
      ia = index_dataset(ctx, left, "A", query, exec, config, &source,
                         /*count_shuffle=*/true);
    } else {
      ia = index_dataset(ctx, left, "A", query, exec, config);
      ib = index_dataset(ctx, right, "B", query, exec, config);
    }
    report.counters.merge(ingest_counters);
    ingest_merged = true;
    ctx.counters = &report.counters;
    if (capture != nullptr) {
      capture->ia = ia;
      capture->ib = ib;
      capture->ingest_counters = ingest_counters;
      capture->expand = query.predicate == core::JoinPredicate::kWithinDistance
                            ? query.within_distance / 2.0
                            : 0.0;
    }

    finalize_report(report, run_distributed_join(ctx, ia, ib, query, config), exec);
  } catch (const SjcError& e) {
    // SpatialHadoop has no intrinsic failure modes; injected faults
    // (TaskFailed past the retry budget, BlockUnavailable, lifecycle kills)
    // and invalid fault plans land here as a structured Status.
    report.success = false;
    report.failure_reason = e.what();
    report.status = status_from_exception(e);
    report.total_seconds = report.metrics.total_seconds();
    core::annotate_recovery(report);
  }
  if (!ingest_merged) report.counters.merge(ingest_counters);
  if (exec.trace) report.trace = collector.merged();
  return report;
}

}  // namespace

core::RunReport run_spatial_hadoop(const workload::Dataset& left,
                                   const workload::Dataset& right,
                                   const core::JoinQueryConfig& query,
                                   const core::ExecutionConfig& exec,
                                   const SpatialHadoopConfig& config) {
  return run_spatial_hadoop_impl(left, right, query, exec, config, nullptr);
}

const core::RunReport& SpatialHadoopResident::build_report() const {
  require(impl_ != nullptr, "SpatialHadoopResident: not built");
  return impl_->build_report;
}

std::size_t SpatialHadoopResident::left_size() const {
  require(impl_ != nullptr, "SpatialHadoopResident: not built");
  return impl_->left.size();
}

std::size_t SpatialHadoopResident::right_size() const {
  require(impl_ != nullptr, "SpatialHadoopResident: not built");
  return impl_->right.size();
}

SpatialHadoopResident spatial_hadoop_build_resident(const workload::Dataset& left,
                                                    const workload::Dataset& right,
                                                    const core::JoinQueryConfig& query,
                                                    const core::ExecutionConfig& exec,
                                                    const SpatialHadoopConfig& config) {
  auto impl = std::make_shared<SpatialHadoopResident::Impl>();
  // Copy the datasets first and index the copies: zero-copy blocks borrow
  // the indexed dataset's feature span, which must outlive the catalog entry.
  impl->left = left;
  impl->right = right;
  impl->build_report =
      run_spatial_hadoop_impl(impl->left, impl->right, query, exec, config, impl.get());
  require(impl->build_report.success,
          "spatial_hadoop_build_resident: build failed: " +
              impl->build_report.failure_reason);
  SpatialHadoopResident resident;
  resident.impl_ = std::move(impl);
  return resident;
}

core::RunReport run_spatial_hadoop_resident(const SpatialHadoopResident& resident,
                                            const core::JoinQueryConfig& query,
                                            const core::ExecutionConfig& exec,
                                            const SpatialHadoopConfig& config,
                                            geom::PreparedCache* shared_cache) {
  require(resident.impl_ != nullptr,
          "run_spatial_hadoop_resident: resident state must be built first");
  const SpatialHadoopResident::Impl& impl = *resident.impl_;
  core::RunReport report;
  trace::TraceCollector collector(exec.cluster.node_count, exec.cluster.node.cores);
  try {
    const double expand = query.predicate == core::JoinPredicate::kWithinDistance
                              ? query.within_distance / 2.0
                              : 0.0;
    require(expand == impl.expand,
            "run_spatial_hadoop_resident: query envelope expansion differs "
            "from the resident build (rebuild the catalog entry)");
    // Fresh DFS + context per query, like the pre-indexed path: the block
    // files were persisted by the build run; nothing is re-put here.
    dfs::SimDfs dfs(dfs_config(query, exec));
    mapreduce::MrContext ctx{&exec.cluster, exec.data_scale, &dfs, &report.metrics,
                             &report.counters};
    if (exec.trace) ctx.trace = &collector;
    // Replay the ingest-time counters (partition.*, shuffle.*) captured at
    // build time: the resident parity tests compare the full counter set
    // against a cold batch run.
    report.counters.merge(impl.ingest_counters);
    finalize_report(
        report,
        run_distributed_join(ctx, impl.ia, impl.ib, query, config, shared_cache),
        exec);
    // With re-partitioning skipped the query has no indexing phases.
    report.index_a_seconds = 0.0;
    report.index_b_seconds = 0.0;
  } catch (const SjcError& e) {
    report.success = false;
    report.failure_reason = e.what();
    report.status = status_from_exception(e);
    report.total_seconds = report.metrics.total_seconds();
    core::annotate_recovery(report);
  }
  if (exec.trace) report.trace = collector.merged();
  return report;
}

// ---------------------------------------------------------------------------
// Pre-indexed ("re-partitioning skipped") path
// ---------------------------------------------------------------------------

struct SpatialHadoopIndex::Impl {
  IndexedDataset data;
};

double SpatialHadoopIndex::build_seconds() const { return metrics_.total_seconds(); }

std::size_t SpatialHadoopIndex::partition_count() const {
  std::size_t n = 0;
  for (const auto& block : impl_->data.blocks) {
    if (block != nullptr) ++n;
  }
  return n;
}

SpatialHadoopIndex spatial_hadoop_build_index(const workload::Dataset& data,
                                              const core::JoinQueryConfig& query,
                                              const core::ExecutionConfig& exec,
                                              const SpatialHadoopConfig& config) {
  SpatialHadoopIndex index;
  index.name_ = data.name();
  dfs::SimDfs dfs(dfs_config(query, exec));
  mapreduce::MrContext ctx{&exec.cluster, exec.data_scale, &dfs, &index.metrics_,
                           nullptr};
  auto impl = std::make_shared<SpatialHadoopIndex::Impl>();
  impl->data = index_dataset(ctx, data, data.name(), query, exec, config);
  index.impl_ = std::move(impl);
  return index;
}

core::RunReport run_spatial_hadoop_indexed(const SpatialHadoopIndex& left,
                                           const SpatialHadoopIndex& right,
                                           const core::JoinQueryConfig& query,
                                           const core::ExecutionConfig& exec,
                                           const SpatialHadoopConfig& config) {
  require(left.impl_ != nullptr && right.impl_ != nullptr,
          "run_spatial_hadoop_indexed: indexes must be built first");
  core::RunReport report;
  dfs::SimDfs dfs(dfs_config(query, exec));
  mapreduce::MrContext ctx{&exec.cluster, exec.data_scale, &dfs, &report.metrics,
                           &report.counters};
  trace::TraceCollector collector(exec.cluster.node_count, exec.cluster.node.cores);
  if (exec.trace) ctx.trace = &collector;
  finalize_report(
      report, run_distributed_join(ctx, left.impl_->data, right.impl_->data, query, config),
      exec);
  // With re-partitioning skipped the run has no indexing phases.
  report.index_a_seconds = 0.0;
  report.index_b_seconds = 0.0;
  if (exec.trace) report.trace = collector.merged();
  return report;
}

}  // namespace sjc::systems
