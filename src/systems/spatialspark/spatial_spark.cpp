#include "systems/spatialspark/spatial_spark.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>

#include "core/feature_view.hpp"
#include "core/local_join.hpp"
#include "index/str_tree.hpp"
#include "partition/partitioner.hpp"
#include "plan/cost_model.hpp"
#include "plan/partition_refiner.hpp"
#include "rdd/rdd.hpp"
#include "util/stopwatch.hpp"
#include "workload/quarantine.hpp"
#include "workload/tsv.hpp"

namespace sjc::systems {

namespace {

using core::FeatureRef;
using core::JoinPair;
using geom::Feature;

std::vector<std::vector<std::string>> chunk_lines(std::vector<std::string> lines,
                                                  std::size_t n) {
  std::vector<std::vector<std::string>> out;
  const std::size_t total = lines.size();
  const std::size_t per = (total + n - 1) / std::max<std::size_t>(n, 1);
  std::size_t i = 0;
  while (i < total) {
    const std::size_t end = std::min(i + per, total);
    out.emplace_back(
        std::make_move_iterator(lines.begin() + static_cast<std::ptrdiff_t>(i)),
        std::make_move_iterator(lines.begin() + static_cast<std::ptrdiff_t>(end)));
    i = end;
  }
  if (out.empty()) out.emplace_back();
  return out;
}

/// TSV lines for one input, with the fault plan's malformed rows injected at
/// deterministic positions (seed x tag). Junk lines are always *extra*
/// records — real rows are never corrupted — so a quarantining parse yields
/// exactly the fault-free feature set.
std::vector<std::string> input_lines(const workload::Dataset& data,
                                     const std::string& tag,
                                     const cluster::FaultPlan& plan,
                                     cluster::Counters& counters) {
  auto lines = workload::dataset_to_tsv(data, /*include_pad=*/true);
  if (plan.malformed_rows > 0) {
    workload::inject_malformed_rows(lines, plan.malformed_rows,
                                    plan.seed ^ std::hash<std::string>{}(tag));
    counters.add("input.malformed_rows_injected", plan.malformed_rows);
  }
  return lines;
}

rdd::Sizer<FeatureRef> make_ref_sizer(std::uint64_t rec_overhead) {
  return [rec_overhead](const FeatureRef& r) {
    return static_cast<std::uint64_t>(r.get().geometry.size_bytes()) + rec_overhead;
  };
}

/// Stages 3-5 of the partitioned zero-copy join (assign -> groupByKey x2 ->
/// join -> local-join), shared verbatim by the cold batch path and the
/// resident serving path: given the same inputs (feature refs, scheme,
/// filters) both produce bit-identical pair sets and identical shuffle.* /
/// partition.* / refine.* counters — the resident-parity tests depend on
/// this being one function, not two copies.
void run_spark_join_tail(
    rdd::SparkRuntime& rt, const core::ExecutionConfig& exec,
    rdd::Rdd<FeatureRef> left_rdd, rdd::Rdd<FeatureRef> right_rdd,
    std::size_t left_count, std::size_t right_count,
    const rdd::Broadcast<partition::PartitionScheme>& scheme_bc,
    const geom::OccupancyFilter* left_filt, const geom::OccupancyFilter* right_filt,
    bool filter_on, const core::LocalJoinSpec& local_spec,
    geom::PreparedCache& prepared_cache, std::uint32_t parallelism,
    std::uint64_t rec_overhead, core::RunReport& report) {
  const rdd::Sizer<std::pair<std::uint32_t, FeatureRef>> pid_ref_sizer =
      [rec_overhead](const std::pair<std::uint32_t, FeatureRef>& kv) {
        return 4 + static_cast<std::uint64_t>(kv.second.get().geometry.size_bytes()) +
               rec_overhead;
      };
  const rdd::Sizer<std::pair<std::uint32_t, std::vector<FeatureRef>>> grouped_sizer =
      [rec_overhead](const std::pair<std::uint32_t, std::vector<FeatureRef>>& kv) {
        std::uint64_t bytes = 4 + rec_overhead;
        for (const auto& r : kv.second) {
          bytes += r.get().geometry.size_bytes() + rec_overhead;
        }
        return bytes;
      };
  const rdd::Sizer<JoinPair> pair_sizer = [rec_overhead](const JoinPair&) {
    return 16 + rec_overhead;
  };
  const double expand = local_spec.envelope_expansion();

  // A shared resident cache carries hit/miss history from earlier queries;
  // snapshot so this run's counters record only its own delta (for the
  // run-scoped cold-path cache the delta equals the totals).
  const std::uint64_t cache_hits0 = prepared_cache.hits();
  const std::uint64_t cache_misses0 = prepared_cache.misses();

  // ---- 3. Assign partition ids to both sides -------------------------------
  // Shared accumulators for the filtered path, per side: the pre-filter
  // assignment count, the modeled bytes the dropped copies would have
  // shuffled, and the explicit per-record duplicate count (`assigned -
  // size()` would underflow once whole records are filtered away).
  struct FilterStats {
    std::atomic<std::uint64_t> pre_assigned{0};
    std::atomic<std::uint64_t> filtered_bytes{0};
    std::atomic<std::uint64_t> dups{0};
  };
  auto left_stats = std::make_shared<FilterStats>();
  auto right_stats = std::make_shared<FilterStats>();
  const auto make_assign_fn = [&scheme_bc, expand, rec_overhead](
                                  const geom::OccupancyFilter* filt,
                                  std::shared_ptr<FilterStats> stats) {
    return [&scheme_bc, expand, rec_overhead, filt, stats = std::move(stats)](
               const FeatureRef& f,
               std::vector<std::pair<std::uint32_t, FeatureRef>>& out) {
      // assign_into reuses a per-thread scratch and queries the grid cell
      // directory — same id set as the seed plane's assign(). The scratch is
      // cleared and refilled on every call, so nothing leaks across queries
      // even though the pool thread outlives this one.
      static thread_local std::vector<std::uint32_t> pids_scratch;
      const geom::Envelope env = f.get().geometry.envelope().expanded_by(expand);
      if (filt == nullptr) {
        scheme_bc.value().assign_into(env, pids_scratch);
      } else {
        const std::uint32_t dropped =
            scheme_bc.value().assign_into(env, *filt, pids_scratch);
        stats->pre_assigned.fetch_add(pids_scratch.size() + dropped,
                                      std::memory_order_relaxed);
        if (!pids_scratch.empty()) {
          stats->dups.fetch_add(pids_scratch.size() - 1,
                                std::memory_order_relaxed);
        }
        if (dropped > 0) {
          const std::uint64_t copy_bytes =
              4 + static_cast<std::uint64_t>(f.get().geometry.size_bytes()) +
              rec_overhead;
          stats->filtered_bytes.fetch_add(dropped * copy_bytes,
                                          std::memory_order_relaxed);
        }
      }
      for (const auto pid : pids_scratch) out.emplace_back(pid, f);
    };
  };
  auto left_pids = left_rdd.flat_map<std::pair<std::uint32_t, FeatureRef>>(
      "assign", make_assign_fn(left_filt, left_stats), pid_ref_sizer);
  auto right_pids = right_rdd.flat_map<std::pair<std::uint32_t, FeatureRef>>(
      "assign", make_assign_fn(right_filt, right_stats), pid_ref_sizer);
  const auto count_records = [](const auto& rdd) {
    std::size_t n = 0;
    for (const auto& part : rdd.partitions()) n += part.size();
    return n;
  };
  const std::size_t left_assigned = count_records(left_pids);
  const std::size_t right_assigned = count_records(right_pids);
  report.counters.add("assign.left_assignments", left_assigned);
  report.counters.add("assign.right_assignments", right_assigned);
  if (!filter_on) {
    report.counters.add("partition.duplicated_records",
                        left_assigned - left_count + right_assigned - right_count);
  } else {
    const std::uint64_t pre =
        left_stats->pre_assigned.load() + right_stats->pre_assigned.load();
    report.counters.add("partition.duplicated_records",
                        left_stats->dups.load() + right_stats->dups.load());
    // Both assign stages feed groupByKey, so the whole-run invariant
    // assigned == shuffled + filtered is also the per-phase one.
    report.counters.add("shuffle.assigned_records", pre);
    report.counters.add("shuffle.records", left_assigned + right_assigned);
    report.counters.add("shuffle.filtered_records",
                        pre - left_assigned - right_assigned);
    report.counters.add("shuffle.filtered_bytes",
                        left_stats->filtered_bytes.load() +
                            right_stats->filtered_bytes.load());
  }
  // The input lineage is not retained once consumed (a resident query drops
  // only its per-query handles; the catalog keeps the backing features).
  left_rdd = {};
  right_rdd = {};

  // ---- 4. groupByKey both sides, join on partition id ----------------------
  auto left_grouped = rdd::group_by_key<std::uint32_t, FeatureRef>(
      left_pids, parallelism, grouped_sizer);
  left_pids = {};
  auto right_grouped = rdd::group_by_key<std::uint32_t, FeatureRef>(
      right_pids, parallelism, grouped_sizer);
  right_pids = {};

  const rdd::Sizer<
      std::tuple<std::uint32_t, std::vector<FeatureRef>, std::vector<FeatureRef>>>
      joined_sizer = [rec_overhead](const auto& t) {
        std::uint64_t bytes = 4 + rec_overhead;
        for (const auto& r : std::get<1>(t)) {
          bytes += r.get().geometry.size_bytes() + rec_overhead;
        }
        for (const auto& r : std::get<2>(t)) {
          bytes += r.get().geometry.size_bytes() + rec_overhead;
        }
        return bytes;
      };
  auto joined = rdd::join_by_key<std::uint32_t, std::vector<FeatureRef>,
                                 std::vector<FeatureRef>>(left_grouped, right_grouped,
                                                          parallelism, joined_sizer);
  left_grouped = {};
  right_grouped = {};

  // ---- 5. Local join per partition pair ------------------------------------
  // Query-owned scratch pool instead of a `static thread_local` scratch:
  // buffers stay warm across the partition pairs of this wave but die with
  // the query, so nothing survives onto the pool threads a serving process
  // keeps around (see core::ScratchPool).
  core::ScratchPool scratch_pool;
  auto pairs_rdd = joined.flat_map<JoinPair>(
      "local-join",
      [&](const std::tuple<std::uint32_t, std::vector<FeatureRef>,
                           std::vector<FeatureRef>>& t,
          std::vector<JoinPair>& out) {
        const std::uint32_t pid = std::get<0>(t);
        const auto accept = [&](const geom::Envelope& le, const geom::Envelope& re) {
          const geom::Coord p = core::reference_point(le, re);
          // Same canonical cell as the seed plane's assign() + min_element,
          // without materializing the id list.
          return scheme_bc.value().min_assigned(
                     geom::Envelope::of_point(p.x, p.y)) == pid;
        };
        auto scratch = scratch_pool.acquire();
        core::run_local_join(core::FeatureRefSpan(std::get<1>(t)),
                             core::FeatureRefSpan(std::get<2>(t)), local_spec,
                             accept, *scratch, out);
      },
      pair_sizer);
  report.counters.add("join.prepared_cache_hits",
                      prepared_cache.hits() - cache_hits0);
  report.counters.add("join.prepared_cache_misses",
                      prepared_cache.misses() - cache_misses0);

  report.success = true;
  report.status = Status::Ok();
  if (exec.collect_pairs) {
    std::vector<JoinPair> pairs = pairs_rdd.collect();
    report.result_count = pairs.size();
    report.result_hash = core::hash_pairs_unordered(pairs);
    report.pairs = std::move(pairs);
  } else {
    CpuStopwatch agg_cpu;
    for (const auto& part : pairs_rdd.partitions()) {
      report.result_count += part.size();
      report.result_hash += core::hash_pairs_unordered(part);
    }
    rt.record_narrow_stage("local-join.aggregate", {agg_cpu.seconds()});
    rt.record_collect("result.aggregate", 16 * pairs_rdd.num_partitions());
  }
}

}  // namespace

/// Everything the serving layer keeps resident between queries for one
/// dataset pair: the parsed feature store, the per-chunk FeatureRef views
/// the parse stage produced, the partition scheme and the occupancy
/// filters. All of it is produced by the cold path's own preprocessing code
/// (capture-on-build), which is what makes resident queries bit-identical
/// to cold ones.
struct SpatialSparkResident::Impl {
  std::shared_ptr<std::vector<std::vector<Feature>>> store;
  std::vector<std::vector<FeatureRef>> left_chunks;
  std::vector<std::vector<FeatureRef>> right_chunks;
  std::size_t left_count = 0;
  std::size_t right_count = 0;
  std::optional<partition::PartitionScheme> scheme;
  std::unique_ptr<geom::OccupancyFilter> right_occ;  // filters the A side
  std::unique_ptr<geom::OccupancyFilter> left_occ;   // filters the B side
  bool filter_on = false;
  double expand = 0.0;
  core::RunReport build_report;
};

namespace {

/// Zero-copy partitioned join: the same stage sequence as the seed plane
/// (parse -> sample -> assign -> groupByKey x2 -> join -> local-join) with
/// one difference — each input is parsed once into a run-scoped feature
/// store and every downstream RDD ships 8-byte FeatureRef handles instead
/// of deep Feature copies. All sizers charge the referenced record's full
/// modeled bytes, so RDD memory registrations, shuffle charges, the OOM
/// gate and stage names are identical to the seed plane; only the
/// harness-side copying disappears.
///
/// When `capture` is non-null the preprocessing products (feature store,
/// parsed chunks, scheme, filters) are additionally copied into it for
/// resident reuse; the run itself is unaffected.
void run_partitioned_join_zero_copy(
    const workload::Dataset& left, const workload::Dataset& right,
    const core::JoinQueryConfig& query, const core::ExecutionConfig& exec,
    const SpatialSparkConfig& config, rdd::SparkRuntime& rt, dfs::SimDfs& dfs,
    const core::LocalJoinSpec& local_spec, geom::PreparedCache& prepared_cache,
    std::uint32_t parallelism, workload::RowQuarantine& quarantine,
    core::RunReport& report, SpatialSparkResident::Impl* capture = nullptr) {
  const std::uint64_t rec_overhead = config.record_overhead_bytes;
  const rdd::Sizer<FeatureRef> ref_sizer = make_ref_sizer(rec_overhead);
  const rdd::Sizer<std::string> line_sizer = [](const std::string& l) {
    return static_cast<std::uint64_t>(l.size()) + 48;  // JVM string header
  };

  // Run-scoped feature store: one slot per line partition, filled by the
  // parse stage and kept alive (harness-side only) until the run returns —
  // or, under capture, until the resident catalog entry is dropped.
  // Dropping an Rdd<FeatureRef> handle releases its *modeled* bytes on the
  // seed schedule while the backing features stay valid for later refs.
  auto store = std::make_shared<std::vector<std::vector<Feature>>>();
  workload::RowQuarantine* qsink = &quarantine;
  const auto read_and_parse = [&](const workload::Dataset& data,
                                  const std::string& tag) {
    dfs.put(tag + ".raw", std::any(), data.text_bytes());
    auto lines = rdd::Rdd<std::string>::create(
        rt,
        chunk_lines(input_lines(data, tag, config.spark.faults, report.counters),
                    parallelism),
        line_sizer, tag + ".text");
    rt.record_input_read(tag + ".read", data.text_bytes(),
                         dfs.block_count(tag + ".raw"));
    const std::size_t base = store->size();
    store->resize(base + lines.num_partitions());
    return lines.map_partitions_indexed<FeatureRef>(
        "parse",
        [store, base, qsink](std::size_t p, const std::vector<std::string>& in,
                             std::vector<FeatureRef>& out) {
          auto& slot = (*store)[base + p];
          slot.reserve(in.size());
          std::string error;
          for (const auto& line : in) {
            if (auto f = workload::try_feature_from_tsv(line, &error)) {
              slot.push_back(std::move(*f));
            } else {
              qsink->divert("spark/parse", line, error);
            }
          }
          out.reserve(slot.size());
          for (const auto& f : slot) out.push_back(FeatureRef{&f});
        },
        ref_sizer);
  };
  auto left_rdd = read_and_parse(left, "A");
  auto right_rdd = read_and_parse(right, "B");

  // ---- 2. Sample the right side, derive partitions, broadcast --------------
  const double sample_rate = core::effective_sample_rate(
      query.sample_rate, right.size(),
      core::effective_target_partitions(query, exec.cluster));
  auto sample_rdd = right_rdd.sample("sample", sample_rate, query.seed);
  const std::vector<FeatureRef> sample = sample_rdd.collect();

  CpuStopwatch driver_cpu;
  std::vector<geom::Envelope> sample_envs;
  sample_envs.reserve(sample.size());
  for (const auto& r : sample) sample_envs.push_back(r.get().geometry.envelope());
  geom::Envelope joint_extent = left.extent();
  joint_extent.expand_to_include(right.extent());
  const std::uint32_t target_cells =
      core::effective_target_partitions(query, exec.cluster);
  partition::PartitionScheme scheme = partition::make_partitions(
      query.partitioner, sample_envs, joint_extent, target_cells);
  rt.record_narrow_stage("driver.partition", {driver_cpu.seconds()});

  const double expand = local_spec.envelope_expansion();

  // ---- 2a. Optional skew-aware hotspot refinement (driver-side) ------------
  // Probe the shuffle load each cell of the sampled scheme would receive
  // (the exact assignment the assign stages perform below, tallied instead
  // of emitted), split hotspot cells, and only then broadcast/capture the
  // scheme — so the resident path and every downstream stage see the
  // refined cell set. Runs before the occupancy filter on purpose: the
  // probe must see unfiltered load, and the bitmaps must be built against
  // the final cells.
  if (config.policy.repartition.value_or(false)) {
    CpuStopwatch skew_cpu;
    const plan::PartitionRefiner refiner(query.partitioner, config.policy.skew);
    const auto probe = [&](const partition::PartitionScheme& s) {
      std::vector<plan::CellLoad> loads(s.cell_count());
      std::vector<std::uint32_t> pids;
      const auto tally = [&](const rdd::Rdd<FeatureRef>& side) {
        for (const auto& part : side.partitions()) {
          for (const auto& r : part) {
            const Feature& f = r.get();
            s.assign_into(f.geometry.envelope().expanded_by(expand), pids);
            const std::uint64_t bytes =
                4 + static_cast<std::uint64_t>(f.geometry.size_bytes()) +
                rec_overhead;
            for (const auto pid : pids) {
              ++loads[pid].records;
              loads[pid].bytes += bytes;
            }
          }
        }
      };
      tally(left_rdd);
      tally(right_rdd);
      return loads;
    };
    plan::RefineResult refined = refiner.refine(scheme, probe);
    rt.record_narrow_stage("driver.skew-refine", {skew_cpu.seconds()});
    plan::record_repartition_counters(refined, report.counters);
    scheme = std::move(refined.scheme);
  }

  if (capture != nullptr) {
    capture->store = store;
    capture->left_chunks.assign(left_rdd.partitions().begin(),
                                left_rdd.partitions().end());
    capture->right_chunks.assign(right_rdd.partitions().begin(),
                                 right_rdd.partitions().end());
    capture->left_count = left.size();
    capture->right_count = right.size();
    capture->scheme.emplace(scheme);
  }

  const std::uint64_t scheme_bytes = scheme.size_bytes() * 2;  // cells + index
  rdd::Broadcast<partition::PartitionScheme> scheme_bc(rt, std::move(scheme),
                                                       scheme_bytes, "scheme");

  // ---- 2b. Optional map-side shuffle filter (LocationSpark's sFilter) ------
  // Two narrow passes replay the exact (unfiltered) assignment each side's
  // own assign stage would perform and mark each expanded envelope into its
  // cells' occupancy bitmaps. Because the scheme is *joint*, filtering is
  // symmetric and stays sound both ways: a pair needs both records in the
  // same cell with intersecting expanded envelopes, so each side's copy in a
  // cell provably without partners can be dropped. Both bitmaps are
  // broadcast next to the scheme; the assign stages consult them below.
  // The seed copying plane is the unfiltered bench baseline and never takes
  // this path; the broadcast join shuffles nothing to filter.
  const bool filter_on = config.policy.shuffle_filter.value_or(true);
  std::optional<rdd::Broadcast<geom::OccupancyFilter>> right_occ_bc;  // filters A
  std::optional<rdd::Broadcast<geom::OccupancyFilter>> left_occ_bc;   // filters B
  if (filter_on) {
    CpuStopwatch filter_cpu;
    const auto build_occupancy = [&](const rdd::Rdd<FeatureRef>& side) {
      geom::OccupancyFilter filter(scheme_bc.value().cells());
      std::vector<std::uint32_t> mark_pids;
      for (const auto& part : side.partitions()) {
        for (const auto& r : part) {
          const geom::Envelope env =
              r.get().geometry.envelope().expanded_by(expand);
          scheme_bc.value().assign_into(env, mark_pids);
          for (const auto pid : mark_pids) filter.mark(pid, env);
        }
      }
      return filter;
    };
    geom::OccupancyFilter right_occ = build_occupancy(right_rdd);
    geom::OccupancyFilter left_occ = build_occupancy(left_rdd);
    rt.record_narrow_stage("filter.build", {filter_cpu.seconds()});
    if (capture != nullptr) {
      capture->right_occ = std::make_unique<geom::OccupancyFilter>(right_occ);
      capture->left_occ = std::make_unique<geom::OccupancyFilter>(left_occ);
    }
    const std::uint64_t right_bytes = right_occ.size_bytes();
    const std::uint64_t left_bytes = left_occ.size_bytes();
    right_occ_bc.emplace(rt, std::move(right_occ), right_bytes, "sfilter.B");
    left_occ_bc.emplace(rt, std::move(left_occ), left_bytes, "sfilter.A");
  }
  if (capture != nullptr) {
    capture->filter_on = filter_on;
    capture->expand = expand;
  }
  const geom::OccupancyFilter* left_filt =
      right_occ_bc.has_value() ? &right_occ_bc->value() : nullptr;
  const geom::OccupancyFilter* right_filt =
      left_occ_bc.has_value() ? &left_occ_bc->value() : nullptr;

  run_spark_join_tail(rt, exec, std::move(left_rdd), std::move(right_rdd),
                      left.size(), right.size(), scheme_bc, left_filt, right_filt,
                      filter_on, local_spec, prepared_cache, parallelism,
                      rec_overhead, report);
}

dfs::DfsConfig spark_dfs_config(const core::JoinQueryConfig& query,
                                const core::ExecutionConfig& exec) {
  return dfs::DfsConfig{
      .block_size = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(64.0 * 1024 * 1024 / exec.data_scale)),
      .replication = 3,
      .datanode_count = exec.cluster.node_count,
      .seed = query.seed,
  };
}

core::LocalJoinSpec make_local_spec(const core::JoinQueryConfig& query,
                                    const SpatialSparkConfig& config,
                                    geom::PreparedCache* cache,
                                    cluster::Counters* counters) {
  return core::LocalJoinSpec{
      .algorithm = query.local_algorithm.value_or(config.local_algorithm),
      .engine = &geom::GeometryEngine::get(config.engine),
      .predicate = query.predicate,
      .within_distance = query.within_distance,
      .prepared_cache = cache,
      // refine.* accounting; Counters is thread-safe and run_local_join
      // flushes once per call.
      .refine_counters = counters,
  };
}

core::RunReport run_spatial_spark_impl(const workload::Dataset& left,
                                       const workload::Dataset& right,
                                       const core::JoinQueryConfig& query,
                                       const core::ExecutionConfig& exec,
                                       const SpatialSparkConfig& config,
                                       SpatialSparkResident::Impl* capture) {
  core::RunReport report;
  trace::TraceCollector collector(exec.cluster.node_count, exec.cluster.node.cores);
  workload::RowQuarantine quarantine;
  // Emplaced inside the try: constructing the runtime validates the fault
  // plan, and an invalid plan must surface as a structured Status, not an
  // escaped exception. The optionals outlive the catch so the epilogue can
  // still read peak memory from a partially-run job.
  std::optional<dfs::SimDfs> dfs;
  std::optional<rdd::SparkRuntime> rt;

  const std::uint64_t rec_overhead = config.record_overhead_bytes;
  const rdd::Sizer<Feature> feature_sizer = [rec_overhead](const Feature& f) {
    return static_cast<std::uint64_t>(f.geometry.size_bytes()) + rec_overhead;
  };
  const rdd::Sizer<std::pair<std::uint32_t, Feature>> pid_feature_sizer =
      [rec_overhead](const std::pair<std::uint32_t, Feature>& kv) {
        return 4 + static_cast<std::uint64_t>(kv.second.geometry.size_bytes()) +
               rec_overhead;
      };
  const rdd::Sizer<std::pair<std::uint32_t, std::vector<Feature>>> grouped_sizer =
      [rec_overhead](const std::pair<std::uint32_t, std::vector<Feature>>& kv) {
        std::uint64_t bytes = 4 + rec_overhead;
        for (const auto& f : kv.second) bytes += f.geometry.size_bytes() + rec_overhead;
        return bytes;
      };
  const rdd::Sizer<JoinPair> pair_sizer = [rec_overhead](const JoinPair&) {
    return 16 + rec_overhead;
  };

  // One prepared-geometry cache per run, shared by all local-join tasks:
  // overlap-duplicated right-side geometries are bound once, not once per
  // partition.
  geom::PreparedCache prepared_cache;
  const core::LocalJoinSpec local_spec =
      make_local_spec(query, config, &prepared_cache, &report.counters);

  try {
    dfs.emplace(spark_dfs_config(query, exec));
    rt.emplace(exec.cluster, exec.data_scale, &*dfs, &report.metrics, config.spark);
    rt->set_counters(&report.counters);
    if (exec.trace) rt->set_trace(&collector);

    const std::uint32_t parallelism = rt->default_parallelism() * 2;

    if (config.zero_copy_plane && !config.broadcast_join) {
      run_partitioned_join_zero_copy(left, right, query, exec, config, *rt, *dfs,
                                     local_spec, prepared_cache, parallelism,
                                     quarantine, report, capture);
      quarantine.flush_counters(report.counters);
      report.peak_memory_bytes = rt->memory().peak_paper_bytes();
      report.total_seconds = report.metrics.total_seconds();
      if (exec.trace) report.trace = collector.merged();
      core::annotate_recovery(report);
      return report;
    }
    require(capture == nullptr,
            "spatial_spark_build_resident: resident mode requires the "
            "zero-copy partitioned join (not broadcast / seed plane)");

    // ---- 1. Read both inputs from HDFS (the only DFS touch) and parse ------
    // textFile(...).map(parseWkt): the text scan is the run's one DFS read,
    // and the WKT parse really executes on the "executors" — a narrow,
    // slot-scaled CPU stage, visible on the 16-slot workstation and cheap on
    // 80 EC2 slots.
    const rdd::Sizer<std::string> line_sizer = [](const std::string& l) {
      return static_cast<std::uint64_t>(l.size()) + 48;  // JVM string header
    };
    workload::RowQuarantine* qsink = &quarantine;
    const auto read_and_parse = [&](const workload::Dataset& data,
                                    const std::string& tag) {
      dfs->put(tag + ".raw", std::any(), data.text_bytes());
      auto lines = rdd::Rdd<std::string>::create(
          *rt,
          chunk_lines(input_lines(data, tag, config.spark.faults, report.counters),
                      parallelism),
          line_sizer, tag + ".text");
      rt->record_input_read(tag + ".read", data.text_bytes(),
                            dfs->block_count(tag + ".raw"));
      // flat_map rather than map: a malformed line emits nothing and lands
      // in the quarantine instead of throwing mid-stage. Same stage name,
      // same per-record accounting for every surviving feature.
      return lines.flat_map<Feature>(
          "parse",
          [qsink](const std::string& line, std::vector<Feature>& out) {
            std::string error;
            if (auto f = workload::try_feature_from_tsv(line, &error)) {
              out.push_back(std::move(*f));
            } else {
              qsink->divert("spark/parse", line, error);
            }
          },
          feature_sizer);
    };
    auto left_rdd = read_and_parse(left, "A");
    auto right_rdd = read_and_parse(right, "B");

    // ---- 2. Sample the right side, derive partitions, broadcast ------------
    const double sample_rate = core::effective_sample_rate(
        query.sample_rate, right.size(),
        core::effective_target_partitions(query, exec.cluster));
    auto sample_rdd = right_rdd.sample("sample", sample_rate, query.seed);
    const std::vector<Feature> sample = sample_rdd.collect();

    CpuStopwatch driver_cpu;
    std::vector<geom::Envelope> sample_envs;
    sample_envs.reserve(sample.size());
    for (const auto& f : sample) sample_envs.push_back(f.geometry.envelope());
    geom::Envelope joint_extent = left.extent();
    joint_extent.expand_to_include(right.extent());
    const std::uint32_t target_cells =
        core::effective_target_partitions(query, exec.cluster);
    partition::PartitionScheme scheme = partition::make_partitions(
        query.partitioner, sample_envs, joint_extent, target_cells);
    rt->record_narrow_stage("driver.partition", {driver_cpu.seconds()});

    const std::uint64_t scheme_bytes = scheme.size_bytes() * 2;  // cells + index
    rdd::Broadcast<partition::PartitionScheme> scheme_bc(*rt, std::move(scheme),
                                                         scheme_bytes, "scheme");

    if (config.broadcast_join) {
      // ---- Broadcast-based join (paper's future-work comparison) -----------
      // The entire right side plus its STR index is broadcast; the left side
      // probes it directly — no shuffle at all, but memory cost scales with
      // |right| x nodes.
      struct RightIndex {
        std::vector<Feature> features;
        std::unique_ptr<index::StrTree> tree;
      };
      CpuStopwatch build_cpu;
      auto right_all = right_rdd.collect();
      std::vector<index::IndexEntry> entries;
      entries.reserve(right_all.size());
      for (std::uint32_t i = 0; i < right_all.size(); ++i) {
        entries.push_back({right_all[i].geometry.envelope(), i});
      }
      RightIndex rindex{std::move(right_all),
                        std::make_unique<index::StrTree>(std::move(entries))};
      rt->record_narrow_stage("driver.build-right-index", {build_cpu.seconds()});
      std::uint64_t rindex_bytes = rindex.tree->size_bytes();
      for (const auto& f : rindex.features) {
        rindex_bytes += f.geometry.size_bytes() + rec_overhead;
      }
      rdd::Broadcast<RightIndex> right_bc(*rt, std::move(rindex), rindex_bytes,
                                          "right-index");

      auto pairs_rdd = left_rdd.flat_map<JoinPair>(
          "broadcast-join",
          [&](const Feature& f, std::vector<JoinPair>& out) {
            const RightIndex& ri = right_bc.value();
            std::vector<std::uint32_t> candidates = ri.tree->query_ids(
                f.geometry.envelope().expanded_by(local_spec.within_distance));
            std::sort(candidates.begin(), candidates.end());
            for (const auto rid : candidates) {
              const Feature& rf = ri.features[rid];
              if (core::evaluate_predicate(*local_spec.engine, local_spec.predicate,
                                           local_spec.within_distance, f.geometry,
                                           rf.geometry)) {
                out.push_back({f.id, rf.id});
              }
            }
          },
          pair_sizer);
      report.success = true;
      report.status = Status::Ok();
      if (exec.collect_pairs) {
        std::vector<JoinPair> pairs = pairs_rdd.collect();
        report.result_count = pairs.size();
        report.result_hash = core::hash_pairs_unordered(pairs);
        report.pairs = std::move(pairs);
      } else {
        CpuStopwatch agg_cpu;
        for (const auto& part : pairs_rdd.partitions()) {
          report.result_count += part.size();
          report.result_hash += core::hash_pairs_unordered(part);
        }
        rt->record_narrow_stage("broadcast-join.aggregate", {agg_cpu.seconds()});
        rt->record_collect("result.aggregate", 16 * pairs_rdd.num_partitions());
      }
      quarantine.flush_counters(report.counters);
      report.peak_memory_bytes = rt->memory().peak_paper_bytes();
      report.total_seconds = report.metrics.total_seconds();
      if (exec.trace) report.trace = collector.merged();
      core::annotate_recovery(report);
      return report;
    }

    // ---- 3. Assign partition ids to both sides -----------------------------
    const double expand = local_spec.envelope_expansion();
    const auto assign_fn = [&scheme_bc, expand](
                               const Feature& f,
                               std::vector<std::pair<std::uint32_t, Feature>>& out) {
      for (const auto pid :
           scheme_bc.value().assign(f.geometry.envelope().expanded_by(expand))) {
        out.emplace_back(pid, f);
      }
    };
    auto left_pids = left_rdd.flat_map<std::pair<std::uint32_t, Feature>>(
        "assign", assign_fn, pid_feature_sizer);
    auto right_pids = right_rdd.flat_map<std::pair<std::uint32_t, Feature>>(
        "assign", assign_fn, pid_feature_sizer);
    const auto count_records = [](const auto& rdd) {
      std::size_t n = 0;
      for (const auto& part : rdd.partitions()) n += part.size();
      return n;
    };
    const std::size_t left_assigned = count_records(left_pids);
    const std::size_t right_assigned = count_records(right_pids);
    report.counters.add("assign.left_assignments", left_assigned);
    report.counters.add("assign.right_assignments", right_assigned);
    report.counters.add("partition.duplicated_records",
                        left_assigned - left.size() + right_assigned - right.size());
    // The un-cached textFile lineage is not retained once consumed.
    left_rdd = {};
    right_rdd = {};

    // ---- 4. groupByKey both sides, join on partition id --------------------
    // Consumed intermediates are dropped as soon as the next stage has
    // materialized (Spark frees un-cached shuffle inputs the same way); the
    // cached inputs stay resident for the whole run.
    auto left_grouped = rdd::group_by_key<std::uint32_t, Feature>(
        left_pids, parallelism, grouped_sizer);
    left_pids = {};
    auto right_grouped = rdd::group_by_key<std::uint32_t, Feature>(
        right_pids, parallelism, grouped_sizer);
    right_pids = {};

    const rdd::Sizer<std::tuple<std::uint32_t, std::vector<Feature>, std::vector<Feature>>>
        joined_sizer = [rec_overhead](const auto& t) {
          std::uint64_t bytes = 4 + rec_overhead;
          for (const auto& f : std::get<1>(t)) bytes += f.geometry.size_bytes() + rec_overhead;
          for (const auto& f : std::get<2>(t)) bytes += f.geometry.size_bytes() + rec_overhead;
          return bytes;
        };
    auto joined = rdd::join_by_key<std::uint32_t, std::vector<Feature>,
                                   std::vector<Feature>>(left_grouped, right_grouped,
                                                         parallelism, joined_sizer);
    left_grouped = {};
    right_grouped = {};

    // ---- 5. Local join per partition pair -----------------------------------
    // Query-owned scratch pool (see run_spark_join_tail): warm buffers
    // within the run, nothing left behind on the pool threads afterwards.
    core::ScratchPool scratch_pool;
    auto pairs_rdd = joined.flat_map<JoinPair>(
        "local-join",
        [&](const std::tuple<std::uint32_t, std::vector<Feature>, std::vector<Feature>>& t,
            std::vector<JoinPair>& out) {
          const std::uint32_t pid = std::get<0>(t);
          const auto accept = [&](const geom::Envelope& le, const geom::Envelope& re) {
            const geom::Coord p = core::reference_point(le, re);
            const auto cells =
                scheme_bc.value().assign(geom::Envelope::of_point(p.x, p.y));
            return *std::min_element(cells.begin(), cells.end()) == pid;
          };
          auto scratch = scratch_pool.acquire();
          core::run_local_join(std::span<const Feature>(std::get<1>(t)),
                               std::span<const Feature>(std::get<2>(t)), local_spec,
                               accept, *scratch, out);
        },
        pair_sizer);
    report.counters.add("join.prepared_cache_hits", prepared_cache.hits());
    report.counters.add("join.prepared_cache_misses", prepared_cache.misses());

    // Results are counted/digested distributively (SpatialSpark writes its
    // result RDD out / counts it; it never funnels every pair through the
    // driver). Only when the caller wants the pairs do we pay a real
    // collect.
    report.success = true;
    report.status = Status::Ok();
    if (exec.collect_pairs) {
      std::vector<JoinPair> pairs = pairs_rdd.collect();
      report.result_count = pairs.size();
      report.result_hash = core::hash_pairs_unordered(pairs);
      report.pairs = std::move(pairs);
    } else {
      CpuStopwatch agg_cpu;
      for (const auto& part : pairs_rdd.partitions()) {
        report.result_count += part.size();
        report.result_hash += core::hash_pairs_unordered(part);
      }
      rt->record_narrow_stage("local-join.aggregate", {agg_cpu.seconds()});
      rt->record_collect("result.aggregate", 16 * pairs_rdd.num_partitions());
    }
  } catch (const SjcError& e) {
    // SimOutOfMemory (the paper's EC2-8/EC2-6 failure) plus injected
    // faults: TaskFailed past the retry budget, DeadlineExceeded /
    // RetryBudgetExhausted from the lifecycle limits, BlockUnavailable when
    // a lost executor's datanode took the last replica of an input block,
    // and invalid fault plans rejected at runtime construction. The
    // structured Status lets harnesses branch without string-matching.
    report.success = false;
    report.failure_reason = e.what();
    report.status = status_from_exception(e);
  }
  quarantine.flush_counters(report.counters);

  // The paper reports only end-to-end times for SpatialSpark (stages cannot
  // be attributed cleanly under asynchronous execution); IA/IB/DJ stay NaN.
  if (rt) report.peak_memory_bytes = rt->memory().peak_paper_bytes();
  report.total_seconds = report.metrics.total_seconds();
  if (exec.trace) report.trace = collector.merged();
  core::annotate_recovery(report);
  return report;
}

}  // namespace

core::RunReport run_spatial_spark(const workload::Dataset& left,
                                  const workload::Dataset& right,
                                  const core::JoinQueryConfig& query,
                                  const core::ExecutionConfig& exec,
                                  const SpatialSparkConfig& config) {
  if (!config.policy.cost_based_plan) {
    return run_spatial_spark_impl(left, right, query, exec, config, nullptr);
  }
  // Cost-based physical-plan choice: predict both plans from the dataset
  // sizes and the cluster spec, run the cheaper feasible one, and leave the
  // prediction next to the realized wall clock in the plan.* counters.
  const plan::PlanDecision decision = plan::choose_plan(plan::PlanInputs{
      .left_records = left.size(),
      .right_records = right.size(),
      .left_bytes = left.text_bytes(),
      .right_bytes = right.text_bytes(),
      .record_overhead_bytes = config.record_overhead_bytes,
      .replication_factor = std::nullopt,
      .filter_selectivity = std::nullopt,
      .cluster = exec.cluster,
      .data_scale = exec.data_scale,
      .resident = false,
  });
  SpatialSparkConfig chosen = config;
  chosen.broadcast_join = decision.chosen == plan::PlanKind::kBroadcastJoin;
  core::RunReport report =
      run_spatial_spark_impl(left, right, query, exec, chosen, nullptr);
  plan::record_plan_counters(decision, report.counters);
  plan::record_plan_actual(report.total_seconds, report.counters);
  return report;
}

const core::RunReport& SpatialSparkResident::build_report() const {
  require(impl_ != nullptr, "SpatialSparkResident: not built");
  return impl_->build_report;
}

std::size_t SpatialSparkResident::left_size() const {
  require(impl_ != nullptr, "SpatialSparkResident: not built");
  return impl_->left_count;
}

std::size_t SpatialSparkResident::right_size() const {
  require(impl_ != nullptr, "SpatialSparkResident: not built");
  return impl_->right_count;
}

SpatialSparkResident spatial_spark_build_resident(const workload::Dataset& left,
                                                  const workload::Dataset& right,
                                                  const core::JoinQueryConfig& query,
                                                  const core::ExecutionConfig& exec,
                                                  const SpatialSparkConfig& config) {
  auto impl = std::make_shared<SpatialSparkResident::Impl>();
  impl->build_report =
      run_spatial_spark_impl(left, right, query, exec, config, impl.get());
  require(impl->build_report.success,
          "spatial_spark_build_resident: build failed: " +
              impl->build_report.failure_reason);
  SpatialSparkResident resident;
  resident.impl_ = std::move(impl);
  return resident;
}

core::RunReport run_spatial_spark_resident(const SpatialSparkResident& resident,
                                           const core::JoinQueryConfig& query,
                                           const core::ExecutionConfig& exec,
                                           const SpatialSparkConfig& config,
                                           geom::PreparedCache* shared_cache) {
  require(resident.impl_ != nullptr,
          "run_spatial_spark_resident: resident state must be built first");
  const SpatialSparkResident::Impl& impl = *resident.impl_;
  core::RunReport report;
  trace::TraceCollector collector(exec.cluster.node_count, exec.cluster.node.cores);
  std::optional<dfs::SimDfs> dfs;
  std::optional<rdd::SparkRuntime> rt;

  // Per-query fallback cache when the caller shares none; the serving layer
  // passes the catalog entry's cache so bind() results survive queries.
  geom::PreparedCache fallback_cache;
  geom::PreparedCache& cache = shared_cache != nullptr ? *shared_cache : fallback_cache;
  const core::LocalJoinSpec local_spec =
      make_local_spec(query, config, &cache, &report.counters);

  try {
    require(local_spec.envelope_expansion() == impl.expand,
            "run_spatial_spark_resident: query envelope expansion differs "
            "from the resident build (rebuild the catalog entry)");
    dfs.emplace(spark_dfs_config(query, exec));
    rt.emplace(exec.cluster, exec.data_scale, &*dfs, &report.metrics, config.spark);
    rt->set_counters(&report.counters);
    if (exec.trace) rt->set_trace(&collector);
    const std::uint32_t parallelism = rt->default_parallelism() * 2;
    const std::uint64_t rec_overhead = config.record_overhead_bytes;

    // Re-materialize the resident inputs as cached RDDs: the per-chunk
    // FeatureRef views captured at build time, charged at full modeled bytes
    // (the resident working set lives in executor memory). No read, no
    // parse, no sample, no driver.partition, no filter.build — that is the
    // serving win; everything downstream is the cold path's own code.
    const rdd::Sizer<FeatureRef> ref_sizer = make_ref_sizer(rec_overhead);
    auto left_rdd = rdd::Rdd<FeatureRef>::create(*rt, impl.left_chunks, ref_sizer,
                                                 "A.resident");
    auto right_rdd = rdd::Rdd<FeatureRef>::create(*rt, impl.right_chunks, ref_sizer,
                                                  "B.resident");

    // The scheme and filters still ship to the executors each query
    // (distributed-cache refresh), so broadcast charges stay in the model.
    partition::PartitionScheme scheme = *impl.scheme;
    const std::uint64_t scheme_bytes = scheme.size_bytes() * 2;
    rdd::Broadcast<partition::PartitionScheme> scheme_bc(*rt, std::move(scheme),
                                                         scheme_bytes, "scheme");
    std::optional<rdd::Broadcast<geom::OccupancyFilter>> right_occ_bc;
    std::optional<rdd::Broadcast<geom::OccupancyFilter>> left_occ_bc;
    if (impl.filter_on) {
      geom::OccupancyFilter right_occ = *impl.right_occ;
      geom::OccupancyFilter left_occ = *impl.left_occ;
      const std::uint64_t right_bytes = right_occ.size_bytes();
      const std::uint64_t left_bytes = left_occ.size_bytes();
      right_occ_bc.emplace(*rt, std::move(right_occ), right_bytes, "sfilter.B");
      left_occ_bc.emplace(*rt, std::move(left_occ), left_bytes, "sfilter.A");
    }
    const geom::OccupancyFilter* left_filt =
        right_occ_bc.has_value() ? &right_occ_bc->value() : nullptr;
    const geom::OccupancyFilter* right_filt =
        left_occ_bc.has_value() ? &left_occ_bc->value() : nullptr;

    run_spark_join_tail(*rt, exec, std::move(left_rdd), std::move(right_rdd),
                        impl.left_count, impl.right_count, scheme_bc, left_filt,
                        right_filt, impl.filter_on, local_spec, cache, parallelism,
                        rec_overhead, report);
  } catch (const SjcError& e) {
    report.success = false;
    report.failure_reason = e.what();
    report.status = status_from_exception(e);
  }

  if (rt) report.peak_memory_bytes = rt->memory().peak_paper_bytes();
  report.total_seconds = report.metrics.total_seconds();
  if (exec.trace) report.trace = collector.merged();
  core::annotate_recovery(report);
  return report;
}

}  // namespace sjc::systems
