// SpatialSpark analog: partition-based spatial join on the (simulated)
// Spark RDD engine.
//
// Pipeline (paper Section II, Fig. 1c):
//  1. read both inputs from HDFS — the only DFS interaction in the run;
//  2. sample ONE side (the right/indexed side) with the engine's built-in
//     sample(); derive partition MBRs on the driver; broadcast the
//     partition R-tree to all executors (no HDFS involved);
//  3. assign partition ids to the data items of BOTH sides by querying the
//     broadcast index (flatMap);
//  4. groupByKey both sides, then join on partition id — an integer hash
//     join, cheaper than a spatial master-side join;
//  5. a final map runs the local join per partition pair: STR-indexed
//     nested loop (natural under Scala, per the paper) + refinement with
//     the fast (JTS-analog) engine; reference-point duplicate avoidance.
//
// Everything between the initial read and the final collect lives in
// executor memory; when the working set (inputs + per-partition copies +
// shuffle buffers, JVM-inflated) exceeds usable memory the run dies with
// SimOutOfMemory — Spark 1.1 cannot spill this pipeline, which is exactly
// the paper's EC2-8/EC2-6 failure.
//
// The broadcast-based join variant (the paper's earlier design, left for
// future-work comparison) is also provided: the full right-side index and
// data are broadcast, and the left side probes it directly with no shuffle.
#pragma once

#include "core/spatial_join.hpp"
#include "plan/exec_policy.hpp"
#include "rdd/spark_runtime.hpp"

namespace sjc::geom {
class PreparedCache;
}

namespace sjc::systems {

struct SpatialSparkConfig {
  rdd::SparkConfig spark;
  index::LocalJoinAlgorithm local_algorithm = index::LocalJoinAlgorithm::kIndexedNestedLoop;
  /// Per-record JVM object overhead added to every element's accounted
  /// size (boxed Scala objects, collection nodes). Calibrated together with
  /// SparkConfig::memory_reserve_per_node so the OOM matrix of Table 2
  /// reproduces; see DESIGN.md §5.
  std::uint64_t record_overhead_bytes = 150;
  /// Use the broadcast-based join instead of the partition-based one.
  bool broadcast_join = false;
  /// Geometry engine for refinement (JTS analog by default).
  geom::EngineKind engine = geom::EngineKind::kPrepared;
  /// Data-plane selection for the partition-based join. The zero-copy plane
  /// (default) parses each input once into a run-scoped feature store and
  /// ships 8-byte FeatureRef handles through assign/groupByKey/join instead
  /// of deep Feature copies; every RDD sizer still charges the referenced
  /// record's full modeled bytes, so memory accounting, shuffle volumes and
  /// the OOM gate are identical to the seed copying plane (kept as the
  /// bench_shuffle baseline). The broadcast join always uses the seed plane.
  bool zero_copy_plane = true;
  /// Adaptive-execution knobs (see plan/exec_policy.hpp):
  ///  - policy.shuffle_filter: map-side occupancy-bitmap filter (sFilter
  ///    analog) on the left side's assign stage; unset resolves to on for
  ///    the zero-copy partition-based join, while the seed copying plane
  ///    (bench baseline) and the broadcast join stay unfiltered.
  ///  - policy.repartition: probe per-cell shuffle load right after the
  ///    driver derives the scheme and quad-split hotspot cells before the
  ///    scheme is broadcast; unset resolves to off.
  ///  - policy.cost_based_plan: let plan::choose_plan() pick broadcast vs
  ///    partitioned per run instead of the static broadcast_join flag.
  plan::ExecPolicy policy;
};

core::RunReport run_spatial_spark(const workload::Dataset& left,
                                  const workload::Dataset& right,
                                  const core::JoinQueryConfig& query,
                                  const core::ExecutionConfig& exec,
                                  const SpatialSparkConfig& config = {});

/// Resident (serving-mode) state for the zero-copy partition-based join:
/// the parsed feature store, the per-chunk FeatureRef views, the partition
/// scheme and the occupancy filters, all captured from one cold build run
/// (capture-on-build). Queries answered from this state re-execute only the
/// assign -> groupByKey -> join -> local-join tail and are bit-identical to
/// the cold batch path. Cheap to copy (shared immutable state).
class SpatialSparkResident {
 public:
  SpatialSparkResident() = default;

  /// The full RunReport of the cold run that built this state (ingest cost).
  const core::RunReport& build_report() const;
  std::size_t left_size() const;
  std::size_t right_size() const;

  struct Impl;

 private:
  friend SpatialSparkResident spatial_spark_build_resident(
      const workload::Dataset& left, const workload::Dataset& right,
      const core::JoinQueryConfig& query, const core::ExecutionConfig& exec,
      const SpatialSparkConfig& config);
  friend core::RunReport run_spatial_spark_resident(
      const SpatialSparkResident& resident, const core::JoinQueryConfig& query,
      const core::ExecutionConfig& exec, const SpatialSparkConfig& config,
      geom::PreparedCache* shared_cache);

  std::shared_ptr<const Impl> impl_;
};

/// Runs one cold zero-copy partitioned join and captures its preprocessing
/// products for resident reuse. Requires the zero-copy partition-based
/// plane (not broadcast_join, not the seed copying plane); throws SjcError
/// when the build run fails.
SpatialSparkResident spatial_spark_build_resident(
    const workload::Dataset& left, const workload::Dataset& right,
    const core::JoinQueryConfig& query, const core::ExecutionConfig& exec,
    const SpatialSparkConfig& config = {});

/// Answers one join query from resident state: fresh runtime + report per
/// query, but the read/parse/sample/partition/filter-build stages are
/// skipped — their products come from the catalog. `shared_cache`, when
/// non-null, is a cross-query geom::PreparedCache owned by the caller (the
/// serving catalog); pair sets and refine.*/shuffle.* counters are
/// bit-identical to the cold path either way. The query must use the same
/// envelope expansion as the build (same predicate family); a mismatch
/// yields a kInvalidArgument report.
core::RunReport run_spatial_spark_resident(const SpatialSparkResident& resident,
                                           const core::JoinQueryConfig& query,
                                           const core::ExecutionConfig& exec,
                                           const SpatialSparkConfig& config = {},
                                           geom::PreparedCache* shared_cache = nullptr);

}  // namespace sjc::systems
