// SpatialSpark analog: partition-based spatial join on the (simulated)
// Spark RDD engine.
//
// Pipeline (paper Section II, Fig. 1c):
//  1. read both inputs from HDFS — the only DFS interaction in the run;
//  2. sample ONE side (the right/indexed side) with the engine's built-in
//     sample(); derive partition MBRs on the driver; broadcast the
//     partition R-tree to all executors (no HDFS involved);
//  3. assign partition ids to the data items of BOTH sides by querying the
//     broadcast index (flatMap);
//  4. groupByKey both sides, then join on partition id — an integer hash
//     join, cheaper than a spatial master-side join;
//  5. a final map runs the local join per partition pair: STR-indexed
//     nested loop (natural under Scala, per the paper) + refinement with
//     the fast (JTS-analog) engine; reference-point duplicate avoidance.
//
// Everything between the initial read and the final collect lives in
// executor memory; when the working set (inputs + per-partition copies +
// shuffle buffers, JVM-inflated) exceeds usable memory the run dies with
// SimOutOfMemory — Spark 1.1 cannot spill this pipeline, which is exactly
// the paper's EC2-8/EC2-6 failure.
//
// The broadcast-based join variant (the paper's earlier design, left for
// future-work comparison) is also provided: the full right-side index and
// data are broadcast, and the left side probes it directly with no shuffle.
#pragma once

#include <optional>

#include "core/spatial_join.hpp"
#include "rdd/spark_runtime.hpp"

namespace sjc::systems {

struct SpatialSparkConfig {
  rdd::SparkConfig spark;
  index::LocalJoinAlgorithm local_algorithm = index::LocalJoinAlgorithm::kIndexedNestedLoop;
  /// Per-record JVM object overhead added to every element's accounted
  /// size (boxed Scala objects, collection nodes). Calibrated together with
  /// SparkConfig::memory_reserve_per_node so the OOM matrix of Table 2
  /// reproduces; see DESIGN.md §5.
  std::uint64_t record_overhead_bytes = 150;
  /// Use the broadcast-based join instead of the partition-based one.
  bool broadcast_join = false;
  /// Geometry engine for refinement (JTS analog by default).
  geom::EngineKind engine = geom::EngineKind::kPrepared;
  /// Data-plane selection for the partition-based join. The zero-copy plane
  /// (default) parses each input once into a run-scoped feature store and
  /// ships 8-byte FeatureRef handles through assign/groupByKey/join instead
  /// of deep Feature copies; every RDD sizer still charges the referenced
  /// record's full modeled bytes, so memory accounting, shuffle volumes and
  /// the OOM gate are identical to the seed copying plane (kept as the
  /// bench_shuffle baseline). The broadcast join always uses the seed plane.
  bool zero_copy_plane = true;
  /// Map-side spatial shuffle filter (LocationSpark's sFilter analog): after
  /// the partition scheme is broadcast, one pass over the right RDD's
  /// FeatureRef envelope views builds a per-cell occupancy bitmap, which is
  /// broadcast alongside the scheme; the left side's assign stage drops
  /// (record, cell) copies that provably match nothing there before they hit
  /// groupByKey. Survivor pair sets are bit-identical to the unfiltered
  /// path. Unset (default) resolves to on for the reworked zero-copy
  /// partition-based join; the seed copying plane is the bench baseline and
  /// stays unfiltered, as does the broadcast join (nothing is shuffled).
  std::optional<bool> shuffle_filter;
};

core::RunReport run_spatial_spark(const workload::Dataset& left,
                                  const workload::Dataset& right,
                                  const core::JoinQueryConfig& query,
                                  const core::ExecutionConfig& exec,
                                  const SpatialSparkConfig& config = {});

}  // namespace sjc::systems
