// Chaos-sweep harness: randomized-but-valid fault plans, a uniform way to
// run any of the three systems under a plan, and the accounting invariants
// every chaos run must satisfy.
//
// The sweep's contract (tests/test_chaos_sweep.cpp, bench_chaos):
//   1. A run either succeeds with a pair set bit-identical to the
//      fault-free ground truth, or fails with a structured Status — it
//      never crashes, corrupts results, or dies with an unclassified
//      exception.
//   2. The commit ledger balances: every attempt either published,
//      was rejected (speculative race loser), or aborted.
//   3. Retry budgets, quarantine counters and input-quarantine counters
//      are internally consistent with the plan.
// Shared between the test and the bench so both enforce the same story.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fault_injector.hpp"
#include "core/spatial_join.hpp"
#include "plan/exec_policy.hpp"
#include "util/rng.hpp"
#include "workload/dataset.hpp"

namespace sjc::systems {

/// Draws a random fault plan that always passes FaultInjector validation.
/// Every lifecycle knob (crashes, stragglers, bad nodes, malformed rows,
/// backoff cap/jitter, blacklisting, retry budget, phase timeout,
/// speculation, datanode loss) is exercised with independent probability,
/// so a few hundred draws cover the cross product. Plans are not
/// guaranteed survivable — tight budgets and timeouts are part of the
/// point — but a failed run must fail *cleanly* (structured Status).
/// `node_count` bounds datanode-loss targets to real nodes.
cluster::FaultPlan random_fault_plan(Rng& rng, std::uint32_t node_count);

/// Runs `system` on (left, right, query, exec) with `plan` installed in the
/// system's fault slot and `policy` as the adaptive-execution knobs
/// (defaults keep every knob at its plane default). Never throws for
/// plan-induced failures: those come back as report.status.
core::RunReport run_under_plan(core::SystemKind system,
                               const workload::Dataset& left,
                               const workload::Dataset& right,
                               const core::JoinQueryConfig& query,
                               const core::ExecutionConfig& exec,
                               const cluster::FaultPlan& plan,
                               const plan::ExecPolicy& policy = {});

/// Checks every chaos invariant of `report` against the fault-free ground
/// truth `truth` and the plan that produced it. Returns human-readable
/// violations; empty means the run upheld the contract.
std::vector<std::string> chaos_violations(const core::RunReport& report,
                                          const core::RunReport& truth,
                                          const cluster::FaultPlan& plan);

}  // namespace sjc::systems
