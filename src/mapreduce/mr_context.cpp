#include "mapreduce/mr_context.hpp"

#include "cluster/scheduler.hpp"
#include "util/status.hpp"

namespace sjc::mapreduce {

const cluster::FaultInjector& fault_injector(const MrContext& ctx) {
  static const cluster::FaultInjector trivial{cluster::FaultPlan{}};
  return ctx.faults != nullptr ? *ctx.faults : trivial;
}

namespace {

/// Emits one slot-0 span for a serial single-task phase (master steps, DFS
/// repairs). `start` is the run clock before the phase was appended.
void emit_serial_span(MrContext& ctx, const cluster::PhaseReport& phase,
                      double start, double cpu_seconds) {
  if (ctx.trace == nullptr) return;
  trace::TaskSpan span;
  span.phase = phase.name;
  span.task = 0;
  span.attempt = 1;
  span.slot = 0;
  span.sim_start = start;
  span.sim_end = start + phase.sim_seconds;
  span.cpu_seconds = cpu_seconds;
  span.bytes_in = phase.bytes_read;
  span.bytes_out = phase.bytes_written;
  span.bytes_shuffled = phase.bytes_shuffled;
  ctx.trace->record(std::move(span));
}

/// Applies datanode-loss events the simulated clock has passed: kills the
/// node in the DFS and charges the namenode's re-replication copies as a
/// one-task repair phase.
void apply_due_datanode_losses(MrContext& ctx) {
  if (ctx.faults == nullptr || ctx.dfs == nullptr) return;
  const auto due = ctx.faults->losses_due(ctx.metrics->total_seconds(),
                                          ctx.datanode_losses_applied);
  for (const auto& event : due) {
    ++ctx.datanode_losses_applied;
    // The last live datanode never dies mid-run (it hosts the master too).
    if (ctx.dfs->live_datanode_count() <= 1) continue;
    const dfs::ReplicationRepair repair =
        ctx.dfs->fail_datanode(event.node % ctx.dfs->config().datanode_count);
    if (repair.bytes_rereplicated == 0 && repair.blocks_lost == 0) continue;
    cluster::SimTask task;
    task.disk_read = repair.cost.disk_read;
    task.disk_write = repair.cost.disk_write;
    task.network = repair.cost.network;
    cluster::PhaseReport phase;
    phase.name = "dfs/re-replicate[node" + std::to_string(event.node) + "]";
    phase.sim_seconds = task.duration(*ctx.cluster, ctx.data_scale);
    phase.bytes_read = repair.cost.disk_read;
    phase.bytes_written = repair.cost.disk_write;
    phase.task_count = 1;
    phase.task_attempts = 1;
    phase.commits_published = 1;
    phase.rereplicated_bytes = repair.bytes_rereplicated;
    emit_serial_span(ctx, phase, ctx.metrics->total_seconds(), 0.0);
    ctx.metrics->add_phase(std::move(phase));
  }
}

}  // namespace

void charge_master_step(MrContext& ctx, const std::string& name, double cpu_seconds,
                        std::uint64_t read_bytes, std::uint64_t write_bytes,
                        double cpu_efficiency) {
  require(ctx.cluster != nullptr && ctx.metrics != nullptr,
          "charge_master_step: incomplete context");
  require(cpu_efficiency > 0.0, "charge_master_step: cpu_efficiency must be positive");
  cluster::SimTask task;
  task.cpu_seconds = cpu_seconds / cpu_efficiency;
  if (ctx.dfs != nullptr) {
    const auto rc = ctx.dfs->read_cost(read_bytes);
    const auto wc = ctx.dfs->write_cost(write_bytes);
    task.disk_read = rc.disk_read;
    task.disk_write = wc.disk_write;
    task.network = rc.network + wc.network;
  } else {
    task.disk_read = read_bytes;
    task.disk_write = write_bytes;
  }
  cluster::PhaseReport phase;
  phase.name = name;
  phase.sim_seconds = task.duration(*ctx.cluster, ctx.data_scale);
  phase.bytes_read = read_bytes;
  phase.bytes_written = write_bytes;
  phase.task_count = 1;
  phase.task_attempts = 1;
  phase.commits_published = 1;
  emit_serial_span(ctx, phase, ctx.metrics->total_seconds(), task.cpu_seconds);
  ctx.metrics->add_phase(std::move(phase));
  apply_due_datanode_losses(ctx);
}

cluster::ScheduleOutcome record_phase(MrContext& ctx, const std::string& name,
                                      const std::vector<cluster::SimTask>& tasks,
                                      std::uint64_t bytes_read,
                                      std::uint64_t bytes_written,
                                      std::uint64_t bytes_shuffled,
                                      double extra_seconds,
                                      const std::vector<double>* task_severity,
                                      std::uint64_t max_task_pipe_bytes) {
  std::vector<double> durations;
  durations.reserve(tasks.size());
  for (const auto& t : tasks) {
    durations.push_back(t.duration(*ctx.cluster, ctx.data_scale));
  }
  const cluster::FaultInjector& faults = fault_injector(ctx);
  const cluster::FaultPlan& plan = faults.plan();
  std::vector<cluster::ScheduledAttempt> attempts;
  const cluster::ScheduleOutcome outcome = cluster::list_schedule_makespan(
      durations, ctx.cluster->total_slots(), faults,
      cluster::FaultInjector::phase_id(name), task_severity,
      ctx.trace != nullptr ? &attempts : nullptr, ctx.cluster->node.cores);
  // A successful phase that overran its deadline is killed by the job
  // tracker at exactly the timeout: charge the timeout, not the makespan.
  const bool timed_out = plan.phase_timeout_s > 0.0 && outcome.success &&
                         outcome.makespan + extra_seconds > plan.phase_timeout_s;
  // Shift phase-relative attempt times onto the run clock: the phase starts
  // where the sequential clock stood, and its serial extra_seconds (job
  // startup) precede the task waves.
  if (ctx.trace != nullptr) {
    const double offset = ctx.metrics->total_seconds() + extra_seconds;
    for (const auto& a : attempts) {
      trace::TaskSpan span;
      span.phase = name;
      span.task = a.task;
      span.attempt = a.attempt;
      span.speculative = a.speculative;
      span.slot = a.slot;
      span.sim_start = offset + a.start;
      span.sim_end = offset + a.end;
      span.cpu_seconds = tasks[a.task].cpu_seconds;
      span.bytes_in = tasks[a.task].disk_read;
      span.bytes_out = tasks[a.task].disk_write;
      span.bytes_shuffled = tasks[a.task].network;
      span.outcome = a.outcome;
      ctx.trace->record(std::move(span));
    }
    // Zero-duration markers at the moment each node was blacklisted.
    for (const auto& q : outcome.quarantines) {
      trace::TaskSpan span;
      span.phase = name;
      span.task = q.node;
      span.attempt = q.failures;
      span.slot = q.node * ctx.cluster->node.cores;
      span.sim_start = offset + q.time_s;
      span.sim_end = offset + q.time_s;
      span.outcome = trace::SpanOutcome::kQuarantined;
      ctx.trace->record(std::move(span));
    }
  }
  cluster::PhaseReport phase;
  phase.name = name;
  phase.sim_seconds =
      timed_out ? plan.phase_timeout_s : outcome.makespan + extra_seconds;
  phase.bytes_read = bytes_read;
  phase.bytes_written = bytes_written;
  phase.bytes_shuffled = bytes_shuffled;
  phase.task_count = tasks.size();
  phase.max_task_pipe_bytes = max_task_pipe_bytes;
  phase.task_attempts = outcome.attempts;
  phase.speculative_clones = outcome.speculative_clones;
  phase.wasted_seconds = outcome.wasted_seconds;
  phase.commits_published = outcome.commits_published;
  phase.commits_rejected = outcome.commits_rejected;
  phase.attempts_aborted = outcome.attempts_aborted;
  phase.nodes_quarantined = outcome.quarantines.size();
  ctx.metrics->add_phase(std::move(phase));
  if (ctx.counters != nullptr) {
    if (outcome.commits_published > 0) {
      ctx.counters->add("commit.published", outcome.commits_published);
    }
    if (outcome.commits_rejected > 0) {
      ctx.counters->add("commit.rejected", outcome.commits_rejected);
    }
    if (outcome.attempts_aborted > 0) {
      ctx.counters->add("commit.aborted", outcome.attempts_aborted);
    }
    if (!outcome.quarantines.empty()) {
      ctx.counters->add("quarantine.nodes", outcome.quarantines.size());
    }
  }
  apply_due_datanode_losses(ctx);
  // Lifecycle enforcement, after the phase (and any DFS repairs) are on the
  // books so a killed job's metrics show where its clock stopped. A failed
  // phase is exempt — the caller throws its own, more specific failure.
  if (outcome.success) {
    if (timed_out) {
      if (ctx.counters != nullptr) ctx.counters->add("budget.phase_timeouts", 1);
      throw DeadlineExceeded("phase '" + name + "' overran its deadline: makespan " +
                             std::to_string(outcome.makespan + extra_seconds) +
                             "s > timeout " + std::to_string(plan.phase_timeout_s) +
                             "s");
    }
    const std::uint64_t retries =
        outcome.attempts - tasks.size() - outcome.speculative_clones;
    if (retries > 0) {
      ctx.retries_used += retries;
      if (ctx.counters != nullptr) ctx.counters->add("budget.retries_used", retries);
    }
    if (plan.job_retry_budget > 0 && ctx.retries_used > plan.job_retry_budget) {
      throw RetryBudgetExhausted(
          "job retry budget exhausted: " + std::to_string(ctx.retries_used) +
          " retries used, budget " + std::to_string(plan.job_retry_budget) +
          " (last phase '" + name + "')");
    }
  }
  return outcome;
}

}  // namespace sjc::mapreduce
