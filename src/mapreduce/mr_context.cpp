#include "mapreduce/mr_context.hpp"

#include "cluster/scheduler.hpp"
#include "util/status.hpp"

namespace sjc::mapreduce {

void charge_master_step(MrContext& ctx, const std::string& name, double cpu_seconds,
                        std::uint64_t read_bytes, std::uint64_t write_bytes,
                        double cpu_efficiency) {
  require(ctx.cluster != nullptr && ctx.metrics != nullptr,
          "charge_master_step: incomplete context");
  require(cpu_efficiency > 0.0, "charge_master_step: cpu_efficiency must be positive");
  cluster::SimTask task;
  task.cpu_seconds = cpu_seconds / cpu_efficiency;
  if (ctx.dfs != nullptr) {
    const auto rc = ctx.dfs->read_cost(read_bytes);
    const auto wc = ctx.dfs->write_cost(write_bytes);
    task.disk_read = rc.disk_read;
    task.disk_write = wc.disk_write;
    task.network = rc.network + wc.network;
  } else {
    task.disk_read = read_bytes;
    task.disk_write = write_bytes;
  }
  cluster::PhaseReport phase;
  phase.name = name;
  phase.sim_seconds = task.duration(*ctx.cluster, ctx.data_scale);
  phase.bytes_read = read_bytes;
  phase.bytes_written = write_bytes;
  phase.task_count = 1;
  ctx.metrics->add_phase(std::move(phase));
}

void record_phase(MrContext& ctx, const std::string& name,
                  const std::vector<cluster::SimTask>& tasks,
                  std::uint64_t bytes_read, std::uint64_t bytes_written,
                  std::uint64_t bytes_shuffled, double extra_seconds) {
  std::vector<double> durations;
  durations.reserve(tasks.size());
  for (const auto& t : tasks) {
    durations.push_back(t.duration(*ctx.cluster, ctx.data_scale));
  }
  cluster::PhaseReport phase;
  phase.name = name;
  phase.sim_seconds =
      cluster::list_schedule_makespan(durations, ctx.cluster->total_slots()) +
      extra_seconds;
  phase.bytes_read = bytes_read;
  phase.bytes_written = bytes_written;
  phase.bytes_shuffled = bytes_shuffled;
  phase.task_count = tasks.size();
  ctx.metrics->add_phase(std::move(phase));
}

}  // namespace sjc::mapreduce
