// Hadoop Streaming job — the HadoopGIS execution model.
//
// Under Hadoop Streaming, mapper and reducer are external processes wired
// up with text pipes: every record crosses each stage boundary as one tab-
// separated line, is re-serialized and re-parsed on each side, and the
// framework only sees opaque lines whose key is the text before the first
// tab. This module reproduces the three consequences the paper highlights:
//
//  * string serialization overhead — user map/reduce functions receive and
//    emit std::string lines, and the very real parse cost lands in measured
//    task CPU time;
//  * pipe copy overhead — bytes crossing a task's stdin+stdout are charged
//    at `pipe_bandwidth`;
//  * broken pipes — a task whose pipe volume (at paper magnitude) exceeds
//    `pipe_capacity_bytes` throws BrokenPipe, which is how HadoopGIS dies
//    on the full datasets (Table 2) and on EC2 for the samples (Table 3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mapreduce/mr_context.hpp"

namespace sjc::mapreduce {

struct StreamingConfig {
  MrConfig mr;
  /// Bytes/sec a task's pipe sustains (paper units).
  double pipe_bandwidth = 180.0 * 1024 * 1024;
  /// Max bytes (paper units) through one task's pipes before it breaks;
  /// 0 disables the check. Systems derive this from per-slot memory.
  std::uint64_t pipe_capacity_bytes = 0;
};

using StreamingMapFn = std::function<void(const std::string&, std::vector<std::string>&)>;

struct StreamingSpec {
  std::string name;
  /// Mapper process: one input line -> zero or more "key\tvalue" lines.
  StreamingMapFn map;
  /// Optional per-task mapper factory. When set it is invoked once per map
  /// task *inside the task's timing*, so per-task setup (e.g. HadoopGIS
  /// rebuilding its partition R-tree in every mapper) is charged
  /// faithfully. Takes precedence over `map`.
  std::function<StreamingMapFn(std::size_t task_id)> make_mapper;
  /// Reducer process: all lines of its bucket, sorted by key (whole line
  /// order, as `sort` would produce) -> output lines.
  std::function<void(const std::vector<std::string>&, std::vector<std::string>&)> reduce;
  StreamingConfig config;
};

/// Runs the streaming job over line-splits. Throws BrokenPipe when any
/// task's pipe volume exceeds the configured capacity.
std::vector<std::string> run_streaming(MrContext& ctx, const StreamingSpec& spec,
                                       const std::vector<std::vector<std::string>>& splits);

/// Map-only variant (identity reducer short-circuited, as "-numReduceTasks
/// 0" does in Hadoop Streaming).
std::vector<std::string> run_streaming_map_only(
    MrContext& ctx, const StreamingSpec& spec,
    const std::vector<std::vector<std::string>>& splits);

/// Key of a streaming line: the text before the first tab (whole line when
/// no tab).
std::string_view streaming_key(const std::string& line);

}  // namespace sjc::mapreduce
