// Chunked arena storage for map-side shuffle buckets.
//
// The seed data plane keeps one std::vector per (map task, reduce bucket)
// and grows it pair by pair; with hundreds of reducers and small per-bucket
// counts that is a reallocation storm and a cold-cache scatter the real
// systems never pay (their spill buffers are contiguous byte arenas).
// ShuffleArena stores all buckets of one map task in a single chunk pool:
// each bucket is a linked chain of fixed-capacity chunks, chunks are
// allocated once and never reallocate, and draining a bucket walks its
// chain in allocation order. Modeled shuffle bytes are unaffected — this
// container only changes how the harness holds the pairs.
//
// One arena belongs to one map task and is filled single-threaded; draining
// (the reduce-side fetch) may happen from a different thread after the map
// phase barrier, and distinct buckets may be drained concurrently.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace sjc::mapreduce {

template <typename T>
class ShuffleArena {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  explicit ShuffleArena(std::size_t chunk_capacity = 128)
      : chunk_capacity_(chunk_capacity == 0 ? 1 : chunk_capacity) {}

  /// Resets the arena to `bucket_count` empty buckets.
  void reset(std::size_t bucket_count) {
    chunks_.clear();
    heads_.assign(bucket_count, kNone);
    tails_.assign(bucket_count, kNone);
    sizes_.assign(bucket_count, 0);
  }

  std::size_t bucket_count() const { return heads_.size(); }
  std::uint64_t bucket_size(std::size_t bucket) const { return sizes_[bucket]; }

  std::uint64_t total_size() const {
    std::uint64_t total = 0;
    for (const auto s : sizes_) total += s;
    return total;
  }

  void push(std::size_t bucket, T value) {
    std::uint32_t tail = tails_[bucket];
    if (tail == kNone || chunks_[tail].items.size() == chunk_capacity_) {
      const auto fresh = static_cast<std::uint32_t>(chunks_.size());
      chunks_.emplace_back();
      chunks_.back().items.reserve(chunk_capacity_);
      if (tail == kNone) {
        heads_[bucket] = fresh;
      } else {
        chunks_[tail].next = fresh;
      }
      tails_[bucket] = fresh;
      tail = fresh;
    }
    chunks_[tail].items.push_back(std::move(value));
    ++sizes_[bucket];
  }

  /// Visits every item of `bucket` in insertion order, passing a mutable
  /// reference (callers typically move the item out). The bucket is left
  /// empty. Distinct buckets may be consumed concurrently.
  template <typename Fn>
  void consume(std::size_t bucket, Fn&& fn) {
    for (std::uint32_t c = heads_[bucket]; c != kNone; c = chunks_[c].next) {
      for (auto& item : chunks_[c].items) fn(item);
      chunks_[c].items.clear();
    }
    heads_[bucket] = kNone;
    tails_[bucket] = kNone;
    sizes_[bucket] = 0;
  }

  /// Drains `bucket` into a fresh vector (insertion order).
  std::vector<T> take_bucket(std::size_t bucket) {
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(sizes_[bucket]));
    consume(bucket, [&out](T& item) { out.push_back(std::move(item)); });
    return out;
  }

  /// Refills `bucket` (assumed empty, e.g. after take_bucket) from `items`.
  void refill(std::size_t bucket, std::vector<T> items) {
    for (auto& item : items) push(bucket, std::move(item));
  }

 private:
  struct Chunk {
    std::vector<T> items;
    std::uint32_t next = kNone;
  };

  std::size_t chunk_capacity_;
  std::vector<Chunk> chunks_;
  std::vector<std::uint32_t> heads_;
  std::vector<std::uint32_t> tails_;
  std::vector<std::uint64_t> sizes_;
};

}  // namespace sjc::mapreduce
