// Shared execution context for simulated MapReduce jobs.
//
// MrContext bundles what every job run needs: the cluster it "runs on", the
// data scale that converts measured quantities to paper magnitude, the DFS
// (for read/write cost structure) and the metrics sink. MrConfig carries
// the Hadoop framework constants the paper's analysis repeatedly invokes:
// per-job startup overhead (why many small MR jobs hurt HadoopGIS, and why
// Hadoop "infrastructure overheads for small datasets" show in Table 3) and
// per-task scheduling/JVM overhead.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/cluster_spec.hpp"
#include "cluster/counters.hpp"
#include "cluster/metrics.hpp"
#include "cluster/scheduler.hpp"
#include "cluster/sim_task.hpp"
#include "dfs/sim_dfs.hpp"
#include "trace/trace.hpp"

namespace sjc::mapreduce {

struct MrConfig {
  /// Seconds (paper units) to submit+launch one MR job (JobTracker/YARN
  /// round-trips, container allocation).
  double job_startup_s = 12.0;
  /// Seconds (paper units) per task for scheduling + JVM spin-up.
  double task_overhead_s = 1.5;
  /// Number of reduce tasks; 0 = one per cluster slot.
  std::uint32_t reduce_tasks = 0;
  /// Ratio of this simulator's native C++ throughput to the modeled
  /// system's software stack (JVM geometry libraries, boxing, streaming
  /// glue). Measured CPU seconds are divided by this before scaling.
  double cpu_efficiency = 0.2;
  /// Per-reduce-task fetch setup latency for each map output segment, on
  /// multi-node clusters only (paper units): a reducer opens one connection
  /// per mapper, which is why the paper finds distributed shuffles during
  /// indexing "very expensive" on EC2 while nearly free on the workstation.
  double shuffle_fetch_latency_s = 0.8;
};

struct MrContext {
  const cluster::ClusterSpec* cluster = nullptr;
  double data_scale = 1.0;
  dfs::SimDfs* dfs = nullptr;
  cluster::RunMetrics* metrics = nullptr;
  /// Optional named-counter sink (Hadoop-style job counters).
  cluster::Counters* counters = nullptr;
  /// Optional fault injector: when set, every phase is scheduled through
  /// the failure-aware path (retries, speculation, datanode losses). Null
  /// means the fault-free seed model.
  const cluster::FaultInjector* faults = nullptr;
  /// Index of the next unapplied datanode-loss event from the fault plan
  /// (advanced as the simulated clock passes each event's time).
  std::size_t datanode_losses_applied = 0;
  /// Optional per-task span sink. When set, every scheduled attempt (plus
  /// master steps and DFS repairs) lands on the run's trace timeline;
  /// tracing never changes what the phases charge. Kept last so existing
  /// positional aggregate initializers stay valid.
  trace::TraceCollector* trace = nullptr;
  /// Failed-attempt retries consumed so far across the whole job (attempts
  /// beyond each task's first, excluding speculative clones). Checked
  /// against the plan's job_retry_budget after every successful phase.
  std::uint64_t retries_used = 0;

  /// Fraction of shuffled bytes that cross the network (a reducer co-hosted
  /// with a mapper reads locally): (nodes-1)/nodes.
  double remote_fraction() const {
    return cluster->node_count <= 1
               ? 0.0
               : static_cast<double>(cluster->node_count - 1) /
                     static_cast<double>(cluster->node_count);
  }
};

/// Charges a serial master-node step (e.g. HadoopGIS's local partition
/// generation, SpatialHadoop's getSplits MBR join): one task on one slot,
/// with DFS read/write of the given byte volumes. `cpu_seconds` is raw
/// measured time; it is divided by `cpu_efficiency`.
void charge_master_step(MrContext& ctx, const std::string& name, double cpu_seconds,
                        std::uint64_t read_bytes, std::uint64_t write_bytes,
                        double cpu_efficiency = 0.2);

/// The context's fault injector, or a shared trivial (fault-free) one when
/// none is set. A trivial plan drives the failure-aware scheduler through
/// arithmetic identical to the plain path, so clean runs stay bit-equal.
const cluster::FaultInjector& fault_injector(const MrContext& ctx);

/// Records a phase from a set of simulated tasks: computes the FIFO
/// makespan over the cluster's slots (through the context's fault injector:
/// retries, backoff, speculation, stragglers) and appends a PhaseReport.
///
/// `task_severity` (optional, parallel to `tasks`) carries deterministic
/// per-task failure causes — for streaming, pipe_volume / pipe_capacity;
/// entries > the attempt's capacity factor make that attempt fail (see
/// scheduler.hpp). The outcome reports whether the phase succeeded; on
/// `success == false` the phase (with its wasted work) is still recorded
/// and the caller decides which SimFailure to throw. Datanode-loss events
/// whose scheduled time the simulated clock has passed are applied after
/// the phase, charging re-replication traffic as its own phase — so the
/// recorded phase may not be the metrics' last; per-phase annotations go
/// through `max_task_pipe_bytes` here rather than metrics->last_phase().
///
/// Lifecycle enforcement (throwing paths; the phase is recorded first so a
/// killed job's metrics show where the clock stopped): a successful phase
/// whose makespan overruns the plan's phase_timeout_s charges exactly the
/// timeout and throws DeadlineExceeded; retries beyond the plan's
/// job_retry_budget (accumulated in ctx.retries_used) throw
/// RetryBudgetExhausted.
cluster::ScheduleOutcome record_phase(MrContext& ctx, const std::string& name,
                                      const std::vector<cluster::SimTask>& tasks,
                                      std::uint64_t bytes_read,
                                      std::uint64_t bytes_written,
                                      std::uint64_t bytes_shuffled,
                                      double extra_seconds,
                                      const std::vector<double>* task_severity =
                                          nullptr,
                                      std::uint64_t max_task_pipe_bytes = 0);

}  // namespace sjc::mapreduce
