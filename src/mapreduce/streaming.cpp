#include "mapreduce/streaming.hpp"

#include <algorithm>

#include "mapreduce/shuffle_arena.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sjc::mapreduce {

namespace {

/// Pipe-overflow severity of one task: paper-magnitude pipe volume over the
/// configured capacity. <= 1 never fails; > 1 fails an attempt unless the
/// attempt's retry headroom covers the ratio (scheduler.hpp). 0 when the
/// capacity check is disabled.
double pipe_severity(const StreamingConfig& config, double data_scale,
                     std::uint64_t pipe_bytes) {
  if (config.pipe_capacity_bytes == 0) return 0.0;
  const auto paper_bytes = static_cast<double>(pipe_bytes) * data_scale;
  return paper_bytes / static_cast<double>(config.pipe_capacity_bytes);
}

/// Converts a failed phase outcome into the job-killing SimFailure: pipe
/// overflows beyond the last attempt's headroom die as BrokenPipe (the
/// HadoopGIS signature of Tables 2-3), injected crashes as TaskFailed.
[[noreturn]] void throw_phase_failure(const MrContext& ctx,
                                      const cluster::ScheduleOutcome& outcome,
                                      const StreamingConfig& config,
                                      const std::vector<double>& severity,
                                      const std::vector<std::uint64_t>& pipe_bytes,
                                      const std::string& where) {
  const cluster::FaultInjector& faults = fault_injector(ctx);
  const std::uint32_t attempts = faults.plan().max_attempts;
  const std::size_t task = outcome.first_failed_task;
  if (task < severity.size() && severity[task] > 1.0 &&
      severity[task] > faults.capacity_factor(attempts)) {
    const auto paper_bytes = static_cast<std::uint64_t>(
        static_cast<double>(pipe_bytes[task]) * ctx.data_scale);
    throw BrokenPipe("streaming task pipe overflow in " + where + ": " +
                     std::to_string(paper_bytes) + " bytes > capacity " +
                     std::to_string(config.pipe_capacity_bytes) + " after " +
                     std::to_string(attempts) + " attempt(s)");
  }
  throw TaskFailed("streaming task " + std::to_string(task) + " in " + where +
                   " crashed and exhausted " + std::to_string(attempts) +
                   " attempt(s)");
}

double pipe_seconds(const StreamingConfig& config, std::uint64_t bytes) {
  // Paper-unit seconds are computed by the caller's duration(); here we
  // pre-divide by bandwidth so the cost rides in fixed_overhead after being
  // scaled. To keep scaling consistent we instead fold pipe bytes into
  // cpu_seconds at scaled magnitude: seconds(scaled) = bytes / bandwidth.
  return static_cast<double>(bytes) / config.pipe_bandwidth;
}

}  // namespace

std::string_view streaming_key(const std::string& line) {
  const auto tab = line.find('\t');
  return tab == std::string::npos ? std::string_view(line)
                                  : std::string_view(line.data(), tab);
}

std::vector<std::string> run_streaming(MrContext& ctx, const StreamingSpec& spec,
                                       const std::vector<std::vector<std::string>>& splits) {
  require(ctx.cluster != nullptr && ctx.dfs != nullptr && ctx.metrics != nullptr,
          "run_streaming: incomplete context");
  require((static_cast<bool>(spec.map) || static_cast<bool>(spec.make_mapper)) &&
              static_cast<bool>(spec.reduce),
          "run_streaming: map(per or factory) and reduce must be set");

  const std::uint32_t reduce_tasks = spec.config.mr.reduce_tasks != 0
                                         ? spec.config.mr.reduce_tasks
                                         : ctx.cluster->total_slots();

  // ---- Map phase (mapper subprocess per split) -----------------------------
  struct MapResult {
    // Chunked arena keyed by reduce bucket: emitted lines land in fixed-
    // capacity chunks instead of growing one vector per (task, bucket).
    // Pipe bytes and shuffle bytes are computed from the lines themselves,
    // so the container swap is invisible to the cost model.
    ShuffleArena<std::string> buckets;
    cluster::SimTask task;
    std::uint64_t pipe_bytes = 0;
  };
  std::vector<MapResult> map_results(splits.size());
  // User code runs exactly once per task; pipe overflows do not throw here.
  // Each task's overflow severity feeds the failure-aware scheduler, which
  // decides — per the fault plan's retry budget — whether the phase
  // recovers or the job dies (and charges the failed attempts either way).
  ThreadPool::shared().parallel_for(splits.size(), [&](std::size_t s) {
    MapResult& result = map_results[s];
    result.buckets.reset(reduce_tasks);
    CpuStopwatch cpu;
    const StreamingMapFn mapper = spec.make_mapper ? spec.make_mapper(s) : spec.map;
    std::uint64_t in_bytes = 0;
    std::uint64_t out_bytes = 0;
    // Reused per-record emit buffer: thread_local so a pool thread keeps the
    // vector's capacity across records AND tasks (strings are moved out per
    // record, so only the capacity persists). The modeled byte accounting
    // below reads the line/output text itself and is unchanged by the reuse.
    static thread_local std::vector<std::string> emitted;
    for (const auto& line : splits[s]) {
      in_bytes += line.size() + 1;
      emitted.clear();
      mapper(line, emitted);
      for (auto& out : emitted) {
        out_bytes += out.size() + 1;
        const std::size_t bucket =
            std::hash<std::string_view>{}(streaming_key(out)) % reduce_tasks;
        result.buckets.push(bucket, std::move(out));
      }
    }
    const std::uint64_t pipe_bytes = in_bytes + out_bytes;
    result.pipe_bytes = pipe_bytes;
    result.task.cpu_seconds = cpu.seconds() / spec.config.mr.cpu_efficiency +
                              pipe_seconds(spec.config, pipe_bytes);
    const auto rc = ctx.dfs->read_cost(in_bytes);
    result.task.disk_read = rc.disk_read;
    result.task.network = rc.network;
    result.task.disk_write = out_bytes;
    result.task.fixed_overhead = spec.config.mr.task_overhead_s;
  });

  std::uint64_t map_in = 0;
  std::uint64_t map_out = 0;
  {
    std::vector<cluster::SimTask> tasks;
    std::vector<double> severity;
    std::vector<std::uint64_t> pipe_volumes;
    tasks.reserve(map_results.size());
    severity.reserve(map_results.size());
    pipe_volumes.reserve(map_results.size());
    std::uint64_t max_pipe = 0;
    for (const auto& r : map_results) {
      tasks.push_back(r.task);
      severity.push_back(pipe_severity(spec.config, ctx.data_scale, r.pipe_bytes));
      pipe_volumes.push_back(r.pipe_bytes);
      map_in += r.task.disk_read;
      map_out += r.task.disk_write;
      max_pipe = std::max(max_pipe, r.pipe_bytes);
    }
    const auto outcome = record_phase(
        ctx, spec.name + "/map", tasks, map_in, map_out, 0,
        spec.config.mr.job_startup_s, &severity,
        static_cast<std::uint64_t>(static_cast<double>(max_pipe) * ctx.data_scale));
    if (!outcome.success) {
      throw_phase_failure(ctx, outcome, spec.config, severity, pipe_volumes,
                          spec.name + "/map");
    }
  }

  // ---- Shuffle + reduce (reducer subprocess per bucket) --------------------
  std::vector<std::vector<std::string>> outputs(reduce_tasks);
  std::vector<cluster::SimTask> reduce_costs(reduce_tasks);
  std::vector<std::uint64_t> reduce_pipe_bytes(reduce_tasks, 0);
  const double remote_fraction = ctx.remote_fraction();

  ThreadPool::shared().parallel_for(reduce_tasks, [&](std::size_t r) {
    CpuStopwatch cpu;
    std::vector<std::string> lines;
    std::uint64_t shuffle_bytes = 0;
    for (auto& mr : map_results) {
      mr.buckets.consume(r, [&](std::string& line) {
        shuffle_bytes += line.size() + 1;
        lines.push_back(std::move(line));
      });
    }
    // Hadoop streaming feeds the reducer lines sorted by key; plain
    // byte-wise sort of whole lines matches `sort` and groups equal keys.
    std::sort(lines.begin(), lines.end());
    const std::size_t before = outputs[r].size();
    spec.reduce(lines, outputs[r]);
    std::uint64_t out_bytes = 0;
    for (std::size_t i = before; i < outputs[r].size(); ++i) {
      out_bytes += outputs[r][i].size() + 1;
    }
    const std::uint64_t pipe_bytes = shuffle_bytes + out_bytes;
    reduce_pipe_bytes[r] = pipe_bytes;
    cluster::SimTask& task = reduce_costs[r];
    task.cpu_seconds = cpu.seconds() / spec.config.mr.cpu_efficiency +
                       pipe_seconds(spec.config, pipe_bytes);
    task.fixed_overhead = spec.config.mr.task_overhead_s;
    if (ctx.cluster->node_count > 1) {
      task.fixed_overhead +=
          spec.config.mr.shuffle_fetch_latency_s * static_cast<double>(map_results.size());
    }
    task.disk_read = shuffle_bytes;
    task.network = static_cast<std::uint64_t>(static_cast<double>(shuffle_bytes) *
                                              remote_fraction);
    const auto wc = ctx.dfs->write_cost(out_bytes);
    task.disk_write = wc.disk_write;
    task.network += wc.network;
  });

  std::uint64_t total_shuffle = 0;
  std::uint64_t total_out = 0;
  for (const auto& t : reduce_costs) {
    total_shuffle += t.disk_read;
    total_out += t.disk_write;
  }
  std::vector<double> reduce_severity;
  reduce_severity.reserve(reduce_pipe_bytes.size());
  for (const std::uint64_t bytes : reduce_pipe_bytes) {
    reduce_severity.push_back(pipe_severity(spec.config, ctx.data_scale, bytes));
  }
  const std::uint64_t max_reduce_pipe = *std::max_element(
      reduce_pipe_bytes.begin(), reduce_pipe_bytes.end());
  const auto outcome = record_phase(
      ctx, spec.name + "/reduce", reduce_costs, total_shuffle, total_out,
      total_shuffle, 0.0, &reduce_severity,
      static_cast<std::uint64_t>(static_cast<double>(max_reduce_pipe) *
                                 ctx.data_scale));
  if (!outcome.success) {
    throw_phase_failure(ctx, outcome, spec.config, reduce_severity,
                        reduce_pipe_bytes, spec.name + "/reduce");
  }

  std::vector<std::string> all;
  for (auto& out : outputs) {
    for (auto& line : out) all.push_back(std::move(line));
  }
  return all;
}

std::vector<std::string> run_streaming_map_only(
    MrContext& ctx, const StreamingSpec& spec,
    const std::vector<std::vector<std::string>>& splits) {
  require(ctx.cluster != nullptr && ctx.dfs != nullptr && ctx.metrics != nullptr,
          "run_streaming_map_only: incomplete context");
  require(static_cast<bool>(spec.map) || static_cast<bool>(spec.make_mapper),
          "run_streaming_map_only: map must be set");

  std::vector<std::vector<std::string>> outputs(splits.size());
  std::vector<cluster::SimTask> tasks(splits.size());
  std::vector<std::uint64_t> task_pipe_bytes(splits.size(), 0);

  ThreadPool::shared().parallel_for(splits.size(), [&](std::size_t s) {
    CpuStopwatch cpu;
    const StreamingMapFn mapper = spec.make_mapper ? spec.make_mapper(s) : spec.map;
    std::uint64_t in_bytes = 0;
    std::uint64_t out_bytes = 0;
    // Same reused thread_local emit buffer as run_streaming's map loop;
    // modeled byte accounting is computed from the text and unchanged.
    static thread_local std::vector<std::string> emitted;
    for (const auto& line : splits[s]) {
      in_bytes += line.size() + 1;
      emitted.clear();
      mapper(line, emitted);
      for (auto& out : emitted) {
        out_bytes += out.size() + 1;
        outputs[s].push_back(std::move(out));
      }
    }
    const std::uint64_t pipe_bytes = in_bytes + out_bytes;
    task_pipe_bytes[s] = pipe_bytes;
    cluster::SimTask& task = tasks[s];
    task.cpu_seconds = cpu.seconds() / spec.config.mr.cpu_efficiency +
                       pipe_seconds(spec.config, pipe_bytes);
    const auto rc = ctx.dfs->read_cost(in_bytes);
    const auto wc = ctx.dfs->write_cost(out_bytes);
    task.disk_read = rc.disk_read;
    task.disk_write = wc.disk_write;
    task.network = rc.network + wc.network;
    task.fixed_overhead = spec.config.mr.task_overhead_s;
  });

  std::uint64_t total_in = 0;
  std::uint64_t total_out = 0;
  for (const auto& t : tasks) {
    total_in += t.disk_read;
    total_out += t.disk_write;
  }
  std::vector<double> severity;
  severity.reserve(task_pipe_bytes.size());
  for (const std::uint64_t bytes : task_pipe_bytes) {
    severity.push_back(pipe_severity(spec.config, ctx.data_scale, bytes));
  }
  const std::uint64_t max_pipe = *std::max_element(task_pipe_bytes.begin(),
                                                   task_pipe_bytes.end());
  const auto outcome = record_phase(
      ctx, spec.name + "/map", tasks, total_in, total_out, 0,
      spec.config.mr.job_startup_s, &severity,
      static_cast<std::uint64_t>(static_cast<double>(max_pipe) * ctx.data_scale));
  if (!outcome.success) {
    throw_phase_failure(ctx, outcome, spec.config, severity, task_pipe_bytes,
                        spec.name + "/map");
  }

  std::vector<std::string> all;
  for (auto& out : outputs) {
    for (auto& line : out) all.push_back(std::move(line));
  }
  return all;
}

}  // namespace sjc::mapreduce
