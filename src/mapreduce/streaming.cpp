#include "mapreduce/streaming.hpp"

#include <algorithm>

#include "util/status.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sjc::mapreduce {

namespace {

void check_pipe(const StreamingConfig& config, double data_scale,
                std::uint64_t pipe_bytes, const std::string& where) {
  if (config.pipe_capacity_bytes == 0) return;
  const auto paper_bytes = static_cast<std::uint64_t>(
      static_cast<double>(pipe_bytes) * data_scale);
  if (paper_bytes > config.pipe_capacity_bytes) {
    throw BrokenPipe("streaming task pipe overflow in " + where + ": " +
                     std::to_string(paper_bytes) + " bytes > capacity " +
                     std::to_string(config.pipe_capacity_bytes));
  }
}

double pipe_seconds(const StreamingConfig& config, std::uint64_t bytes) {
  // Paper-unit seconds are computed by the caller's duration(); here we
  // pre-divide by bandwidth so the cost rides in fixed_overhead after being
  // scaled. To keep scaling consistent we instead fold pipe bytes into
  // cpu_seconds at scaled magnitude: seconds(scaled) = bytes / bandwidth.
  return static_cast<double>(bytes) / config.pipe_bandwidth;
}

}  // namespace

std::string_view streaming_key(const std::string& line) {
  const auto tab = line.find('\t');
  return tab == std::string::npos ? std::string_view(line)
                                  : std::string_view(line.data(), tab);
}

std::vector<std::string> run_streaming(MrContext& ctx, const StreamingSpec& spec,
                                       const std::vector<std::vector<std::string>>& splits) {
  require(ctx.cluster != nullptr && ctx.dfs != nullptr && ctx.metrics != nullptr,
          "run_streaming: incomplete context");
  require((static_cast<bool>(spec.map) || static_cast<bool>(spec.make_mapper)) &&
              static_cast<bool>(spec.reduce),
          "run_streaming: map(per or factory) and reduce must be set");

  const std::uint32_t reduce_tasks = spec.config.mr.reduce_tasks != 0
                                         ? spec.config.mr.reduce_tasks
                                         : ctx.cluster->total_slots();

  // ---- Map phase (mapper subprocess per split) -----------------------------
  struct MapResult {
    std::vector<std::vector<std::string>> buckets;
    cluster::SimTask task;
    std::uint64_t pipe_bytes = 0;
  };
  std::vector<MapResult> map_results(splits.size());
  // Failures inside parallel_for propagate after all bodies ran; BrokenPipe
  // from any task aborts the job, like a failed streaming attempt does
  // (Hadoop retries, then kills the job; we skip the futile retries).
  ThreadPool::shared().parallel_for(splits.size(), [&](std::size_t s) {
    MapResult& result = map_results[s];
    result.buckets.resize(reduce_tasks);
    CpuStopwatch cpu;
    const StreamingMapFn mapper = spec.make_mapper ? spec.make_mapper(s) : spec.map;
    std::uint64_t in_bytes = 0;
    std::uint64_t out_bytes = 0;
    std::vector<std::string> emitted;
    for (const auto& line : splits[s]) {
      in_bytes += line.size() + 1;
      emitted.clear();
      mapper(line, emitted);
      for (auto& out : emitted) {
        out_bytes += out.size() + 1;
        const std::size_t bucket =
            std::hash<std::string_view>{}(streaming_key(out)) % reduce_tasks;
        result.buckets[bucket].push_back(std::move(out));
      }
    }
    const std::uint64_t pipe_bytes = in_bytes + out_bytes;
    result.pipe_bytes = pipe_bytes;
    check_pipe(spec.config, ctx.data_scale, pipe_bytes, spec.name + "/map");
    result.task.cpu_seconds = cpu.seconds() / spec.config.mr.cpu_efficiency +
                              pipe_seconds(spec.config, pipe_bytes);
    const auto rc = ctx.dfs->read_cost(in_bytes);
    result.task.disk_read = rc.disk_read;
    result.task.network = rc.network;
    result.task.disk_write = out_bytes;
    result.task.fixed_overhead = spec.config.mr.task_overhead_s;
  });

  std::uint64_t map_in = 0;
  std::uint64_t map_out = 0;
  {
    std::vector<cluster::SimTask> tasks;
    tasks.reserve(map_results.size());
    std::uint64_t max_pipe = 0;
    for (const auto& r : map_results) {
      tasks.push_back(r.task);
      map_in += r.task.disk_read;
      map_out += r.task.disk_write;
      max_pipe = std::max(max_pipe, r.pipe_bytes);
    }
    record_phase(ctx, spec.name + "/map", tasks, map_in, map_out, 0,
                 spec.config.mr.job_startup_s);
    ctx.metrics->last_phase().max_task_pipe_bytes =
        static_cast<std::uint64_t>(static_cast<double>(max_pipe) * ctx.data_scale);
  }

  // ---- Shuffle + reduce (reducer subprocess per bucket) --------------------
  std::vector<std::vector<std::string>> outputs(reduce_tasks);
  std::vector<cluster::SimTask> reduce_costs(reduce_tasks);
  std::vector<std::uint64_t> reduce_pipe_bytes(reduce_tasks, 0);
  const double remote_fraction = ctx.remote_fraction();

  ThreadPool::shared().parallel_for(reduce_tasks, [&](std::size_t r) {
    CpuStopwatch cpu;
    std::vector<std::string> lines;
    std::uint64_t shuffle_bytes = 0;
    for (auto& mr : map_results) {
      for (auto& line : mr.buckets[r]) {
        shuffle_bytes += line.size() + 1;
        lines.push_back(std::move(line));
      }
      mr.buckets[r].clear();
    }
    // Hadoop streaming feeds the reducer lines sorted by key; plain
    // byte-wise sort of whole lines matches `sort` and groups equal keys.
    std::sort(lines.begin(), lines.end());
    const std::size_t before = outputs[r].size();
    spec.reduce(lines, outputs[r]);
    std::uint64_t out_bytes = 0;
    for (std::size_t i = before; i < outputs[r].size(); ++i) {
      out_bytes += outputs[r][i].size() + 1;
    }
    const std::uint64_t pipe_bytes = shuffle_bytes + out_bytes;
    reduce_pipe_bytes[r] = pipe_bytes;
    check_pipe(spec.config, ctx.data_scale, pipe_bytes, spec.name + "/reduce");
    cluster::SimTask& task = reduce_costs[r];
    task.cpu_seconds = cpu.seconds() / spec.config.mr.cpu_efficiency +
                       pipe_seconds(spec.config, pipe_bytes);
    task.fixed_overhead = spec.config.mr.task_overhead_s;
    if (ctx.cluster->node_count > 1) {
      task.fixed_overhead +=
          spec.config.mr.shuffle_fetch_latency_s * static_cast<double>(map_results.size());
    }
    task.disk_read = shuffle_bytes;
    task.network = static_cast<std::uint64_t>(static_cast<double>(shuffle_bytes) *
                                              remote_fraction);
    const auto wc = ctx.dfs->write_cost(out_bytes);
    task.disk_write = wc.disk_write;
    task.network += wc.network;
  });

  std::uint64_t total_shuffle = 0;
  std::uint64_t total_out = 0;
  for (const auto& t : reduce_costs) {
    total_shuffle += t.disk_read;
    total_out += t.disk_write;
  }
  record_phase(ctx, spec.name + "/reduce", reduce_costs, total_shuffle, total_out,
               total_shuffle, 0.0);
  ctx.metrics->last_phase().max_task_pipe_bytes = static_cast<std::uint64_t>(
      static_cast<double>(*std::max_element(reduce_pipe_bytes.begin(),
                                            reduce_pipe_bytes.end())) *
      ctx.data_scale);

  std::vector<std::string> all;
  for (auto& out : outputs) {
    for (auto& line : out) all.push_back(std::move(line));
  }
  return all;
}

std::vector<std::string> run_streaming_map_only(
    MrContext& ctx, const StreamingSpec& spec,
    const std::vector<std::vector<std::string>>& splits) {
  require(ctx.cluster != nullptr && ctx.dfs != nullptr && ctx.metrics != nullptr,
          "run_streaming_map_only: incomplete context");
  require(static_cast<bool>(spec.map) || static_cast<bool>(spec.make_mapper),
          "run_streaming_map_only: map must be set");

  std::vector<std::vector<std::string>> outputs(splits.size());
  std::vector<cluster::SimTask> tasks(splits.size());
  std::vector<std::uint64_t> task_pipe_bytes(splits.size(), 0);

  ThreadPool::shared().parallel_for(splits.size(), [&](std::size_t s) {
    CpuStopwatch cpu;
    const StreamingMapFn mapper = spec.make_mapper ? spec.make_mapper(s) : spec.map;
    std::uint64_t in_bytes = 0;
    std::uint64_t out_bytes = 0;
    std::vector<std::string> emitted;
    for (const auto& line : splits[s]) {
      in_bytes += line.size() + 1;
      emitted.clear();
      mapper(line, emitted);
      for (auto& out : emitted) {
        out_bytes += out.size() + 1;
        outputs[s].push_back(std::move(out));
      }
    }
    const std::uint64_t pipe_bytes = in_bytes + out_bytes;
    task_pipe_bytes[s] = pipe_bytes;
    check_pipe(spec.config, ctx.data_scale, pipe_bytes, spec.name + "/map");
    cluster::SimTask& task = tasks[s];
    task.cpu_seconds = cpu.seconds() / spec.config.mr.cpu_efficiency +
                       pipe_seconds(spec.config, pipe_bytes);
    const auto rc = ctx.dfs->read_cost(in_bytes);
    const auto wc = ctx.dfs->write_cost(out_bytes);
    task.disk_read = rc.disk_read;
    task.disk_write = wc.disk_write;
    task.network = rc.network + wc.network;
    task.fixed_overhead = spec.config.mr.task_overhead_s;
  });

  std::uint64_t total_in = 0;
  std::uint64_t total_out = 0;
  for (const auto& t : tasks) {
    total_in += t.disk_read;
    total_out += t.disk_write;
  }
  record_phase(ctx, spec.name + "/map", tasks, total_in, total_out, 0,
               spec.config.mr.job_startup_s);
  ctx.metrics->last_phase().max_task_pipe_bytes = static_cast<std::uint64_t>(
      static_cast<double>(*std::max_element(task_pipe_bytes.begin(),
                                            task_pipe_bytes.end())) *
      ctx.data_scale);

  std::vector<std::string> all;
  for (auto& out : outputs) {
    for (auto& line : out) all.push_back(std::move(line));
  }
  return all;
}

}  // namespace sjc::mapreduce
