// Typed (native) MapReduce job — the SpatialHadoop execution model.
//
// A full MR job: map over input splits, hash-partition intermediate (K, V)
// pairs into R reduce tasks, sort-group within each reduce task (Hadoop's
// sort-based shuffle), reduce, write output to DFS. User code runs for real
// (its CPU time is measured); disk/network volumes are charged through the
// context's cost model. Header-only because it is templated over the record
// types.
//
// Two spec flavors share one engine (run_map_reduce / run_map_only are
// duck-typed over the spec):
//  * MapReduceSpec — std::function members, per-(task, bucket) std::vector
//    shuffle buckets. This is the seed data plane, kept verbatim as the
//    baseline bench_shuffle measures against (and for call sites that want
//    type-erased composition).
//  * TypedMapReduceSpec — templated on the user functor types so map/emit/
//    key_less/pair_bytes inline into the engine loops, with map-side
//    buckets backed by a chunked ShuffleArena instead of per-pair vector
//    growth. Modeled bytes and phase shapes are identical by construction;
//    only harness overhead (std::function dispatch, bucket reallocation)
//    differs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "mapreduce/mr_context.hpp"
#include "mapreduce/shuffle_arena.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sjc::mapreduce {

template <typename In, typename K, typename V, typename Out>
struct MapReduceSpec {
  using InType = In;
  using KeyType = K;
  using ValueType = V;
  using OutType = Out;
  /// Marks the type-erased flavor: callbacks may be unset (validated at run
  /// time) and the engine uses the seed vector-of-vectors shuffle buckets.
  static constexpr bool kDynamic = true;

  std::string name;

  /// map(record, emit): called once per input record.
  std::function<void(const In&, const std::function<void(K, V)>&)> map;

  /// reduce(key, values, out): called once per distinct key; values arrive
  /// in map-emission order within a key (Hadoop makes no cross-mapper
  /// ordering promise and neither do we).
  std::function<void(const K&, std::vector<V>&, std::vector<Out>&)> reduce;

  /// Optional combiner, run on each map task's output before the shuffle:
  /// combine(key, values, combined) replaces that key's values with
  /// `combined`. Must be associative/commutative in the usual Hadoop sense;
  /// cuts shuffle volume (and is charged accordingly).
  std::function<void(const K&, std::vector<V>&, std::vector<V>&)> combine;

  /// Byte sizers (scaled magnitude) for cost accounting.
  std::function<std::uint64_t(const In&)> input_bytes;
  std::function<std::uint64_t(const K&, const V&)> pair_bytes;
  std::function<std::uint64_t(const Out&)> output_bytes;

  /// Key ordering (for sort-based grouping) and hashing (for the reduce
  /// partitioner).
  std::function<bool(const K&, const K&)> key_less;
  std::function<std::size_t(const K&)> key_hash;

  MrConfig config;
};

/// Sentinel combiner type for TypedMapReduceSpec: "no combiner". The no-op
/// call operator keeps the (never-taken) combine branch compilable.
struct NoCombine {
  template <typename K, typename V>
  void operator()(const K&, std::vector<V>&, std::vector<V>&) const {}
};

/// Functor-typed spec: map/reduce/sizers/key functions are concrete callable
/// types, so they inline into the engine loops; the engine backs its map-side
/// shuffle buckets with a ShuffleArena. Build via make_typed_spec.
template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename ReduceFn, typename InBytesFn, typename PairBytesFn,
          typename OutBytesFn, typename KeyLessFn = std::less<K>,
          typename KeyHashFn = std::hash<K>, typename CombineFn = NoCombine>
struct TypedMapReduceSpec {
  using InType = In;
  using KeyType = K;
  using ValueType = V;
  using OutType = Out;
  static constexpr bool kHasCombine = !std::is_same_v<CombineFn, NoCombine>;

  std::string name;
  MapFn map;
  ReduceFn reduce;
  InBytesFn input_bytes;
  PairBytesFn pair_bytes;
  OutBytesFn output_bytes;
  KeyLessFn key_less{};
  KeyHashFn key_hash{};
  CombineFn combine{};
  MrConfig config{};
};

/// Builds a TypedMapReduceSpec with deduced functor types. `map` is any
/// callable (record, emit) -> void where emit(K, V) is itself a callable;
/// write it as a generic lambda so the engine's emit inlines.
template <typename In, typename K, typename V, typename Out, typename MapFn,
          typename ReduceFn, typename InBytesFn, typename PairBytesFn,
          typename OutBytesFn, typename KeyLessFn = std::less<K>,
          typename KeyHashFn = std::hash<K>>
auto make_typed_spec(std::string name, MapFn map, ReduceFn reduce,
                     InBytesFn input_bytes, PairBytesFn pair_bytes,
                     OutBytesFn output_bytes, KeyLessFn key_less = {},
                     KeyHashFn key_hash = {}) {
  return TypedMapReduceSpec<In, K, V, Out, MapFn, ReduceFn, InBytesFn, PairBytesFn,
                            OutBytesFn, KeyLessFn, KeyHashFn>{
      std::move(name),        std::move(map),      std::move(reduce),
      std::move(input_bytes), std::move(pair_bytes), std::move(output_bytes),
      std::move(key_less),    std::move(key_hash)};
}

/// Runs the job over `splits` (one map task per split). Returns all reduce
/// outputs, ordered by (reduce task, key). Duck-typed over the spec flavor;
/// modeled costs are identical across flavors by construction.
template <typename Spec>
std::vector<typename Spec::OutType> run_map_reduce(
    MrContext& ctx, const Spec& spec,
    const std::vector<std::vector<typename Spec::InType>>& splits) {
  using K = typename Spec::KeyType;
  using V = typename Spec::ValueType;
  using Out = typename Spec::OutType;
  using PairT = std::pair<K, V>;
  constexpr bool kDynamic = requires { Spec::kDynamic; };

  require(ctx.cluster != nullptr && ctx.dfs != nullptr && ctx.metrics != nullptr,
          "run_map_reduce: incomplete context");
  if constexpr (kDynamic) {
    require(static_cast<bool>(spec.map) && static_cast<bool>(spec.reduce),
            "run_map_reduce: map and reduce must be set");
  }

  const std::uint32_t reduce_tasks = spec.config.reduce_tasks != 0
                                         ? spec.config.reduce_tasks
                                         : ctx.cluster->total_slots();

  // ---- Map phase -----------------------------------------------------------
  struct MapResult {
    // Pairs pre-bucketed by reduce task: per-bucket vectors on the dynamic
    // (seed) plane, one chunked arena per map task on the typed plane.
    std::vector<std::vector<PairT>> buckets;
    ShuffleArena<PairT> arena;
    cluster::SimTask task;
  };
  std::vector<MapResult> map_results(splits.size());

  ThreadPool::shared().parallel_for(splits.size(), [&](std::size_t s) {
    MapResult& result = map_results[s];
    if constexpr (kDynamic) {
      result.buckets.resize(reduce_tasks);
    } else {
      result.arena.reset(reduce_tasks);
    }
    CpuStopwatch cpu;
    std::uint64_t in_bytes = 0;
    std::uint64_t out_bytes = 0;
    const auto emit = [&](K key, V value) {
      out_bytes += spec.pair_bytes(key, value);
      const std::size_t bucket = spec.key_hash(key) % reduce_tasks;
      if constexpr (kDynamic) {
        result.buckets[bucket].emplace_back(std::move(key), std::move(value));
      } else {
        result.arena.push(bucket, PairT(std::move(key), std::move(value)));
      }
    };
    for (const auto& record : splits[s]) {
      in_bytes += spec.input_bytes(record);
      spec.map(record, emit);
    }
    bool do_combine = false;
    if constexpr (kDynamic) {
      do_combine = static_cast<bool>(spec.combine);
    } else {
      do_combine = Spec::kHasCombine;
    }
    if (do_combine) {
      // Map-side combine: group each bucket by key, fold values, recompute
      // the spill volume.
      out_bytes = 0;
      for (std::uint32_t b = 0; b < reduce_tasks; ++b) {
        std::vector<PairT> bucket;
        if constexpr (kDynamic) {
          bucket = std::move(result.buckets[b]);
        } else {
          bucket = result.arena.take_bucket(b);
        }
        std::stable_sort(bucket.begin(), bucket.end(),
                         [&](const auto& a, const auto& b2) {
                           return spec.key_less(a.first, b2.first);
                         });
        std::vector<PairT> combined_bucket;
        std::size_t i = 0;
        while (i < bucket.size()) {
          std::size_t j = i + 1;
          while (j < bucket.size() && !spec.key_less(bucket[i].first, bucket[j].first) &&
                 !spec.key_less(bucket[j].first, bucket[i].first)) {
            ++j;
          }
          std::vector<V> values;
          values.reserve(j - i);
          for (std::size_t k = i; k < j; ++k) {
            values.push_back(std::move(bucket[k].second));
          }
          std::vector<V> combined;
          spec.combine(bucket[i].first, values, combined);
          for (auto& v : combined) {
            out_bytes += spec.pair_bytes(bucket[i].first, v);
            combined_bucket.emplace_back(bucket[i].first, std::move(v));
          }
          i = j;
        }
        if constexpr (kDynamic) {
          result.buckets[b] = std::move(combined_bucket);
        } else {
          result.arena.refill(b, std::move(combined_bucket));
        }
      }
    }
    result.task.cpu_seconds = cpu.seconds() / spec.config.cpu_efficiency;
    const auto rc = ctx.dfs->read_cost(in_bytes);
    result.task.disk_read = rc.disk_read;
    result.task.network = rc.network;
    result.task.disk_write = out_bytes;  // map spill to local disk
    result.task.fixed_overhead = spec.config.task_overhead_s;
  });

  std::uint64_t map_in_bytes = 0;
  std::uint64_t map_out_bytes = 0;
  {
    std::vector<cluster::SimTask> tasks;
    tasks.reserve(map_results.size());
    for (const auto& r : map_results) {
      tasks.push_back(r.task);
      map_in_bytes += r.task.disk_read;
      map_out_bytes += r.task.disk_write;
    }
    const auto outcome = record_phase(ctx, spec.name + "/map", tasks, map_in_bytes,
                                      map_out_bytes, 0, spec.config.job_startup_s);
    if (!outcome.success) {
      throw TaskFailed(spec.name + "/map: task " +
                       std::to_string(outcome.first_failed_task) +
                       " crashed and exhausted its attempts");
    }
  }

  // ---- Shuffle + reduce phase ---------------------------------------------
  std::vector<std::vector<Out>> reduce_outputs(reduce_tasks);
  std::vector<cluster::SimTask> reduce_task_costs(reduce_tasks);
  const double remote_fraction = ctx.remote_fraction();

  ThreadPool::shared().parallel_for(reduce_tasks, [&](std::size_t r) {
    CpuStopwatch cpu;
    // Fetch this reducer's bucket from every map task (the shuffle).
    std::vector<PairT> pairs;
    std::uint64_t shuffle_bytes = 0;
    for (auto& mr : map_results) {
      if constexpr (kDynamic) {
        for (auto& kv : mr.buckets[r]) {
          shuffle_bytes += spec.pair_bytes(kv.first, kv.second);
          pairs.push_back(std::move(kv));
        }
        mr.buckets[r].clear();
      } else {
        mr.arena.consume(r, [&](PairT& kv) {
          shuffle_bytes += spec.pair_bytes(kv.first, kv.second);
          pairs.push_back(std::move(kv));
        });
      }
    }
    // Sort-based grouping (what Hadoop's merge sort does).
    std::stable_sort(pairs.begin(), pairs.end(),
                     [&](const auto& a, const auto& b) {
                       return spec.key_less(a.first, b.first);
                     });
    std::uint64_t out_bytes = 0;
    std::size_t i = 0;
    while (i < pairs.size()) {
      std::size_t j = i + 1;
      while (j < pairs.size() && !spec.key_less(pairs[i].first, pairs[j].first) &&
             !spec.key_less(pairs[j].first, pairs[i].first)) {
        ++j;
      }
      std::vector<V> values;
      values.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) values.push_back(std::move(pairs[k].second));
      const std::size_t before = reduce_outputs[r].size();
      spec.reduce(pairs[i].first, values, reduce_outputs[r]);
      for (std::size_t k = before; k < reduce_outputs[r].size(); ++k) {
        out_bytes += spec.output_bytes(reduce_outputs[r][k]);
      }
      i = j;
    }
    cluster::SimTask& task = reduce_task_costs[r];
    task.cpu_seconds = cpu.seconds() / spec.config.cpu_efficiency;
    task.fixed_overhead = spec.config.task_overhead_s;
    // Shuffle: read map spills from their disks, move across the network,
    // then write the job output to DFS (replicated). On multi-node clusters
    // every reducer opens one fetch connection per mapper.
    if (ctx.cluster->node_count > 1) {
      task.fixed_overhead +=
          spec.config.shuffle_fetch_latency_s * static_cast<double>(map_results.size());
    }
    task.disk_read = shuffle_bytes;
    task.network = static_cast<std::uint64_t>(static_cast<double>(shuffle_bytes) *
                                              remote_fraction);
    const auto wc = ctx.dfs->write_cost(out_bytes);
    task.disk_write = wc.disk_write;
    task.network += wc.network;
  });

  std::uint64_t total_shuffle = 0;
  std::uint64_t total_out = 0;
  for (const auto& t : reduce_task_costs) {
    total_shuffle += t.disk_read;
    total_out += t.disk_write;
  }
  {
    const auto outcome = record_phase(ctx, spec.name + "/reduce", reduce_task_costs,
                                      total_shuffle, total_out, total_shuffle, 0.0);
    if (!outcome.success) {
      throw TaskFailed(spec.name + "/reduce: task " +
                       std::to_string(outcome.first_failed_task) +
                       " crashed and exhausted its attempts");
    }
  }

  std::vector<Out> all;
  for (auto& out : reduce_outputs) {
    for (auto& o : out) all.push_back(std::move(o));
  }
  return all;
}

/// Runs a map-only job (SpatialHadoop's distributed-join pattern: the
/// global join happens in getSplits on the master, then one map task per
/// partition pair does the local join; no shuffle, no reduce). The caller
/// provides the splits; per-split input bytes come from `split_bytes`.
template <typename Split, typename Out>
struct MapOnlySpec {
  using SplitType = Split;
  using OutType = Out;
  static constexpr bool kDynamic = true;

  std::string name;
  std::function<void(const Split&, std::vector<Out>&)> map;
  std::function<std::uint64_t(const Split&)> split_bytes;
  std::function<std::uint64_t(const Out&)> output_bytes;
  MrConfig config;
};

/// Functor-typed map-only spec; build via make_typed_map_only_spec.
template <typename Split, typename Out, typename MapFn, typename SplitBytesFn,
          typename OutBytesFn>
struct TypedMapOnlySpec {
  using SplitType = Split;
  using OutType = Out;

  std::string name;
  MapFn map;
  SplitBytesFn split_bytes;
  OutBytesFn output_bytes;
  MrConfig config{};
};

template <typename Split, typename Out, typename MapFn, typename SplitBytesFn,
          typename OutBytesFn>
auto make_typed_map_only_spec(std::string name, MapFn map, SplitBytesFn split_bytes,
                              OutBytesFn output_bytes) {
  return TypedMapOnlySpec<Split, Out, MapFn, SplitBytesFn, OutBytesFn>{
      std::move(name), std::move(map), std::move(split_bytes),
      std::move(output_bytes)};
}

template <typename Spec>
std::vector<typename Spec::OutType> run_map_only(
    MrContext& ctx, const Spec& spec,
    const std::vector<typename Spec::SplitType>& splits) {
  using Out = typename Spec::OutType;
  require(ctx.cluster != nullptr && ctx.dfs != nullptr && ctx.metrics != nullptr,
          "run_map_only: incomplete context");
  std::vector<std::vector<Out>> outputs(splits.size());
  std::vector<cluster::SimTask> tasks(splits.size());

  ThreadPool::shared().parallel_for(splits.size(), [&](std::size_t s) {
    CpuStopwatch cpu;
    spec.map(splits[s], outputs[s]);
    std::uint64_t out_bytes = 0;
    for (const auto& o : outputs[s]) out_bytes += spec.output_bytes(o);
    cluster::SimTask& task = tasks[s];
    task.cpu_seconds = cpu.seconds() / spec.config.cpu_efficiency;
    const auto rc = ctx.dfs->read_cost(spec.split_bytes(splits[s]));
    const auto wc = ctx.dfs->write_cost(out_bytes);
    task.disk_read = rc.disk_read;
    task.disk_write = wc.disk_write;
    task.network = rc.network + wc.network;
    task.fixed_overhead = spec.config.task_overhead_s;
  });

  std::uint64_t in_bytes = 0;
  std::uint64_t out_bytes = 0;
  for (std::size_t s = 0; s < splits.size(); ++s) {
    in_bytes += spec.split_bytes(splits[s]);
    out_bytes += tasks[s].disk_write;
  }
  {
    const auto outcome = record_phase(ctx, spec.name + "/map", tasks, in_bytes,
                                      out_bytes, 0, spec.config.job_startup_s);
    if (!outcome.success) {
      throw TaskFailed(spec.name + "/map: task " +
                       std::to_string(outcome.first_failed_task) +
                       " crashed and exhausted its attempts");
    }
  }

  std::vector<Out> all;
  for (auto& out : outputs) {
    for (auto& o : out) all.push_back(std::move(o));
  }
  return all;
}

}  // namespace sjc::mapreduce
