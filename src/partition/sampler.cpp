#include "partition/sampler.hpp"

#include "util/status.hpp"

namespace sjc::partition {

std::vector<std::uint32_t> bernoulli_sample(std::size_t n, double rate, Rng& rng) {
  require(rate >= 0.0 && rate <= 1.0, "bernoulli_sample: rate must be in [0, 1]");
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(static_cast<double>(n) * rate * 1.1) + 8);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(rate)) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::vector<std::uint32_t> reservoir_sample(std::size_t n, std::size_t k, Rng& rng) {
  require(k > 0, "reservoir_sample: k must be positive");
  std::vector<std::uint32_t> reservoir;
  reservoir.reserve(std::min(n, k));
  for (std::size_t i = 0; i < n; ++i) {
    if (reservoir.size() < k) {
      reservoir.push_back(static_cast<std::uint32_t>(i));
    } else {
      const std::uint64_t j = rng.next_below(i + 1);
      if (j < k) reservoir[j] = static_cast<std::uint32_t>(i);
    }
  }
  return reservoir;
}

std::vector<geom::Envelope> gather_envelopes(std::span<const geom::Envelope> envs,
                                             const std::vector<std::uint32_t>& indices) {
  std::vector<geom::Envelope> out;
  out.reserve(indices.size());
  for (const auto i : indices) out.push_back(envs[i]);
  return out;
}

}  // namespace sjc::partition
