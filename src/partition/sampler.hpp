// Samplers for partition-boundary estimation.
//
// All three systems derive partition boundaries from a sample of the input
// (Section II.A): HadoopGIS and SpatialHadoop sample via extra MR jobs,
// SpatialSpark via Spark's built-in sample(). Two classic schemes are
// provided: Bernoulli (each item kept independently with probability p —
// what Spark's sample() does) and reservoir (exact k-sized sample in one
// pass — what you want when k must be bounded).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/envelope.hpp"
#include "util/rng.hpp"

namespace sjc::partition {

/// Bernoulli-samples indices [0, n): every index kept with probability
/// `rate`.
std::vector<std::uint32_t> bernoulli_sample(std::size_t n, double rate, Rng& rng);

/// Reservoir-samples exactly min(k, n) indices from [0, n), uniformly
/// without replacement (Vitter's Algorithm R).
std::vector<std::uint32_t> reservoir_sample(std::size_t n, std::size_t k, Rng& rng);

/// Gathers the envelopes at `indices` from `envs`.
std::vector<geom::Envelope> gather_envelopes(std::span<const geom::Envelope> envs,
                                             const std::vector<std::uint32_t>& indices);

}  // namespace sjc::partition
