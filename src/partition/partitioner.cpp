#include "partition/partitioner.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "util/status.hpp"

namespace sjc::partition {

const char* partitioner_kind_name(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kFixedGrid: return "fixed-grid";
    case PartitionerKind::kStr: return "str";
    case PartitionerKind::kBsp: return "bsp";
    case PartitionerKind::kQuadtree: return "quadtree";
  }
  return "?";
}

PartitionScheme::PartitionScheme(std::vector<geom::Envelope> cells,
                                 geom::Envelope extent)
    : cells_(std::move(cells)), extent_(extent) {
  require(!cells_.empty(), "PartitionScheme: needs at least one cell");
  build_grid();
}

namespace {

/// Grid column/row of coordinate `v`, clamped into [0, n).
inline std::uint32_t grid_coord(double v, double lo, double inv, std::uint32_t n) {
  const double f = (v - lo) * inv;
  if (!(f > 0.0)) return 0;
  if (f >= static_cast<double>(n)) return n - 1;
  return static_cast<std::uint32_t>(f);
}

}  // namespace

void PartitionScheme::build_grid() {
  const auto n = static_cast<std::uint32_t>(cells_.size());
  // ~4 buckets per cell keeps bucket occupancy near 1 for tiling schemes.
  const double side = std::ceil(2.0 * std::sqrt(static_cast<double>(n)));
  const auto g = static_cast<std::uint32_t>(std::clamp(side, 1.0, 1024.0));
  grid_cols_ = extent_.width() > 0.0 ? g : 1;
  grid_rows_ = extent_.height() > 0.0 ? g : 1;
  grid_inv_w_ =
      extent_.width() > 0.0 ? static_cast<double>(grid_cols_) / extent_.width() : 0.0;
  grid_inv_h_ =
      extent_.height() > 0.0 ? static_cast<double>(grid_rows_) / extent_.height() : 0.0;

  const std::size_t buckets = static_cast<std::size_t>(grid_cols_) * grid_rows_;
  cell_bx0_.resize(n);
  cell_by0_.resize(n);
  std::vector<std::uint32_t> counts(buckets, 0);
  const auto bucket_range = [this](const geom::Envelope& cell) {
    return std::array<std::uint32_t, 4>{
        grid_coord(cell.min_x(), extent_.min_x(), grid_inv_w_, grid_cols_),
        grid_coord(cell.max_x(), extent_.min_x(), grid_inv_w_, grid_cols_),
        grid_coord(cell.min_y(), extent_.min_y(), grid_inv_h_, grid_rows_),
        grid_coord(cell.max_y(), extent_.min_y(), grid_inv_h_, grid_rows_)};
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto [bx0, bx1, by0, by1] = bucket_range(cells_[i]);
    cell_bx0_[i] = static_cast<std::uint16_t>(bx0);
    cell_by0_[i] = static_cast<std::uint16_t>(by0);
    for (std::uint32_t by = by0; by <= by1; ++by) {
      for (std::uint32_t bx = bx0; bx <= bx1; ++bx) {
        ++counts[static_cast<std::size_t>(by) * grid_cols_ + bx];
      }
    }
  }
  grid_offsets_.assign(buckets + 1, 0);
  for (std::size_t b = 0; b < buckets; ++b) {
    grid_offsets_[b + 1] = grid_offsets_[b] + counts[b];
  }
  grid_ids_.resize(grid_offsets_[buckets]);
  std::vector<std::uint32_t> cursor(grid_offsets_.begin(), grid_offsets_.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto [bx0, bx1, by0, by1] = bucket_range(cells_[i]);
    for (std::uint32_t by = by0; by <= by1; ++by) {
      for (std::uint32_t bx = bx0; bx <= bx1; ++bx) {
        grid_ids_[cursor[static_cast<std::size_t>(by) * grid_cols_ + bx]++] = i;
      }
    }
  }
}

std::vector<std::uint32_t> PartitionScheme::assign(const geom::Envelope& env) const {
  std::vector<std::uint32_t> out;
  assign_into(env, out);
  return out;
}

void PartitionScheme::assign_into(const geom::Envelope& env,
                                  std::vector<std::uint32_t>& out) const {
  out.clear();
  const std::uint32_t ex0 = grid_coord(env.min_x(), extent_.min_x(), grid_inv_w_, grid_cols_);
  const std::uint32_t ex1 = grid_coord(env.max_x(), extent_.min_x(), grid_inv_w_, grid_cols_);
  const std::uint32_t ey0 = grid_coord(env.min_y(), extent_.min_y(), grid_inv_h_, grid_rows_);
  const std::uint32_t ey1 = grid_coord(env.max_y(), extent_.min_y(), grid_inv_h_, grid_rows_);
  for (std::uint32_t by = ey0; by <= ey1; ++by) {
    for (std::uint32_t bx = ex0; bx <= ex1; ++bx) {
      const std::size_t b = static_cast<std::size_t>(by) * grid_cols_ + bx;
      for (std::uint32_t k = grid_offsets_[b]; k < grid_offsets_[b + 1]; ++k) {
        const std::uint32_t id = grid_ids_[k];
        if (!cells_[id].intersects(env)) continue;
        // Emit only from the first bucket both the cell and the query
        // overlap, so multi-bucket scans never emit a cell twice.
        if (std::max<std::uint32_t>(cell_bx0_[id], ex0) != bx) continue;
        if (std::max<std::uint32_t>(cell_by0_[id], ey0) != by) continue;
        out.push_back(id);
      }
    }
  }
  if (out.empty()) out.push_back(nearest_cell(env));
}

std::uint32_t PartitionScheme::assign_into(const geom::Envelope& env,
                                           const geom::OccupancyFilter& filter,
                                           std::vector<std::uint32_t>& out) const {
  assign_into(env, out);
  // In-place compaction: keep only cells whose occupancy bitmap admits a
  // match. An empty result means the record is a proven true negative and
  // is dropped from the shuffle entirely (no fallback re-derivation).
  std::size_t kept = 0;
  for (const std::uint32_t id : out) {
    if (filter.may_match(id, env)) out[kept++] = id;
  }
  const auto dropped = static_cast<std::uint32_t>(out.size() - kept);
  out.resize(kept);
  return dropped;
}

std::uint32_t PartitionScheme::min_assigned(const geom::Envelope& env) const {
  const std::uint32_t ex0 = grid_coord(env.min_x(), extent_.min_x(), grid_inv_w_, grid_cols_);
  const std::uint32_t ex1 = grid_coord(env.max_x(), extent_.min_x(), grid_inv_w_, grid_cols_);
  const std::uint32_t ey0 = grid_coord(env.min_y(), extent_.min_y(), grid_inv_h_, grid_rows_);
  const std::uint32_t ey1 = grid_coord(env.max_y(), extent_.min_y(), grid_inv_h_, grid_rows_);
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  bool found = false;
  for (std::uint32_t by = ey0; by <= ey1; ++by) {
    for (std::uint32_t bx = ex0; bx <= ex1; ++bx) {
      const std::size_t b = static_cast<std::size_t>(by) * grid_cols_ + bx;
      for (std::uint32_t k = grid_offsets_[b]; k < grid_offsets_[b + 1]; ++k) {
        // Duplicate visits are harmless under min().
        const std::uint32_t id = grid_ids_[k];
        if (id < best && cells_[id].intersects(env)) {
          best = id;
          found = true;
        }
      }
    }
  }
  return found ? best : nearest_cell(env);
}

std::uint32_t PartitionScheme::nearest_cell(const geom::Envelope& env) const {
  // Sample under-coverage: route to the nearest cell so no item is dropped.
  std::uint32_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    const double d = cells_[i].distance(env);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

std::size_t PartitionScheme::size_bytes() const {
  return cells_.size() * (sizeof(geom::Envelope) + sizeof(std::uint32_t));
}

PartitionScheme make_fixed_grid(const geom::Envelope& extent, std::uint32_t cols,
                                std::uint32_t rows) {
  require(cols >= 1 && rows >= 1, "make_fixed_grid: grid must be at least 1x1");
  require(!extent.empty(), "make_fixed_grid: extent must be non-empty");
  std::vector<geom::Envelope> cells;
  cells.reserve(static_cast<std::size_t>(cols) * rows);
  const double cw = extent.width() / cols;
  const double ch = extent.height() / rows;
  for (std::uint32_t y = 0; y < rows; ++y) {
    for (std::uint32_t x = 0; x < cols; ++x) {
      cells.emplace_back(extent.min_x() + cw * x, extent.min_y() + ch * y,
                         x + 1 == cols ? extent.max_x() : extent.min_x() + cw * (x + 1),
                         y + 1 == rows ? extent.max_y() : extent.min_y() + ch * (y + 1));
    }
  }
  return PartitionScheme(std::move(cells), extent);
}

PartitionScheme make_str_partitions(const std::vector<geom::Envelope>& sample,
                                    const geom::Envelope& extent,
                                    std::uint32_t target_cells) {
  require(target_cells >= 1, "make_str_partitions: target_cells must be >= 1");
  if (sample.empty()) return make_fixed_grid(extent, 1, 1);

  // STR tiling of sample centers: slice by x, tile by y within each slice.
  struct Center {
    double x;
    double y;
  };
  std::vector<Center> centers;
  centers.reserve(sample.size());
  for (const auto& e : sample) centers.push_back({e.center_x(), e.center_y()});

  const auto slices = static_cast<std::uint32_t>(std::max(
      1.0, std::round(std::sqrt(static_cast<double>(target_cells)))));
  const std::uint32_t tiles_per_slice = (target_cells + slices - 1) / slices;

  std::sort(centers.begin(), centers.end(),
            [](const Center& a, const Center& b) { return a.x < b.x; });

  std::vector<geom::Envelope> cells;
  const std::size_t per_slice = (centers.size() + slices - 1) / slices;
  for (std::uint32_t s = 0; s < slices; ++s) {
    const std::size_t begin = std::min<std::size_t>(s * per_slice, centers.size());
    const std::size_t end = std::min<std::size_t>(begin + per_slice, centers.size());
    if (begin >= end) break;
    // Slice x-range: extend the first/last slice to the extent edge so the
    // tiles jointly cover it.
    const double x_lo = s == 0 ? extent.min_x() : centers[begin].x;
    const double x_hi = s + 1 == slices || end == centers.size()
                            ? extent.max_x()
                            : centers[end].x;
    std::sort(centers.begin() + static_cast<std::ptrdiff_t>(begin),
              centers.begin() + static_cast<std::ptrdiff_t>(end),
              [](const Center& a, const Center& b) { return a.y < b.y; });
    const std::size_t slice_n = end - begin;
    const std::size_t per_tile = (slice_n + tiles_per_slice - 1) / tiles_per_slice;
    for (std::uint32_t t = 0; t < tiles_per_slice; ++t) {
      const std::size_t tb = begin + std::min<std::size_t>(t * per_tile, slice_n);
      const std::size_t te = begin + std::min<std::size_t>((t + 1) * per_tile, slice_n);
      if (tb >= te) break;
      const double y_lo = t == 0 ? extent.min_y() : centers[tb].y;
      const double y_hi = t + 1 == tiles_per_slice || te == end ? extent.max_y()
                                                                : centers[te].y;
      cells.emplace_back(x_lo, y_lo, x_hi, y_hi);
    }
  }
  if (cells.empty()) return make_fixed_grid(extent, 1, 1);
  return PartitionScheme(std::move(cells), extent);
}

namespace {

struct BspBox {
  geom::Envelope box;
  std::vector<std::uint32_t> samples;  // indices into the sample vector
};

}  // namespace

PartitionScheme make_bsp_partitions(const std::vector<geom::Envelope>& sample,
                                    const geom::Envelope& extent,
                                    std::uint32_t target_cells) {
  require(target_cells >= 1, "make_bsp_partitions: target_cells must be >= 1");
  if (sample.empty()) return make_fixed_grid(extent, 1, 1);

  const std::size_t leaf_cap = std::max<std::size_t>(
      1, (sample.size() + target_cells - 1) / target_cells);

  std::vector<std::uint32_t> all(sample.size());
  for (std::uint32_t i = 0; i < sample.size(); ++i) all[i] = i;

  std::vector<BspBox> work{{extent, std::move(all)}};
  std::vector<geom::Envelope> cells;
  while (!work.empty()) {
    BspBox current = std::move(work.back());
    work.pop_back();
    if (current.samples.size() <= leaf_cap) {
      cells.push_back(current.box);
      continue;
    }
    // Split the longer axis at the median sample center.
    const bool split_x = current.box.width() >= current.box.height();
    const auto center = [&](std::uint32_t idx) {
      return split_x ? sample[idx].center_x() : sample[idx].center_y();
    };
    auto mid = current.samples.begin() +
               static_cast<std::ptrdiff_t>(current.samples.size() / 2);
    std::nth_element(current.samples.begin(), mid, current.samples.end(),
                     [&](std::uint32_t a, std::uint32_t b) { return center(a) < center(b); });
    const double cut = center(*mid);

    BspBox lo;
    BspBox hi;
    if (split_x) {
      lo.box = geom::Envelope(current.box.min_x(), current.box.min_y(), cut,
                              current.box.max_y());
      hi.box = geom::Envelope(cut, current.box.min_y(), current.box.max_x(),
                              current.box.max_y());
    } else {
      lo.box = geom::Envelope(current.box.min_x(), current.box.min_y(),
                              current.box.max_x(), cut);
      hi.box = geom::Envelope(current.box.min_x(), cut, current.box.max_x(),
                              current.box.max_y());
    }
    for (const auto idx : current.samples) {
      (center(idx) < cut ? lo.samples : hi.samples).push_back(idx);
    }
    // Degenerate cut (all centers equal): stop splitting this box.
    if (lo.samples.empty() || hi.samples.empty()) {
      cells.push_back(current.box);
      continue;
    }
    work.push_back(std::move(lo));
    work.push_back(std::move(hi));
  }
  return PartitionScheme(std::move(cells), extent);
}

namespace {

struct QuadBox {
  geom::Envelope box;
  std::vector<std::uint32_t> samples;
  std::uint32_t depth = 0;
};

}  // namespace

PartitionScheme make_quadtree_partitions(const std::vector<geom::Envelope>& sample,
                                         const geom::Envelope& extent,
                                         std::uint32_t target_cells) {
  require(target_cells >= 1, "make_quadtree_partitions: target_cells must be >= 1");
  if (sample.empty()) return make_fixed_grid(extent, 1, 1);

  const std::size_t leaf_cap = std::max<std::size_t>(
      1, (sample.size() + target_cells - 1) / target_cells);
  constexpr std::uint32_t kMaxDepth = 12;

  std::vector<std::uint32_t> all(sample.size());
  for (std::uint32_t i = 0; i < sample.size(); ++i) all[i] = i;

  std::vector<QuadBox> work{{extent, std::move(all), 0}};
  std::vector<geom::Envelope> cells;
  while (!work.empty()) {
    QuadBox current = std::move(work.back());
    work.pop_back();
    if (current.samples.size() <= leaf_cap || current.depth >= kMaxDepth) {
      cells.push_back(current.box);
      continue;
    }
    const double cx = current.box.center_x();
    const double cy = current.box.center_y();
    QuadBox quads[4] = {
        {{current.box.min_x(), current.box.min_y(), cx, cy}, {}, current.depth + 1},
        {{cx, current.box.min_y(), current.box.max_x(), cy}, {}, current.depth + 1},
        {{current.box.min_x(), cy, cx, current.box.max_y()}, {}, current.depth + 1},
        {{cx, cy, current.box.max_x(), current.box.max_y()}, {}, current.depth + 1},
    };
    for (const auto idx : current.samples) {
      const double x = sample[idx].center_x();
      const double y = sample[idx].center_y();
      const int q = (x >= cx ? 1 : 0) + (y >= cy ? 2 : 0);
      quads[q].samples.push_back(idx);
    }
    for (auto& q : quads) work.push_back(std::move(q));
  }
  return PartitionScheme(std::move(cells), extent);
}

PartitionScheme make_partitions(PartitionerKind kind,
                                const std::vector<geom::Envelope>& sample,
                                const geom::Envelope& extent,
                                std::uint32_t target_cells) {
  switch (kind) {
    case PartitionerKind::kFixedGrid: {
      const auto side = static_cast<std::uint32_t>(std::max(
          1.0, std::round(std::sqrt(static_cast<double>(target_cells)))));
      return make_fixed_grid(extent, side, side);
    }
    case PartitionerKind::kStr:
      return make_str_partitions(sample, extent, target_cells);
    case PartitionerKind::kBsp:
      return make_bsp_partitions(sample, extent, target_cells);
    case PartitionerKind::kQuadtree:
      return make_quadtree_partitions(sample, extent, target_cells);
  }
  throw InvalidArgument("make_partitions: unknown partitioner kind");
}

}  // namespace sjc::partition
