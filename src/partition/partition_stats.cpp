#include "partition/partition_stats.hpp"

#include <algorithm>

namespace sjc::partition {

PartitionStats compute_partition_stats(const PartitionScheme& scheme,
                                       std::span<const geom::Envelope> items) {
  PartitionStats stats;
  stats.cell_count = scheme.cell_count();
  stats.item_count = items.size();
  stats.per_cell.assign(scheme.cell_count(), 0);
  for (const auto& env : items) {
    const auto pids = scheme.assign(env);
    stats.assignment_count += pids.size();
    for (const auto pid : pids) ++stats.per_cell[pid];
  }
  if (stats.item_count > 0) {
    stats.replication_factor =
        static_cast<double>(stats.assignment_count) / static_cast<double>(stats.item_count);
  }
  if (!stats.per_cell.empty()) {
    stats.max_cell_items = *std::max_element(stats.per_cell.begin(), stats.per_cell.end());
    stats.mean_cell_items = static_cast<double>(stats.assignment_count) /
                            static_cast<double>(stats.per_cell.size());
    if (stats.mean_cell_items > 0.0) {
      stats.skew = static_cast<double>(stats.max_cell_items) / stats.mean_cell_items;
    }
  }
  return stats;
}

}  // namespace sjc::partition
