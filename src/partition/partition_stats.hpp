// Partition-quality statistics.
//
// Partition skew and duplication directly drive distributed join cost: the
// slowest partition pair bounds the final wave, and duplicated items inflate
// shuffle volume and force post-join dedup. bench_samplerate sweeps sample
// rates and reports these numbers, explaining the paper's observation that
// sampling quality matters.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/envelope.hpp"
#include "partition/partitioner.hpp"

namespace sjc::partition {

struct PartitionStats {
  std::size_t cell_count = 0;
  std::size_t item_count = 0;        // distinct input items
  std::size_t assignment_count = 0;  // item->cell assignments (>= item_count)
  double replication_factor = 0.0;   // assignment_count / item_count
  std::size_t max_cell_items = 0;
  double mean_cell_items = 0.0;
  /// max / mean; 1.0 is perfectly balanced.
  double skew = 0.0;
  /// Count per cell (index = partition id).
  std::vector<std::size_t> per_cell;
};

/// Assigns every envelope through `scheme` and accumulates the statistics.
PartitionStats compute_partition_stats(const PartitionScheme& scheme,
                                       std::span<const geom::Envelope> items);

}  // namespace sjc::partition
