// Spatial partitioners: sample MBRs in, partition cells out.
//
// The preprocessing stage of every system (Section II.A) boils down to:
// sample the input, derive a set of partition cells from the sample, then
// assign every data item to the cell(s) its MBR intersects. Three cell
// derivation strategies are provided, mirroring the SATO/SpatialHadoop
// partitioning families the paper references:
//
//  * FixedGrid  — uniform cols x rows tiling of the extent (SpatialHadoop's
//                 default grid index);
//  * Str        — Sort-Tile-Recursive tiles of the sample (balanced counts
//                 under skew; SpatialHadoop's STR mode);
//  * Bsp        — recursive median binary splits (SATO-style, exact tiling
//                 of the extent with balanced sample counts).
//
// A PartitionScheme assigns an item to *every* cell its MBR intersects
// (multi-assignment duplication, deduplicated after the join), which is the
// semantics all three evaluated systems use.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/envelope.hpp"
#include "geom/occupancy.hpp"

namespace sjc::partition {

enum class PartitionerKind {
  kFixedGrid = 0,
  kStr = 1,
  kBsp = 2,
  kQuadtree = 3,
};

const char* partitioner_kind_name(PartitionerKind kind);

class PartitionScheme {
 public:
  /// `cells` are the partition MBRs; `extent` must cover them (items outside
  /// every cell fall back to the nearest cell by envelope distance).
  PartitionScheme(std::vector<geom::Envelope> cells, geom::Envelope extent);

  const std::vector<geom::Envelope>& cells() const { return cells_; }
  const geom::Envelope& extent() const { return extent_; }
  std::size_t cell_count() const { return cells_.size(); }

  /// Partition ids whose cell intersects `env`; falls back to the single
  /// nearest cell when none intersect (sample under-coverage). Never empty.
  /// Allocating convenience wrapper over assign_into() — one semantics, one
  /// implementation (per-record id order is not a modeled quantity).
  std::vector<std::uint32_t> assign(const geom::Envelope& env) const;

  /// Zero-allocation variant of assign(): clears and refills `out` with the
  /// assigned id set. Queries a uniform-grid cell directory: for the
  /// small-envelope/many-records shape of partition assignment, a bucket
  /// scan beats a tree walk. The zero-copy data plane's per-record
  /// assignment path; `out` is the caller's reusable scratch.
  void assign_into(const geom::Envelope& env, std::vector<std::uint32_t>& out) const;

  /// Filtered assignment: computes the same id set as assign_into() (nearest
  /// -cell fallback included), then drops every cell whose resident-side
  /// occupancy bitmap proves `env` matches nothing there. Unlike the
  /// unfiltered variants the result MAY be empty — a fully filtered record
  /// is a true negative and is never shuffled; the fallback cell is subject
  /// to the filter like any other and is not re-derived after filtering.
  /// Returns the number of candidate cells the filter dropped (callers feed
  /// it straight into the shuffle.filtered_records accounting).
  std::uint32_t assign_into(const geom::Envelope& env,
                            const geom::OccupancyFilter& filter,
                            std::vector<std::uint32_t>& out) const;

  /// Smallest id assign() would return for `env`, without materializing the
  /// id list (the reference-point dedup test needs only the canonical cell).
  std::uint32_t min_assigned(const geom::Envelope& env) const;

  /// Serialized footprint of the cell table (what gets broadcast /
  /// written as the _master file).
  std::size_t size_bytes() const;

 private:
  /// Nearest cell by envelope distance (the never-empty fallback).
  std::uint32_t nearest_cell(const geom::Envelope& env) const;

  /// Buckets every cell into a uniform grid over the extent (CSR layout).
  void build_grid();

  std::vector<geom::Envelope> cells_;
  geom::Envelope extent_;

  // Uniform-grid cell directory backing assign()/assign_into()/min_assigned()
  // (the former STR tree over cells is gone — one directory, one semantics).
  // Each
  // cell is listed in every grid bucket it intersects; queries scan the
  // envelope's bucket range and emit a cell only from the first overlapping
  // bucket (no stamp array, no allocation).
  std::uint32_t grid_cols_ = 1;
  std::uint32_t grid_rows_ = 1;
  double grid_inv_w_ = 0.0;
  double grid_inv_h_ = 0.0;
  std::vector<std::uint32_t> grid_offsets_;  // bucket -> [begin, end) in grid_ids_
  std::vector<std::uint32_t> grid_ids_;
  std::vector<std::uint16_t> cell_bx0_;  // first bucket column/row per cell
  std::vector<std::uint16_t> cell_by0_;
};

/// Uniform cols x rows tiling of `extent`.
PartitionScheme make_fixed_grid(const geom::Envelope& extent, std::uint32_t cols,
                                std::uint32_t rows);

/// STR tiles over `sample` MBRs targeting `target_cells` cells; tiles are
/// expanded so that together they cover `extent`.
PartitionScheme make_str_partitions(const std::vector<geom::Envelope>& sample,
                                    const geom::Envelope& extent,
                                    std::uint32_t target_cells);

/// Recursive median splits of `sample` centers until each leaf holds at most
/// ceil(sample/target_cells) samples; leaves tile `extent` exactly.
PartitionScheme make_bsp_partitions(const std::vector<geom::Envelope>& sample,
                                    const geom::Envelope& extent,
                                    std::uint32_t target_cells);

/// Quadtree leaves over `sample` centers (SpatialHadoop/SATO's quadtree
/// mode): quadrants split while they hold more than sample/target_cells
/// samples; the leaf quadrants tile `extent` exactly but cell counts run
/// in powers of four.
PartitionScheme make_quadtree_partitions(const std::vector<geom::Envelope>& sample,
                                         const geom::Envelope& extent,
                                         std::uint32_t target_cells);

/// Dispatch over `kind` with a uniform interface.
PartitionScheme make_partitions(PartitionerKind kind,
                                const std::vector<geom::Envelope>& sample,
                                const geom::Envelope& extent,
                                std::uint32_t target_cells);

}  // namespace sjc::partition
