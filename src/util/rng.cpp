#include "util/rng.hpp"

#include <cmath>

#include "util/status.hpp"

namespace sjc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  require(n > 0, "Rng::next_below: n must be positive");
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0, v = 0, s = 0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return next_double() < p; }

Rng Rng::fork(std::uint64_t stream_id) const {
  // Derive a child seed from the current state and the stream id; does not
  // advance this generator, so forks are order-independent.
  std::uint64_t h = s_[0] ^ rotl(s_[3], 13) ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return Rng(mix64(h));
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
  for (std::uint32_t i = n; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(next_below(i));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace sjc
