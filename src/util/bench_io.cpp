#include "util/bench_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "util/status.hpp"

namespace sjc {

std::string maybe_write_csv(const std::string& name, const CsvWriter& csv) {
  const char* dir = std::getenv("SJC_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  const std::string path = std::string(dir) + "/" + name + ".csv";
  csv.write_file(path);
  return path;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

void JsonWriter::comma() {
  if (need_comma_) out_ += ",";
  out_ += "\n";
  need_comma_ = false;
}

void JsonWriter::indent() {
  for (int i = 0; i < depth_; ++i) out_ += "  ";
}

JsonWriter& JsonWriter::begin_object() {
  out_ += "{";
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += "\n";
  --depth_;
  indent();
  out_ += "}";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
  comma();
  indent();
  if (!key.empty()) out_ += "\"" + json_escape(key) + "\": ";
  out_ += "[";
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += "\n";
  --depth_;
  indent();
  out_ += "]";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_element() {
  comma();
  indent();
  out_ += "{";
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const std::string& value) {
  comma();
  indent();
  out_ += "\"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const char* value) {
  return field(key, std::string(value));
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
  comma();
  indent();
  out_ += "\"" + json_escape(key) + "\": " + json_number(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, std::uint64_t value) {
  comma();
  indent();
  out_ += "\"" + json_escape(key) + "\": " + std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, bool value) {
  comma();
  indent();
  out_ += "\"" + json_escape(key) + "\": " + (value ? "true" : "false");
  need_comma_ = true;
  return *this;
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return rss_bytes_from_ru_maxrss(static_cast<std::uint64_t>(usage.ru_maxrss),
                                  kRuMaxrssIsBytes);
#else
  return 0;
#endif
}

std::string write_bench_json(const std::string& name, const std::string& json) {
  const char* dir = std::getenv("SJC_BENCH_DIR");
  const std::string path = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/BENCH_" + name + ".json"
                               : "BENCH_" + name + ".json";
  std::ofstream out(path);
  require(out.good(), "write_bench_json: cannot open " + path);
  out << json << "\n";
  require(out.good(), "write_bench_json: write failed for " + path);
  return path;
}

}  // namespace sjc
