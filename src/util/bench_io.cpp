#include "util/bench_io.hpp"

#include <cstdlib>

namespace sjc {

std::string maybe_write_csv(const std::string& name, const CsvWriter& csv) {
  const char* dir = std::getenv("SJC_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  const std::string path = std::string(dir) + "/" + name + ".csv";
  csv.write_file(path);
  return path;
}

}  // namespace sjc
