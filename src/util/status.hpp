// Error taxonomy shared across the sjc libraries.
//
// The simulator distinguishes *programming errors* (violated preconditions,
// reported via SjcError) from *simulated runtime failures* (conditions the
// paper's systems hit in production, e.g. a Hadoop Streaming broken pipe or
// a Spark executor OOM). Simulated failures derive from SimFailure so that
// benchmark harnesses can catch them and report "-" table cells the way the
// paper does, while real bugs still propagate.
#pragma once

#include <stdexcept>
#include <string>

namespace sjc {

/// Base class for all errors raised by the sjc libraries.
class SjcError : public std::runtime_error {
 public:
  explicit SjcError(const std::string& what) : std::runtime_error(what) {}
};

/// Precondition/usage violation: indicates a bug in calling code.
class InvalidArgument : public SjcError {
 public:
  explicit InvalidArgument(const std::string& what) : SjcError(what) {}
};

/// Parse failure (WKT, TSV record, ...).
class ParseError : public SjcError {
 public:
  explicit ParseError(const std::string& what) : SjcError(what) {}
};

/// Base class for *simulated* runtime failures. These model failure modes
/// of the paper's systems (broken pipes, OOM) and are expected to be caught
/// by experiment drivers.
class SimFailure : public SjcError {
 public:
  explicit SimFailure(const std::string& what) : SjcError(what) {}
};

/// Hadoop Streaming pipe overflow (HadoopGIS failure mode in Tables 2-3).
class BrokenPipe : public SimFailure {
 public:
  explicit BrokenPipe(const std::string& what) : SimFailure(what) {}
};

/// Spark executor/aggregate memory exhaustion (SpatialSpark failure mode).
class SimOutOfMemory : public SimFailure {
 public:
  explicit SimOutOfMemory(const std::string& what) : SimFailure(what) {}
};

/// A task exhausted its retry budget (mapred.map/reduce.max.attempts in real
/// Hadoop): the job is killed after the final failed attempt.
class TaskFailed : public SimFailure {
 public:
  explicit TaskFailed(const std::string& what) : SimFailure(what) {}
};

/// Every replica of a block is on a dead datanode: HDFS reads of the file
/// fail until (impossible) re-replication — the terminal DFS failure mode.
class BlockUnavailable : public SimFailure {
 public:
  explicit BlockUnavailable(const std::string& what) : SimFailure(what) {}
};

/// Throws InvalidArgument with `what` when `cond` is false.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

}  // namespace sjc
