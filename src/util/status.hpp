// Error taxonomy shared across the sjc libraries.
//
// The simulator distinguishes *programming errors* (violated preconditions,
// reported via SjcError) from *simulated runtime failures* (conditions the
// paper's systems hit in production, e.g. a Hadoop Streaming broken pipe or
// a Spark executor OOM). Simulated failures derive from SimFailure so that
// benchmark harnesses can catch them and report "-" table cells the way the
// paper does, while real bugs still propagate.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sjc {

/// Base class for all errors raised by the sjc libraries.
class SjcError : public std::runtime_error {
 public:
  explicit SjcError(const std::string& what) : std::runtime_error(what) {}
};

/// Precondition/usage violation: indicates a bug in calling code.
class InvalidArgument : public SjcError {
 public:
  explicit InvalidArgument(const std::string& what) : SjcError(what) {}
};

/// Parse failure (WKT, TSV record, ...).
class ParseError : public SjcError {
 public:
  explicit ParseError(const std::string& what) : SjcError(what) {}
};

/// Base class for *simulated* runtime failures. These model failure modes
/// of the paper's systems (broken pipes, OOM) and are expected to be caught
/// by experiment drivers.
class SimFailure : public SjcError {
 public:
  explicit SimFailure(const std::string& what) : SjcError(what) {}
};

/// Hadoop Streaming pipe overflow (HadoopGIS failure mode in Tables 2-3).
class BrokenPipe : public SimFailure {
 public:
  explicit BrokenPipe(const std::string& what) : SimFailure(what) {}
};

/// Spark executor/aggregate memory exhaustion (SpatialSpark failure mode).
class SimOutOfMemory : public SimFailure {
 public:
  explicit SimOutOfMemory(const std::string& what) : SimFailure(what) {}
};

/// A task exhausted its retry budget (mapred.map/reduce.max.attempts in real
/// Hadoop): the job is killed after the final failed attempt.
class TaskFailed : public SimFailure {
 public:
  explicit TaskFailed(const std::string& what) : SimFailure(what) {}
};

/// Every replica of a block is on a dead datanode: HDFS reads of the file
/// fail until (impossible) re-replication — the terminal DFS failure mode.
class BlockUnavailable : public SimFailure {
 public:
  explicit BlockUnavailable(const std::string& what) : SimFailure(what) {}
};

/// The job-level retry budget (FaultPlan::job_retry_budget) ran out: too
/// many failed attempts across all phases, even though no single task
/// exhausted its per-task attempts — Hadoop's job-failure-percentage kill.
class RetryBudgetExhausted : public SimFailure {
 public:
  explicit RetryBudgetExhausted(const std::string& what) : SimFailure(what) {}
};

/// A phase overran its per-phase timeout (FaultPlan::phase_timeout_s) and
/// was killed at the deadline by the job tracker.
class DeadlineExceeded : public SimFailure {
 public:
  explicit DeadlineExceeded(const std::string& what) : SimFailure(what) {}
};

/// Throws InvalidArgument with `what` when `cond` is false.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

// ---------------------------------------------------------------------------
// Structured status
// ---------------------------------------------------------------------------
//
// Exceptions carry failures *inside* an engine; at the RunReport boundary the
// system drivers flatten them into a Status so harnesses and bench binaries
// can print a one-line diagnosis and branch on the failure class without
// string-matching what() text (or worse, dying on an escaped throw).

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kBrokenPipe,
  kOutOfMemory,
  kTaskFailed,
  kBlockUnavailable,
  kRetryBudgetExhausted,
  kDeadlineExceeded,
  kResourceExhausted,  // admission control: bounded queue / tenant quota full
  kUnavailable,        // service not accepting work (draining or stopped)
  kInternal,  // an SjcError with no more specific classification
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kBrokenPipe: return "BROKEN_PIPE";
    case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case StatusCode::kTaskFailed: return "TASK_FAILED";
    case StatusCode::kBlockUnavailable: return "BLOCK_UNAVAILABLE";
    case StatusCode::kRetryBudgetExhausted: return "RETRY_BUDGET_EXHAUSTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>" — the bench binaries' one-line diagnosis.
  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Maps a caught SjcError onto the Status taxonomy by dynamic type. The
/// system drivers call this in their run-boundary catch blocks; order goes
/// most-derived first so every SimFailure keeps its specific code.
inline Status status_from_exception(const SjcError& e) {
  const std::string what = e.what();
  if (dynamic_cast<const BrokenPipe*>(&e) != nullptr) {
    return {StatusCode::kBrokenPipe, what};
  }
  if (dynamic_cast<const SimOutOfMemory*>(&e) != nullptr) {
    return {StatusCode::kOutOfMemory, what};
  }
  if (dynamic_cast<const TaskFailed*>(&e) != nullptr) {
    return {StatusCode::kTaskFailed, what};
  }
  if (dynamic_cast<const BlockUnavailable*>(&e) != nullptr) {
    return {StatusCode::kBlockUnavailable, what};
  }
  if (dynamic_cast<const RetryBudgetExhausted*>(&e) != nullptr) {
    return {StatusCode::kRetryBudgetExhausted, what};
  }
  if (dynamic_cast<const DeadlineExceeded*>(&e) != nullptr) {
    return {StatusCode::kDeadlineExceeded, what};
  }
  if (dynamic_cast<const InvalidArgument*>(&e) != nullptr) {
    return {StatusCode::kInvalidArgument, what};
  }
  if (dynamic_cast<const ParseError*>(&e) != nullptr) {
    return {StatusCode::kParseError, what};
  }
  return {StatusCode::kInternal, what};
}

}  // namespace sjc
