#include "util/csv.hpp"

#include <cstdio>

#include "util/status.hpp"

namespace sjc {

namespace {
bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string csv_format_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += needs_quoting(fields[i]) ? quote(fields[i]) : fields[i];
  }
  return out;
}

std::vector<std::string> csv_parse_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) throw ParseError("csv_parse_row: unterminated quote");
  fields.push_back(std::move(current));
  return fields;
}

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "CsvWriter: header must be non-empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "CsvWriter: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::string out = csv_format_row(header_) + "\n";
  for (const auto& row : rows_) out += csv_format_row(row) + "\n";
  return out;
}

void CsvWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw SjcError("CsvWriter: cannot open " + path);
  const std::string s = to_string();
  const std::size_t written = std::fwrite(s.data(), 1, s.size(), f);
  std::fclose(f);
  if (written != s.size()) throw SjcError("CsvWriter: short write to " + path);
}

}  // namespace sjc
