// Wall-clock and CPU-time stopwatches.
//
// The cluster simulator charges *measured* CPU seconds for user code (map
// functions, geometry predicates) and *modeled* seconds for I/O; Stopwatch
// provides the former.
#pragma once

#include <atomic>
#include <chrono>
#include <ctime>

namespace sjc {

/// Global "virtual time" switch. When enabled, CpuStopwatch reports zero
/// elapsed CPU so every modeled quantity (phase makespans included) becomes a
/// pure function of the cost model — byte counts, overhead constants, task
/// shapes — with no dependence on real machine timing. Tests use this to
/// assert bit-identical RunReports across runs and across data-plane
/// implementations; it is never enabled on the normal measurement path.
inline std::atomic<bool>& virtual_time_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline void set_virtual_time(bool enabled) {
  virtual_time_flag().store(enabled, std::memory_order_relaxed);
}

inline bool virtual_time_enabled() {
  return virtual_time_flag().load(std::memory_order_relaxed);
}

/// RAII toggle for the virtual-time flag that restores the *previous* value
/// on scope exit — including exceptional exit. Long-lived processes (the
/// serving loop, multi-run benches) must use this instead of raw
/// set_virtual_time() pairs: a stray enable would silently zero CPU charges
/// for every subsequent query in the process.
class VirtualTimeGuard {
 public:
  explicit VirtualTimeGuard(bool enabled = true)
      : previous_(virtual_time_flag().exchange(enabled, std::memory_order_relaxed)) {}
  ~VirtualTimeGuard() {
    virtual_time_flag().store(previous_, std::memory_order_relaxed);
  }
  VirtualTimeGuard(const VirtualTimeGuard&) = delete;
  VirtualTimeGuard& operator=(const VirtualTimeGuard&) = delete;

 private:
  bool previous_;
};

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(now()) {}

  void reset() { start_ = now(); }

  double seconds() const {
    if (virtual_time_enabled()) return 0.0;
    return now() - start_;
  }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
  double start_;
};

}  // namespace sjc
