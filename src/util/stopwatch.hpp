// Wall-clock and CPU-time stopwatches.
//
// The cluster simulator charges *measured* CPU seconds for user code (map
// functions, geometry predicates) and *modeled* seconds for I/O; Stopwatch
// provides the former.
#pragma once

#include <chrono>
#include <ctime>

namespace sjc {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(now()) {}

  void reset() { start_ = now(); }

  double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
  double start_;
};

}  // namespace sjc
