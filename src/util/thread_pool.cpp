#include "util/thread_pool.hpp"

#include <atomic>

namespace sjc {

namespace {
// Set while a pool worker is executing a task; nested parallel_for calls
// from inside a worker run inline instead of queueing (deadlock avoidance).
thread_local bool t_inside_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    t_inside_worker = true;
    task();
    t_inside_worker = false;
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1 || t_inside_worker) {
    // Run inline: avoids queueing overhead and keeps single-core hosts fast.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t shards = std::min(count, workers_.size());
  const auto shard_body = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (done.fetch_add(1) + 1 == shards) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s < shards; ++s) queue_.push(shard_body);
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load() == shards; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sjc
