#include "util/thread_pool.hpp"

#include <atomic>

namespace sjc {

namespace {
// Set while a pool worker is executing a task; nested parallel_for calls
// from inside a worker run inline instead of queueing (deadlock avoidance).
thread_local bool t_inside_worker = false;

// Restores the flag's previous value on scope exit, so reentrant pool use
// (a task body that itself drives the pool from this thread) cannot clear
// the outer task's inside-worker state and defeat the inline fallback.
struct InsideWorkerGuard {
  bool prior;
  InsideWorkerGuard() : prior(t_inside_worker) { t_inside_worker = true; }
  ~InsideWorkerGuard() { t_inside_worker = prior; }
};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    const InsideWorkerGuard guard;
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1 || t_inside_worker) {
    // Run inline: avoids queueing overhead and keeps single-core hosts fast.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  // Completion state lives behind done_mutex (no lone atomic counter): each
  // finishing shard increments and notifies *while holding the lock*, so the
  // waiter — which owns the lock whenever it evaluates the predicate or
  // returns from wait — cannot observe `done == shards` and destroy these
  // stack objects until the last notifier has released the mutex. (The old
  // scheme bumped an atomic before locking, letting the waiter return and
  // unwind the frame between the notifier's fetch_add and its lock: a
  // use-after-scope on done_mutex/done_cv.)
  std::size_t done = 0;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t shards = std::min(count, workers_.size());
  const auto shard_body = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      if (++done == shards) done_cv.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s < shards; ++s) queue_.push(shard_body);
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done == shards; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sjc
