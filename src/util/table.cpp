#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/status.hpp"

namespace sjc {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "TablePrinter: header must be non-empty");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "TablePrinter: row arity mismatch");
  rows_.push_back(std::move(row));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  const auto render_sep = [&] {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      line += std::string(widths[c] + 2, '-') + "|";
    }
    return line + "\n";
  };

  std::string out = render_row(header_);
  out += render_sep();
  for (const auto& row : rows_) {
    out += row.empty() ? render_sep() : render_row(row);
  }
  return out;
}

void TablePrinter::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace sjc
