// Benchmark result export.
//
// The bench binaries print paper-style tables for humans; when SJC_CSV_DIR
// is set they additionally drop machine-readable CSVs there so results can
// be post-processed (plots, regression tracking) without screen-scraping.
#pragma once

#include <cstdint>
#include <string>

#include "util/csv.hpp"

namespace sjc {

/// Writes `csv` to `$SJC_CSV_DIR/<name>.csv` when the environment variable
/// is set. Returns the written path, or an empty string when export is
/// disabled. Throws SjcError on I/O failure.
std::string maybe_write_csv(const std::string& name, const CsvWriter& csv);

/// Minimal JSON emitter for bench summaries (objects, arrays, scalars) —
/// just enough structure for regression tracking without a JSON dependency.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key = {});
  JsonWriter& end_array();
  /// Starts an object as an array element (no key).
  JsonWriter& begin_element();
  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value);
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, std::uint64_t value);
  JsonWriter& field(const std::string& key, bool value);

  const std::string& str() const { return out_; }

 private:
  void comma();
  void indent();
  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
};

/// Writes `json` to `$SJC_BENCH_DIR/BENCH_<name>.json` (falling back to the
/// working directory when the variable is unset) and returns the path.
/// Throws SjcError on I/O failure.
std::string write_bench_json(const std::string& name, const std::string& json);

/// Converts a raw getrusage `ru_maxrss` value to bytes. POSIX leaves the
/// unit unspecified and the two hosts we run on disagree: Linux reports
/// kilobytes, macOS reports bytes. `raw_is_bytes` names the platform
/// convention explicitly so both conversions are unit-testable on any host;
/// peak_rss_bytes() passes the compile-time default for the current one.
constexpr std::uint64_t rss_bytes_from_ru_maxrss(std::uint64_t raw,
                                                 bool raw_is_bytes) {
  return raw_is_bytes ? raw : raw * 1024;
}

/// The current platform's ru_maxrss convention (see rss_bytes_from_ru_maxrss).
#if defined(__APPLE__)
inline constexpr bool kRuMaxrssIsBytes = true;
#else
inline constexpr bool kRuMaxrssIsBytes = false;
#endif

/// Process-lifetime peak resident set size in bytes (getrusage ru_maxrss,
/// unit-normalized per platform). Monotone over the process lifetime:
/// benches that compare variants must run the expected-smaller one first.
/// Returns 0 on platforms without getrusage.
std::uint64_t peak_rss_bytes();

}  // namespace sjc
