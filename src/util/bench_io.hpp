// Benchmark result export.
//
// The bench binaries print paper-style tables for humans; when SJC_CSV_DIR
// is set they additionally drop machine-readable CSVs there so results can
// be post-processed (plots, regression tracking) without screen-scraping.
#pragma once

#include <string>

#include "util/csv.hpp"

namespace sjc {

/// Writes `csv` to `$SJC_CSV_DIR/<name>.csv` when the environment variable
/// is set. Returns the written path, or an empty string when export is
/// disabled. Throws SjcError on I/O failure.
std::string maybe_write_csv(const std::string& name, const CsvWriter& csv);

}  // namespace sjc
