// Plain-text table rendering for the benchmark harnesses.
//
// The experiment benches print tables in the same row/column layout as the
// paper (Tables 1-3); TablePrinter handles alignment and markdown-ish
// separators so every bench formats output identically.
#pragma once

#include <string>
#include <vector>

namespace sjc {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Renders the table with column alignment.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  // A row that is empty represents a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sjc
