// Minimal leveled logger.
//
// The simulator is a library first: logging defaults to WARN so tests and
// benches stay quiet, and experiment drivers can raise verbosity to trace
// job/stage execution (SJC_LOG=debug environment variable or set_level()).
#pragma once

#include <sstream>
#include <string>

namespace sjc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
LogLevel current_level();
void emit(LogLevel level, const std::string& message);
}  // namespace log_detail

/// Sets the global log level programmatically (overrides SJC_LOG).
void set_log_level(LogLevel level);

/// True when messages at `level` would be emitted.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_detail::current_level());
}

/// Stream-style log statement: SJC_LOG_AT(LogLevel::kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_detail::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace sjc

#define SJC_LOG_AT(level)            \
  if (!::sjc::log_enabled(level)) {  \
  } else                             \
    ::sjc::LogLine(level)

#define SJC_DEBUG SJC_LOG_AT(::sjc::LogLevel::kDebug)
#define SJC_INFO SJC_LOG_AT(::sjc::LogLevel::kInfo)
#define SJC_WARN SJC_LOG_AT(::sjc::LogLevel::kWarn)
#define SJC_ERROR SJC_LOG_AT(::sjc::LogLevel::kError)
