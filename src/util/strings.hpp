// String utilities used by the text/streaming data paths.
//
// HadoopGIS-style streaming pipelines serialize every record as a TSV line
// and reparse it at every stage boundary; these helpers are on that hot
// path, so parsing avoids allocations where possible (string_view in,
// from_chars-based numeric parsing).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sjc {

/// Splits `text` on `sep`, returning views into `text` (no copies).
/// Adjacent separators yield empty fields; an empty input yields one empty
/// field, matching the semantics of common TSV tooling.
std::vector<std::string_view> split(std::string_view text, char sep);

/// split() into a caller-owned buffer (cleared first): per-record reparse
/// loops reuse one scratch vector instead of allocating a fresh one per
/// line.
void split_into(std::string_view text, char sep, std::vector<std::string_view>& out);

/// Splits and copies (for callers that outlive the source buffer).
std::vector<std::string> split_copy(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, char sep);

/// Trims ASCII whitespace from both ends (returns a view).
std::string_view trim(std::string_view text);

/// Parses a double; throws ParseError on malformed input or trailing junk.
double parse_double(std::string_view text);

/// Parses a non-negative integer; throws ParseError on malformed input.
std::uint64_t parse_u64(std::string_view text);

/// Fast double -> string with enough digits to round-trip.
std::string format_double(double value);

/// Formats a byte count as "12.3 MB" style human-readable text.
std::string format_bytes(std::uint64_t bytes);

/// Formats seconds as "1,234" style integer seconds (paper table style),
/// or "-" for NaN (failed runs).
std::string format_seconds(double seconds);

/// true if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace sjc
