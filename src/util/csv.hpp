// Tiny CSV writer/reader.
//
// Benches optionally dump their measurements as CSV (alongside the pretty
// table) so results can be post-processed; the reader exists mainly so the
// round-trip is testable.
#pragma once

#include <string>
#include <vector>

namespace sjc {

/// Escapes and joins one CSV record (RFC 4180 quoting).
std::string csv_format_row(const std::vector<std::string>& fields);

/// Parses one CSV record (RFC 4180 quoting). Throws ParseError on
/// unterminated quotes.
std::vector<std::string> csv_parse_row(const std::string& line);

/// Accumulates rows and writes them to a file.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Serializes all rows (header first).
  std::string to_string() const;

  /// Writes to `path`; throws SjcError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sjc
