// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the simulator (workload generators, samplers,
// partitioners) take an explicit Rng so that every experiment is exactly
// reproducible from a seed. The generator is xoshiro256**, seeded through
// SplitMix64 as recommended by its authors; both are tiny, allocation-free
// and much faster than std::mt19937_64.
#pragma once

#include <cstdint>
#include <vector>

namespace sjc {

/// SplitMix64: used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (useful for per-item jitter).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** PRNG. Deterministic given a seed; never auto-seeded.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Fork an independent stream (for per-task determinism regardless of
  /// execution order).
  Rng fork(std::uint64_t stream_id) const;

  /// Fisher-Yates shuffle of an index range [0, n).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace sjc
