#include "util/strings.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/status.hpp"

namespace sjc {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  split_into(text, sep, out);
  return out;
}

void split_into(std::string_view text, char sep, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(sep, begin);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(begin));
      return;
    }
    out.push_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::vector<std::string> split_copy(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto part : split(text, sep)) out.emplace_back(part);
  return out;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  std::size_t total = parts.empty() ? 0 : parts.size() - 1;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

double parse_double(std::string_view text) {
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw ParseError("parse_double: malformed number: '" + std::string(text) + "'");
  }
  return value;
}

std::uint64_t parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw ParseError("parse_u64: malformed integer: '" + std::string(text) + "'");
  }
  return value;
}

std::string format_double(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "nan";
  return std::string(buf, ptr);
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), unit == 0 ? "%.0f %s" : "%.1f %s", v, kUnits[unit]);
  return buf;
}

std::string format_seconds(double seconds) {
  if (std::isnan(seconds)) return "-";
  auto whole = static_cast<long long>(std::llround(seconds));
  std::string digits = std::to_string(whole);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace sjc
