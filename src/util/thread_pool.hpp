// Fixed-size thread pool.
//
// The cluster simulator executes task bodies on this pool so multi-core
// hosts overlap real compute, while *simulated* time is computed separately
// by the scheduler (see cluster/scheduler.hpp). parallel_for is the only
// primitive the engines need: run N independent task bodies, collect
// exceptions, preserve index order of results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sjc {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count) across the pool and blocks until all
  /// complete. The first exception thrown by any body is rethrown (the
  /// remaining bodies still run to completion).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Process-wide shared pool (lazy-initialized).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace sjc
