// Dynamic R-tree with Guttman quadratic split.
//
// This is the libspatialindex analog: HadoopGIS builds a fresh R-tree from
// the broadcast sample MBRs inside every map task by inserting one entry at
// a time (it cannot bulk-load because entries stream in). Keeping both a
// dynamic and a packed (STR) tree lets bench_localjoin quantify what that
// design choice costs.
#pragma once

#include <cstdint>
#include <vector>

#include "index/spatial_index.hpp"

namespace sjc::index {

class DynamicRTree final : public SpatialIndex {
 public:
  /// `max_entries` per node (min is max/2, Guttman's recommendation).
  explicit DynamicRTree(std::uint32_t max_entries = 16);

  /// Inserts one entry (O(log n) descend + possible splits).
  void insert(const geom::Envelope& env, std::uint32_t id);

  /// Resets to an empty tree, keeping node storage for reuse (the
  /// LocalJoinScratch path: rebuild per partition pair without churning the
  /// allocator).
  void clear();

  void query(const geom::Envelope& query,
             const std::function<void(std::uint32_t)>& fn) const override;
  std::size_t size() const override { return size_; }
  std::size_t size_bytes() const override;
  const geom::Envelope& bounds() const override;

  std::uint32_t height() const { return height_; }

  /// Invokes `fn(id)` for every entry intersecting `query`, with the
  /// callback inlined into the traversal (no std::function dispatch).
  template <typename Fn>
  void for_each_intersecting(const geom::Envelope& query, Fn&& fn) const {
    if (size_ == 0) return;
    std::vector<std::uint32_t> stack{root_};
    while (!stack.empty()) {
      const Node& node = nodes_[stack.back()];
      stack.pop_back();
      for (const auto& slot : node.slots) {
        if (!slot.env.intersects(query)) continue;
        if (node.leaf) {
          fn(slot.child);
        } else {
          stack.push_back(slot.child);
        }
      }
    }
  }

 private:
  struct Slot {
    geom::Envelope env;
    std::uint32_t child = 0;  // node id, or entry id at leaf level
  };
  struct Node {
    std::vector<Slot> slots;
    bool leaf = true;
  };

  geom::Envelope node_env(const Node& node) const;
  /// Inserts into the subtree rooted at node_id; returns the id of a new
  /// sibling when the node overflowed and split, or UINT32_MAX.
  std::uint32_t insert_rec(std::uint32_t node_id, const geom::Envelope& env,
                           std::uint32_t id);
  /// Quadratic split of an overflowing node; returns the new sibling's id.
  std::uint32_t split(std::uint32_t node_id);

  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
  std::uint32_t max_entries_;
  std::uint32_t min_entries_;
  std::uint32_t height_ = 1;
  std::size_t size_ = 0;
  mutable geom::Envelope bounds_cache_;
};

}  // namespace sjc::index
