// Bulk-loaded R-tree using Sort-Tile-Recursive packing.
//
// STR is the workhorse index of all three systems' local joins (and of the
// broadcast partition index in the SpatialSpark analog): the entry set is
// known up front, so packing beats dynamic insertion in both build time and
// query quality. Nodes are stored in a flat array with contiguous children,
// so traversal is pointer-chase-free — important because local joins probe
// the tree millions of times.
//
// Two access paths exist: the virtual SpatialIndex::query (std::function
// callback, for polymorphic callers) and the templated for_each_intersecting
// (callback inlined into the traversal, for the hot local-join kernels).
// rebuild() re-packs the tree in place, reusing entry/node storage, so a
// task processing many partition pairs pays zero allocations once warm.
//
// Alongside the AoS nodes/entries (kept for the synchronized traversal),
// build() mirrors every envelope into flat structure-of-arrays coordinate
// vectors. for_each_intersecting scans those with branchless compaction —
// candidate indices are written unconditionally and the write cursor
// advances by the comparison result — which keeps the probe loops free of
// unpredictable branches and lets them vectorize.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "index/spatial_index.hpp"

namespace sjc::index {

class StrTree final : public SpatialIndex {
 public:
  /// Builds a packed tree over `entries`. `fanout` is the max children per
  /// node (default 16, a good trade-off for in-memory trees). An empty
  /// entry set gives an empty tree; rebuild() re-packs it later (the
  /// LocalJoinScratch reuse path).
  explicit StrTree(std::vector<IndexEntry> entries, std::uint32_t fanout = 16);

  /// Re-packs the tree over `entries` in place. Entry and node storage is
  /// reused, so repeated rebuilds allocate nothing once capacity is warm.
  void rebuild(const std::vector<IndexEntry>& entries);

  void query(const geom::Envelope& query,
             const std::function<void(std::uint32_t)>& fn) const override;
  std::size_t size() const override { return entries_.size(); }
  std::size_t size_bytes() const override;
  const geom::Envelope& bounds() const override { return bounds_; }

  /// Tree height (0 for an empty tree, 1 for a single leaf level).
  std::uint32_t height() const { return height_; }

  // --- Introspection for the synchronized-traversal join -------------------

  struct Node {
    geom::Envelope env;
    std::uint32_t first = 0;  // first child node id, or first entry id (leaf)
    std::uint32_t count = 0;  // child/entry count
    bool leaf = false;
  };

  bool empty() const { return entries_.empty(); }
  const Node& root() const { return nodes_.back(); }
  const Node& node(std::uint32_t id) const { return nodes_[id]; }
  const IndexEntry& entry(std::uint32_t id) const { return entries_[id]; }

  /// Invokes `fn(id)` for every entry intersecting `query`, with the
  /// callback inlined into the traversal (no std::function dispatch).
  /// Nodes already on the stack have passed their envelope test; both the
  /// child scan and the leaf scan run branchless over the SoA coordinate
  /// arrays, compacting survivors before any callback fires.
  template <typename Fn>
  void for_each_intersecting(const geom::Envelope& query, Fn&& fn) const {
    if (entries_.empty() || !bounds_.intersects(query)) return;
    const double qminx = query.min_x();
    const double qmaxx = query.max_x();
    const double qminy = query.min_y();
    const double qmaxy = query.max_y();
    const double* __restrict eminx = entry_min_x_.data();
    const double* __restrict emaxx = entry_max_x_.data();
    const double* __restrict eminy = entry_min_y_.data();
    const double* __restrict emaxy = entry_max_y_.data();
    const double* __restrict nminx = node_min_x_.data();
    const double* __restrict nmaxx = node_max_x_.data();
    const double* __restrict nminy = node_min_y_.data();
    const double* __restrict nmaxy = node_max_y_.data();
    // Worst case is (fanout-1) * height + 1 frames: far below the cap at
    // fanout 16 even for 10^9 entries, and still within it at fanout 256
    // (any larger fanout makes the tree so shallow the bound shrinks again).
    constexpr std::size_t kStackCap = 1024;
    constexpr std::uint32_t kLeafChunk = 256;
    std::uint32_t stack[kStackCap];
    std::uint32_t hits[kLeafChunk];
    std::size_t top = 0;
    stack[top++] = static_cast<std::uint32_t>(nodes_.size() - 1);
    while (top > 0) {
      const Node& node = nodes_[stack[--top]];
      const std::uint32_t first = node.first;
      const std::uint32_t count = node.count;
      if (node.leaf) {
        // Chunked so `hits` stays a fixed stack buffer at any fanout.
        for (std::uint32_t base = first; base < first + count; base += kLeafChunk) {
          const std::uint32_t end = std::min(base + kLeafChunk, first + count);
          std::size_t cnt = 0;
          for (std::uint32_t e = base; e < end; ++e) {
            hits[cnt] = e;
            cnt += static_cast<std::size_t>((qminx <= emaxx[e]) & (qmaxx >= eminx[e]) &
                                            (qminy <= emaxy[e]) & (qmaxy >= eminy[e]));
          }
          for (std::size_t h = 0; h < cnt; ++h) fn(entry_ids_[hits[h]]);
        }
      } else if (top + count < kStackCap) {
        for (std::uint32_t c = first; c < first + count; ++c) {
          stack[top] = c;
          top += static_cast<std::size_t>((qminx <= nmaxx[c]) & (qmaxx >= nminx[c]) &
                                          (qminy <= nmaxy[c]) & (qmaxy >= nminy[c]));
        }
      } else {
        // Unreachable at sane fanouts; guarded push keeps extreme trees safe.
        for (std::uint32_t c = first; c < first + count && top < kStackCap; ++c) {
          if ((qminx <= nmaxx[c]) & (qmaxx >= nminx[c]) & (qminy <= nmaxy[c]) &
              (qmaxy >= nminy[c])) {
            stack[top++] = c;
          }
        }
      }
    }
  }

 private:
  void build();

  std::vector<IndexEntry> entries_;  // permuted into leaf order
  std::vector<Node> nodes_;          // leaves first, root last
  // SoA mirrors of the entry (leaf order) and node envelopes, scanned by
  // for_each_intersecting.
  std::vector<double> entry_min_x_, entry_max_x_, entry_min_y_, entry_max_y_;
  std::vector<std::uint32_t> entry_ids_;
  std::vector<double> node_min_x_, node_max_x_, node_min_y_, node_max_y_;
  geom::Envelope bounds_;
  std::uint32_t fanout_ = 16;
  std::uint32_t height_ = 0;
};

}  // namespace sjc::index
