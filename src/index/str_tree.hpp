// Bulk-loaded R-tree using Sort-Tile-Recursive packing.
//
// STR is the workhorse index of all three systems' local joins (and of the
// broadcast partition index in the SpatialSpark analog): the entry set is
// known up front, so packing beats dynamic insertion in both build time and
// query quality. Nodes are stored in a flat array with contiguous children,
// so traversal is pointer-chase-free — important because local joins probe
// the tree millions of times.
#pragma once

#include <cstdint>
#include <vector>

#include "index/spatial_index.hpp"

namespace sjc::index {

class StrTree final : public SpatialIndex {
 public:
  /// Builds a packed tree over `entries`. `fanout` is the max children per
  /// node (default 16, a good trade-off for in-memory trees).
  explicit StrTree(std::vector<IndexEntry> entries, std::uint32_t fanout = 16);

  void query(const geom::Envelope& query,
             const std::function<void(std::uint32_t)>& fn) const override;
  std::size_t size() const override { return entries_.size(); }
  std::size_t size_bytes() const override;
  const geom::Envelope& bounds() const override { return bounds_; }

  /// Tree height (0 for an empty tree, 1 for a single leaf level).
  std::uint32_t height() const { return height_; }

  // --- Introspection for the synchronized-traversal join -------------------

  struct Node {
    geom::Envelope env;
    std::uint32_t first = 0;  // first child node id, or first entry id (leaf)
    std::uint32_t count = 0;  // child/entry count
    bool leaf = false;
  };

  bool empty() const { return entries_.empty(); }
  const Node& root() const { return nodes_.back(); }
  const Node& node(std::uint32_t id) const { return nodes_[id]; }
  const IndexEntry& entry(std::uint32_t id) const { return entries_[id]; }

 private:
  std::vector<IndexEntry> entries_;  // permuted into leaf order
  std::vector<Node> nodes_;          // leaves first, root last
  geom::Envelope bounds_;
  std::uint32_t height_ = 0;
};

}  // namespace sjc::index
