#include "index/grid_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace sjc::index {

GridIndex::GridIndex(std::vector<IndexEntry> entries, std::uint32_t cols,
                     std::uint32_t rows)
    : entries_(std::move(entries)), cols_(cols), rows_(rows) {
  require(cols >= 1 && rows >= 1, "GridIndex: grid must be at least 1x1");
  for (const auto& e : entries_) bounds_.expand_to_include(e.env);

  const double w = bounds_.width();
  const double h = bounds_.height();
  inv_cell_w_ = w > 0.0 ? cols_ / w : 0.0;
  inv_cell_h_ = h > 0.0 ? rows_ / h : 0.0;

  const std::size_t cells = static_cast<std::size_t>(cols_) * rows_;
  std::vector<std::uint32_t> counts(cells, 0);
  for (const auto& e : entries_) {
    std::uint32_t x0, x1, y0, y1;
    cell_range(e.env, x0, x1, y0, y1);
    for (std::uint32_t y = y0; y <= y1; ++y) {
      for (std::uint32_t x = x0; x <= x1; ++x) ++counts[y * cols_ + x];
    }
  }
  cell_offsets_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    cell_offsets_[c + 1] = cell_offsets_[c] + counts[c];
  }
  cell_items_.resize(cell_offsets_.back());
  std::vector<std::uint32_t> cursor(cell_offsets_.begin(), cell_offsets_.end() - 1);
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    std::uint32_t x0, x1, y0, y1;
    cell_range(entries_[i].env, x0, x1, y0, y1);
    for (std::uint32_t y = y0; y <= y1; ++y) {
      for (std::uint32_t x = x0; x <= x1; ++x) cell_items_[cursor[y * cols_ + x]++] = i;
    }
  }
  stamps_.assign(entries_.size(), 0);
}

GridIndex GridIndex::with_target_occupancy(std::vector<IndexEntry> entries,
                                           double cell_occupancy) {
  require(cell_occupancy > 0.0, "GridIndex: cell_occupancy must be positive");
  const double cells =
      std::max(1.0, static_cast<double>(entries.size()) / cell_occupancy);
  const auto side = static_cast<std::uint32_t>(std::max(1.0, std::sqrt(cells)));
  return GridIndex(std::move(entries), side, side);
}

void GridIndex::cell_range(const geom::Envelope& e, std::uint32_t& x0, std::uint32_t& x1,
                           std::uint32_t& y0, std::uint32_t& y1) const {
  const auto clamp_cell = [](double v, std::uint32_t n) {
    const auto i = static_cast<std::int64_t>(v);
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(i, 0, n - 1));
  };
  x0 = clamp_cell((e.min_x() - bounds_.min_x()) * inv_cell_w_, cols_);
  x1 = clamp_cell((e.max_x() - bounds_.min_x()) * inv_cell_w_, cols_);
  y0 = clamp_cell((e.min_y() - bounds_.min_y()) * inv_cell_h_, rows_);
  y1 = clamp_cell((e.max_y() - bounds_.min_y()) * inv_cell_h_, rows_);
}

void GridIndex::query(const geom::Envelope& query,
                      const std::function<void(std::uint32_t)>& fn) const {
  if (entries_.empty() || !bounds_.intersects(query)) return;
  ++stamp_version_;
  if (stamp_version_ == 0) {  // wrapped: reset stamps once per 2^32 queries
    std::fill(stamps_.begin(), stamps_.end(), 0);
    stamp_version_ = 1;
  }
  std::uint32_t x0, x1, y0, y1;
  cell_range(query.intersection(bounds_), x0, x1, y0, y1);
  for (std::uint32_t y = y0; y <= y1; ++y) {
    for (std::uint32_t x = x0; x <= x1; ++x) {
      const std::size_t cell = static_cast<std::size_t>(y) * cols_ + x;
      for (std::uint32_t k = cell_offsets_[cell]; k < cell_offsets_[cell + 1]; ++k) {
        const std::uint32_t item = cell_items_[k];
        if (stamps_[item] == stamp_version_) continue;
        stamps_[item] = stamp_version_;
        if (entries_[item].env.intersects(query)) fn(entries_[item].id);
      }
    }
  }
}

std::size_t GridIndex::size_bytes() const {
  return sizeof(*this) + entries_.size() * sizeof(IndexEntry) +
         cell_offsets_.size() * sizeof(std::uint32_t) +
         cell_items_.size() * sizeof(std::uint32_t) +
         stamps_.size() * sizeof(std::uint32_t);
}

}  // namespace sjc::index
