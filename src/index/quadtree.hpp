// Region quadtree over envelopes.
//
// Included as the third index family the spatial-partitioning literature the
// paper builds on (SATO, SpatialHadoop's indexing modes) commonly offers.
// Entries live in the deepest node whose quadrant fully contains their
// envelope (an "MX-CIF" style quadtree), so no entry is duplicated and no
// query-time dedup is needed.
#pragma once

#include <cstdint>
#include <vector>

#include "index/spatial_index.hpp"

namespace sjc::index {

class Quadtree final : public SpatialIndex {
 public:
  /// Builds over `entries`; `world` must contain all entry envelopes (it is
  /// expanded to fit if not). Leaves split at `leaf_capacity` entries until
  /// `max_depth`.
  Quadtree(std::vector<IndexEntry> entries, geom::Envelope world,
           std::uint32_t leaf_capacity = 16, std::uint32_t max_depth = 12);

  void query(const geom::Envelope& query,
             const std::function<void(std::uint32_t)>& fn) const override;
  std::size_t size() const override { return total_entries_; }
  std::size_t size_bytes() const override;
  const geom::Envelope& bounds() const override { return world_; }

  std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }

 private:
  struct Node {
    geom::Envelope quadrant;
    std::vector<IndexEntry> items;     // entries pinned at this node
    std::uint32_t children = 0;        // id of first of 4 children, 0 = leaf
    std::uint32_t depth = 0;
  };

  void insert(std::uint32_t node_id, const IndexEntry& entry);
  void subdivide(std::uint32_t node_id);

  std::vector<Node> nodes_;
  geom::Envelope world_;
  std::uint32_t leaf_capacity_;
  std::uint32_t max_depth_;
  std::size_t total_entries_ = 0;
};

}  // namespace sjc::index
