#include "index/mbr_join.hpp"

#include <algorithm>

#include "index/rtree_dynamic.hpp"
#include "util/status.hpp"

namespace sjc::index {

const char* local_join_algorithm_name(LocalJoinAlgorithm algo) {
  switch (algo) {
    case LocalJoinAlgorithm::kPlaneSweep: return "plane-sweep";
    case LocalJoinAlgorithm::kSyncTraversal: return "sync-rtree-traversal";
    case LocalJoinAlgorithm::kIndexedNestedLoop: return "indexed-nested-loop";
    case LocalJoinAlgorithm::kIndexedNestedLoopDynamic:
      return "indexed-nested-loop-dynamic";
    case LocalJoinAlgorithm::kNestedLoop: return "nested-loop";
  }
  return "?";
}

void plane_sweep_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const PairSink& sink) {
  if (left.empty() || right.empty()) return;
  std::vector<IndexEntry> ls = left;
  std::vector<IndexEntry> rs = right;
  const auto by_min_x = [](const IndexEntry& a, const IndexEntry& b) {
    return a.env.min_x() < b.env.min_x();
  };
  std::sort(ls.begin(), ls.end(), by_min_x);
  std::sort(rs.begin(), rs.end(), by_min_x);

  // Classic two-cursor sweep: advance the side with the smaller min_x and
  // scan the other side's entries whose x-interval is still open.
  std::size_t i = 0;
  std::size_t j = 0;
  const auto scan = [&sink](const IndexEntry& pivot, const std::vector<IndexEntry>& other,
                            std::size_t from, bool pivot_is_left) {
    for (std::size_t k = from; k < other.size(); ++k) {
      if (other[k].env.min_x() > pivot.env.max_x()) break;
      if (pivot.env.min_y() <= other[k].env.max_y() &&
          pivot.env.max_y() >= other[k].env.min_y()) {
        if (pivot_is_left) {
          sink(pivot.id, other[k].id);
        } else {
          sink(other[k].id, pivot.id);
        }
      }
    }
  };
  while (i < ls.size() && j < rs.size()) {
    if (ls[i].env.min_x() <= rs[j].env.min_x()) {
      scan(ls[i], rs, j, /*pivot_is_left=*/true);
      ++i;
    } else {
      scan(rs[j], ls, i, /*pivot_is_left=*/false);
      ++j;
    }
  }
}

namespace {

void sync_traversal_rec(const StrTree& lt, const StrTree& rt, const StrTree::Node& ln,
                        const StrTree::Node& rn, const PairSink& sink) {
  if (!ln.env.intersects(rn.env)) return;
  if (ln.leaf && rn.leaf) {
    for (std::uint32_t i = 0; i < ln.count; ++i) {
      const IndexEntry& le = lt.entry(ln.first + i);
      for (std::uint32_t j = 0; j < rn.count; ++j) {
        const IndexEntry& re = rt.entry(rn.first + j);
        if (le.env.intersects(re.env)) sink(le.id, re.id);
      }
    }
    return;
  }
  // Descend the taller / internal side (both when both are internal).
  if (!ln.leaf && (rn.leaf || ln.count >= rn.count)) {
    for (std::uint32_t i = 0; i < ln.count; ++i) {
      sync_traversal_rec(lt, rt, lt.node(ln.first + i), rn, sink);
    }
  } else {
    for (std::uint32_t j = 0; j < rn.count; ++j) {
      sync_traversal_rec(lt, rt, ln, rt.node(rn.first + j), sink);
    }
  }
}

}  // namespace

void sync_traversal_join(const StrTree& left, const StrTree& right,
                         const PairSink& sink) {
  if (left.empty() || right.empty()) return;
  sync_traversal_rec(left, right, left.root(), right.root(), sink);
}

void indexed_nested_loop_join(const std::vector<IndexEntry>& left,
                              const SpatialIndex& right_index, const PairSink& sink) {
  for (const auto& le : left) {
    right_index.query(le.env, [&](std::uint32_t rid) { sink(le.id, rid); });
  }
}

void nested_loop_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const PairSink& sink) {
  for (const auto& le : left) {
    for (const auto& re : right) {
      if (le.env.intersects(re.env)) sink(le.id, re.id);
    }
  }
}

void local_mbr_join(LocalJoinAlgorithm algo, const std::vector<IndexEntry>& left,
                    const std::vector<IndexEntry>& right, const PairSink& sink) {
  switch (algo) {
    case LocalJoinAlgorithm::kPlaneSweep:
      plane_sweep_join(left, right, sink);
      return;
    case LocalJoinAlgorithm::kSyncTraversal: {
      const StrTree lt(left);
      const StrTree rt(right);
      sync_traversal_join(lt, rt, sink);
      return;
    }
    case LocalJoinAlgorithm::kIndexedNestedLoop: {
      const StrTree rt(right);
      indexed_nested_loop_join(left, rt, sink);
      return;
    }
    case LocalJoinAlgorithm::kIndexedNestedLoopDynamic: {
      DynamicRTree rt;
      for (const auto& e : right) rt.insert(e.env, e.id);
      indexed_nested_loop_join(left, rt, sink);
      return;
    }
    case LocalJoinAlgorithm::kNestedLoop:
      nested_loop_join(left, right, sink);
      return;
  }
  throw InvalidArgument("local_mbr_join: unknown algorithm");
}

}  // namespace sjc::index
