#include "index/mbr_join.hpp"

#include <algorithm>
#include <numeric>

namespace sjc::index {

const char* local_join_algorithm_name(LocalJoinAlgorithm algo) {
  switch (algo) {
    case LocalJoinAlgorithm::kPlaneSweep: return "plane-sweep";
    case LocalJoinAlgorithm::kSyncTraversal: return "sync-rtree-traversal";
    case LocalJoinAlgorithm::kIndexedNestedLoop: return "indexed-nested-loop";
    case LocalJoinAlgorithm::kIndexedNestedLoopDynamic:
      return "indexed-nested-loop-dynamic";
    case LocalJoinAlgorithm::kNestedLoop: return "nested-loop";
  }
  return "?";
}

void SweepList::load(const std::vector<IndexEntry>& entries) {
  const std::size_t n = entries.size();
  // Sort contiguous (min_x, index) pairs — compares touch one 16-byte
  // stream instead of chasing a permutation into 40-byte entries — then
  // gather the coordinates into the SoA arrays in sorted order.
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = {entries[i].env.min_x(), static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(),
            [](const std::pair<double, std::uint32_t>& a,
               const std::pair<double, std::uint32_t>& b) { return a.first < b.first; });
  min_x.resize(n);
  max_x.resize(n);
  min_y.resize(n);
  max_y.resize(n);
  ids.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const IndexEntry& e = entries[order[i].second];
    min_x[i] = order[i].first;
    max_x[i] = e.env.max_x();
    min_y[i] = e.env.min_y();
    max_y[i] = e.env.max_y();
    ids[i] = e.id;
  }
}

namespace {

/// Adapts a PairSink for the templated kernels (one std::function dispatch
/// per pair, as before; the kernel itself no longer pays for it elsewhere).
struct FunctionSink {
  const PairSink* fn;
  void operator()(std::uint32_t l, std::uint32_t r) const { (*fn)(l, r); }
};

}  // namespace

void plane_sweep_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const PairSink& sink) {
  plane_sweep_join(left, right, FunctionSink{&sink});
}

void sync_traversal_join(const StrTree& left, const StrTree& right,
                         const PairSink& sink) {
  sync_traversal_join(left, right, FunctionSink{&sink});
}

void indexed_nested_loop_join(const std::vector<IndexEntry>& left,
                              const SpatialIndex& right_index, const PairSink& sink) {
  for (const auto& le : left) {
    right_index.query(le.env, [&](std::uint32_t rid) { sink(le.id, rid); });
  }
}

void nested_loop_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const PairSink& sink) {
  nested_loop_join(left, right, FunctionSink{&sink});
}

void local_mbr_join(LocalJoinAlgorithm algo, const std::vector<IndexEntry>& left,
                    const std::vector<IndexEntry>& right, const PairSink& sink) {
  local_mbr_join(algo, left, right, FunctionSink{&sink});
}

}  // namespace sjc::index
