#include "index/nearest.hpp"

#include <limits>
#include <queue>

namespace sjc::index {

namespace {

struct QueueItem {
  double distance;
  std::uint32_t node;   // node id, or entry id when is_entry
  bool is_entry;
  std::uint32_t tiebreak;  // entry id for deterministic ordering

  bool operator>(const QueueItem& other) const {
    if (distance != other.distance) return distance > other.distance;
    if (is_entry != other.is_entry) return is_entry && !other.is_entry;
    return tiebreak > other.tiebreak;
  }
};

using MinHeap = std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

void push_children(const StrTree& tree, const StrTree::Node& node,
                   const geom::Envelope& query, MinHeap& heap) {
  for (std::uint32_t i = 0; i < node.count; ++i) {
    if (node.leaf) {
      const IndexEntry& e = tree.entry(node.first + i);
      heap.push({e.env.distance(query), node.first + i, true, e.id});
    } else {
      const StrTree::Node& child = tree.node(node.first + i);
      heap.push({child.env.distance(query), node.first + i, false, 0});
    }
  }
}

}  // namespace

std::vector<NearestHit> k_nearest_envelopes(const StrTree& tree,
                                            const geom::Envelope& query,
                                            std::size_t k) {
  std::vector<NearestHit> out;
  if (tree.empty() || k == 0) return out;
  MinHeap heap;
  push_children(tree, tree.root(), query, heap);
  while (!heap.empty() && out.size() < k) {
    const QueueItem item = heap.top();
    heap.pop();
    if (item.is_entry) {
      out.push_back({tree.entry(item.node).id, item.distance});
    } else {
      push_children(tree, tree.node(item.node), query, heap);
    }
  }
  return out;
}

NearestHit nearest_exact(const StrTree& tree, const geom::Envelope& query,
                         const std::function<double(std::uint32_t)>& exact_distance) {
  NearestHit best{std::numeric_limits<std::uint32_t>::max(),
                  std::numeric_limits<double>::infinity()};
  if (tree.empty()) return best;

  MinHeap heap;
  push_children(tree, tree.root(), query, heap);
  while (!heap.empty()) {
    const QueueItem item = heap.top();
    heap.pop();
    // Everything remaining is at least this far by envelope bound; once the
    // bound passes the best exact distance we are done.
    if (item.distance > best.distance) break;
    if (item.is_entry) {
      const std::uint32_t id = tree.entry(item.node).id;
      const double d = exact_distance(id);
      if (d < best.distance || (d == best.distance && id < best.id)) {
        best = {id, d};
      }
    } else {
      push_children(tree, tree.node(item.node), query, heap);
    }
  }
  return best;
}

}  // namespace sjc::index
