#include "index/rtree_dynamic.hpp"

#include <limits>

#include "util/status.hpp"

namespace sjc::index {

namespace {
constexpr std::uint32_t kNoSplit = std::numeric_limits<std::uint32_t>::max();
}

DynamicRTree::DynamicRTree(std::uint32_t max_entries)
    : max_entries_(max_entries), min_entries_(max_entries / 2) {
  require(max_entries >= 4, "DynamicRTree: max_entries must be >= 4");
  nodes_.push_back(Node{});  // empty leaf root
}

geom::Envelope DynamicRTree::node_env(const Node& node) const {
  geom::Envelope env;
  for (const auto& slot : node.slots) env.expand_to_include(slot.env);
  return env;
}

const geom::Envelope& DynamicRTree::bounds() const {
  bounds_cache_ = node_env(nodes_[root_]);
  return bounds_cache_;
}

void DynamicRTree::insert(const geom::Envelope& env, std::uint32_t id) {
  const std::uint32_t sibling = insert_rec(root_, env, id);
  if (sibling != kNoSplit) {
    Node new_root;
    new_root.leaf = false;
    new_root.slots.push_back({node_env(nodes_[root_]), root_});
    new_root.slots.push_back({node_env(nodes_[sibling]), sibling});
    nodes_.push_back(std::move(new_root));
    root_ = static_cast<std::uint32_t>(nodes_.size() - 1);
    ++height_;
  }
  ++size_;
}

std::uint32_t DynamicRTree::insert_rec(std::uint32_t node_id, const geom::Envelope& env,
                                       std::uint32_t id) {
  if (nodes_[node_id].leaf) {
    nodes_[node_id].slots.push_back({env, id});
  } else {
    // Guttman ChooseSubtree: least area enlargement, ties by least area.
    std::size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    {
      const Node& node = nodes_[node_id];
      for (std::size_t i = 0; i < node.slots.size(); ++i) {
        const double area = node.slots[i].env.area();
        const double enlargement = node.slots[i].env.merged(env).area() - area;
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && area < best_area)) {
          best = i;
          best_enlargement = enlargement;
          best_area = area;
        }
      }
    }
    const std::uint32_t child = nodes_[node_id].slots[best].child;
    nodes_[node_id].slots[best].env.expand_to_include(env);
    const std::uint32_t child_sibling = insert_rec(child, env, id);
    if (child_sibling != kNoSplit) {
      // nodes_ may have reallocated during the recursive call; refetch.
      Node& node = nodes_[node_id];
      node.slots[best].env = node_env(nodes_[child]);
      node.slots.push_back({node_env(nodes_[child_sibling]), child_sibling});
    }
  }
  if (nodes_[node_id].slots.size() > max_entries_) return split(node_id);
  return kNoSplit;
}

std::uint32_t DynamicRTree::split(std::uint32_t node_id) {
  // Guttman quadratic split: pick the two seeds wasting the most area when
  // combined, then assign remaining entries by strongest preference.
  std::vector<Slot> slots = std::move(nodes_[node_id].slots);
  const bool leaf = nodes_[node_id].leaf;

  std::size_t seed_a = 0;
  std::size_t seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    for (std::size_t j = i + 1; j < slots.size(); ++j) {
      const double waste = slots[i].env.merged(slots[j].env).area() -
                           slots[i].env.area() - slots[j].env.area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<Slot> group_a{slots[seed_a]};
  std::vector<Slot> group_b{slots[seed_b]};
  geom::Envelope env_a = slots[seed_a].env;
  geom::Envelope env_b = slots[seed_b].env;

  std::vector<Slot> rest;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(slots[i]);
  }

  while (!rest.empty()) {
    // Force-assign when one group must take everything left to reach min.
    if (group_a.size() + rest.size() == min_entries_) {
      for (const auto& s : rest) {
        env_a.expand_to_include(s.env);
        group_a.push_back(s);
      }
      rest.clear();
      break;
    }
    if (group_b.size() + rest.size() == min_entries_) {
      for (const auto& s : rest) {
        env_b.expand_to_include(s.env);
        group_b.push_back(s);
      }
      rest.clear();
      break;
    }
    // PickNext: entry with the largest |d_a - d_b| preference.
    std::size_t pick = 0;
    double best_diff = -1.0;
    double pick_da = 0.0;
    double pick_db = 0.0;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      const double da = env_a.merged(rest[i].env).area() - env_a.area();
      const double db = env_b.merged(rest[i].env).area() - env_b.area();
      const double diff = da > db ? da - db : db - da;
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_da = da;
        pick_db = db;
      }
    }
    const Slot chosen = rest[pick];
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(pick));
    const bool to_a =
        pick_da < pick_db ||
        (pick_da == pick_db && (env_a.area() < env_b.area() ||
                                (env_a.area() == env_b.area() &&
                                 group_a.size() <= group_b.size())));
    if (to_a) {
      env_a.expand_to_include(chosen.env);
      group_a.push_back(chosen);
    } else {
      env_b.expand_to_include(chosen.env);
      group_b.push_back(chosen);
    }
  }

  nodes_[node_id].slots = std::move(group_a);
  Node sibling;
  sibling.leaf = leaf;
  sibling.slots = std::move(group_b);
  nodes_.push_back(std::move(sibling));
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void DynamicRTree::clear() {
  nodes_.clear();
  nodes_.push_back(Node{});  // empty leaf root
  root_ = 0;
  height_ = 1;
  size_ = 0;
}

void DynamicRTree::query(const geom::Envelope& query,
                         const std::function<void(std::uint32_t)>& fn) const {
  for_each_intersecting(query, fn);
}

std::size_t DynamicRTree::size_bytes() const {
  std::size_t bytes = sizeof(*this) + nodes_.capacity() * sizeof(Node);
  for (const auto& node : nodes_) bytes += node.slots.capacity() * sizeof(Slot);
  return bytes;
}

}  // namespace sjc::index
