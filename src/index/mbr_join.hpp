// MBR (filter-phase) join algorithms.
//
// Section II.C of the paper: within a partition pair, SpatialHadoop offers
// plane-sweep and synchronized R-tree traversal joins, while SpatialSpark
// uses an indexed nested-loop join; HadoopGIS also builds an R-tree per
// task. All three are provided here over plain (Envelope, id) entry lists
// so the systems and bench_localjoin can mix and match. Every algorithm
// emits exactly the set of pairs whose envelopes intersect; order differs.
//
// Each algorithm has two entry points:
//  * a templated kernel, generic over the sink type, so the per-pair
//    callback inlines into the innermost loop (the zero-overhead path the
//    local-join hot loop uses), optionally fed an MbrJoinScratch whose
//    trees and sort buffers are reused across calls;
//  * a std::function (PairSink) overload kept as a thin wrapper for
//    polymorphic callers and existing tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "index/rtree_dynamic.hpp"
#include "index/spatial_index.hpp"
#include "index/str_tree.hpp"
#include "util/status.hpp"

namespace sjc::index {

/// Callback receives (left id, right id) for each intersecting MBR pair.
using PairSink = std::function<void(std::uint32_t, std::uint32_t)>;

enum class LocalJoinAlgorithm {
  kPlaneSweep = 0,
  kSyncTraversal = 1,
  kIndexedNestedLoop = 2,         // bulk-loaded STR tree (SpatialSpark)
  kIndexedNestedLoopDynamic = 3,  // insert-built R-tree (HadoopGIS /
                                  // libspatialindex style)
  kNestedLoop = 4,                // baseline for tests/benches only
};

const char* local_join_algorithm_name(LocalJoinAlgorithm algo);

/// One side of a plane sweep in structure-of-arrays form, sorted by min_x.
/// load() sorts a u32 permutation (not 40-byte entries) and gathers the
/// coordinates into flat arrays the sweep scans branch-reduced.
struct SweepList {
  std::vector<double> min_x;
  std::vector<double> max_x;
  std::vector<double> min_y;
  std::vector<double> max_y;
  std::vector<std::uint32_t> ids;
  std::vector<std::pair<double, std::uint32_t>> order;  // (min_x, index) sort scratch

  std::size_t size() const { return ids.size(); }
  void load(const std::vector<IndexEntry>& entries);
};

/// Caller-owned reusable state for local_mbr_join: per-task trees and sweep
/// buffers survive across partition pairs, so a task wave rebuilds indexes
/// into warm storage instead of reallocating per call.
struct MbrJoinScratch {
  StrTree left_tree{std::vector<IndexEntry>{}};
  StrTree right_tree{std::vector<IndexEntry>{}};
  DynamicRTree right_dynamic;
  SweepList sweep_left;
  SweepList sweep_right;
  std::vector<std::uint32_t> sweep_hits;  // plane-sweep compaction buffer
};

// ---------------------------------------------------------------------------
// Templated kernels (sink inlined into the inner loops)
// ---------------------------------------------------------------------------

/// Sweep over two pre-sorted SoA lists: the classic two-cursor sweep along
/// x. For each pivot, the run of still-open x-intervals on the other side
/// is cut with an upper_bound on the sorted min_x array (no per-iteration
/// x test), then scanned with branchless compaction: every candidate index
/// is written into `hits` and the cursor advances by the y-overlap result,
/// so the scan has no data-dependent branches and the sink only fires in a
/// tight emit loop over survivors. `hits` is caller-owned scratch.
template <typename Sink>
void plane_sweep_join(const SweepList& ls, const SweepList& rs,
                      std::vector<std::uint32_t>& hits, Sink&& sink) {
  const std::size_t nl = ls.size();
  const std::size_t nr = rs.size();
  hits.resize(std::max(nl, nr));
  std::uint32_t* __restrict out = hits.data();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < nl && j < nr) {
    if (ls.min_x[i] <= rs.min_x[j]) {
      const double pivot_max_x = ls.max_x[i];
      const double pivot_min_y = ls.min_y[i];
      const double pivot_max_y = ls.max_y[i];
      const std::uint32_t pivot_id = ls.ids[i];
      const auto end = static_cast<std::size_t>(
          std::upper_bound(rs.min_x.begin() + static_cast<std::ptrdiff_t>(j),
                           rs.min_x.end(), pivot_max_x) -
          rs.min_x.begin());
      const double* __restrict rmin_y = rs.min_y.data();
      const double* __restrict rmax_y = rs.max_y.data();
      std::size_t cnt = 0;
      for (std::size_t k = j; k < end; ++k) {
        out[cnt] = static_cast<std::uint32_t>(k);
        cnt += static_cast<std::size_t>((pivot_min_y <= rmax_y[k]) &
                                        (pivot_max_y >= rmin_y[k]));
      }
      for (std::size_t h = 0; h < cnt; ++h) sink(pivot_id, rs.ids[out[h]]);
      ++i;
    } else {
      const double pivot_max_x = rs.max_x[j];
      const double pivot_min_y = rs.min_y[j];
      const double pivot_max_y = rs.max_y[j];
      const std::uint32_t pivot_id = rs.ids[j];
      const auto end = static_cast<std::size_t>(
          std::upper_bound(ls.min_x.begin() + static_cast<std::ptrdiff_t>(i),
                           ls.min_x.end(), pivot_max_x) -
          ls.min_x.begin());
      const double* __restrict lmin_y = ls.min_y.data();
      const double* __restrict lmax_y = ls.max_y.data();
      std::size_t cnt = 0;
      for (std::size_t k = i; k < end; ++k) {
        out[cnt] = static_cast<std::uint32_t>(k);
        cnt += static_cast<std::size_t>((pivot_min_y <= lmax_y[k]) &
                                        (pivot_max_y >= lmin_y[k]));
      }
      for (std::size_t h = 0; h < cnt; ++h) sink(ls.ids[out[h]], pivot_id);
      ++j;
    }
  }
}

template <typename Sink>
void plane_sweep_join(const SweepList& ls, const SweepList& rs, Sink&& sink) {
  std::vector<std::uint32_t> hits;
  plane_sweep_join(ls, rs, hits, sink);
}

/// Sort-both-sides plane sweep along x, staging both sides through the
/// scratch's SoA buffers (no IndexEntry copies, no per-call allocation once
/// the scratch is warm).
template <typename Sink>
void plane_sweep_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, MbrJoinScratch& scratch,
                      Sink&& sink) {
  if (left.empty() || right.empty()) return;
  scratch.sweep_left.load(left);
  scratch.sweep_right.load(right);
  plane_sweep_join(scratch.sweep_left, scratch.sweep_right, scratch.sweep_hits, sink);
}

template <typename Sink>
void plane_sweep_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, Sink&& sink) {
  if (left.empty() || right.empty()) return;
  SweepList ls;
  SweepList rs;
  ls.load(left);
  rs.load(right);
  plane_sweep_join(ls, rs, sink);
}

namespace detail {

template <typename Sink>
void sync_traversal_rec(const StrTree& lt, const StrTree& rt, const StrTree::Node& ln,
                        const StrTree::Node& rn, Sink& sink) {
  if (!ln.env.intersects(rn.env)) return;
  if (ln.leaf && rn.leaf) {
    for (std::uint32_t i = 0; i < ln.count; ++i) {
      const IndexEntry& le = lt.entry(ln.first + i);
      for (std::uint32_t j = 0; j < rn.count; ++j) {
        const IndexEntry& re = rt.entry(rn.first + j);
        if (le.env.intersects(re.env)) sink(le.id, re.id);
      }
    }
    return;
  }
  // Descend the taller / internal side (both when both are internal).
  if (!ln.leaf && (rn.leaf || ln.count >= rn.count)) {
    for (std::uint32_t i = 0; i < ln.count; ++i) {
      sync_traversal_rec(lt, rt, lt.node(ln.first + i), rn, sink);
    }
  } else {
    for (std::uint32_t j = 0; j < rn.count; ++j) {
      sync_traversal_rec(lt, rt, ln, rt.node(rn.first + j), sink);
    }
  }
}

}  // namespace detail

/// Synchronized descent of two STR trees.
template <typename Sink>
void sync_traversal_join(const StrTree& left, const StrTree& right, Sink&& sink) {
  if (left.empty() || right.empty()) return;
  detail::sync_traversal_rec(left, right, left.root(), right.root(), sink);
}

/// Probes `right_index` (built over the right side) with every left entry,
/// using the index's templated traversal so the probe callback inlines.
template <typename Index, typename Sink>
  requires requires(const Index& idx, const geom::Envelope& e) {
    idx.for_each_intersecting(e, [](std::uint32_t) {});
  }
void indexed_nested_loop_join(const std::vector<IndexEntry>& left,
                              const Index& right_index, Sink&& sink) {
  for (const auto& le : left) {
    right_index.for_each_intersecting(
        le.env, [&sink, &le](std::uint32_t rid) { sink(le.id, rid); });
  }
}

/// O(n*m) reference implementation.
template <typename Sink>
void nested_loop_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, Sink&& sink) {
  for (const auto& le : left) {
    for (const auto& re : right) {
      if (le.env.intersects(re.env)) sink(le.id, re.id);
    }
  }
}

/// Dispatches on `algo`, (re)building whatever index the algorithm needs
/// into the caller-owned scratch.
template <typename Sink>
void local_mbr_join(LocalJoinAlgorithm algo, const std::vector<IndexEntry>& left,
                    const std::vector<IndexEntry>& right, MbrJoinScratch& scratch,
                    Sink&& sink) {
  switch (algo) {
    case LocalJoinAlgorithm::kPlaneSweep:
      plane_sweep_join(left, right, scratch, sink);
      return;
    case LocalJoinAlgorithm::kSyncTraversal:
      if (left.empty() || right.empty()) return;
      scratch.left_tree.rebuild(left);
      scratch.right_tree.rebuild(right);
      sync_traversal_join(scratch.left_tree, scratch.right_tree, sink);
      return;
    case LocalJoinAlgorithm::kIndexedNestedLoop:
      if (left.empty() || right.empty()) return;
      scratch.right_tree.rebuild(right);
      indexed_nested_loop_join(left, scratch.right_tree, sink);
      return;
    case LocalJoinAlgorithm::kIndexedNestedLoopDynamic:
      scratch.right_dynamic.clear();
      for (const auto& e : right) scratch.right_dynamic.insert(e.env, e.id);
      indexed_nested_loop_join(left, scratch.right_dynamic, sink);
      return;
    case LocalJoinAlgorithm::kNestedLoop:
      nested_loop_join(left, right, sink);
      return;
  }
  throw InvalidArgument("local_mbr_join: unknown algorithm");
}

template <typename Sink>
void local_mbr_join(LocalJoinAlgorithm algo, const std::vector<IndexEntry>& left,
                    const std::vector<IndexEntry>& right, Sink&& sink) {
  MbrJoinScratch scratch;
  local_mbr_join(algo, left, right, scratch, sink);
}

// ---------------------------------------------------------------------------
// std::function (PairSink) wrappers — ABI/test compatibility
// ---------------------------------------------------------------------------

/// Sort-both-sides plane sweep along x (the classic serial spatial join).
void plane_sweep_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const PairSink& sink);

/// Synchronized descent of two STR trees.
void sync_traversal_join(const StrTree& left, const StrTree& right,
                         const PairSink& sink);

/// Probes `index` (built over the right side) with every left entry through
/// the virtual SpatialIndex interface.
void indexed_nested_loop_join(const std::vector<IndexEntry>& left,
                              const SpatialIndex& right_index, const PairSink& sink);

/// O(n*m) reference implementation.
void nested_loop_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const PairSink& sink);

/// Dispatches on `algo`, building whatever index the algorithm needs.
void local_mbr_join(LocalJoinAlgorithm algo, const std::vector<IndexEntry>& left,
                    const std::vector<IndexEntry>& right, const PairSink& sink);

}  // namespace sjc::index
