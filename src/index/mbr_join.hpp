// MBR (filter-phase) join algorithms.
//
// Section II.C of the paper: within a partition pair, SpatialHadoop offers
// plane-sweep and synchronized R-tree traversal joins, while SpatialSpark
// uses an indexed nested-loop join; HadoopGIS also builds an R-tree per
// task. All three are provided here over plain (Envelope, id) entry lists
// so the systems and bench_localjoin can mix and match. Every algorithm
// emits exactly the set of pairs whose envelopes intersect; order differs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "index/spatial_index.hpp"
#include "index/str_tree.hpp"

namespace sjc::index {

/// Callback receives (left id, right id) for each intersecting MBR pair.
using PairSink = std::function<void(std::uint32_t, std::uint32_t)>;

enum class LocalJoinAlgorithm {
  kPlaneSweep = 0,
  kSyncTraversal = 1,
  kIndexedNestedLoop = 2,         // bulk-loaded STR tree (SpatialSpark)
  kIndexedNestedLoopDynamic = 3,  // insert-built R-tree (HadoopGIS /
                                  // libspatialindex style)
  kNestedLoop = 4,                // baseline for tests/benches only
};

const char* local_join_algorithm_name(LocalJoinAlgorithm algo);

/// Sort-both-sides plane sweep along x (the classic serial spatial join).
void plane_sweep_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const PairSink& sink);

/// Synchronized descent of two STR trees.
void sync_traversal_join(const StrTree& left, const StrTree& right,
                         const PairSink& sink);

/// Probes `index` (built over the right side) with every left entry.
void indexed_nested_loop_join(const std::vector<IndexEntry>& left,
                              const SpatialIndex& right_index, const PairSink& sink);

/// O(n*m) reference implementation.
void nested_loop_join(const std::vector<IndexEntry>& left,
                      const std::vector<IndexEntry>& right, const PairSink& sink);

/// Dispatches on `algo`, building whatever index the algorithm needs.
void local_mbr_join(LocalJoinAlgorithm algo, const std::vector<IndexEntry>& left,
                    const std::vector<IndexEntry>& right, const PairSink& sink);

}  // namespace sjc::index
