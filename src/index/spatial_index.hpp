// Common interface for the MBR indexes used in the filter phases.
//
// Every index stores (Envelope, id) entries and answers "which entry ids
// have an MBR intersecting this query envelope?". Indexes are used in three
// places mirroring the paper: per-mapper partition lookup (HadoopGIS),
// per-block local-join indexes (SpatialHadoop), and the broadcast partition
// index (SpatialSpark).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/envelope.hpp"

namespace sjc::index {

struct IndexEntry {
  geom::Envelope env;
  std::uint32_t id = 0;
};

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Invokes `fn(id)` for every entry whose envelope intersects `query`.
  virtual void query(const geom::Envelope& query,
                     const std::function<void(std::uint32_t)>& fn) const = 0;

  /// Number of indexed entries.
  virtual std::size_t size() const = 0;

  /// Approximate memory footprint (RDD memory accounting, DFS block
  /// headers).
  virtual std::size_t size_bytes() const = 0;

  /// Envelope of all entries (empty envelope when size() == 0).
  virtual const geom::Envelope& bounds() const = 0;

  /// Convenience: collect matching ids into a vector.
  std::vector<std::uint32_t> query_ids(const geom::Envelope& q) const {
    std::vector<std::uint32_t> out;
    query(q, [&out](std::uint32_t id) { out.push_back(id); });
    return out;
  }
};

}  // namespace sjc::index
