// Uniform grid index (CSR layout).
//
// SpatialHadoop's default partitioner assigns sampled points to uniform grid
// cells; the same structure doubles as a cheap spatial index when entries
// are spread evenly. Entries overlapping several cells are replicated into
// each, so queries deduplicate via a stamp array.
#pragma once

#include <cstdint>
#include <vector>

#include "index/spatial_index.hpp"

namespace sjc::index {

class GridIndex final : public SpatialIndex {
 public:
  /// Builds a `cols` x `rows` grid over the entries' bounds.
  GridIndex(std::vector<IndexEntry> entries, std::uint32_t cols, std::uint32_t rows);

  /// Convenience: picks a near-square grid with ~entries/cell_occupancy
  /// cells.
  static GridIndex with_target_occupancy(std::vector<IndexEntry> entries,
                                         double cell_occupancy = 8.0);

  void query(const geom::Envelope& query,
             const std::function<void(std::uint32_t)>& fn) const override;
  std::size_t size() const override { return entries_.size(); }
  std::size_t size_bytes() const override;
  const geom::Envelope& bounds() const override { return bounds_; }

  std::uint32_t cols() const { return cols_; }
  std::uint32_t rows() const { return rows_; }

 private:
  void cell_range(const geom::Envelope& e, std::uint32_t& x0, std::uint32_t& x1,
                  std::uint32_t& y0, std::uint32_t& y1) const;

  std::vector<IndexEntry> entries_;
  geom::Envelope bounds_;
  std::uint32_t cols_ = 1;
  std::uint32_t rows_ = 1;
  double inv_cell_w_ = 0.0;
  double inv_cell_h_ = 0.0;
  std::vector<std::uint32_t> cell_offsets_;
  std::vector<std::uint32_t> cell_items_;  // indexes into entries_
  // Query-time dedup: stamp per entry, versioned to avoid clearing.
  mutable std::vector<std::uint32_t> stamps_;
  mutable std::uint32_t stamp_version_ = 0;
};

}  // namespace sjc::index
