#include "index/str_tree.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace sjc::index {

StrTree::StrTree(std::vector<IndexEntry> entries, std::uint32_t fanout)
    : entries_(std::move(entries)), fanout_(fanout) {
  require(fanout >= 2, "StrTree: fanout must be >= 2");
  build();
}

void StrTree::rebuild(const std::vector<IndexEntry>& entries) {
  entries_.assign(entries.begin(), entries.end());
  build();
}

void StrTree::build() {
  const std::uint32_t fanout = fanout_;
  nodes_.clear();
  bounds_ = geom::Envelope();
  height_ = 0;
  for (const auto& e : entries_) bounds_.expand_to_include(e.env);
  if (entries_.empty()) {
    entry_min_x_.clear();
    entry_max_x_.clear();
    entry_min_y_.clear();
    entry_max_y_.clear();
    entry_ids_.clear();
    node_min_x_.clear();
    node_max_x_.clear();
    node_min_y_.clear();
    node_max_y_.clear();
    return;
  }

  // --- Leaf level: STR packing --------------------------------------------
  // Sort entries by x-center into ceil(sqrt(n/fanout)) vertical slices, then
  // by y-center within each slice, and cut runs of `fanout` into leaves.
  const std::size_t n = entries_.size();
  const auto leaf_count = (n + fanout - 1) / fanout;
  const auto slice_count = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const std::size_t slice_size =
      ((leaf_count + slice_count - 1) / slice_count) * fanout;

  std::sort(entries_.begin(), entries_.end(), [](const IndexEntry& a, const IndexEntry& b) {
    return a.env.center_x() < b.env.center_x();
  });
  for (std::size_t begin = 0; begin < n; begin += slice_size) {
    const std::size_t end = std::min(begin + slice_size, n);
    std::sort(entries_.begin() + static_cast<std::ptrdiff_t>(begin),
              entries_.begin() + static_cast<std::ptrdiff_t>(end),
              [](const IndexEntry& a, const IndexEntry& b) {
                return a.env.center_y() < b.env.center_y();
              });
  }

  for (std::size_t begin = 0; begin < n; begin += fanout) {
    const std::size_t end = std::min<std::size_t>(begin + fanout, n);
    Node leaf;
    leaf.leaf = true;
    leaf.first = static_cast<std::uint32_t>(begin);
    leaf.count = static_cast<std::uint32_t>(end - begin);
    for (std::size_t i = begin; i < end; ++i) leaf.env.expand_to_include(entries_[i].env);
    nodes_.push_back(leaf);
  }
  height_ = 1;

  // --- Inner levels: pack runs of `fanout` children ------------------------
  std::uint32_t level_begin = 0;
  auto level_count = static_cast<std::uint32_t>(nodes_.size());
  while (level_count > 1) {
    const std::uint32_t next_begin = level_begin + level_count;
    for (std::uint32_t begin = 0; begin < level_count; begin += fanout) {
      const std::uint32_t end = std::min(begin + fanout, level_count);
      Node inner;
      inner.leaf = false;
      inner.first = level_begin + begin;
      inner.count = end - begin;
      for (std::uint32_t i = begin; i < end; ++i) {
        inner.env.expand_to_include(nodes_[level_begin + i].env);
      }
      nodes_.push_back(inner);
    }
    level_begin = next_begin;
    level_count = static_cast<std::uint32_t>(nodes_.size()) - next_begin;
    ++height_;
  }

  // --- SoA mirrors for the branchless probe path ---------------------------
  entry_min_x_.resize(n);
  entry_max_x_.resize(n);
  entry_min_y_.resize(n);
  entry_max_y_.resize(n);
  entry_ids_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const IndexEntry& e = entries_[i];
    entry_min_x_[i] = e.env.min_x();
    entry_max_x_[i] = e.env.max_x();
    entry_min_y_[i] = e.env.min_y();
    entry_max_y_[i] = e.env.max_y();
    entry_ids_[i] = e.id;
  }
  const std::size_t m = nodes_.size();
  node_min_x_.resize(m);
  node_max_x_.resize(m);
  node_min_y_.resize(m);
  node_max_y_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const geom::Envelope& env = nodes_[i].env;
    node_min_x_[i] = env.min_x();
    node_max_x_[i] = env.max_x();
    node_min_y_[i] = env.min_y();
    node_max_y_[i] = env.max_y();
  }
}

void StrTree::query(const geom::Envelope& query,
                    const std::function<void(std::uint32_t)>& fn) const {
  for_each_intersecting(query, fn);
}

std::size_t StrTree::size_bytes() const {
  return sizeof(*this) + entries_.size() * sizeof(IndexEntry) +
         nodes_.size() * sizeof(Node) +
         entries_.size() * (4 * sizeof(double) + sizeof(std::uint32_t)) +
         nodes_.size() * 4 * sizeof(double);
}

}  // namespace sjc::index
