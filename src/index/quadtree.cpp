#include "index/quadtree.hpp"

#include "util/status.hpp"

namespace sjc::index {

Quadtree::Quadtree(std::vector<IndexEntry> entries, geom::Envelope world,
                   std::uint32_t leaf_capacity, std::uint32_t max_depth)
    : world_(world), leaf_capacity_(leaf_capacity), max_depth_(max_depth) {
  require(leaf_capacity >= 1, "Quadtree: leaf_capacity must be >= 1");
  for (const auto& e : entries) world_.expand_to_include(e.env);
  if (world_.empty()) world_ = geom::Envelope(0, 0, 1, 1);
  nodes_.push_back(Node{.quadrant = world_, .items = {}, .children = 0, .depth = 0});
  for (const auto& e : entries) {
    insert(0, e);
    ++total_entries_;
  }
}

void Quadtree::subdivide(std::uint32_t node_id) {
  const geom::Envelope q = nodes_[node_id].quadrant;
  const double cx = q.center_x();
  const double cy = q.center_y();
  const std::uint32_t depth = nodes_[node_id].depth + 1;
  const std::uint32_t first = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{.quadrant = {q.min_x(), q.min_y(), cx, cy}, .items = {}, .children = 0, .depth = depth});
  nodes_.push_back(Node{.quadrant = {cx, q.min_y(), q.max_x(), cy}, .items = {}, .children = 0, .depth = depth});
  nodes_.push_back(Node{.quadrant = {q.min_x(), cy, cx, q.max_y()}, .items = {}, .children = 0, .depth = depth});
  nodes_.push_back(Node{.quadrant = {cx, cy, q.max_x(), q.max_y()}, .items = {}, .children = 0, .depth = depth});
  nodes_[node_id].children = first;

  // Re-sink items that now fit entirely within a child quadrant.
  std::vector<IndexEntry> keep;
  std::vector<IndexEntry> moved = std::move(nodes_[node_id].items);
  for (const auto& item : moved) {
    bool sunk = false;
    for (std::uint32_t c = 0; c < 4; ++c) {
      if (nodes_[first + c].quadrant.contains(item.env)) {
        insert(first + c, item);
        sunk = true;
        break;
      }
    }
    if (!sunk) keep.push_back(item);
  }
  nodes_[node_id].items = std::move(keep);
}

void Quadtree::insert(std::uint32_t node_id, const IndexEntry& entry) {
  while (true) {
    if (nodes_[node_id].children != 0) {
      const std::uint32_t first = nodes_[node_id].children;
      bool descended = false;
      for (std::uint32_t c = 0; c < 4; ++c) {
        if (nodes_[first + c].quadrant.contains(entry.env)) {
          node_id = first + c;
          descended = true;
          break;
        }
      }
      if (descended) continue;
      nodes_[node_id].items.push_back(entry);  // straddles children: pin here
      return;
    }
    // Leaf.
    nodes_[node_id].items.push_back(entry);
    if (nodes_[node_id].items.size() > leaf_capacity_ &&
        nodes_[node_id].depth < max_depth_) {
      subdivide(node_id);
    }
    return;
  }
}

void Quadtree::query(const geom::Envelope& query,
                     const std::function<void(std::uint32_t)>& fn) const {
  if (total_entries_ == 0 || !world_.intersects(query)) return;
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.quadrant.intersects(query)) continue;
    for (const auto& item : node.items) {
      if (item.env.intersects(query)) fn(item.id);
    }
    if (node.children != 0) {
      for (std::uint32_t c = 0; c < 4; ++c) stack.push_back(node.children + c);
    }
  }
}

std::size_t Quadtree::size_bytes() const {
  std::size_t bytes = sizeof(*this) + nodes_.capacity() * sizeof(Node);
  for (const auto& node : nodes_) bytes += node.items.capacity() * sizeof(IndexEntry);
  return bytes;
}

}  // namespace sjc::index
