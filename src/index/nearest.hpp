// Best-first nearest-neighbor search over an STR tree.
//
// The paper's opening example is "matching taxi pickup/drop-off locations
// with road segments through point-to-nearest-polyline distance
// computation". The distributed systems evaluate it as a within-distance
// join; this module provides the exact k-NN primitive (classic
// Hjaltason–Samet best-first traversal over MBR distances) used by the
// serial nearest-neighbor join in core/nn_join.hpp and by callers that
// need candidate ranking.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "index/str_tree.hpp"

namespace sjc::index {

struct NearestHit {
  std::uint32_t id = 0;
  double distance = 0.0;  // envelope distance (lower bound on exact)
};

/// The k entries whose ENVELOPES are nearest to `query` (ties broken by
/// id), in ascending distance order. Returns fewer than k when the tree is
/// smaller.
std::vector<NearestHit> k_nearest_envelopes(const StrTree& tree,
                                            const geom::Envelope& query,
                                            std::size_t k);

/// Incremental best-first traversal with exact re-ranking: `exact_distance`
/// maps an entry id to its true distance; the function returns the id with
/// the smallest exact distance (and that distance), or {UINT32_MAX, inf}
/// for an empty tree. Envelope distances prune: an entry is only scored
/// exactly while its envelope distance can still beat the best exact
/// distance found.
NearestHit nearest_exact(const StrTree& tree, const geom::Envelope& query,
                         const std::function<double(std::uint32_t)>& exact_distance);

}  // namespace sjc::index
