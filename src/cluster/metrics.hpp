// Run metrics: per-phase simulated time and I/O volumes.
//
// Every engine phase (an MR job's map/shuffle/reduce, an RDD stage, a
// master-side serial step) appends a PhaseReport. The systems aggregate
// phases into the IA / IB / DJ breakdown columns of the paper's Table 3 and
// the end-to-end totals of Table 2.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace sjc::cluster {

struct PhaseReport {
  std::string name;
  double sim_seconds = 0.0;
  std::uint64_t bytes_read = 0;      // scaled magnitude (local/DFS reads)
  std::uint64_t bytes_written = 0;   // scaled magnitude
  std::uint64_t bytes_shuffled = 0;  // scaled magnitude
  std::size_t task_count = 0;
  /// Streaming phases only: largest per-task pipe volume at paper
  /// magnitude (drives the broken-pipe analysis).
  std::uint64_t max_task_pipe_bytes = 0;

  // ---- recovery accounting (fault-injected runs; zero otherwise) ----------
  /// Task attempts launched, including retries and speculative clones
  /// (== task_count on a clean phase; 0 for master-side serial phases).
  std::uint64_t task_attempts = 0;
  /// Speculative duplicates launched for stragglers.
  std::uint64_t speculative_clones = 0;
  /// Seconds of discarded work: failed attempts, retry backoff, and the
  /// losing side of speculative races.
  double wasted_seconds = 0.0;
  /// RDD partitions recomputed from lineage after executor loss.
  std::uint64_t recomputed_partitions = 0;
  /// Bytes copied by the DFS to restore replication after datanode loss
  /// (paper magnitude).
  std::uint64_t rereplicated_bytes = 0;

  // ---- output-commit ledger (see scheduler.hpp ScheduleOutcome) -----------
  /// Winning attempts whose output was published (one per finished task;
  /// master-side serial steps count as one published commit).
  std::uint64_t commits_published = 0;
  /// Speculative race losers whose commit the ledger rejected.
  std::uint64_t commits_rejected = 0;
  /// Failed attempts that aborted without committing.
  std::uint64_t attempts_aborted = 0;
  /// Nodes blacklisted during this phase.
  std::uint64_t nodes_quarantined = 0;
};

class RunMetrics {
 public:
  void add_phase(PhaseReport phase) { phases_.push_back(std::move(phase)); }

  const std::vector<PhaseReport>& phases() const { return phases_; }

  /// Most recently added phase (for engines annotating extra detail).
  /// Calling this before any phase was added is a bug: asserts in debug
  /// builds and returns a throwaway scratch report in release builds (the
  /// annotation is dropped instead of corrupting memory via back() on an
  /// empty vector). Caller audit (2026-08): no call sites exist today —
  /// engines annotate through record_phase parameters instead, because a
  /// datanode-loss repair phase can land after the phase just recorded (see
  /// mr_context.hpp).
  PhaseReport& last_phase() {
    assert(!phases_.empty() && "last_phase() called before any add_phase()");
    if (phases_.empty()) [[unlikely]] {
      thread_local PhaseReport scratch;
      scratch = PhaseReport{};
      return scratch;
    }
    return phases_.back();
  }

  /// Largest per-task pipe volume across all streaming phases.
  std::uint64_t max_task_pipe_bytes() const {
    std::uint64_t best = 0;
    for (const auto& p : phases_) {
      if (p.max_task_pipe_bytes > best) best = p.max_task_pipe_bytes;
    }
    return best;
  }

  double total_seconds() const {
    double total = 0.0;
    for (const auto& p : phases_) total += p.sim_seconds;
    return total;
  }

  std::uint64_t total_bytes_read() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.bytes_read;
    return total;
  }

  std::uint64_t total_bytes_written() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.bytes_written;
    return total;
  }

  std::uint64_t total_bytes_shuffled() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.bytes_shuffled;
    return total;
  }

  std::uint64_t total_task_attempts() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.task_attempts;
    return total;
  }

  std::uint64_t total_speculative_clones() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.speculative_clones;
    return total;
  }

  double total_wasted_seconds() const {
    double total = 0.0;
    for (const auto& p : phases_) total += p.wasted_seconds;
    return total;
  }

  std::uint64_t total_recomputed_partitions() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.recomputed_partitions;
    return total;
  }

  std::uint64_t total_rereplicated_bytes() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.rereplicated_bytes;
    return total;
  }

  std::uint64_t total_commits_published() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.commits_published;
    return total;
  }

  std::uint64_t total_commits_rejected() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.commits_rejected;
    return total;
  }

  std::uint64_t total_attempts_aborted() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.attempts_aborted;
    return total;
  }

  std::uint64_t total_nodes_quarantined() const {
    std::uint64_t total = 0;
    for (const auto& p : phases_) total += p.nodes_quarantined;
    return total;
  }

  /// Sums sim_seconds of phases whose name starts with `prefix` (phases are
  /// named "<stage>/<detail>", e.g. "indexA/map").
  double seconds_with_prefix(const std::string& prefix) const;

  /// Appends all phases of `other` (used to merge sub-job metrics).
  void merge(const RunMetrics& other) {
    for (const auto& p : other.phases()) phases_.push_back(p);
  }

  /// Multi-line human-readable summary.
  std::string to_string() const;

 private:
  std::vector<PhaseReport> phases_;
};

}  // namespace sjc::cluster
