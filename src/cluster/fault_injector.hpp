// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan describes *what goes wrong* during a run: per-attempt task
// crash probability, straggler slowdowns, and datanode losses scheduled at
// simulated times. The FaultInjector answers every engine query about the
// plan through stateless hashing of (seed, phase, task, attempt), so the
// same plan produces bit-identical decisions regardless of thread count or
// task execution order — runs stay exactly reproducible from the seed.
//
// Recovery knobs live here too, because they are what the paper's failure
// matrix is really about: Hadoop retries a failed task `max_attempts` times
// (default mapred.map.max.attempts = 4 in real Hadoop; 1 here so the seed
// failure matrix of Tables 2-3 is preserved unless a caller opts in) with
// exponential backoff, and speculatively re-executes stragglers. All retry
// and speculation costs are charged to the simulated clock by the
// failure-aware scheduler overload (scheduler.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sjc::cluster {

/// One scheduled datanode loss: at simulated time `time_s` (paper-unit
/// seconds since job start) datanode `node` drops out of the cluster.
struct DatanodeLossEvent {
  double time_s = 0.0;
  std::uint32_t node = 0;
};

struct FaultPlan {
  std::uint64_t seed = 0;

  // ---- injected faults -----------------------------------------------------
  /// Probability that any single task attempt crashes (lost container, bad
  /// disk, preemption). Evaluated independently per (phase, task, attempt).
  double task_crash_probability = 0.0;
  /// Probability that a task is a straggler for the whole phase.
  double straggler_probability = 0.0;
  /// Duration multiplier applied to straggler tasks (>= 1).
  double straggler_slowdown = 1.0;
  /// Datanode losses at scheduled simulated times.
  std::vector<DatanodeLossEvent> datanode_losses;

  // ---- recovery semantics --------------------------------------------------
  /// Task attempts before the job is declared dead (Hadoop's
  /// mapred.*.max.attempts). 1 = first failure is fatal (the seed model).
  std::uint32_t max_attempts = 1;
  /// Base of the exponential retry backoff charged to the simulated clock:
  /// attempt k's failure costs backoff * 2^(k-1) seconds before relaunch.
  double retry_backoff_s = 2.0;
  /// Speculative execution: clone the slowest running task once its
  /// projected duration exceeds `speculation_threshold` x the phase median;
  /// the first finisher wins and the loser's work is wasted (but charged).
  bool speculative_execution = false;
  double speculation_threshold = 1.5;
  /// Streaming-pipe retry headroom: a retried attempt runs in a less
  /// contended container, so its effective pipe capacity grows by this
  /// fraction per retry (attempt k tolerates capacity * (1 + h*(k-1))).
  /// Models the transient share of HadoopGIS pipe overflows; overflows
  /// larger than the final attempt's headroom remain fatal, which is how
  /// the full-dataset runs still die exactly as in Tables 2-3.
  double pipe_retry_headroom = 0.5;

  /// True when the plan can never perturb a run (no injected faults and no
  /// retry budget beyond the first attempt) — engines skip the recovery
  /// machinery entirely and stay byte-identical with the fault-free path.
  bool trivial() const {
    return task_crash_probability <= 0.0 && straggler_probability <= 0.0 &&
           datanode_losses.empty() && max_attempts <= 1 &&
           !speculative_execution;
  }
};

/// Stateless oracle over a FaultPlan. All queries hash (seed, phase, task,
/// attempt), so they are thread-safe and order-independent.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Stable id for a phase name (fed back into the per-task queries).
  static std::uint64_t phase_id(const std::string& name);

  /// Does attempt `attempt` (1-based) of `task` in `phase` crash?
  bool crashes(std::uint64_t phase, std::size_t task, std::uint32_t attempt) const;

  /// Fraction of the attempt's duration consumed before the crash, in
  /// (0, 1). Only meaningful when crashes() is true.
  double crash_fraction(std::uint64_t phase, std::size_t task,
                        std::uint32_t attempt) const;

  /// Straggler slowdown for `task` in `phase`: 1.0 for healthy tasks,
  /// plan().straggler_slowdown for stragglers.
  double slowdown(std::uint64_t phase, std::size_t task) const;

  /// Simulated seconds of backoff charged after failed attempt `attempt`
  /// (1-based): retry_backoff_s * 2^(attempt-1).
  double backoff_s(std::uint32_t attempt) const;

  /// Effective capacity multiplier for attempt `attempt` of a
  /// capacity-gated task (streaming pipes): 1 + pipe_retry_headroom*(k-1).
  double capacity_factor(std::uint32_t attempt) const;

  /// Datanode losses scheduled at or before simulated time `now_s`,
  /// beginning at event index `from` (callers track how many they applied).
  std::vector<DatanodeLossEvent> losses_due(double now_s, std::size_t from) const;

 private:
  double unit(std::uint64_t phase, std::size_t task, std::uint32_t attempt,
              std::uint64_t salt) const;

  FaultPlan plan_;
};

}  // namespace sjc::cluster
