// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan describes *what goes wrong* during a run: per-attempt task
// crash probability, straggler slowdowns, and datanode losses scheduled at
// simulated times. The FaultInjector answers every engine query about the
// plan through stateless hashing of (seed, phase, task, attempt), so the
// same plan produces bit-identical decisions regardless of thread count or
// task execution order — runs stay exactly reproducible from the seed.
//
// Recovery knobs live here too, because they are what the paper's failure
// matrix is really about: Hadoop retries a failed task `max_attempts` times
// (default mapred.map.max.attempts = 4 in real Hadoop; 1 here so the seed
// failure matrix of Tables 2-3 is preserved unless a caller opts in) with
// exponential backoff, and speculatively re-executes stragglers. All retry
// and speculation costs are charged to the simulated clock by the
// failure-aware scheduler overload (scheduler.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sjc::cluster {

/// One scheduled datanode loss: at simulated time `time_s` (paper-unit
/// seconds since job start) datanode `node` drops out of the cluster.
struct DatanodeLossEvent {
  double time_s = 0.0;
  std::uint32_t node = 0;
};

struct FaultPlan {
  std::uint64_t seed = 0;

  // ---- injected faults -----------------------------------------------------
  /// Probability that any single task attempt crashes (lost container, bad
  /// disk, preemption). Evaluated independently per (phase, task, attempt).
  double task_crash_probability = 0.0;
  /// Probability that a task is a straggler for the whole phase.
  double straggler_probability = 0.0;
  /// Duration multiplier applied to straggler tasks (>= 1).
  double straggler_slowdown = 1.0;
  /// Datanode losses at scheduled simulated times.
  std::vector<DatanodeLossEvent> datanode_losses;

  /// Bad-node model: a `bad_node_probability` fraction of nodes (chosen by
  /// a stateless hash of the seed and node id) are flaky for the whole run,
  /// and every attempt placed on a flaky node crashes with an *additional*
  /// `bad_node_crash_probability` — the correlated failure mode that node
  /// blacklisting exists to contain.
  double bad_node_probability = 0.0;
  double bad_node_crash_probability = 0.0;
  /// Malformed input rows injected into each raw text input (junk lines a
  /// hardened parse path must divert to the row quarantine instead of dying
  /// on). Survivable by construction: junk rows are *extra*, so diverting
  /// them leaves the join result bit-identical to the fault-free run.
  std::uint64_t malformed_rows = 0;

  // ---- recovery semantics --------------------------------------------------
  /// Task attempts before the job is declared dead (Hadoop's
  /// mapred.*.max.attempts). 1 = first failure is fatal (the seed model).
  std::uint32_t max_attempts = 1;
  /// Base of the exponential retry backoff charged to the simulated clock:
  /// attempt k's failure costs min(backoff * 2^(k-1), max_backoff_s) seconds
  /// before relaunch.
  double retry_backoff_s = 2.0;
  /// Cap on a single backoff interval: without it the doubling above grows
  /// unboundedly with deep retry chains (2^(k-1) reaches minutes by k=7).
  double max_backoff_s = 60.0;
  /// Deterministic backoff jitter fraction in [0, 1]: attempt k's backoff is
  /// scaled by a factor in [1-j, 1+j] drawn from a stateless hash of
  /// (seed, phase, task, attempt) — decorrelated relaunches without losing
  /// bit-identical virtual-time replay. 0 = no jitter (the seed model).
  double backoff_jitter = 0.0;
  /// Node blacklisting (Hadoop's per-job tracker blacklist): once a node
  /// accumulates this many failed attempts within one phase it is
  /// quarantined for the remainder of the phase — its slots stop taking
  /// work, in-flight retry chains relocate to healthy slots. 0 = disabled.
  /// The last healthy node is never quarantined.
  std::uint32_t node_blacklist_threshold = 0;
  /// Job-level retry budget: total failed-attempt retries allowed across
  /// all phases before the job is killed (RetryBudgetExhausted), even if no
  /// single task exhausts max_attempts. 0 = unlimited.
  std::uint64_t job_retry_budget = 0;
  /// Per-phase wall-clock timeout in simulated seconds: a phase whose
  /// makespan (including serial startup) exceeds this is killed at the
  /// deadline (DeadlineExceeded) and charges exactly the timeout. 0 = none.
  double phase_timeout_s = 0.0;
  /// Speculative execution: clone the slowest running task once its
  /// projected duration exceeds `speculation_threshold` x the phase median;
  /// the first finisher wins and the loser's work is wasted (but charged).
  bool speculative_execution = false;
  double speculation_threshold = 1.5;
  /// Streaming-pipe retry headroom: a retried attempt runs in a less
  /// contended container, so its effective pipe capacity grows by this
  /// fraction per retry (attempt k tolerates capacity * (1 + h*(k-1))).
  /// Models the transient share of HadoopGIS pipe overflows; overflows
  /// larger than the final attempt's headroom remain fatal, which is how
  /// the full-dataset runs still die exactly as in Tables 2-3.
  double pipe_retry_headroom = 0.5;

  /// True when the plan can never perturb a run (no injected faults and no
  /// retry budget beyond the first attempt) — engines skip the recovery
  /// machinery entirely and stay byte-identical with the fault-free path.
  bool trivial() const {
    return task_crash_probability <= 0.0 && straggler_probability <= 0.0 &&
           datanode_losses.empty() && max_attempts <= 1 &&
           !speculative_execution && bad_node_probability <= 0.0 &&
           malformed_rows == 0 && phase_timeout_s <= 0.0 &&
           job_retry_budget == 0;
  }
};

/// Stateless oracle over a FaultPlan. All queries hash (seed, phase, task,
/// attempt), so they are thread-safe and order-independent.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Stable id for a phase name (fed back into the per-task queries).
  static std::uint64_t phase_id(const std::string& name);

  /// Does attempt `attempt` (1-based) of `task` in `phase` crash?
  bool crashes(std::uint64_t phase, std::size_t task, std::uint32_t attempt) const;

  /// Node-aware crash query: the plan's base crash probability plus the
  /// extra bad-node crash probability when `node` is flaky. Reduces exactly
  /// to crashes() when the bad-node knobs are zero.
  bool crashes_on(std::uint64_t phase, std::size_t task, std::uint32_t attempt,
                  std::uint32_t node) const;

  /// Is `node` one of the run's flaky nodes? Stateless hash of (seed, node):
  /// the same node is flaky in every phase, which is what makes per-phase
  /// blacklisting pay off.
  bool bad_node(std::uint32_t node) const;

  /// Fraction of the attempt's duration consumed before the crash, in
  /// (0, 1). Only meaningful when crashes() is true.
  double crash_fraction(std::uint64_t phase, std::size_t task,
                        std::uint32_t attempt) const;

  /// Straggler slowdown for `task` in `phase`: 1.0 for healthy tasks,
  /// plan().straggler_slowdown for stragglers.
  double slowdown(std::uint64_t phase, std::size_t task) const;

  /// Simulated seconds of backoff charged after failed attempt `attempt`
  /// (1-based): min(retry_backoff_s * 2^(attempt-1), max_backoff_s).
  double backoff_s(std::uint32_t attempt) const;

  /// Jittered backoff for a specific (phase, task, attempt): the capped
  /// exponential scaled by a deterministic factor in
  /// [1 - backoff_jitter, 1 + backoff_jitter]. Equals backoff_s(attempt)
  /// when the plan's jitter is 0.
  double backoff_s(std::uint64_t phase, std::size_t task, std::uint32_t attempt) const;

  /// Effective capacity multiplier for attempt `attempt` of a
  /// capacity-gated task (streaming pipes): 1 + pipe_retry_headroom*(k-1).
  double capacity_factor(std::uint32_t attempt) const;

  /// Datanode losses scheduled at or before simulated time `now_s`,
  /// beginning at event index `from` (callers track how many they applied).
  std::vector<DatanodeLossEvent> losses_due(double now_s, std::size_t from) const;

 private:
  double unit(std::uint64_t phase, std::size_t task, std::uint32_t attempt,
              std::uint64_t salt) const;

  FaultPlan plan_;
};

/// One-line human-readable dump of every plan knob — the chaos sweep prints
/// this for failing seeds so any regression reproduces from the log alone.
std::string describe(const FaultPlan& plan);

}  // namespace sjc::cluster
