// Wave scheduling of simulated tasks onto cluster slots.
//
// Hadoop and Spark both dispatch a phase's tasks FIFO onto free slots; the
// phase finishes when the last task drains. list_schedule_makespan
// reproduces exactly that: tasks are assigned, in submission order, to the
// earliest-available slot.
//
// The failure-aware overload additionally replays Hadoop's recovery
// machinery on top of the same FIFO dispatch: failed attempts are retried
// (with exponential backoff) on the same slot up to the plan's max_attempts,
// stragglers run slowed down and may be speculatively cloned onto a second
// slot (first finisher wins, the loser's duplicate work is wasted but
// charged), and a task that exhausts its attempts kills the phase — all
// deterministic functions of the FaultPlan seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/fault_injector.hpp"
#include "trace/trace.hpp"

namespace sjc::cluster {

/// One attempt the scheduler placed on a slot: the raw material for the
/// trace timeline. Times are phase-relative seconds (the phase recorder
/// shifts them onto the run clock). Slot choice among equally-free slots is
/// deterministic (lowest slot id wins ties), and emission is a pure
/// observation — it never feeds back into makespan arithmetic.
struct ScheduledAttempt {
  std::size_t task = 0;
  std::uint32_t attempt = 1;     // 1-based; a speculative clone continues the chain
  bool speculative = false;
  std::uint32_t slot = 0;
  double start = 0.0;
  double end = 0.0;
  trace::SpanOutcome outcome = trace::SpanOutcome::kOk;
};

/// FIFO list-scheduling makespan of `durations` onto `slots` identical
/// slots. Returns 0 for an empty task list. Throws InvalidArgument when
/// `slots == 0` (there is nothing meaningful to schedule onto). When
/// `attempts_out` is non-null, one ScheduledAttempt per task is appended.
double list_schedule_makespan(const std::vector<double>& durations,
                              std::uint32_t slots,
                              std::vector<ScheduledAttempt>* attempts_out = nullptr);

/// Longest-processing-time variant (tasks sorted descending first): a lower
/// bound used by the scalability bench to separate scheduling luck from
/// capacity limits. Also requires `slots > 0`.
double lpt_schedule_makespan(std::vector<double> durations, std::uint32_t slots);

/// One node quarantined (blacklisted) during a phase.
struct QuarantineEvent {
  std::uint32_t node = 0;
  /// Phase-relative simulated time of the failure that tripped the threshold.
  double time_s = 0.0;
  /// Failed attempts the node had accumulated when it was quarantined.
  std::uint32_t failures = 0;
};

/// Outcome of scheduling one phase under a FaultPlan.
struct ScheduleOutcome {
  double makespan = 0.0;
  /// Total task attempts launched (== task count when nothing failed).
  std::uint64_t attempts = 0;
  /// Largest attempt number any single task needed to succeed (or the
  /// attempt count it died at).
  std::uint32_t max_attempts_used = 0;
  /// Speculative duplicates launched.
  std::uint64_t speculative_clones = 0;
  /// Seconds of work thrown away: failed attempts, retry backoff, and the
  /// losing side of every speculative race.
  double wasted_seconds = 0.0;
  /// False when some task exhausted max_attempts; the phase (and job) dies.
  bool success = true;
  /// First task (by submission index) that exhausted its attempts.
  std::size_t first_failed_task = static_cast<std::size_t>(-1);

  // ---- output-commit ledger ----------------------------------------------
  // Every attempt reaches exactly one terminal commit state, so for any
  // phase: attempts == commits_published + commits_rejected + attempts_aborted,
  // and on success commits_published == task count. The scheduler enforces
  // the single-committer rule internally: a second publish for the same task
  // throws (the checked invariant of the commit protocol).
  /// Winning attempts whose output was published (exactly one per task).
  std::uint64_t commits_published = 0;
  /// Speculative race losers whose commit the ledger rejected.
  std::uint64_t commits_rejected = 0;
  /// Crashed / intrinsically-failed attempts that aborted without committing.
  std::uint64_t attempts_aborted = 0;

  /// Nodes blacklisted during this phase, in quarantine order.
  std::vector<QuarantineEvent> quarantines;
};

/// Failure/speculation-aware FIFO list schedule.
///
/// `intrinsic_severity` (optional, parallel to `durations`) models
/// deterministic per-task failure causes such as streaming-pipe overflow:
/// entry r means attempt k of that task fails intrinsically unless
/// faults.capacity_factor(k) >= r (r <= 1 never fails; a failed attempt
/// consumes duration * min(1, capacity_factor/r) before dying — the pipe
/// breaks partway through the stream). Injected crashes from the plan are
/// layered on top. Requires `slots > 0`.
///
/// When `attempts_out` is non-null, every launched attempt — failed
/// attempts, retries, speculative clones and their race losers — is
/// appended as a ScheduledAttempt.
///
/// `slots_per_node` groups slots into nodes for the bad-node crash model and
/// node blacklisting: slot s lives on node s / slots_per_node. 0 treats the
/// whole cluster as one node (quarantine disabled — the seed behaviour).
/// When the plan's node_blacklist_threshold is set, a node accumulating that
/// many failed attempts within the phase is quarantined: its slots stop
/// taking work and in-flight retry chains relocate to a healthy slot. The
/// last healthy node is never quarantined.
ScheduleOutcome list_schedule_makespan(const std::vector<double>& durations,
                                       std::uint32_t slots,
                                       const FaultInjector& faults,
                                       std::uint64_t phase,
                                       const std::vector<double>* intrinsic_severity =
                                           nullptr,
                                       std::vector<ScheduledAttempt>* attempts_out =
                                           nullptr,
                                       std::uint32_t slots_per_node = 0);

}  // namespace sjc::cluster
