// Wave scheduling of simulated tasks onto cluster slots.
//
// Hadoop and Spark both dispatch a phase's tasks FIFO onto free slots; the
// phase finishes when the last task drains. list_schedule_makespan
// reproduces exactly that: tasks are assigned, in submission order, to the
// earliest-available slot.
#pragma once

#include <cstdint>
#include <vector>

namespace sjc::cluster {

/// FIFO list-scheduling makespan of `durations` onto `slots` identical
/// slots. Returns 0 for an empty task list.
double list_schedule_makespan(const std::vector<double>& durations,
                              std::uint32_t slots);

/// Longest-processing-time variant (tasks sorted descending first): a lower
/// bound used by the scalability bench to separate scheduling luck from
/// capacity limits.
double lpt_schedule_makespan(std::vector<double> durations, std::uint32_t slots);

}  // namespace sjc::cluster
