// Per-task cost accounting.
//
// A SimTask records what one distributed task *did*: measured CPU seconds
// (real work on scaled data) and bytes moved through each device class. Its
// simulated duration charges those quantities — scaled back to paper
// magnitude by `data_scale` — against the per-slot bandwidth of the cluster
// the task ran on.
#pragma once

#include <cstdint>

#include "cluster/cluster_spec.hpp"

namespace sjc::cluster {

struct SimTask {
  double cpu_seconds = 0.0;         // measured on scaled data
  std::uint64_t disk_read = 0;      // bytes at scaled magnitude
  std::uint64_t disk_write = 0;     // bytes at scaled magnitude
  std::uint64_t network = 0;        // bytes at scaled magnitude
  double fixed_overhead = 0.0;      // per-task latency (JVM spin-up etc.), paper units

  void add(const SimTask& other) {
    cpu_seconds += other.cpu_seconds;
    disk_read += other.disk_read;
    disk_write += other.disk_write;
    network += other.network;
    fixed_overhead += other.fixed_overhead;
  }

  /// Simulated duration in paper-unit seconds.
  double duration(const ClusterSpec& cluster, double data_scale) const {
    double seconds = fixed_overhead;
    seconds += cpu_seconds * data_scale / cluster.node.cpu_speed;
    if (disk_read > 0) {
      seconds += static_cast<double>(disk_read) * data_scale /
                 cluster.per_slot_disk_read_bw();
    }
    if (disk_write > 0) {
      seconds += static_cast<double>(disk_write) * data_scale /
                 cluster.per_slot_disk_write_bw();
    }
    if (network > 0) {
      seconds += static_cast<double>(network) * data_scale /
                 cluster.per_slot_network_bw();
    }
    return seconds;
  }
};

}  // namespace sjc::cluster
