#include "cluster/metrics.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace sjc::cluster {

double RunMetrics::seconds_with_prefix(const std::string& prefix) const {
  double total = 0.0;
  for (const auto& p : phases_) {
    if (starts_with(p.name, prefix)) total += p.sim_seconds;
  }
  return total;
}

std::string RunMetrics::to_string() const {
  std::string out;
  char line[256];
  for (const auto& p : phases_) {
    std::snprintf(line, sizeof(line), "%-40s %10.2fs  r=%-10s w=%-10s sh=%-10s tasks=%zu\n",
                  p.name.c_str(), p.sim_seconds, format_bytes(p.bytes_read).c_str(),
                  format_bytes(p.bytes_written).c_str(),
                  format_bytes(p.bytes_shuffled).c_str(), p.task_count);
    out += line;
    const bool recovered_work =
        p.task_attempts > p.task_count || p.speculative_clones > 0 ||
        p.wasted_seconds > 0.0 || p.recomputed_partitions > 0 ||
        p.rereplicated_bytes > 0;
    if (recovered_work) {
      std::snprintf(line, sizeof(line),
                    "%-40s   attempts=%llu clones=%llu wasted=%.2fs recomputed=%llu "
                    "rereplicated=%s\n",
                    "", static_cast<unsigned long long>(p.task_attempts),
                    static_cast<unsigned long long>(p.speculative_clones),
                    p.wasted_seconds,
                    static_cast<unsigned long long>(p.recomputed_partitions),
                    format_bytes(p.rereplicated_bytes).c_str());
      out += line;
    }
  }
  std::snprintf(line, sizeof(line), "%-40s %10.2fs\n", "TOTAL", total_seconds());
  out += line;
  return out;
}

}  // namespace sjc::cluster
