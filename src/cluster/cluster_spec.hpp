// Simulated cluster hardware descriptions.
//
// The paper evaluates on (a) a dual-8-core 128 GB workstation run as a
// single-node cluster and (b) Amazon EC2 clusters of 6/8/10 g2.2xlarge
// nodes (8 vCPU, 15 GB each). ClusterSpec captures the capacities that
// drive the observed behaviour: core counts (parallel slots), memory (the
// OOM and broken-pipe gates), per-node disk bandwidth (single-node I/O
// bottleneck on the workstation) and network bandwidth (shuffle cost on
// EC2).
//
// All values are in *paper units* (real bytes, real bytes/sec). Experiments
// run on data scaled down by `data_scale`; the engines multiply measured
// bytes and CPU seconds back up by that factor before charging them against
// these capacities, so simulated seconds are magnitude-comparable with the
// paper's tables (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>

namespace sjc::cluster {

struct NodeSpec {
  std::uint32_t cores = 1;
  std::uint64_t memory_bytes = 0;
  double disk_read_bw = 0.0;   // bytes/sec, per node
  double disk_write_bw = 0.0;  // bytes/sec, per node
  double network_bw = 0.0;     // bytes/sec, per node
  double cpu_speed = 1.0;      // relative to a workstation core
};

struct ClusterSpec {
  std::string name;
  NodeSpec node;
  std::uint32_t node_count = 1;

  std::uint32_t total_slots() const { return node.cores * node_count; }
  std::uint64_t aggregate_memory() const { return node.memory_bytes * node_count; }

  /// Bandwidth available to one busy slot when every slot on the node is
  /// busy (the saturated steady state of a map/reduce wave).
  double per_slot_disk_read_bw() const { return node.disk_read_bw / node.cores; }
  double per_slot_disk_write_bw() const { return node.disk_write_bw / node.cores; }
  double per_slot_network_bw() const { return node.network_bw / node.cores; }

  /// The workstation configuration (WS): 16 cores, 128 GB, one local disk,
  /// loopback "network".
  static ClusterSpec workstation();

  /// EC2-n configuration: n g2.2xlarge nodes (8 vCPU, 15 GB, instance-store
  /// disk, ~1 Gbps network).
  static ClusterSpec ec2(std::uint32_t nodes);
};

}  // namespace sjc::cluster
