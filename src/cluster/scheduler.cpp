#include "cluster/scheduler.hpp"

#include <algorithm>
#include <queue>

#include "util/status.hpp"

namespace sjc::cluster {

double list_schedule_makespan(const std::vector<double>& durations,
                              std::uint32_t slots) {
  require(slots >= 1, "list_schedule_makespan: need at least one slot");
  if (durations.empty()) return 0.0;
  // Min-heap of slot availability times.
  std::priority_queue<double, std::vector<double>, std::greater<>> heap;
  for (std::uint32_t s = 0; s < slots; ++s) heap.push(0.0);
  double makespan = 0.0;
  for (const double d : durations) {
    const double start = heap.top();
    heap.pop();
    const double end = start + d;
    makespan = std::max(makespan, end);
    heap.push(end);
  }
  return makespan;
}

double lpt_schedule_makespan(std::vector<double> durations, std::uint32_t slots) {
  std::sort(durations.begin(), durations.end(), std::greater<>());
  return list_schedule_makespan(durations, slots);
}

}  // namespace sjc::cluster
