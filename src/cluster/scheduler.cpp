#include "cluster/scheduler.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/status.hpp"

namespace sjc::cluster {

namespace {

/// Min-heap of (free-at time, slot id): among equally-free slots the lowest
/// slot id wins, so slot placement — and with it the trace timeline — is a
/// deterministic function of the task list alone. The slot id never feeds
/// into any duration arithmetic, so makespans are unchanged from the
/// time-only heap this replaces.
using SlotHeap =
    std::priority_queue<std::pair<double, std::uint32_t>,
                        std::vector<std::pair<double, std::uint32_t>>,
                        std::greater<>>;

SlotHeap make_slot_heap(std::uint32_t slots) {
  SlotHeap heap;
  for (std::uint32_t s = 0; s < slots; ++s) heap.emplace(0.0, s);
  return heap;
}

}  // namespace

double list_schedule_makespan(const std::vector<double>& durations,
                              std::uint32_t slots,
                              std::vector<ScheduledAttempt>* attempts_out) {
  require(slots > 0, "list_schedule_makespan: need at least one slot");
  if (durations.empty()) return 0.0;
  SlotHeap heap = make_slot_heap(slots);
  double makespan = 0.0;
  for (std::size_t i = 0; i < durations.size(); ++i) {
    const auto [start, slot] = heap.top();
    heap.pop();
    const double end = start + durations[i];
    makespan = std::max(makespan, end);
    heap.emplace(end, slot);
    if (attempts_out != nullptr) {
      attempts_out->push_back({i, 1, false, slot, start, end,
                               trace::SpanOutcome::kOk});
    }
  }
  return makespan;
}

double lpt_schedule_makespan(std::vector<double> durations, std::uint32_t slots) {
  require(slots > 0, "lpt_schedule_makespan: need at least one slot");
  std::sort(durations.begin(), durations.end(), std::greater<>());
  return list_schedule_makespan(durations, slots);
}

ScheduleOutcome list_schedule_makespan(const std::vector<double>& durations,
                                       std::uint32_t slots,
                                       const FaultInjector& faults,
                                       std::uint64_t phase,
                                       const std::vector<double>* intrinsic_severity,
                                       std::vector<ScheduledAttempt>* attempts_out) {
  require(slots > 0, "list_schedule_makespan: need at least one slot");
  require(intrinsic_severity == nullptr ||
              intrinsic_severity->size() == durations.size(),
          "list_schedule_makespan: severity vector must match task count");
  ScheduleOutcome out;
  if (durations.empty()) return out;

  const FaultPlan& plan = faults.plan();

  // Median base duration, the speculation trigger reference (Hadoop
  // speculates on tasks far beyond the pack's progress rate).
  double median = 0.0;
  {
    std::vector<double> sorted = durations;
    const std::size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                     sorted.end());
    median = sorted[mid];
  }

  SlotHeap heap = make_slot_heap(slots);

  const auto emit = [&](std::size_t task, std::uint32_t attempt, bool speculative,
                        std::uint32_t slot, double start, double end,
                        trace::SpanOutcome outcome) {
    if (attempts_out != nullptr) {
      attempts_out->push_back({task, attempt, speculative, slot, start, end, outcome});
    }
  };

  for (std::size_t i = 0; i < durations.size(); ++i) {
    const double base = durations[i];
    const double slow = faults.slowdown(phase, i);
    const double severity =
        intrinsic_severity != nullptr ? (*intrinsic_severity)[i] : 0.0;

    const auto [start, slot] = heap.top();
    heap.pop();

    // ---- Attempt chain: retries run back-to-back on the same slot --------
    double chain = 0.0;
    bool succeeded = false;
    double final_attempt_start = start;  // where the winning attempt began
    std::uint32_t attempt = 1;
    for (; attempt <= plan.max_attempts; ++attempt) {
      const double attempt_duration = base * slow;
      ++out.attempts;
      out.max_attempts_used = std::max(out.max_attempts_used, attempt);
      if (severity > 1.0 && severity > faults.capacity_factor(attempt)) {
        // Intrinsic failure (pipe overflow): the attempt dies once the
        // capacity is exhausted, i.e. after capacity/severity of its work.
        const double consumed =
            attempt_duration * std::min(1.0, faults.capacity_factor(attempt) / severity);
        emit(i, attempt, false, slot, start + chain, start + chain + consumed,
             trace::SpanOutcome::kFailed);
        chain += consumed;
        out.wasted_seconds += consumed;
      } else if (faults.crashes(phase, i, attempt)) {
        const double consumed =
            attempt_duration * faults.crash_fraction(phase, i, attempt);
        emit(i, attempt, false, slot, start + chain, start + chain + consumed,
             trace::SpanOutcome::kFailed);
        chain += consumed;
        out.wasted_seconds += consumed;
      } else {
        final_attempt_start = start + chain;
        chain += attempt_duration;
        succeeded = true;
        break;
      }
      if (attempt < plan.max_attempts) {
        const double backoff = faults.backoff_s(attempt);
        chain += backoff;
        out.wasted_seconds += backoff;
      }
    }

    if (!succeeded) {
      out.success = false;
      if (out.first_failed_task == static_cast<std::size_t>(-1)) {
        out.first_failed_task = i;
      }
      const double end = start + chain;
      out.makespan = std::max(out.makespan, end);
      heap.emplace(end, slot);
      continue;
    }

    // ---- Speculative execution -------------------------------------------
    // Hadoop clones a straggler once it runs past a multiple of the pack's
    // median; the clone starts on another slot at full speed, the first
    // finisher wins and the loser is killed (its work wasted but charged).
    // Only clean first-attempt stragglers speculate: a task that already
    // crashed is handled by the retry path above.
    const bool straggler = slow > 1.0 && attempt == 1;
    if (plan.speculative_execution && straggler &&
        base * slow > plan.speculation_threshold * median && !heap.empty()) {
      const double launch_offset = plan.speculation_threshold * median;
      const auto [clone_slot_free, clone_slot] = heap.top();
      heap.pop();
      const double clone_start = std::max(clone_slot_free, start + launch_offset);
      const double clone_end = clone_start + base;
      const double primary_end = start + chain;
      const double winner_end = std::min(primary_end, clone_end);
      ++out.speculative_clones;
      ++out.attempts;
      if (clone_end < primary_end) {
        out.wasted_seconds += winner_end - start;  // primary killed
        emit(i, attempt, false, slot, final_attempt_start, winner_end,
             trace::SpanOutcome::kSpeculativeLoser);
        emit(i, attempt + 1, true, clone_slot, clone_start, clone_end,
             trace::SpanOutcome::kOk);
      } else {
        out.wasted_seconds += std::max(0.0, winner_end - clone_start);  // clone killed
        emit(i, attempt, false, slot, final_attempt_start, primary_end,
             trace::SpanOutcome::kOk);
        emit(i, attempt + 1, true, clone_slot, clone_start,
             std::max(clone_start, winner_end), trace::SpanOutcome::kSpeculativeLoser);
      }
      out.makespan = std::max(out.makespan, winner_end);
      heap.emplace(winner_end, slot);
      heap.emplace(winner_end, clone_slot);
      continue;
    }

    const double end = start + chain;
    emit(i, attempt, false, slot, final_attempt_start, end, trace::SpanOutcome::kOk);
    out.makespan = std::max(out.makespan, end);
    heap.emplace(end, slot);
  }
  return out;
}

}  // namespace sjc::cluster
